"""Unit tests for X-values and the Section 3 information ordering."""

import pytest

from repro import NI, XTuple
from repro.core.errors import NotJoinableError, SchemaError
from repro.core.tuples import (
    NULL_TUPLE,
    equivalent,
    joinable,
    more_informative,
    try_join,
    tuple_join,
    tuple_meet,
)


class TestConstruction:
    def test_from_mapping(self):
        t = XTuple({"A": 1, "B": "x"})
        assert t["A"] == 1
        assert t["B"] == "x"

    def test_from_kwargs(self):
        t = XTuple(A=1, B=2)
        assert t["A"] == 1 and t["B"] == 2

    def test_from_pairs(self):
        t = XTuple([("A", 1), ("B", 2)])
        assert t.as_dict() == {"A": 1, "B": 2}

    def test_from_values(self):
        t = XTuple.from_values(["A", "B"], [1, None])
        assert t["A"] == 1
        assert t["B"] is NI

    def test_from_values_length_mismatch(self):
        with pytest.raises(SchemaError):
            XTuple.from_values(["A"], [1, 2])

    def test_none_is_normalised_to_ni(self):
        t = XTuple(A=None)
        assert t["A"] is NI
        assert "A" not in t

    def test_explicit_ni_bindings_are_dropped(self):
        assert XTuple(A=1, B=NI) == XTuple(A=1)

    def test_unknown_attribute_reads_as_ni(self):
        t = XTuple(A=1)
        assert t["ZZZ"] is NI

    def test_rejects_bad_attribute_names(self):
        with pytest.raises(SchemaError):
            XTuple({"": 1})
        with pytest.raises(SchemaError):
            XTuple({3: 1})

    def test_attributes_sorted(self):
        t = XTuple(B=2, A=1, C=3)
        assert t.attributes == ("A", "B", "C")

    def test_len_counts_nonnull_bindings(self):
        assert len(XTuple(A=1, B=None, C=3)) == 2

    def test_null_tuple(self):
        assert XTuple.null_tuple().is_null_tuple()
        assert NULL_TUPLE == XTuple()
        assert len(NULL_TUPLE) == 0


class TestEqualityAndHashing:
    def test_canonical_equality(self):
        assert XTuple(A=1, B=NI) == XTuple(A=1)
        assert XTuple(A=1) != XTuple(A=2)

    def test_equivalence_coincides_with_equality(self):
        a = XTuple(A=1, B=None)
        b = XTuple(A=1)
        assert a.equivalent_to(b)
        assert equivalent(a, b)

    def test_hash_consistency(self):
        assert hash(XTuple(A=1, B=None)) == hash(XTuple(A=1))
        assert len({XTuple(A=1), XTuple(A=1, B=NI)}) == 1

    def test_not_equal_to_non_tuple(self):
        assert XTuple(A=1) != {"A": 1}


class TestInformationOrdering:
    """The worked example after Definition 3.1: r1 ≤ r2, r2 ≅ r3, r3 ≤ r4."""

    r1 = XTuple.from_values(["E#", "NAME", "SEX", "MGR#"], [5555, "JONES", None, 2231])
    r2 = XTuple.from_values(["E#", "NAME", "SEX", "MGR#"], [5555, "JONES", "F", 2231])
    r3 = XTuple.from_values(["E#", "NAME", "SEX", "MGR#", "TEL#"], [5555, "JONES", "F", 2231, None])
    r4 = XTuple.from_values(["E#", "NAME", "SEX", "MGR#", "TEL#"], [5555, "JONES", "F", 2231, 2639452])

    def test_paper_chain(self):
        assert self.r1 <= self.r2
        assert self.r2.equivalent_to(self.r3)
        assert self.r3 <= self.r4

    def test_strictness(self):
        assert self.r1 < self.r2
        assert not (self.r2 < self.r3)
        assert self.r3 < self.r4

    def test_more_informative_requires_matching_values(self):
        assert not XTuple(A=2).more_informative_than(XTuple(A=1))
        assert XTuple(A=1, B=2).more_informative_than(XTuple(A=1))
        assert more_informative(XTuple(A=1, B=2), XTuple(B=2))

    def test_reflexive(self):
        assert self.r2 >= self.r2

    def test_transitive(self):
        assert self.r1 <= self.r2 and self.r2 <= self.r4
        assert self.r1 <= self.r4

    def test_null_tuple_is_bottom(self):
        for t in (self.r1, self.r2, self.r3, self.r4):
            assert t >= NULL_TUPLE

    def test_incomparable_tuples(self):
        a, b = XTuple(A=1), XTuple(B=1)
        assert not a >= b and not b >= a

    def test_table_one_rows_equivalent_to_table_two_rows(self, emp_table_one, emp_table_two):
        ones = {t for t in emp_table_one.tuples()}
        twos = {t for t in emp_table_two.tuples()}
        assert ones == twos  # canonical XTuple form makes them literally equal


class TestMeetAndJoin:
    def test_meet_keeps_agreements(self):
        a = XTuple(A=1, B=2, C=3)
        b = XTuple(A=1, B=5, D=7)
        assert a.meet(b) == XTuple(A=1)
        assert tuple_meet(a, b) == tuple_meet(b, a)

    def test_meet_of_disagreeing_tuples_is_null_tuple(self):
        assert XTuple(A=1).meet(XTuple(A=2)).is_null_tuple()

    def test_meet_is_lower_bound(self):
        a, b = XTuple(A=1, B=2), XTuple(A=1, C=3)
        m = a.meet(b)
        assert a >= m and b >= m

    def test_meet_idempotent(self):
        a = XTuple(A=1, B=2)
        assert a.meet(a) == a

    def test_joinable(self):
        assert joinable(XTuple(A=1), XTuple(B=2))
        assert joinable(XTuple(A=1, B=2), XTuple(B=2, C=3))
        assert not joinable(XTuple(A=1), XTuple(A=2))

    def test_join_merges(self):
        assert tuple_join(XTuple(A=1), XTuple(B=2)) == XTuple(A=1, B=2)

    def test_join_of_unjoinable_raises(self):
        with pytest.raises(NotJoinableError):
            tuple_join(XTuple(A=1), XTuple(A=2))

    def test_try_join(self):
        assert try_join(XTuple(A=1), XTuple(A=2)) is None
        assert try_join(XTuple(A=1), XTuple(A=1, B=2)) == XTuple(A=1, B=2)

    def test_join_is_upper_bound(self):
        a, b = XTuple(A=1), XTuple(B=2)
        j = a.join(b)
        assert j >= a and j >= b

    def test_join_with_null_tuple_is_identity(self):
        a = XTuple(A=1, B=2)
        assert a.join(NULL_TUPLE) == a

    def test_meet_join_absorption(self):
        a = XTuple(A=1, B=2)
        b = XTuple(A=1)
        assert a.meet(a.join(b)) == a
        assert a.join(a.meet(b)) == a


class TestProjectionsAndExtensions:
    def test_project(self):
        t = XTuple(A=1, B=2, C=3)
        assert t.project(["A", "C"]) == XTuple(A=1, C=3)

    def test_project_missing_attribute_vanishes(self):
        assert XTuple(A=1).project(["A", "B"]) == XTuple(A=1)

    def test_drop(self):
        assert XTuple(A=1, B=2).drop(["B"]) == XTuple(A=1)

    def test_extend(self):
        assert XTuple(A=1).extend({"B": 2}) == XTuple(A=1, B=2)

    def test_extend_conflict_raises(self):
        with pytest.raises(NotJoinableError):
            XTuple(A=1).extend({"A": 2})

    def test_extend_with_null_is_noop(self):
        assert XTuple(A=1).extend({"B": None}) == XTuple(A=1)

    def test_rename(self):
        assert XTuple(A=1, B=2).rename({"A": "X"}) == XTuple(X=1, B=2)

    def test_is_total_on(self):
        t = XTuple(A=1, B=2)
        assert t.is_total_on(["A"])
        assert t.is_total_on(["A", "B"])
        assert not t.is_total_on(["A", "C"])

    def test_format_row(self):
        t = XTuple(A=1)
        assert t.format_row(["A", "B"]) == "1  -"
