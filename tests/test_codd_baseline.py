"""Unit tests for the Codd (1979) baseline package."""

import pytest

from repro import NI, Relation, XTuple
from repro.codd import (
    CODD_FALSE,
    CODD_TRUE,
    MAYBE,
    codd_compare,
    codd_difference,
    codd_intersection,
    codd_product,
    codd_project,
    codd_union,
    containment_truth,
    equality_truth,
    from_core_truth,
    intersection_contained_truth,
    join_maybe,
    join_true,
    null_sites,
    outer_join,
    select_maybe,
    select_true,
    substitution_truth,
    to_core_truth,
    union_contains_truth,
)
from repro.core.errors import AlgebraError, UnionCompatibilityError
from repro.core.threevalued import FALSE, NI_TRUTH, TRUE


class TestCoddTruth:
    def test_singletons_and_predicates(self):
        assert CODD_TRUE.is_true() and MAYBE.is_maybe() and CODD_FALSE.is_false()
        assert bool(CODD_TRUE) and not bool(MAYBE)

    def test_connectives_match_kleene_tables(self):
        assert (CODD_TRUE & MAYBE) == MAYBE
        assert (CODD_FALSE & MAYBE) == CODD_FALSE
        assert (CODD_TRUE | MAYBE) == CODD_TRUE
        assert (CODD_FALSE | MAYBE) == MAYBE
        assert ~MAYBE == MAYBE

    def test_comparison_with_null_is_maybe(self):
        assert codd_compare(NI, "=", 5) == MAYBE
        assert codd_compare(5, ">", None) == MAYBE
        assert codd_compare(5, ">", 4) == CODD_TRUE
        assert codd_compare(5, "<", 4) == CODD_FALSE

    def test_conversion_to_and_from_core(self):
        assert to_core_truth(MAYBE) == NI_TRUTH
        assert to_core_truth(CODD_TRUE) == TRUE
        assert from_core_truth(FALSE) == CODD_FALSE
        assert from_core_truth(NI_TRUTH) == MAYBE


class TestTrueMaybeSelection:
    @pytest.fixture
    def emp(self, emp_db):
        return emp_db["EMP"]

    def test_true_and_maybe_partition_qualifying_rows(self, emp):
        true_rows = select_true(emp, "TEL#", ">", 2630000)
        maybe_rows = select_maybe(emp, "TEL#", ">", 2630000)
        assert {t["NAME"] for t in true_rows.tuples()} == {"JONES", "ADAMS"}
        assert {t["NAME"] for t in maybe_rows.tuples()} == {"SMITH", "BROWN", "GREEN"}
        assert not (set(true_rows.tuples()) & set(maybe_rows.tuples()))

    def test_maybe_selectivity_grows_with_nulls(self, emp):
        """The practical complaint of Section 1: MAYBE answers are large."""
        assert len(select_maybe(emp, "TEL#", "=", 1)) >= 3
        assert len(select_true(emp, "TEL#", "=", 1)) == 0

    def test_attribute_to_attribute_selection(self, emp):
        from repro.codd.algebra import select_attrs_maybe, select_attrs_true
        true_rows = select_attrs_true(emp, "E#", "<", "MGR#")
        maybe_rows = select_attrs_maybe(emp, "E#", "<", "MGR#")
        assert {t["NAME"] for t in true_rows.tuples()} == {"SMITH", "ADAMS"}
        # No row of the paper database is null on E# or MGR#, so nothing is MAYBE.
        assert len(maybe_rows) == 0


class TestJoinsAndClassicalOperators:
    def test_true_join_excludes_null_keys(self):
        left = Relation.from_rows(["A", "K"], [(1, "x"), (2, None)], name="L")
        right = Relation.from_rows(["KK", "B"], [("x", 10)], name="R")
        result = join_true(left, right, "K", "=", "KK")
        assert len(result) == 1

    def test_maybe_join_includes_null_keys(self):
        left = Relation.from_rows(["A", "K"], [(1, "x"), (2, None)], name="L")
        right = Relation.from_rows(["KK", "B"], [("x", 10)], name="R")
        result = join_maybe(left, right, "K", "=", "KK")
        assert {t["A"] for t in result.tuples()} == {2}

    def test_outer_join_keeps_dangling_rows(self):
        left = Relation.from_rows(["A", "K"], [(1, "x"), (2, "z")], name="L")
        right = Relation.from_rows(["KK", "B"], [("x", 10), ("w", 20)], name="R")
        result = outer_join(left, right, "K", "KK")
        assert any(t["A"] == 2 and t["B"] is NI for t in result.tuples())
        assert any(t["B"] == 20 and t["A"] is NI for t in result.tuples())

    def test_union_difference_require_compatibility(self):
        a = Relation.from_rows(["A"], [(1,)])
        b = Relation.from_rows(["B"], [(1,)])
        with pytest.raises(UnionCompatibilityError):
            codd_union(a, b)
        with pytest.raises(UnionCompatibilityError):
            codd_difference(a, b)
        with pytest.raises(UnionCompatibilityError):
            codd_intersection(a, b)

    def test_classical_set_semantics(self):
        a = Relation.from_rows(["A", "B"], [(1, 2), (3, 4)])
        b = Relation.from_rows(["A", "B"], [(3, 4), (5, 6)])
        assert len(codd_union(a, b)) == 3
        assert {t["A"] for t in codd_difference(a, b).tuples()} == {1}
        assert {t["A"] for t in codd_intersection(a, b).tuples()} == {3}

    def test_product_requires_disjoint_schemas(self):
        a = Relation.from_rows(["A"], [(1,)])
        with pytest.raises(AlgebraError):
            codd_product(a, a)

    def test_project(self):
        a = Relation.from_rows(["A", "B"], [(1, 2), (1, 3)])
        assert len(codd_project(a, ["A"])) == 1


class TestSubstitutionPrinciple:
    def test_null_sites_located(self, ps1, ps2):
        assert len(null_sites([ps1])) == 1
        assert len(null_sites([ps1, ps2])) == 2
        assert len(null_sites([ps2.minimal()])) == 1

    def test_containment_is_maybe(self, ps1, ps2):
        """Display (1.1)/(1.2): PS'' ⊇ PS' evaluates to MAYBE under Codd."""
        assert containment_truth(ps2, ps1) == MAYBE

    def test_self_equality_is_maybe(self, ps1):
        """PS' = PS' evaluates to MAYBE — the Section 1 surprise."""
        assert equality_truth(ps1, ps1) == MAYBE

    def test_union_and_intersection_claims(self, ps1, ps2):
        assert union_contains_truth(ps1, ps2, ps1) != CODD_TRUE
        assert intersection_contained_truth(ps1, ps2, ps1) != CODD_FALSE

    def test_total_relations_behave_classically(self, emp_table_one):
        assert containment_truth(emp_table_one, emp_table_one) == CODD_TRUE
        smaller = Relation.from_rows(
            ["E#", "NAME", "SEX", "MGR#"], [(1120, "SMITH", "M", 2235)], name="E1"
        )
        assert containment_truth(emp_table_one, smaller) == CODD_TRUE
        assert containment_truth(smaller, emp_table_one) == CODD_FALSE

    def test_substitution_space_cap(self, ps1):
        with pytest.raises(ValueError):
            substitution_truth(
                [ps1],
                lambda totals: True,
                domains={"P#": [f"p{i}" for i in range(100)]},
                max_substitutions=10,
            )

    def test_explicit_domains_are_respected(self, ps1, ps2):
        verdict = containment_truth(ps2, ps1, domains={"P#": ["p1", "p2"]})
        assert verdict == MAYBE
