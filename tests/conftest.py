"""Shared fixtures: the paper's relations and a few synthetic databases."""

from __future__ import annotations

import pytest

from repro import Relation, XRelation, NI
from repro.datagen import (
    employee_database,
    parts_suppliers,
    parts_suppliers_database,
    ps_double_prime,
    ps_prime,
    table_one,
    table_two,
)


@pytest.fixture
def emp_table_one() -> Relation:
    """Table I: EMP before the TEL# column exists."""
    return table_one()


@pytest.fixture
def emp_table_two() -> Relation:
    """Table II: EMP after TEL# was added (all nulls)."""
    return table_two()


@pytest.fixture
def ps1() -> Relation:
    """PS' of display (1.1)."""
    return ps_prime()


@pytest.fixture
def ps2() -> Relation:
    """PS'' of display (1.2)."""
    return ps_double_prime()


@pytest.fixture
def ps() -> Relation:
    """The PARTS-SUPPLIERS relation of display (6.6)."""
    return parts_suppliers()


@pytest.fixture
def emp_db():
    """The paper's employee database, including the two managers."""
    return employee_database()


@pytest.fixture
def ps_db():
    """The paper's parts-suppliers database."""
    return parts_suppliers_database()
