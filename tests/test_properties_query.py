"""Property-based tests for query evaluation: soundness and consistency.

These are the reproduction's strongest correctness checks:

* the three-valued lower bound is *sound* with respect to possible-worlds
  certain answers on randomised incomplete databases;
* the tuple-at-a-time evaluation and the algebraic plan always agree;
* the unknown-interpretation evaluation (tautology detection) always
  returns at least the ni lower bound.
"""

from hypothesis import given, settings, strategies as st

from repro import Relation, XTuple
from repro.core.query import (
    And,
    AttributeRef,
    Comparison,
    Constant,
    Not,
    Or,
    Query,
    evaluate_lower_bound,
)
from repro.quel.planner import Plan
from repro.tautology import TautologyDetector, evaluate_unknown_lower_bound
from repro.worlds import lower_bound_is_sound


DOMAIN = [0, 1, 2]
ATTRIBUTES = ("A", "B")


@st.composite
def relations(draw):
    rows = draw(st.lists(
        st.tuples(
            st.one_of(st.none(), st.sampled_from(DOMAIN)),
            st.one_of(st.none(), st.sampled_from(DOMAIN)),
        ),
        min_size=1, max_size=5,
    ))
    return Relation.from_rows(ATTRIBUTES, rows, name="R")


@st.composite
def comparisons(draw):
    attribute = draw(st.sampled_from(ATTRIBUTES))
    op = draw(st.sampled_from(["=", "!=", "<", "<=", ">", ">="]))
    constant = draw(st.sampled_from(DOMAIN))
    return Comparison(AttributeRef("t", attribute), op, Constant(constant))


@st.composite
def predicates(draw, depth=2):
    if depth == 0:
        return draw(comparisons())
    kind = draw(st.sampled_from(["leaf", "and", "or", "not"]))
    if kind == "leaf":
        return draw(comparisons())
    if kind == "not":
        return Not(draw(predicates(depth=depth - 1)))
    left = draw(predicates(depth=depth - 1))
    right = draw(predicates(depth=depth - 1))
    return And(left, right) if kind == "and" else Or(left, right)


@st.composite
def queries(draw):
    relation = draw(relations())
    where = draw(predicates())
    return Query({"t": relation}, [AttributeRef("t", "A"), AttributeRef("t", "B")], where)


class TestSoundness:
    @given(queries())
    @settings(max_examples=30, deadline=None)
    def test_lower_bound_is_sound_under_unknown_interpretation(self, query):
        assert lower_bound_is_sound(query, domains={"A": DOMAIN, "B": DOMAIN}, cap=100_000)

    @given(queries())
    @settings(max_examples=30, deadline=None)
    def test_unknown_interpretation_extends_ni_bound(self, query):
        detector = TautologyDetector(domains={"A": DOMAIN, "B": DOMAIN})
        ni_bound = evaluate_lower_bound(query)
        unknown_bound = evaluate_unknown_lower_bound(query, detector)
        assert unknown_bound.contains(ni_bound)


class TestStrategyAgreement:
    @given(queries())
    @settings(max_examples=30, deadline=None)
    def test_tuple_and_algebra_strategies_agree(self, query):
        tuple_answer = evaluate_lower_bound(query)
        algebra_answer = Plan(query).execute()
        assert tuple_answer == algebra_answer

    @given(relations(), comparisons())
    @settings(max_examples=40, deadline=None)
    def test_single_comparison_matches_algebra_selection(self, relation, comparison):
        from repro.core.algebra import project, select_constant

        query = Query({"t": relation}, [AttributeRef("t", "A"), AttributeRef("t", "B")], comparison)
        via_query = evaluate_lower_bound(query)
        attribute = comparison.left.attribute
        selected = select_constant(relation, attribute, comparison.op, comparison.right.literal)
        via_algebra = project(selected, ["A", "B"])
        # Compare information content attribute-by-attribute.
        lhs = {tuple((t["t_A"], t["t_B"])) for t in via_query.rows()}
        rhs = {tuple((t["A"], t["B"])) for t in via_algebra.rows()}
        assert lhs == rhs
