"""Unit tests for the Lien baseline (repro.lien)."""

import pytest

from repro import NI, Relation, XTuple
from repro.constraints import FunctionalDependency
from repro.core.errors import ConstraintViolation
from repro.lien import (
    MultivaluedDependency,
    complementation,
    dependency_basis,
    lien_join,
    lien_project,
    lien_select,
    mvd_implied,
)


class TestLienOperations:
    def test_select_coincides_with_codd_true_and_zaniolo(self, ps):
        from repro.codd import select_true
        from repro.core.algebra import select_constant

        lien = lien_select(ps, "S#", "=", "s1")
        codd = select_true(ps, "S#", "=", "s1")
        ours = select_constant(ps, "S#", "=", "s1")
        assert set(lien.tuples()) == set(codd.tuples())
        assert set(lien.tuples()) == set(ours.representation.minimal().tuples()) | {
            t for t in lien.tuples()
        }

    def test_select_discards_nonexistent_values(self):
        r = Relation.from_rows(["A", "B"], [(1, "x"), (None, "y")])
        assert len(lien_select(r, "A", ">", 0)) == 1

    def test_join_ignores_null_join_values(self):
        left = Relation.from_rows(["A", "K"], [(1, "k1"), (2, None)], name="L")
        right = Relation.from_rows(["K", "B"], [("k1", 10), (None, 20)], name="R")
        joined = lien_join(left, right, ["K"])
        assert len(joined) == 1
        assert XTuple(A=1, K="k1", B=10) in joined.tuples()

    def test_join_agrees_with_core_equijoin(self, emp_db):
        from repro.core.algebra import join_on

        emp = emp_db["EMP"]
        left = Relation.from_rows(["MGR#", "TAG"], [(2235, "t1"), (9999, "t2")], name="L")
        lien = lien_join(left, emp, ["MGR#"])
        core = join_on(left, emp, ["MGR#"])
        assert {t.items() for t in lien.tuples()} == {t.items() for t in core.rows()}

    def test_project(self):
        r = Relation.from_rows(["A", "B"], [(1, "x"), (1, "y")])
        assert len(lien_project(r, ["A"])) == 1


class TestMultivaluedDependencies:
    def test_classical_satisfaction(self):
        r = Relation.from_rows(
            ["C", "T", "B"],
            [
                ("db", "smith", "b1"), ("db", "smith", "b2"),
                ("db", "jones", "b1"), ("db", "jones", "b2"),
            ],
            name="CTB",
        )
        assert MultivaluedDependency(["C"], ["T"]).holds_total(r)

    def test_classical_violation(self):
        r = Relation.from_rows(
            ["C", "T", "B"],
            [("db", "smith", "b1"), ("db", "jones", "b2")],
            name="CTB",
        )
        assert not MultivaluedDependency(["C"], ["T"]).holds_total(r)

    def test_null_mvd_uses_x_membership(self):
        """A less-informative witness suffices under the null semantics."""
        r = Relation.from_rows(
            ["C", "T", "B"],
            [("db", "smith", "b1"), ("db", "jones", "b2"),
             ("db", "smith", "b2"), ("db", "jones", None)],
            name="CTB",
        )
        mvd = MultivaluedDependency(["C"], ["T"])
        assert not mvd.holds_total(r)      # (db, jones, b1) is missing outright
        assert not mvd.holds_with_nulls(r) # ... and not even x-present

        richer = Relation.from_rows(
            ["C", "T", "B"],
            [("db", "smith", "b1"), ("db", "jones", "b2"),
             ("db", "smith", "b2"), ("db", "jones", "b1")],
            name="CTB",
        )
        assert mvd.holds_with_nulls(richer)

    def test_rows_with_null_determinant_do_not_constrain(self):
        r = Relation.from_rows(
            ["C", "T", "B"],
            [(None, "smith", "b1"), (None, "jones", "b2")],
            name="CTB",
        )
        assert MultivaluedDependency(["C"], ["T"]).holds_with_nulls(r)

    def test_check_raises_on_violation(self):
        r = Relation.from_rows(
            ["C", "T", "B"], [("db", "smith", "b1"), ("db", "jones", "b2")], name="CTB"
        )
        with pytest.raises(ConstraintViolation):
            MultivaluedDependency(["C"], ["T"]).check(r)

    def test_empty_determinant_rejected(self):
        with pytest.raises(ConstraintViolation):
            MultivaluedDependency([], ["A"])


class TestInferenceRules:
    UNIVERSE = ["C", "T", "B"]

    def test_complementation(self):
        mvd = MultivaluedDependency(["C"], ["T"])
        complement = complementation(mvd, self.UNIVERSE)
        assert set(complement.dependent) == {"B"}

    def test_dependency_basis_partitions_the_rest(self):
        basis = dependency_basis(["C"], self.UNIVERSE, [MultivaluedDependency(["C"], ["T"])])
        blocks = {frozenset(b) for b in basis}
        assert frozenset({"T"}) in blocks
        assert frozenset({"B"}) in blocks

    def test_implication_by_complementation(self):
        mvds = [MultivaluedDependency(["C"], ["T"])]
        assert mvd_implied(mvds, [], MultivaluedDependency(["C"], ["B"]), self.UNIVERSE)

    def test_reflexivity_implied(self):
        assert mvd_implied([], [], MultivaluedDependency(["C"], ["C"]), self.UNIVERSE)

    def test_fd_promotes_to_mvd(self):
        fds = [FunctionalDependency(["C"], ["T"])]
        assert mvd_implied([], fds, MultivaluedDependency(["C"], ["T"]), self.UNIVERSE)

    def test_non_implied_mvd(self):
        mvds = [MultivaluedDependency(["C"], ["T"])]
        assert not mvd_implied(mvds, [], MultivaluedDependency(["T"], ["B"]), self.UNIVERSE)
