"""Session lifecycle (PR 9 satellite): ``Session.close()`` + context
manager, idempotent, invalidating prepared handles and open lazy result
sets with :class:`SessionClosedError` instead of undefined behavior."""

import pytest

import repro
from repro.core.errors import SessionClosedError
from repro.obs import MetricsRegistry
from repro.storage import Database


@pytest.fixture
def db():
    database = Database("life", metrics=MetricsRegistry())
    table = database.create_table("T", ["A", "B"])
    table.insert_many([(i, i % 3) for i in range(40)])
    return database


class TestClose:
    def test_close_is_idempotent(self, db):
        session = repro.connect(db)
        session.close()
        session.close()
        assert session.closed

    def test_context_manager_closes(self, db):
        with repro.connect(db) as session:
            session.execute("range of t is T retrieve (t.A) where t.A = 1")
            assert not session.closed
        assert session.closed

    def test_statements_after_close_raise(self, db):
        session = repro.connect(db)
        session.close()
        with pytest.raises(SessionClosedError):
            session.execute("range of t is T retrieve (t.A)")
        with pytest.raises(SessionClosedError):
            session.prepare("range of t is T retrieve (t.A)")
        with pytest.raises(SessionClosedError):
            session.transaction()

    def test_prepared_handle_invalidated(self, db):
        session = repro.connect(db)
        prepared = session.prepare(
            "range of t is T retrieve (t.B) where t.A = $a"
        )
        assert prepared.execute({"a": 1}).rows
        session.close()
        with pytest.raises(SessionClosedError):
            prepared.execute({"a": 1})
        with pytest.raises(SessionClosedError):
            prepared.explain()

    def test_undrained_lazy_result_invalidated(self, db):
        session = repro.connect(db)
        result = session.execute("range of t is T retrieve (t.A, t.B)")
        iterator = iter(result)
        next(iterator)  # partially streamed
        session.close()
        with pytest.raises(SessionClosedError):
            result.rows
        with pytest.raises(SessionClosedError):
            list(iterator)

    def test_drained_result_survives_close(self, db):
        session = repro.connect(db)
        result = session.execute("range of t is T retrieve (t.A, t.B)")
        rows = result.rows  # fully drained and cached
        session.close()
        assert result.rows == rows  # the cached answer stays readable
        assert list(result)

    def test_close_rolls_back_open_transaction(self, db):
        session = repro.connect(db)
        session.transaction().begin()
        session.execute("append to T (A = 999, B = 0)")
        assert any(row["A"] == 999 for row in db.catalog.table("T").rows())
        session.close()
        assert not any(row["A"] == 999 for row in db.catalog.table("T").rows())
        assert not session.in_transaction

    def test_database_stays_usable_by_other_sessions(self, db):
        first = repro.connect(db)
        first.close()
        second = repro.connect(db)
        assert second.execute(
            "range of t is T retrieve (t.A) where t.A = 1"
        ).rows


class TestTransactionBegin:
    def test_begin_commit_without_with(self, db):
        session = repro.connect(db)
        transaction = session.transaction().begin()
        assert transaction.active and session.in_transaction
        session.execute("append to T (A = 500, B = 1)")
        transaction.commit()
        assert not session.in_transaction
        assert any(row["A"] == 500 for row in db.catalog.table("T").rows())

    def test_begin_rollback_without_with(self, db):
        session = repro.connect(db)
        transaction = session.transaction().begin()
        session.execute("append to T (A = 501, B = 1)")
        transaction.rollback()
        assert not any(row["A"] == 501 for row in db.catalog.table("T").rows())

    def test_double_begin_raises(self, db):
        session = repro.connect(db)
        transaction = session.transaction().begin()
        with pytest.raises(Exception):
            transaction.begin()
        transaction.rollback()


class TestExecutePrepared:
    def test_traces_and_tags(self, db):
        session = repro.connect(db)
        session.trace_tags = {"client": "c9", "request": "r1"}
        prepared = session.prepare(
            "range of t is T retrieve (t.B) where t.A = $a"
        )
        result = session.execute_prepared(prepared, {"a": 2})
        assert result.rows == [repro.XTuple(t_B=2)]
        trace = session.recent_traces()[-1]
        assert trace.tags == {"client": "c9", "request": "r1"}
        assert trace.kind == "retrieve"

    def test_rejects_foreign_prepared(self, db):
        mine = repro.connect(db)
        other = repro.connect(db)
        prepared = other.prepare("range of t is T retrieve (t.A)")
        with pytest.raises(Exception):
            mine.execute_prepared(prepared)

    def test_closed_session_raises(self, db):
        session = repro.connect(db)
        prepared = session.prepare("range of t is T retrieve (t.A)")
        session.close()
        with pytest.raises(SessionClosedError):
            session.execute_prepared(prepared)
