"""Unit and invariant tests for Optimizer v2's statistics layer.

Covers the equi-depth histograms (``repro.stats.histogram``): the
construction invariants (depths within one row of each other, sorted
bucket boundaries, full-domain range selectivity ≈ 1), the cost model's
data-driven range/``!=`` estimates on degenerate distributions (empty,
all-null, single-value), the bounded adaptive correction factor, and
the persistence of both through snapshot/restore and WAL checkpoint
recovery.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.tuples import XTuple
from repro.stats import (
    CORRECTION_BOUND,
    CostModel,
    DEFAULT_BUCKETS,
    EquiDepthHistogram,
    TableStatistics,
)
from repro.storage.database import Database


def rows(*specs):
    return [XTuple({a: v for a, v in spec.items() if v is not None}) for spec in specs]


counters = st.dictionaries(
    st.integers(min_value=-1000, max_value=1000),
    st.integers(min_value=1, max_value=50),
    min_size=1,
    max_size=60,
)


class TestHistogramInvariants:
    @given(counter=counters, buckets=st.integers(min_value=1, max_value=64))
    @settings(max_examples=200, derandomize=True)
    def test_depths_within_one_and_bounds_sorted(self, counter, buckets):
        histogram = EquiDepthHistogram.build(counter, buckets=buckets)
        assert histogram is not None
        total = sum(counter.values())
        depths = histogram.depths()
        # Every row lands in exactly one bucket.
        assert sum(depths) == total == histogram.total
        # Equi-depth: the deepest and shallowest bucket differ by <= 1.
        assert max(depths) - min(depths) <= 1
        # Boundaries are non-decreasing and end at the maximum.
        bounds = histogram.upper_bounds()
        assert list(bounds) == sorted(bounds)
        assert bounds[-1] == max(counter)
        assert histogram.minimum == min(counter)

    @given(counter=counters)
    @settings(max_examples=200, derandomize=True)
    def test_full_domain_range_selectivity_is_one(self, counter):
        histogram = EquiDepthHistogram.build(counter)
        low, high = min(counter), max(counter)
        assert histogram.selectivity(">=", low) == pytest.approx(1.0, abs=0.05)
        assert histogram.selectivity("<=", high) == pytest.approx(1.0)
        assert histogram.selectivity("<", low) == 0.0
        assert histogram.selectivity(">", high) == 0.0

    @given(
        counter=counters,
        op=st.sampled_from(["=", "!=", "<", "<=", ">", ">="]),
        value=st.integers(min_value=-1200, max_value=1200),
    )
    @settings(max_examples=300, derandomize=True)
    def test_selectivity_always_in_unit_interval(self, counter, op, value):
        histogram = EquiDepthHistogram.build(counter)
        fraction = histogram.selectivity(op, value)
        assert fraction is not None
        assert 0.0 <= fraction <= 1.0

    @given(counter=counters, value=st.integers(min_value=-1200, max_value=1200))
    @settings(max_examples=200, derandomize=True)
    def test_range_estimates_track_true_fractions(self, counter, value):
        """<= estimates stay within one bucket's depth of the truth."""
        histogram = EquiDepthHistogram.build(counter)
        total = sum(counter.values())
        truth = sum(m for v, m in counter.items() if v <= value) / total
        estimate = histogram.selectivity("<=", value)
        slack = (max(histogram.depths()) + 1) / total
        assert abs(estimate - truth) <= slack

    def test_skewed_duplicates_split_across_buckets(self):
        # One value holding 90% of the rows must not collapse the
        # histogram into a single giant bucket.
        counter = {0: 900}
        counter.update({i: 2 for i in range(1, 51)})
        histogram = EquiDepthHistogram.build(counter, buckets=10)
        depths = histogram.depths()
        assert len(depths) == 10
        assert max(depths) - min(depths) <= 1

    def test_unorderable_values_yield_no_histogram(self):
        assert EquiDepthHistogram.build({}) is None
        assert EquiDepthHistogram.build({1: 2, "x": 3}) is None

    def test_string_domain_uses_half_bucket_interpolation(self):
        histogram = EquiDepthHistogram.build(
            {chr(ord("a") + i): 1 for i in range(26)}, buckets=4
        )
        fraction = histogram.selectivity("<=", "m")
        assert 0.0 < fraction < 1.0
        assert histogram.selectivity("=", "zz") == 0.0


class TestCostModelDegenerateDistributions:
    model = CostModel()

    def test_empty_table_estimates_zero(self):
        stats = TableStatistics()
        for op in ("=", "!=", "<", "<=", ">", ">="):
            assert self.model.selection_selectivity(stats, "A", op, 5) == 0.0
            assert self.model.estimate_selection(stats, "A", op, value=5) == 0.0

    def test_all_null_attribute_estimates_zero(self):
        # Under the lower-bound discipline no comparison against an
        # all-null attribute is ever TRUE — including "!=" and ranges.
        stats = TableStatistics(rows({"A": None}, {"A": None}, {"A": None}))
        for op in ("=", "!=", "<", "<=", ">", ">="):
            selectivity = self.model.selection_selectivity(stats, "A", op, 5)
            assert selectivity == 0.0

    def test_single_value_attribute(self):
        stats = TableStatistics(rows(*({"A": 7} for _ in range(10))))
        hit = self.model.selection_selectivity(stats, "A", "=", 7)
        assert hit == pytest.approx(1.0)
        assert self.model.selection_selectivity(stats, "A", "!=", 7) == 0.0
        # All rows are exactly 7: the data-driven range estimates follow.
        assert self.model.selection_selectivity(stats, "A", "<", 7) == 0.0
        assert self.model.selection_selectivity(stats, "A", ">=", 7) == pytest.approx(1.0)
        assert self.model.selection_selectivity(stats, "A", ">", 7) == 0.0

    def test_estimates_clamped_to_unit_interval(self):
        mixed = rows(
            {"A": 1}, {"A": 1}, {"A": 1}, {"A": 2}, {"A": None}, {"A": None}
        )
        stats = TableStatistics(mixed)
        for op in ("=", "!=", "<", "<=", ">", ">="):
            for value in (-10, 1, 2, 99):
                fraction = self.model.selection_selectivity(stats, "A", op, value)
                assert 0.0 <= fraction <= 1.0

    def test_valueless_calls_keep_constant_fallbacks(self):
        stats = TableStatistics(rows(*({"A": i} for i in range(30))))
        assert self.model.selection_selectivity(stats, "A", "<") == pytest.approx(
            self.model.theta_selectivity
        )

    def test_stale_statistics_fall_back_to_constants(self):
        stats = TableStatistics(rows(*({"A": i} for i in range(30))))
        assert stats.histogram("A") is not None
        stats.staleness_threshold = 0
        stats.add_rows(rows({"A": 99}))
        assert stats.stale
        assert stats.histogram("A") is None
        assert self.model.selection_selectivity(
            stats, "A", "<", 5
        ) == pytest.approx((31 / 31) * self.model.theta_selectivity)


class TestAdaptiveCorrection:
    def test_correction_moves_toward_ratio_and_is_bounded(self):
        stats = TableStatistics(rows({"A": 1}))
        assert stats.correction == 1.0
        # Persistent 10x underestimates pull the correction up...
        for _ in range(20):
            stats.observe_estimate(actual=1000, estimated=100)
        assert 1.0 < stats.correction <= CORRECTION_BOUND
        # ...but never past the bound, in either direction.
        for _ in range(200):
            stats.observe_estimate(actual=1_000_000, estimated=1)
        assert stats.correction == CORRECTION_BOUND
        for _ in range(200):
            stats.observe_estimate(actual=0, estimated=1_000_000)
        assert stats.correction == pytest.approx(1.0 / CORRECTION_BOUND)

    def test_accurate_estimates_leave_correction_alone(self):
        stats = TableStatistics(rows({"A": 1}))
        for _ in range(50):
            stats.observe_estimate(actual=500, estimated=500)
        assert stats.correction == pytest.approx(1.0)

    def test_analyze_and_clear_reset_correction(self):
        stats = TableStatistics(rows({"A": 1}, {"A": 2}))
        stats.observe_estimate(actual=1000, estimated=1)
        assert stats.correction > 1.0
        stats.analyze(rows({"A": 1}, {"A": 2}))
        assert stats.correction == 1.0
        stats.observe_estimate(actual=1000, estimated=1)
        stats.clear()
        assert stats.correction == 1.0


class TestPersistenceRoundTrips:
    def make_database(self, name="histdb"):
        database = Database(name)
        table = database.create_table("T", ["A", "B"])
        table.insert_many(
            [(i % 50, i) for i in range(400)] + [(None, 1000), (None, 1001)]
        )
        database.analyze()
        return database

    def test_snapshot_restore_preserves_histograms_and_correction(self):
        database = self.make_database()
        table = database.catalog.table("T")
        table.statistics.observe_estimate(actual=900, estimated=100)
        before_histogram = table.statistics.histogram("A")
        before_correction = table.statistics.correction
        assert before_histogram is not None
        snapshot = database.snapshot()
        table.insert_many([(999, 999)] * 5)
        database.restore(snapshot)
        restored = database.catalog.table("T").statistics
        assert restored.histogram("A") == before_histogram
        assert restored.correction == pytest.approx(before_correction)

    def test_statistics_copy_round_trips_histograms(self):
        stats = TableStatistics(rows(*({"A": i % 9, "B": i} for i in range(100))))
        stats.observe_estimate(actual=50, estimated=5)
        dup = stats.copy()
        assert dup.histogram("A") == stats.histogram("A")
        assert dup.histogram("B") == stats.histogram("B")
        assert dup.correction == stats.correction
        # The copy is independent: re-analyzing it leaves the original.
        dup.analyze(rows({"A": 1}))
        assert dup.correction == 1.0
        assert stats.correction != 1.0
        assert stats.histogram("A") is not None

    def test_checkpoint_recovery_preserves_histograms_and_correction(self, tmp_path):
        directory = os.fspath(tmp_path / "wal")
        database = Database.open(directory, name="histwal")
        table = database.create_table("T", ["A", "B"])
        table.insert_many([(i % 25, i) for i in range(300)])
        database.analyze()
        table.statistics.observe_estimate(actual=600, estimated=60)
        expected_histogram = table.statistics.histogram("A")
        expected_correction = table.statistics.correction
        assert expected_histogram is not None
        assert database.checkpoint() is True
        database.close()

        recovered = Database.open(directory, name="recovered")
        try:
            stats = recovered.catalog.table("T").statistics
            assert stats.histogram("A") == expected_histogram
            assert stats.histogram("B") is not None
            assert stats.correction == pytest.approx(expected_correction)
            # And the cost model actually consults the recovered data.
            model = CostModel()
            fraction = model.selection_selectivity(stats, "A", "<", 5)
            assert fraction == pytest.approx(5 / 25, rel=0.3)
        finally:
            recovered.close()

    def test_default_bucket_count_is_bounded_by_rows(self):
        stats = TableStatistics(rows({"A": 1}, {"A": 2}, {"A": 3}))
        histogram = stats.histogram("A")
        assert histogram is not None
        assert len(histogram.buckets) == 3 <= DEFAULT_BUCKETS
