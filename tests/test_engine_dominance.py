"""Unit tests for the dominance/containment engine (repro.core.engine)."""

import pytest

from repro import Relation, XTuple
from repro.core.engine import DominanceIndex, bulk_reduce, equi_join_rows, pair_candidates
from repro.core.minimal import reduce_rows_naive


def T(**kwargs):
    return XTuple(kwargs)


class TestDominanceIndexProbes:
    def test_probe_dominators_signature_superset(self):
        index = DominanceIndex([T(A=1, B=2), T(A=1), T(A=2, B=2), T(B=2, C=3)])
        dominators = index.probe_dominators(T(A=1))
        assert set(dominators) == {T(A=1), T(A=1, B=2)}

    def test_probe_dominators_strict_excludes_self(self):
        index = DominanceIndex([T(A=1, B=2), T(A=1)])
        assert set(index.probe_dominators(T(A=1), strict=True)) == {T(A=1, B=2)}

    def test_probe_dominators_requires_agreement(self):
        index = DominanceIndex([T(A=2, B=2)])
        assert index.probe_dominators(T(A=1)) == []

    def test_null_tuple_dominated_by_everything(self):
        rows = [T(A=1), T(B=2, C=3)]
        index = DominanceIndex(rows)
        assert set(index.probe_dominators(T())) == set(rows)

    def test_probe_dominated(self):
        index = DominanceIndex([T(A=1), T(B=2), T(A=1, B=2), T(A=3), T()])
        dominated = index.probe_dominated(T(A=1, B=2))
        assert set(dominated) == {T(A=1), T(B=2), T(A=1, B=2), T()}

    def test_probe_dominated_strict(self):
        index = DominanceIndex([T(A=1), T(A=1, B=2)])
        assert set(index.probe_dominated(T(A=1, B=2), strict=True)) == {T(A=1)}

    def test_has_dominator_matches_probe(self):
        rows = [T(A=1, B=2), T(B=2, C=1), T(A=2)]
        index = DominanceIndex(rows)
        for probe in [T(A=1), T(B=2), T(C=9), T(A=2), T(A=1, B=2, C=3)]:
            assert index.has_dominator(probe) == bool(index.probe_dominators(probe))

    def test_probes_agree_with_definition(self):
        rows = [T(A=1, B=2), T(A=1), T(B=2), T(A=2, C=3), T()]
        index = DominanceIndex(rows)
        probes = rows + [T(A=1, B=2, C=3), T(C=3), T(B=9)]
        for probe in probes:
            expected_dominators = {r for r in rows if r.more_informative_than(probe)}
            expected_dominated = {r for r in rows if probe.more_informative_than(r)}
            assert set(index.probe_dominators(probe)) == expected_dominators
            assert set(index.probe_dominated(probe)) == expected_dominated


class TestDominanceIndexMutation:
    def test_add_then_discard_roundtrip(self):
        index = DominanceIndex()
        row = T(A=1, B=2)
        index.add(row)
        assert len(index) == 1 and row in index
        assert index.discard(row)
        assert len(index) == 0 and row not in index
        assert not index.discard(row)

    def test_add_is_idempotent(self):
        index = DominanceIndex()
        index.add(T(A=1))
        index.add(T(A=1))
        assert len(index) == 1

    def test_mutation_invalidates_probe_caches(self):
        index = DominanceIndex([T(A=1)])
        assert not index.has_dominator(T(A=1), strict=True)
        index.add(T(A=1, B=2))  # arrives after the first probe built its caches
        assert index.has_dominator(T(A=1), strict=True)
        index.discard(T(A=1, B=2))
        assert not index.has_dominator(T(A=1), strict=True)

    def test_rebuild_and_clear(self):
        index = DominanceIndex([T(A=1)])
        index.rebuild([T(B=2), T(B=3)])
        assert len(index) == 2 and T(A=1) not in index
        index.clear()
        assert len(index) == 0


class TestBulkReduce:
    def test_matches_naive_on_mixed_rows(self):
        rows = [T(A=1, B=2), T(A=1), T(B=2), T(A=2), T(), T(A=1, B=2, C=3)]
        assert set(bulk_reduce(rows)) == set(reduce_rows_naive(rows))

    def test_drops_null_tuple(self):
        assert bulk_reduce([T()]) == []

    def test_empty(self):
        assert bulk_reduce([]) == []

    def test_single_signature_is_identity(self):
        rows = [T(A=1, B=1), T(A=2, B=2), T(A=3, B=1)]
        assert set(bulk_reduce(rows)) == set(rows)

    def test_wide_tuples_no_longer_special(self):
        attrs = [f"X{i}" for i in range(20)]
        wide = XTuple({a: 1 for a in attrs})
        narrow = XTuple({attrs[0]: 1})
        assert set(bulk_reduce([wide, narrow])) == {wide}


class TestPairCandidates:
    def test_yields_exactly_agreeing_pairs(self):
        left = [T(A=1, B=2), T(A=3)]
        right = [T(A=1, C=4), T(B=2), T(A=9)]
        pairs = set(pair_candidates(left, right))
        expected = {
            (l, r)
            for l in left
            for r in right
            if not l.meet(r).is_null_tuple()
        }
        assert pairs == expected

    def test_pairs_not_repeated_on_multi_agreement(self):
        left = [T(A=1, B=2)]
        right = [T(A=1, B=2, C=3)]
        assert list(pair_candidates(left, right)) == [(left[0], right[0])]

    def test_empty_sides(self):
        assert list(pair_candidates([], [T(A=1)])) == []
        assert list(pair_candidates([T(A=1)], [])) == []


class TestEquiJoinRows:
    def test_joins_equal_nonnull_values_only(self):
        left = [T(**{"l.A": 1}), T(**{"l.A": 2}), T(**{"l.B": 7})]  # last is null on l.A
        right = [T(**{"r.A": 1}), T(**{"r.A": 1, "r.B": 5}), T(**{"r.C": 9})]
        joined = equi_join_rows(left, right, "l.A", "r.A")
        assert set(joined) == {
            T(**{"l.A": 1, "r.A": 1}),
            T(**{"l.A": 1, "r.A": 1, "r.B": 5}),
        }

    def test_no_matches(self):
        assert equi_join_rows([T(**{"l.A": 1})], [T(**{"r.A": 2})], "l.A", "r.A") == []


class TestEngineBackedRelationOps:
    def test_subsumes_uses_index_and_agrees(self):
        big = Relation.from_rows(["A", "B"], [(1, 2), (3, 4), (5, None)], name="big")
        small = Relation.from_rows(["A", "B"], [(1, None), (None, 4)], name="small")
        assert big.subsumes(small)
        assert not small.subsumes(big)

    def test_x_contains_after_subsumes_probe_path(self):
        r = Relation.from_rows(["A", "B"], [(1, 2), (3, None)])
        r.subsumes(r)  # builds the cached index
        assert r.x_contains(XTuple(A=1))
        assert not r.x_contains(XTuple(A=9))
        r.add((9, 9))  # mutation invalidates the cache
        assert r.x_contains(XTuple(A=9))

    def test_is_minimal_via_engine(self):
        assert Relation.from_rows(["A", "B"], [(1, 2), (3, 4)]).is_minimal()
        assert not Relation.from_rows(["A", "B"], [(1, 2), (1, None)]).is_minimal()
        assert not Relation.from_rows(["A", "B"], [(None, None)]).is_minimal()
