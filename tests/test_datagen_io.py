"""Unit tests for the data generators and the CSV/JSON round-trips."""

import io

import pytest

from repro import NI, Relation, XRelation, XTuple
from repro.datagen import (
    RelationGenerator,
    containment_pair,
    employee_relation,
    null_rate_sweep,
    parts_suppliers_relation,
    random_partial_relation,
    scaled_employee_database,
    scaled_parts_suppliers_database,
)
from repro.io import (
    from_csv_text,
    read_csv,
    relation_from_dict,
    relation_to_dict,
    to_csv_text,
    write_csv,
    write_json,
    read_json,
    database_to_dict,
    database_from_dict,
)


class TestGenerators:
    def test_relation_generator_respects_schema(self):
        generator = RelationGenerator(["A", "B"], {"A": [1, 2, 3], "B": ["x", "y"]}, seed=1)
        relation = generator.relation(20)
        assert set(relation.schema.attributes) == {"A", "B"}
        for row in relation.tuples():
            assert row["A"] in (1, 2, 3, NI)

    def test_relation_generator_is_deterministic(self):
        a = RelationGenerator(["A"], {"A": list(range(10))}, seed=5).relation(30)
        b = RelationGenerator(["A"], {"A": list(range(10))}, seed=5).relation(30)
        assert set(a.tuples()) == set(b.tuples())

    def test_missing_domain_rejected(self):
        with pytest.raises(KeyError):
            RelationGenerator(["A", "B"], {"A": [1]})

    def test_null_rate_controls_density(self):
        dense = random_partial_relation(["A", "B"], 5, 200, null_rate=0.0, seed=2)
        sparse = random_partial_relation(["A", "B"], 5, 200, null_rate=0.7, seed=2)
        assert dense.null_fraction() == 0.0
        # Duplicate null-heavy rows collapse (relations are sets), so compare
        # against the dense relation rather than the nominal rate.
        assert sparse.null_fraction() > dense.null_fraction()
        assert sparse.null_fraction() > 0.15

    def test_employee_relation_shape(self):
        emp = employee_relation(25, null_rate=0.4, seed=3)
        assert set(emp.schema.attributes) == {"E#", "NAME", "SEX", "MGR#", "TEL#"}
        assert len(emp) == 25
        assert all(row["E#"] is not NI for row in emp.tuples())

    def test_parts_suppliers_relation(self):
        ps = parts_suppliers_relation(4, 6, 50, null_rate=0.3, seed=1)
        assert set(ps.schema.attributes) == {"S#", "P#"}
        assert 0 < len(ps) <= 50

    def test_containment_pair_preserves_containment(self):
        smaller, larger = containment_pair(10, 5, seed=4)
        assert XRelation(larger) >= XRelation(smaller)

    def test_scaled_databases(self):
        emp_db = scaled_employee_database(15, 0.2, seed=1)
        ps_db = scaled_parts_suppliers_database(3, 4, 20, 0.2, seed=1)
        assert len(emp_db["EMP"]) == 15
        assert len(ps_db["PS"]) > 0

    def test_null_rate_sweep_keys(self):
        sweep = null_rate_sweep(rates=(0.0, 0.5), size=10)
        assert set(sweep) == {0.0, 0.5}


class TestCSV:
    def test_round_trip_preserves_information(self, emp_table_two):
        text = to_csv_text(emp_table_two)
        back = from_csv_text(text, name="EMP")
        assert XRelation(back) == XRelation(emp_table_two)

    def test_null_marker_is_dash(self, emp_table_two):
        assert ",-" in to_csv_text(emp_table_two).replace("\r", "")

    def test_numeric_columns_restored_as_ints(self, emp_table_two):
        back = from_csv_text(to_csv_text(emp_table_two))
        assert any(isinstance(row["E#"], int) for row in back.tuples())

    def test_explicit_type_parsers(self):
        text = "A,B\n01,x\n-,y\n"
        relation = from_csv_text(text, types={"A": str})
        values = {row["A"] for row in relation.tuples()}
        assert "01" in values  # kept as string, not parsed to 1

    def test_empty_cell_reads_as_null(self):
        relation = from_csv_text("A,B\n1,\n")
        row = next(iter(relation.tuples()))
        assert row["B"] is NI

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            from_csv_text("")

    def test_file_round_trip(self, tmp_path, emp_table_two):
        path = str(tmp_path / "emp.csv")
        write_csv(emp_table_two, path)
        assert XRelation(read_csv(path, name="EMP")) == XRelation(emp_table_two)


class TestJSON:
    def test_round_trip(self, ps):
        payload = relation_to_dict(ps)
        back = relation_from_dict(payload)
        assert XRelation(back) == XRelation(ps)
        assert back.schema.attributes == ps.schema.attributes

    def test_null_attributes_omitted_from_rows(self, emp_table_two):
        payload = relation_to_dict(emp_table_two)
        assert all("TEL#" not in row for row in payload["rows"])

    def test_malformed_payload_rejected(self):
        with pytest.raises(ValueError):
            relation_from_dict({"rows": []})
        with pytest.raises(ValueError):
            relation_from_dict({"attributes": ["A"], "rows": [{"Z": 1}]})

    def test_file_round_trip(self, tmp_path, ps):
        path = str(tmp_path / "ps.json")
        write_json(ps, path)
        assert XRelation(read_json(path)) == XRelation(ps)

    def test_database_round_trip(self, emp_db):
        payload = database_to_dict(emp_db)
        rebuilt = database_from_dict(payload)
        assert set(rebuilt) == set(emp_db)
        assert XRelation(rebuilt["EMP"]) == XRelation(emp_db["EMP"])


class TestAtomicImports:
    """The ``*_into`` importers: atomic bulk loads into live tables.

    A malformed row or a constraint violation anywhere in the file must
    leave the target table exactly as it was — the import routes through
    ``Table.load`` / ``Database.insert_many``, never a row-at-a-time
    loop that could strand a prefix.
    """

    @staticmethod
    def _keyed_database():
        from repro.constraints.keys import KeyConstraint
        from repro.storage import Database

        database = Database("imports")
        table = database.create_table(
            "R", ["K", "V"], constraints=[KeyConstraint(["K"])]
        )
        table.insert_many([(1, "a"), (2, "b")])
        return database

    def test_csv_import_appends_atomically(self):
        from repro.io import read_csv_into

        database = self._keyed_database()
        count = read_csv_into(database, "R", io.StringIO("K,V\n3,c\n4,-\n"))
        assert count == 2
        assert XTuple({"K": 4}) in database["R"].tuples()

    def test_csv_import_key_violation_leaves_table_untouched(self):
        from repro.core.errors import ConstraintViolation
        from repro.io import read_csv_into

        database = self._keyed_database()
        before = set(database["R"].tuples())
        with pytest.raises(ConstraintViolation):
            # Row 3 is fine, row 1 collides with the stored key — without
            # the atomic path row 3 would be stranded.
            read_csv_into(database, "R", io.StringIO("K,V\n3,c\n1,dup\n"))
        assert database["R"].tuples() == before

    def test_csv_import_unknown_column_leaves_table_untouched(self):
        from repro.core.errors import SchemaError
        from repro.io import read_csv_into

        database = self._keyed_database()
        before = set(database["R"].tuples())
        with pytest.raises(SchemaError):
            read_csv_into(database, "R", io.StringIO("K,Z\n3,c\n"))
        assert database["R"].tuples() == before

    def test_csv_import_replace_swaps_wholesale(self):
        from repro.io import read_csv_into

        database = self._keyed_database()
        read_csv_into(database, "R", io.StringIO("K,V\n7,z\n"), replace=True)
        assert {t["K"] for t in database["R"].tuples()} == {7}

    def test_csv_import_respects_foreign_keys(self):
        from repro.constraints.referential import ForeignKeyConstraint
        from repro.core.errors import ReferentialViolation
        from repro.io import read_csv_into

        database = self._keyed_database()
        database.create_table("S", ["K2"])
        database.add_foreign_key(
            "S", ForeignKeyConstraint(["K2"], "R", ["K"])
        )
        before = set(database["S"].tuples())
        with pytest.raises(ReferentialViolation):
            read_csv_into(database, "S", io.StringIO("K2\n1\n99\n"))
        assert database["S"].tuples() == before

    def test_json_import_appends_atomically(self):
        from repro.io import read_json_into

        database = self._keyed_database()
        payload = io.StringIO('{"rows": [{"K": 3, "V": "c"}, {"K": 4}]}')
        assert read_json_into(database, "R", payload) == 2
        assert XTuple({"K": 4}) in database["R"].tuples()

    def test_json_import_violation_leaves_table_untouched(self):
        from repro.core.errors import ConstraintViolation
        from repro.io import read_json_into

        database = self._keyed_database()
        before = set(database["R"].tuples())
        payload = io.StringIO('{"rows": [{"K": 3}, {"K": 1}]}')
        with pytest.raises(ConstraintViolation):
            read_json_into(database, "R", payload)
        assert database["R"].tuples() == before

    def test_json_import_unknown_attribute_rejected_up_front(self):
        from repro.io import read_json_into

        database = self._keyed_database()
        before = set(database["R"].tuples())
        payload = io.StringIO('{"rows": [{"K": 3}, {"Z": 9}]}')
        with pytest.raises(ValueError):
            read_json_into(database, "R", payload)
        assert database["R"].tuples() == before
