"""Unit tests for x-relations (repro.core.xrelation)."""

import pytest

from repro import NI, Relation, XRelation, XTuple, as_xrelation


@pytest.fixture
def xr1(ps1):
    return XRelation(ps1)


@pytest.fixture
def xr2(ps2):
    return XRelation(ps2)


class TestConstruction:
    def test_representation_is_minimal(self):
        x = XRelation.from_rows(["A", "B"], [(1, 2), (1, None), (None, None)])
        assert len(x) == 1
        assert x.representation.is_minimal()

    def test_from_rows_and_empty(self):
        assert len(XRelation.empty()) == 0
        assert XRelation.empty().is_empty()

    def test_as_xrelation_coercion(self, ps1):
        assert isinstance(as_xrelation(ps1), XRelation)
        x = XRelation(ps1)
        assert as_xrelation(x) is x

    def test_scope(self, emp_table_two):
        x = XRelation(emp_table_two)
        assert "TEL#" not in x.scope()

    def test_is_total(self, emp_table_one, ps1):
        assert XRelation(emp_table_one).is_total()
        assert not XRelation(ps1).is_total()


class TestEqualityAndContainment:
    def test_equality_is_information_wise(self, emp_table_one, emp_table_two):
        assert XRelation(emp_table_one) == XRelation(emp_table_two)
        assert hash(XRelation(emp_table_one)) == hash(XRelation(emp_table_two))

    def test_proposition_4_1(self, xr1, xr2):
        """Equality iff mutual containment."""
        assert (xr1 == xr2) == (xr1 >= xr2 and xr2 >= xr1)

    def test_paper_containment(self, xr1, xr2):
        """PS'' ⊒ PS' holds as plain fact for x-relations (not MAYBE)."""
        assert xr2 >= xr1
        assert xr2 > xr1
        assert not (xr1 >= xr2)
        assert xr1 < xr2

    def test_self_equality_is_true(self, xr1):
        assert xr1 == xr1
        assert xr1 >= xr1 and xr1 <= xr1

    def test_x_membership(self, xr1):
        assert XTuple({"S#": "s2"}) in xr1
        assert xr1.x_contains({"P#": "p1"})
        assert XTuple({"P#": "p9"}) not in xr1

    def test_ordering_with_non_xrelation_is_not_implemented(self, xr1):
        with pytest.raises(TypeError):
            _ = xr1 >= 42


class TestSetOperators:
    def test_union_upper_bound(self, xr1, xr2):
        u = xr1 | xr2
        assert u >= xr1 and u >= xr2
        assert u == xr2  # since xr2 already contains xr1

    def test_union_and_intersection_satisfy_user_expectations(self, xr1, xr2):
        """The Section 1 complaints, resolved: these now hold outright."""
        assert (xr1 | xr2) >= xr1
        assert (xr1 & xr2) <= xr1

    def test_intersection_lower_bound(self, xr1, xr2):
        i = xr1 & xr2
        assert xr1 >= i and xr2 >= i
        assert i == xr1

    def test_difference_then_union_restores(self, xr1, xr2):
        """Proposition 4.6 on the paper's pair."""
        assert ((xr2 - xr1) | xr1) == xr2

    def test_difference_of_self_is_empty(self, xr1):
        assert (xr1 - xr1).is_empty()

    def test_operators_match_named_methods(self, xr1, xr2):
        assert (xr1 | xr2) == xr1.union(xr2)
        assert (xr1 & xr2) == xr1.x_intersection(xr2)
        assert (xr2 - xr1) == xr2.difference(xr1)


class TestAlgebraShortcuts:
    def test_select_project_shortcuts(self, ps):
        x = XRelation(ps)
        s2_parts = x.select_const("S#", "=", "s2").project(["P#"])
        assert {t["P#"] for t in s2_parts.rows()} == {"p1"}

    def test_divide_shortcut_matches_paper(self, ps):
        x = XRelation(ps)
        divisor = x.select_const("S#", "=", "s2").project(["P#"])
        quotient = x.divide(divisor, ["S#"])
        assert {t["S#"] for t in quotient.rows()} == {"s1", "s2"}

    def test_join_and_union_join_shortcuts(self):
        left = XRelation.from_rows(["A", "B"], [(1, "x"), (2, "y")], name="L")
        right = XRelation.from_rows(["B", "C"], [("x", 10)], name="R")
        joined = left.join(right, on=["B"])
        assert XTuple(A=1, B="x", C=10) in joined
        outer = left.union_join(right, on=["B"])
        assert XTuple(A=2, B="y") in outer

    def test_image_shortcut(self, ps):
        x = XRelation(ps)
        image = x.image({"S#": "s1"}, ["S#"], ["P#"])
        assert {t["P#"] for t in image.rows()} == {"p1", "p2"}

    def test_to_table_renders(self, xr1):
        assert "P#" in xr1.to_table()
