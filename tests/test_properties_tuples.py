"""Property-based tests (hypothesis) for the tuple information lattice."""

from hypothesis import given, settings, strategies as st

from repro import NI, XTuple
from repro.core.ordering import maximal_tuples
from repro.core.minimal import is_minimal_rows, reduce_rows_hashed, reduce_rows_naive


ATTRIBUTES = ("A", "B", "C", "D")
VALUES = st.one_of(st.none(), st.integers(min_value=0, max_value=3))


@st.composite
def xtuples(draw):
    data = {}
    for attribute in ATTRIBUTES:
        value = draw(VALUES)
        if value is not None:
            data[attribute] = value
    return XTuple(data)


tuple_lists = st.lists(xtuples(), max_size=12)


class TestOrderingProperties:
    @given(xtuples())
    def test_reflexive(self, t):
        assert t.more_informative_than(t)

    @given(xtuples(), xtuples())
    def test_antisymmetric_up_to_equivalence(self, r, t):
        if r.more_informative_than(t) and t.more_informative_than(r):
            assert r == t

    @given(xtuples(), xtuples(), xtuples())
    def test_transitive(self, a, b, c):
        if a.more_informative_than(b) and b.more_informative_than(c):
            assert a.more_informative_than(c)

    @given(xtuples())
    def test_null_tuple_is_global_lower_bound(self, t):
        assert t.more_informative_than(XTuple())

    @given(xtuples(), xtuples())
    def test_projection_is_monotone(self, r, t):
        if r.more_informative_than(t):
            assert r.project(["A", "B"]).more_informative_than(t.project(["A", "B"]))


class TestMeetProperties:
    @given(xtuples(), xtuples())
    def test_meet_commutative(self, r, t):
        assert r.meet(t) == t.meet(r)

    @given(xtuples(), xtuples(), xtuples())
    def test_meet_associative(self, a, b, c):
        assert a.meet(b).meet(c) == a.meet(b.meet(c))

    @given(xtuples())
    def test_meet_idempotent(self, t):
        assert t.meet(t) == t

    @given(xtuples(), xtuples())
    def test_meet_is_greatest_lower_bound(self, r, t):
        m = r.meet(t)
        assert r.more_informative_than(m)
        assert t.more_informative_than(m)

    @given(xtuples(), xtuples(), xtuples())
    def test_meet_is_greatest_among_lower_bounds(self, r, t, candidate):
        if r.more_informative_than(candidate) and t.more_informative_than(candidate):
            assert r.meet(t).more_informative_than(candidate)


class TestJoinProperties:
    @given(xtuples(), xtuples())
    def test_join_symmetric_when_defined(self, r, t):
        assert r.joinable_with(t) == t.joinable_with(r)
        if r.joinable_with(t):
            assert r.join(t) == t.join(r)

    @given(xtuples(), xtuples())
    def test_join_is_least_upper_bound(self, r, t):
        if r.joinable_with(t):
            j = r.join(t)
            assert j.more_informative_than(r)
            assert j.more_informative_than(t)

    @given(xtuples(), xtuples(), xtuples())
    def test_join_is_least_among_upper_bounds(self, r, t, upper):
        if upper.more_informative_than(r) and upper.more_informative_than(t):
            assert r.joinable_with(t)
            assert upper.more_informative_than(r.join(t))

    @given(xtuples(), xtuples())
    def test_absorption(self, r, t):
        assert r.meet(r.join(t)) == r if r.joinable_with(t) else True
        assert r.join(r.meet(t)) == r

    @given(xtuples())
    def test_join_with_null_tuple_is_identity(self, t):
        assert t.join(XTuple()) == t


class TestReductionProperties:
    @given(tuple_lists)
    @settings(max_examples=60)
    def test_naive_and_hashed_reduction_agree(self, rows):
        assert set(reduce_rows_naive(rows)) == set(reduce_rows_hashed(rows))

    @given(tuple_lists)
    @settings(max_examples=60)
    def test_reduction_yields_minimal_antichain(self, rows):
        reduced = reduce_rows_naive(rows)
        assert is_minimal_rows(reduced)

    @given(tuple_lists)
    @settings(max_examples=60)
    def test_reduction_preserves_x_membership_both_ways(self, rows):
        reduced = reduce_rows_naive(rows)
        for row in rows:
            if not row.is_null_tuple():
                assert any(r.more_informative_than(row) for r in reduced)
        for row in reduced:
            assert any(r.more_informative_than(row) for r in rows)

    @given(tuple_lists)
    @settings(max_examples=60)
    def test_reduction_equals_maximal_elements(self, rows):
        reduced = set(reduce_rows_naive(rows))
        maxima = {t for t in maximal_tuples(rows) if not t.is_null_tuple()}
        assert reduced == maxima
