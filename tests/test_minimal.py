"""Unit tests for minimal-form reduction (repro.core.minimal)."""

import random

import pytest

from repro import NI, XTuple
from repro.core.minimal import (
    is_minimal_rows,
    reduce_rows,
    reduce_rows_hashed,
    reduce_rows_naive,
)


def _random_rows(count, attributes=("A", "B", "C"), domain=3, null_rate=0.4, seed=0):
    rng = random.Random(seed)
    rows = []
    for _ in range(count):
        data = {}
        for attribute in attributes:
            if rng.random() < null_rate:
                continue
            data[attribute] = rng.randrange(domain)
        rows.append(XTuple(data))
    return rows


class TestNaiveReduction:
    def test_removes_null_tuple(self):
        rows = [XTuple(), XTuple(A=1)]
        assert reduce_rows_naive(rows) == [XTuple(A=1)]

    def test_removes_subsumed(self):
        rows = [XTuple(A=1), XTuple(A=1, B=2)]
        assert reduce_rows_naive(rows) == [XTuple(A=1, B=2)]

    def test_keeps_incomparable(self):
        rows = [XTuple(A=1), XTuple(B=2)]
        assert set(reduce_rows_naive(rows)) == set(rows)

    def test_empty_input(self):
        assert reduce_rows_naive([]) == []

    def test_only_null_tuples(self):
        assert reduce_rows_naive([XTuple(), XTuple()]) == []

    def test_duplicates_collapse(self):
        assert reduce_rows_naive([XTuple(A=1), XTuple(A=1)]) == [XTuple(A=1)]

    def test_result_is_antichain(self):
        rows = _random_rows(40)
        assert is_minimal_rows(reduce_rows_naive(rows))


class TestHashedReduction:
    def test_agrees_with_naive_on_random_inputs(self):
        for seed in range(6):
            rows = _random_rows(60, seed=seed)
            assert set(reduce_rows_hashed(rows)) == set(reduce_rows_naive(rows))

    def test_agrees_with_naive_with_high_null_rate(self):
        rows = _random_rows(80, null_rate=0.8, seed=11)
        assert set(reduce_rows_hashed(rows)) == set(reduce_rows_naive(rows))

    def test_wide_tuples_fall_back(self):
        wide = XTuple({f"A{i}": i for i in range(20)})
        narrow = XTuple({"A0": 0})
        result = reduce_rows_hashed([wide, narrow])
        assert result == [wide] or set(result) == {wide}

    def test_empty_input(self):
        assert reduce_rows_hashed([]) == []


class TestDispatcher:
    def test_small_and_large_inputs(self):
        small = _random_rows(10, seed=3)
        large = _random_rows(200, seed=4)
        assert set(reduce_rows(small)) == set(reduce_rows_naive(small))
        assert set(reduce_rows(large)) == set(reduce_rows_naive(large))

    def test_accepts_generators(self):
        rows = (XTuple(A=i % 2) for i in range(10))
        assert set(reduce_rows(rows)) == {XTuple(A=0), XTuple(A=1)}


class TestIsMinimalRows:
    def test_true_for_antichain(self):
        assert is_minimal_rows([XTuple(A=1), XTuple(B=2)])

    def test_false_with_null_tuple(self):
        assert not is_minimal_rows([XTuple(), XTuple(A=1)])

    def test_false_with_subsumed_row(self):
        assert not is_minimal_rows([XTuple(A=1), XTuple(A=1, B=2)])

    def test_true_for_empty(self):
        assert is_minimal_rows([])


class TestIdempotenceAndEquivalence:
    def test_reduction_is_idempotent(self):
        rows = _random_rows(50, seed=9)
        once = reduce_rows_naive(rows)
        twice = reduce_rows_naive(once)
        assert set(once) == set(twice)

    def test_reduction_preserves_x_membership(self):
        """Every original row must still be x-contained after reduction."""
        rows = _random_rows(40, seed=2)
        reduced = reduce_rows_naive(rows)
        for row in rows:
            if row.is_null_tuple():
                continue
            assert any(r.more_informative_than(row) for r in reduced)
