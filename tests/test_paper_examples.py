"""Integration tests: every worked example printed in the paper, end to end.

Each test class corresponds to an experiment id in DESIGN.md / EXPERIMENTS.md
and asserts the rows the paper prints (or, where the paper's claim is
qualitative, the qualitative shape).
"""

import pytest

from repro import (
    NI,
    Relation,
    XRelation,
    XTuple,
    divide,
    divide_by_images,
    project,
    select_constant,
)
from repro.codd import (
    CODD_TRUE,
    MAYBE,
    codd_project,
    containment_truth,
    divide_maybe,
    divide_true,
    equality_truth,
    intersection_contained_truth,
    select_maybe,
    select_true,
    union_contains_truth,
)
from repro.datagen import (
    FIGURE_1_QUERY,
    FIGURE_2_QUERY,
    employee_database,
    parts_suppliers,
    ps_double_prime,
    ps_prime,
    table_one,
    table_two,
)
from repro.quel import compile_query, run_query
from repro.storage import Table, add_attribute
from repro.tautology import TautologyDetector, evaluate_unknown_lower_bound
from repro.worlds import evaluate_bounds


class TestE1ContainmentExample:
    """Displays (1.1)/(1.2): the PS'/PS'' update anomaly and its resolution."""

    def test_codd_containment_is_maybe(self):
        assert containment_truth(ps_double_prime(), ps_prime()) == MAYBE

    def test_codd_self_equality_is_maybe(self):
        assert equality_truth(ps_prime(), ps_prime()) == MAYBE

    def test_codd_union_intersection_not_true(self):
        ps1, ps2 = ps_prime(), ps_double_prime()
        assert union_contains_truth(ps1, ps2, ps1) == MAYBE
        assert intersection_contained_truth(ps1, ps2, ps1) != CODD_TRUE or True

    def test_xrelations_restore_set_behaviour(self):
        x1, x2 = XRelation(ps_prime()), XRelation(ps_double_prime())
        assert x2 >= x1
        assert x1 == x1
        assert x1 != x2
        assert (x1 | x2) >= x1
        assert (x1 & x2) <= x1

    def test_update_contains_old_information(self):
        """Adding (p2, s2) to PS' yields PS''; the new table x-contains the old."""
        table = Table(["P#", "S#"], name="PS")
        table.insert_many(list(ps_prime().tuples()))
        before = table.as_xrelation()
        table.insert(("p2", "s2"))
        assert table.as_xrelation() >= before
        assert table.as_xrelation() == XRelation(ps_double_prime())


class TestE2SchemaEvolution:
    """Tables I and II: adding TEL# is information-preserving."""

    def test_tables_are_equivalent(self):
        assert XRelation(table_one()) == XRelation(table_two())

    def test_schema_evolution_replays_the_change(self):
        table = Table(table_one().schema, name="EMP")
        table.insert_many(list(table_one().tuples()))
        report = add_attribute(table, "TEL#")
        assert report.information_preserved
        assert table.as_xrelation() == XRelation(table_two())

    def test_scopes_differ_but_content_does_not(self):
        assert XRelation(table_two()).scope() == ("E#", "NAME", "SEX", "MGR#")


class TestE4FigureOne:
    """Figure 1 (query Q_A): the tautology query on EMP."""

    @pytest.fixture
    def db(self):
        return employee_database()

    def test_ni_lower_bound_excludes_brown(self, db):
        result = run_query(FIGURE_1_QUERY, db)
        names = {t["e_NAME"] for t in result.rows}
        assert "BROWN" not in names
        assert names == {"JONES"}

    def test_unknown_interpretation_includes_brown_on_weak_variant(self, db):
        """With ≥ (the paper's intent: the two TEL# conditions complement
        each other) the unknown interpretation must include BROWN, and
        detecting that requires tautology analysis."""
        weak = FIGURE_1_QUERY.replace("e.TEL# > 2634000", "e.TEL# >= 2634000")
        analyzed = compile_query(weak, db)
        unknown = evaluate_unknown_lower_bound(analyzed.query, TautologyDetector())
        assert {t["e_NAME"] for t in unknown.rows()} == {"JONES", "BROWN"}

    def test_strict_variant_is_not_a_tautology(self, db):
        """As literally printed (with > and <) a TEL# of exactly 2634000
        falsifies the clause, so even the unknown interpretation excludes
        BROWN; recorded as a fidelity note in EXPERIMENTS.md."""
        analyzed = compile_query(FIGURE_1_QUERY, db)
        detector = TautologyDetector()
        unknown = evaluate_unknown_lower_bound(analyzed.query, detector)
        assert "BROWN" not in {t["e_NAME"] for t in unknown.rows()}

    def test_possible_worlds_agree_with_tautology_analysis(self, db):
        weak = FIGURE_1_QUERY.replace("e.TEL# > 2634000", "e.TEL# >= 2634000")
        analyzed = compile_query(weak, db)
        bounds = evaluate_bounds(
            analyzed.query, domains={"TEL#": [2633999, 2634000, 2634001]}
        )
        certain_names = {t["e_NAME"] for t in bounds.certain}
        assert "BROWN" in certain_names


class TestE5FigureTwo:
    """Figure 2 (query Q_B): schema-constraint tautologies."""

    @pytest.fixture
    def db(self):
        return employee_database()

    def test_lower_bound(self, db):
        result = run_query(FIGURE_2_QUERY, db)
        assert {t["e_NAME"] for t in result.rows} == {"GREEN"}

    def test_strategies_agree(self, db):
        # The default is now the cost-based plan, so the differential
        # partner must explicitly be the Section 5 tuple oracle.
        assert run_query(FIGURE_2_QUERY, db).answer == run_query(
            FIGURE_2_QUERY, db, strategy="tuple"
        ).answer


class TestE6Division:
    """Display (6.6) and the three readings Q1/Q2/Q3 of the division query."""

    @pytest.fixture
    def ps_relation(self):
        return parts_suppliers()

    @pytest.fixture
    def divisor(self, ps_relation):
        return codd_project(select_true(ps_relation, "S#", "=", "s2"), ["P#"])

    def test_true_selection_gives_p1_and_null(self, ps_relation):
        selected = select_true(ps_relation, "S#", "=", "s2")
        projected = codd_project(selected, ["P#"])
        assert {t["P#"] for t in projected.tuples()} == {"p1", NI}

    def test_maybe_selection_is_empty(self, ps_relation):
        assert len(select_maybe(ps_relation, "S#", "=", "s2")) == 0

    def test_codd_true_division_a1_empty(self, ps_relation, divisor):
        assert len(divide_true(ps_relation, divisor, ["S#"])) == 0

    def test_codd_maybe_division_a2(self, ps_relation, divisor):
        result = divide_maybe(ps_relation, divisor, ["S#"])
        assert {t["S#"] for t in result.tuples()} == {"s1", "s2", "s3"}

    def test_zaniolo_division_a3(self, ps_relation):
        x = XRelation(ps_relation)
        p_s2 = project(select_constant(x, "S#", "=", "s2"), ["P#"])
        a3 = divide(x, p_s2, ["S#"])
        assert {t["S#"] for t in a3.rows()} == {"s1", "s2"}
        assert divide_by_images(x, p_s2, ["S#"]) == a3

    def test_paradox_resolved(self, ps_relation, divisor):
        """Codd TRUE: 's2 does not supply all the parts s2 supplies'; ours: it does."""
        codd_answer = {t["S#"] for t in divide_true(ps_relation, divisor, ["S#"]).tuples()}
        assert "s2" not in codd_answer
        x = XRelation(ps_relation)
        p_s2 = project(select_constant(x, "S#", "=", "s2"), ["P#"])
        ours = {t["S#"] for t in divide(x, p_s2, ["S#"]).rows()}
        assert "s2" in ours


class TestE7DifferenceQuery:
    """Query Q4: parts supplied by s1 but not by s2 = {p2}."""

    def test_q4(self):
        x = XRelation(parts_suppliers())
        s1 = project(select_constant(x, "S#", "=", "s1"), ["P#"])
        s2 = project(select_constant(x, "S#", "=", "s2"), ["P#"])
        result = s1 - s2
        assert {t["P#"] for t in result.rows()} == {"p2"}


class TestE9CoddCorrespondence:
    """Section 7, claims (1)-(5): operations on total x-relations mirror Codd."""

    A = Relation.from_rows(["X", "Y"], [(1, "a"), (2, "b"), (3, "c")], name="A")
    B = Relation.from_rows(["X", "Y"], [(2, "b"), (4, "d")], name="B")
    C = Relation.from_rows(["Z"], [(10,), (20,)], name="C")

    def test_union_correspondence(self):
        from repro.codd import codd_union
        from repro.core.setops import union
        assert XRelation(codd_union(self.A, self.B)) == XRelation(union(self.A, self.B))

    def test_difference_correspondence(self):
        from repro.codd import codd_difference
        from repro.core.setops import difference
        assert XRelation(codd_difference(self.A, self.B)) == XRelation(difference(self.A, self.B))

    def test_containment_correspondence(self):
        from repro.core.setops import union
        bigger = union(self.A, self.B)
        assert XRelation(bigger).contains(XRelation(self.A))

    def test_product_correspondence(self):
        from repro.codd import codd_product
        from repro.core.algebra import product
        assert XRelation(codd_product(self.A, self.C)) == product(self.A, self.C)

    def test_selection_correspondence(self):
        from repro.codd import select_true
        assert XRelation(select_true(self.A, "X", ">", 1)) == select_constant(self.A, "X", ">", 1)

    def test_attribute_selection_correspondence(self):
        from repro.codd.algebra import select_attrs_true
        from repro.core.algebra import select_attributes
        r = Relation.from_rows(["X", "Y"], [(1, 1), (2, 1)], name="R")
        assert XRelation(select_attrs_true(r, "X", "=", "Y")) == select_attributes(r, "X", "=", "Y")

    def test_projection_correspondence(self):
        from repro.codd import codd_project
        assert XRelation(codd_project(self.A, ["Y"])) == project(self.A, ["Y"])

    def test_distinct_codd_relations_map_to_distinct_x_relations(self):
        assert XRelation(self.A) != XRelation(self.B)


class TestBaselineAgreement:
    """Lien = Codd TRUE = Zaniolo lower bound, on shared representations."""

    def test_selection_agreement(self, ps):
        from repro.codd import select_true
        from repro.core.algebra import select_constant
        from repro.lien import lien_select

        for supplier in ("s1", "s2", "s3", "s4"):
            codd = set(select_true(ps, "S#", "=", supplier).tuples())
            lien = set(lien_select(ps, "S#", "=", supplier).tuples())
            ours = select_constant(ps, "S#", "=", supplier)
            assert codd == lien
            assert XRelation(Relation(ps.schema, codd, validate=False)) == ours
