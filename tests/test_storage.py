"""Unit tests for the storage substrate (tables, catalog, database, indexes)."""

import pytest

from repro import NI, Relation, XRelation, XTuple
from repro.constraints import (
    ForeignKeyConstraint,
    FunctionalDependency,
    KeyConstraint,
    NotNullConstraint,
    RowConstraint,
)
from repro.core.errors import (
    ConstraintViolation,
    KeyViolation,
    NotNullViolation,
    ReferentialViolation,
    SchemaError,
    StorageError,
)
from repro.storage import Catalog, Database, HashIndex, Table, add_attribute, drop_attribute, evolve


class TestHashIndex:
    def test_insert_and_lookup(self):
        index = HashIndex(["A"])
        index.insert(XTuple(A=1, B="x"))
        index.insert(XTuple(A=1, B="y"))
        index.insert(XTuple(A=2, B="z"))
        assert len(index.lookup([1])) == 2
        assert len(index.lookup([9])) == 0
        assert index.distinct_keys() == 2

    def test_null_rows_go_to_unindexed_bucket(self):
        index = HashIndex(["A"])
        index.insert(XTuple(B="only"))
        exact, unindexed = index.probe([1])
        assert not exact and len(unindexed) == 1

    def test_remove(self):
        index = HashIndex(["A"])
        row = XTuple(A=1)
        index.insert(row)
        index.remove(row)
        assert len(index) == 0
        index.remove(row)  # removing twice is harmless

    def test_rebuild_and_clear(self):
        index = HashIndex(["A"])
        index.rebuild([XTuple(A=1), XTuple(A=2), XTuple(B=1)])
        assert len(index) == 3
        index.clear()
        assert len(index) == 0

    def test_composite_index(self):
        index = HashIndex(["A", "B"])
        index.insert(XTuple(A=1, B=2, C=3))
        assert len(index.lookup([1, 2])) == 1
        index.insert(XTuple(A=1))  # null on B → unindexed
        assert len(index.unindexed_rows()) == 1

    def test_requires_attributes(self):
        with pytest.raises(ValueError):
            HashIndex([])


class TestTable:
    @pytest.fixture
    def table(self):
        return Table(
            ["E#", "NAME", "TEL#"],
            constraints=[KeyConstraint(["E#"]), NotNullConstraint(["NAME"])],
            name="EMP",
        )

    def test_insert_and_len(self, table):
        table.insert((1, "ann", None))
        table.insert({"E#": 2, "NAME": "bob", "TEL#": 555})
        assert len(table) == 2

    def test_insert_after_new_information_contains_old(self, table):
        """The Section 1 user expectation, now a fact rather than a MAYBE."""
        table.insert((1, "ann", None))
        before = table.as_xrelation()
        table.insert((2, "bob", 555))
        after = table.as_xrelation()
        assert after >= before

    def test_key_violation(self, table):
        table.insert((1, "ann", None))
        with pytest.raises(KeyViolation):
            table.insert((1, "dup", None))

    def test_null_key_rejected(self, table):
        with pytest.raises(KeyViolation):
            table.insert((None, "ghost", None))

    def test_not_null_violation(self, table):
        with pytest.raises(NotNullViolation):
            table.insert((3, None, None))

    def test_delete_removes_subsumed_rows(self):
        table = Table(["S#", "P#"], name="PS")
        table.insert_many([("s1", "p1"), ("s1", None)])
        removed = table.delete(("s1", "p1"))
        assert removed == 2
        assert len(table) == 0

    def test_delete_does_not_remove_more_informative_rows(self):
        table = Table(["S#", "P#"], name="PS")
        table.insert_many([("s1", "p1")])
        removed = table.delete(("s1", None))
        assert removed == 0
        assert len(table) == 1

    def test_delete_where(self, table):
        table.insert_many([(1, "ann", None), (2, "bob", 5)])
        assert table.delete_where(lambda r: r["TEL#"] is NI) == 1
        assert len(table) == 1

    def test_update_is_delete_then_insert(self, table):
        table.insert((1, "ann", None))
        table.update((1, "ann", None), (1, "ann", 777))
        assert table.lookup(["E#"], [1])[0]["TEL#"] == 777

    def test_failed_update_restores_old_row(self, table):
        table.insert((1, "ann", None))
        table.insert((2, "bob", 5))
        with pytest.raises(KeyViolation):
            table.update((1, "ann", None), (2, "clash", 9))
        assert len(table) == 2
        assert table.lookup(["E#"], [1])

    def test_update_missing_row(self, table):
        with pytest.raises(StorageError):
            table.update((9, "ghost", None), (9, "ghost", 1))

    def test_indexes_maintained(self, table):
        index = table.create_index(["E#"])
        table.insert((1, "ann", None))
        assert len(index.lookup([1])) == 1
        table.delete((1, "ann", None))
        assert len(index.lookup([1])) == 0

    def test_duplicate_index_rejected(self, table):
        table.create_index(["E#"])
        with pytest.raises(StorageError):
            table.create_index(["E#"])

    def test_lookup_without_index_scans(self, table):
        table.insert((1, "ann", None))
        assert table.lookup(["NAME"], ["ann"])

    def test_add_constraint_validates_existing_rows(self, table):
        table.insert((1, "ann", None))
        table.insert((2, "ann", None))
        with pytest.raises(ConstraintViolation):
            table.add_constraint(FunctionalDependency(["NAME"], ["E#"]))

    def test_row_constraint_enforced_on_insert(self):
        table = Table(
            ["E#", "MGR#"],
            constraints=[RowConstraint("EMP", lambda r: r["E#"] != r["MGR#"] or r["MGR#"] is NI)],
            name="EMP",
        )
        table.insert((1, 2))
        with pytest.raises(ConstraintViolation):
            table.insert((3, 3))

    def test_truncate(self, table):
        table.insert((1, "ann", None))
        table.truncate()
        assert len(table) == 0


class TestCatalogAndDatabase:
    def test_create_and_drop(self):
        catalog = Catalog()
        catalog.create_table("T", ["A"])
        assert catalog.has_table("T") and "T" in catalog
        catalog.drop_table("T")
        assert not catalog.has_table("T")

    def test_duplicate_table_rejected(self):
        catalog = Catalog()
        catalog.create_table("T", ["A"])
        with pytest.raises(StorageError):
            catalog.create_table("T", ["A"])

    def test_missing_table(self):
        with pytest.raises(StorageError):
            Catalog().table("NOPE")

    def test_rename_table(self):
        catalog = Catalog()
        catalog.create_table("OLD", ["A"])
        catalog.rename_table("OLD", "NEW")
        assert catalog.has_table("NEW") and not catalog.has_table("OLD")

    def test_database_mapping_protocol(self, emp_db):
        assert "EMP" in emp_db
        assert isinstance(emp_db["EMP"], Relation)
        assert list(emp_db) == ["EMP"]
        assert len(emp_db) == 1

    def test_foreign_key_enforced_on_insert(self):
        db = Database()
        db.create_table("DEPT", ["D#", "DNAME"], constraints=[KeyConstraint(["D#"])])
        db.create_table("EMP", ["E#", "DEPT#"], constraints=[KeyConstraint(["E#"])])
        db.insert("DEPT", (1, "eng"))
        db.add_foreign_key("EMP", ForeignKeyConstraint(["DEPT#"], "DEPT", ["D#"]))
        db.insert("EMP", (10, 1))
        db.insert("EMP", (11, None))
        with pytest.raises(ReferentialViolation):
            db.insert("EMP", (12, 99))

    def test_foreign_key_enforced_on_delete(self):
        db = Database()
        db.create_table("DEPT", ["D#"], constraints=[KeyConstraint(["D#"])])
        db.create_table("EMP", ["E#", "DEPT#"])
        db.insert("DEPT", (1,))
        db.insert("DEPT", (2,))
        db.add_foreign_key("EMP", ForeignKeyConstraint(["DEPT#"], "DEPT", ["D#"]))
        db.insert("EMP", (10, 1))
        with pytest.raises(ReferentialViolation):
            db.delete("DEPT", (1,))
        assert db.delete("DEPT", (2,)) == 1

    def test_drop_referenced_table_rejected(self):
        db = Database()
        db.create_table("DEPT", ["D#"])
        db.create_table("EMP", ["E#", "DEPT#"])
        db.add_foreign_key("EMP", ForeignKeyConstraint(["DEPT#"], "DEPT", ["D#"]))
        with pytest.raises(StorageError):
            db.drop_table("DEPT")
        db.drop_table("EMP")

    def test_snapshot_and_restore(self, emp_db):
        snapshot = emp_db.snapshot()
        emp_db.insert("EMP", (9999, "TEMP", "M", None, None))
        assert len(emp_db["EMP"]) == 6
        emp_db.restore(snapshot)
        assert len(emp_db["EMP"]) == 5

    def test_update_through_database(self, emp_db):
        smith = emp_db.table("EMP").lookup(["E#"], [1120])[0]
        new_row = smith.as_dict()
        new_row["TEL#"] = 2630001
        emp_db.update("EMP", smith, new_row)
        assert emp_db.table("EMP").lookup(["E#"], [1120])[0]["TEL#"] == 2630001

    def test_xrelation_view(self, emp_db):
        assert isinstance(emp_db.xrelation("EMP"), XRelation)


class TestIndexManagement:
    """Order-insensitive index matching and snapshot round-trips."""

    @pytest.fixture
    def table(self) -> Table:
        table = Table(["A", "B", "C"], name="T")
        table.insert_many([(1, 2, 3), (1, 5, 6), (7, 2, 9), (None, 2, 1)])
        return table

    def test_lookup_uses_index_declared_in_other_order(self, table):
        table.create_index(["B", "A"])
        # No scan-order dependence: the set {A, B} matches the (B, A)
        # index, with the probe values permuted into its key order.
        hits = table.lookup(["A", "B"], [1, 2])
        assert [r["C"] for r in hits] == [3]
        assert table.lookup(["B", "A"], [2, 1]) == hits

    def test_find_index_matches_attribute_set(self, table):
        index = table.create_index(["C", "A"])
        assert table.find_index(["A", "C"]) is index
        assert table.find_index(["A"]) is None
        assert table.find_index(["A", "A"]) is None  # duplicates never match

    def test_drop_index_by_attributes(self, table):
        table.create_index(["B", "A"], name="ba")
        table.drop_index(["A", "B"])
        assert table.indexes == {}
        with pytest.raises(StorageError):
            table.drop_index(["A", "B"])

    def test_drop_index_by_name_still_works(self, table):
        table.create_index(["A"], name="ia")
        table.drop_index("ia")
        assert table.indexes == {}
        with pytest.raises(StorageError):
            table.drop_index("ia")

    def test_snapshot_round_trips_indexes(self):
        db = Database("snap")
        table = db.create_table("T", ["A", "B"])
        table.insert_many([(1, 2), (3, 4)])
        table.create_index(["A"], name="ia")
        snapshot = db.snapshot()
        # Mutate the index set after the snapshot: drop one, add another.
        table.drop_index("ia")
        table.create_index(["B"], name="ib")
        db.insert("T", (5, 6))
        db.restore(snapshot)
        assert set(table.indexes) == {"ia"}
        assert table.indexes["ia"].attributes == ("A",)
        # The recreated index is live over the restored rows.
        assert len(table.lookup(["A"], [1])) == 1
        assert len(db["T"]) == 2

    def test_restore_accepts_legacy_row_snapshots(self):
        db = Database("legacy")
        table = db.create_table("T", ["A"])
        table.insert((1,))
        table.create_index(["A"], name="ia")
        db.restore({"T": {XTuple({"A": 7})}})
        # Rows replaced; the (unsnapshotted) index survives and is rebuilt.
        assert {r["A"] for r in table.rows()} == {7}
        assert len(table.lookup(["A"], [7])) == 1

    def test_catalog_index_specs(self):
        catalog = Catalog()
        table = catalog.create_table("T", ["A", "B"])
        table.create_index(["B", "A"], name="ba")
        assert catalog.index_specs() == {"T": {"ba": ("B", "A")}}


class TestSnapshotRestore:
    def test_restore_drops_tables_created_after_snapshot(self):
        # Regression: restore() itself must reconcile the catalog — a
        # caller holding only the snapshot has no record of which tables
        # appeared after it was taken.
        db = Database("reconcile")
        db.create_table("T", ["A"])
        db.insert("T", (1,))
        snapshot = db.snapshot()
        db.create_table("LATER", ["X"])
        db.insert("LATER", (9,))
        db.restore(snapshot)
        assert db.catalog.table_names() == ["T"]
        assert {r["A"] for r in db.table("T").rows()} == {1}

    def test_restore_drops_created_tables_despite_fk_order(self):
        # Two post-snapshot tables where one references the other: the
        # reconciliation loop must retry until the dependency order works.
        db = Database("fkorder")
        db.create_table("T", ["A"])
        snapshot = db.snapshot()
        db.create_table("PARENT", ["P"], constraints=[KeyConstraint(["P"])])
        db.create_table("CHILD", ["C", "P"])
        db.add_foreign_key("CHILD", ForeignKeyConstraint(["P"], "PARENT", ["P"]))
        db.restore(snapshot)
        assert db.catalog.table_names() == ["T"]

    def test_snapshot_carries_statistics(self):
        # Regression: restore() used to re-ANALYZE from the restored rows,
        # silently replacing the snapshot-time statistics profile.
        db = Database("stats")
        table = db.create_table("T", ["A", "B"])
        table.insert_many([(i, i % 3) for i in range(20)])
        table.analyze()
        expected = table.statistics.copy()
        snapshot = db.snapshot()
        table.insert_many([(i, 7) for i in range(100, 160)])
        table.analyze()
        assert table.statistics != expected
        db.restore(snapshot)
        assert table.statistics == expected


class TestSchemaEvolution:
    def test_add_attribute_is_information_preserving(self):
        table = Table(["E#", "NAME"], name="EMP")
        table.insert_many([(1, "ann"), (2, "bob")])
        before = table.as_xrelation()
        report = add_attribute(table, "TEL#")
        assert report.information_preserved
        assert "TEL#" in table.schema.attributes
        assert table.as_xrelation() == before

    def test_add_attribute_with_default_adds_information(self):
        table = Table(["E#"], name="EMP")
        table.insert((1,))
        before = table.as_xrelation()
        report = add_attribute(table, "COUNTRY", default="US")
        assert report.information_preserved  # still subsumes the old content
        assert table.as_xrelation() > before

    def test_add_existing_attribute_rejected(self):
        table = Table(["E#"], name="EMP")
        with pytest.raises(SchemaError):
            add_attribute(table, "E#")

    def test_drop_null_only_attribute_preserves_information(self):
        table = Table(["E#", "TEL#"], name="EMP")
        table.insert_many([(1, None), (2, None)])
        report = drop_attribute(table, "TEL#")
        assert report.information_preserved

    def test_drop_populated_attribute_loses_information(self):
        table = Table(["E#", "TEL#"], name="EMP")
        table.insert_many([(1, 555)])
        report = drop_attribute(table, "TEL#")
        assert not report.information_preserved

    def test_cannot_drop_last_attribute(self):
        table = Table(["E#"], name="EMP")
        with pytest.raises(SchemaError):
            drop_attribute(table, "E#")

    def test_drop_indexed_attribute_rejected(self):
        table = Table(["E#", "TEL#"], name="EMP")
        table.create_index(["TEL#"])
        with pytest.raises(SchemaError):
            drop_attribute(table, "TEL#")

    def test_evolve_sequence(self):
        table = Table(["E#"], name="EMP")
        table.insert((1,))
        reports = evolve(table, [("add", "TEL#"), ("add", "FAX#"), ("drop", "FAX#")])
        assert len(reports) == 3
        assert all(r.information_preserved for r in reports)

    def test_evolve_unknown_operation(self):
        table = Table(["E#"], name="EMP")
        with pytest.raises(SchemaError):
            evolve(table, [("explode", "E#")])

    def test_paper_table_one_to_table_two(self, emp_table_one, emp_table_two):
        """Replay the Section 2 schema change and verify equivalence."""
        table = Table(emp_table_one.schema, name="EMP")
        table.insert_many(list(emp_table_one.tuples()))
        add_attribute(table, "TEL#")
        assert set(table.schema.attributes) == set(emp_table_two.schema.attributes)
        assert table.as_xrelation() == XRelation(emp_table_two)
