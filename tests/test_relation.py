"""Unit tests for schemas and relations (repro.core.relation)."""

import pytest

from repro import NI, Relation, RelationSchema, XTuple
from repro.core.domains import EnumeratedDomain, IntegerRangeDomain
from repro.core.errors import AttributeNotFound, DomainError, SchemaError


class TestRelationSchema:
    def test_basic_properties(self):
        schema = RelationSchema(["A", "B"], name="R")
        assert schema.attributes == ("A", "B")
        assert len(schema) == 2
        assert "A" in schema and "C" not in schema
        assert schema.position("B") == 1

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema(["A", "A"])

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema([])

    def test_bad_attribute_names_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema(["A", ""])

    def test_position_of_unknown_attribute(self):
        schema = RelationSchema(["A"])
        with pytest.raises(AttributeNotFound):
            schema.position("Z")

    def test_domain_defaults_to_any(self):
        schema = RelationSchema(["A"])
        assert schema.domain("A").contains("anything")

    def test_domain_for_unknown_attribute_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema(["A"], {"B": EnumeratedDomain([1])})

    def test_project_extend_union_rename(self):
        schema = RelationSchema(["A", "B", "C"], name="R")
        assert schema.project(["C", "A"]).attributes == ("C", "A")
        assert schema.extend(["D"]).attributes == ("A", "B", "C", "D")
        other = RelationSchema(["C", "D"])
        assert schema.union(other).attributes == ("A", "B", "C", "D")
        assert schema.rename({"A": "X"}).attributes == ("X", "B", "C")

    def test_same_attributes_ignores_order(self):
        assert RelationSchema(["A", "B"]).same_attributes(RelationSchema(["B", "A"]))
        assert not RelationSchema(["A"]).same_attributes(RelationSchema(["A", "B"]))

    def test_equality_is_by_attribute_sequence(self):
        assert RelationSchema(["A", "B"]) == RelationSchema(["A", "B"])
        assert RelationSchema(["A", "B"]) != RelationSchema(["B", "A"])


class TestRelationConstruction:
    def test_from_rows_positional(self):
        r = Relation.from_rows(["A", "B"], [(1, 2), (3, None)])
        assert len(r) == 2
        assert XTuple(A=3) in r

    def test_row_length_mismatch(self):
        r = Relation.empty(["A", "B"])
        with pytest.raises(SchemaError):
            r.add((1, 2, 3))

    def test_add_mapping_and_xtuple(self):
        r = Relation.empty(["A", "B"])
        r.add({"A": 1})
        r.add(XTuple(B=2))
        assert len(r) == 2

    def test_add_unknown_attribute_rejected(self):
        r = Relation.empty(["A"])
        with pytest.raises(AttributeNotFound):
            r.add({"Z": 1})

    def test_domain_validation_on_add(self):
        schema = RelationSchema(["A"], {"A": IntegerRangeDomain(0, 5)})
        r = Relation(schema)
        r.add((3,))
        r.add((None,))
        with pytest.raises(DomainError):
            r.add((9,))

    def test_duplicate_rows_collapse(self):
        r = Relation.from_rows(["A", "B"], [(1, None), (1, NI)])
        assert len(r) == 1

    def test_discard(self):
        r = Relation.from_rows(["A"], [(1,), (2,)])
        assert r.discard((1,))
        assert not r.discard((7,))
        assert len(r) == 1

    def test_contains_is_exact_membership(self, ps1):
        assert XTuple({"S#": "s2", "P#": "p1"}) in ps1
        assert XTuple({"S#": "s2"}) not in ps1  # only x-membership would hold

    def test_copy_is_independent(self):
        r = Relation.from_rows(["A"], [(1,)])
        c = r.copy()
        c.add((2,))
        assert len(r) == 1 and len(c) == 2


class TestXMembershipAndSubsumption:
    def test_x_contains_less_informative_tuple(self, ps1):
        assert ps1.x_contains(XTuple({"S#": "s2"}))
        assert ps1.x_contains(XTuple({"P#": "p1"}))
        assert not ps1.x_contains(XTuple({"P#": "p9"}))

    def test_x_contains_null_tuple_when_nonempty(self, ps1):
        assert ps1.x_contains(XTuple())

    def test_subsumption_paper_example(self, ps1, ps2):
        """PS'' was obtained from PS' by adding a row: it must subsume it."""
        assert ps2.subsumes(ps1)
        assert not ps1.subsumes(ps2)
        assert ps2.properly_subsumes(ps1)

    def test_subsumption_reflexive(self, ps1):
        assert ps1.subsumes(ps1)

    def test_equivalence_of_tables_one_and_two(self, emp_table_one, emp_table_two):
        """The Section 2 claim: Table I and Table II are information-wise equivalent."""
        assert emp_table_one.equivalent_to(emp_table_two)
        assert emp_table_two.equivalent_to(emp_table_one)

    def test_empty_relation_subsumed_by_everything(self, ps1):
        empty = Relation.empty(["P#", "S#"])
        assert ps1.subsumes(empty)
        assert not empty.subsumes(ps1)


class TestClassificationAndScope:
    def test_is_total(self, emp_table_one, emp_table_two):
        assert emp_table_one.is_total()
        assert not emp_table_two.is_total()

    def test_total_rows(self, ps):
        totals = ps.total_rows()
        assert all(t.is_total_on(("S#", "P#")) for t in totals)
        assert len(totals) == 4
        s_totals = ps.total_rows(["S#"])
        assert len(s_totals) == 7

    def test_null_fraction(self, ps):
        assert ps.null_fraction() == pytest.approx(3 / 14)
        assert Relation.empty(["A"]).null_fraction() == 0.0

    def test_scope(self, emp_table_two):
        assert emp_table_two.scope() == ("E#", "NAME", "SEX", "MGR#")

    def test_scope_of_empty_relation(self):
        assert Relation.empty(["A", "B"]).scope() == ()

    def test_projected_to_scope(self, emp_table_two, emp_table_one):
        narrowed = emp_table_two.projected_to_scope()
        assert set(narrowed.schema.attributes) == set(emp_table_one.schema.attributes)
        assert narrowed.equivalent_to(emp_table_one)


class TestMinimalRepresentation:
    def test_is_minimal_detects_subsumed_rows(self):
        r = Relation.from_rows(["A", "B"], [(1, 2), (1, None)])
        assert not r.is_minimal()
        assert r.minimal().is_minimal()
        assert len(r.minimal()) == 1

    def test_minimal_removes_null_tuple(self):
        r = Relation.from_rows(["A", "B"], [(None, None), (1, 2)])
        minimal = r.minimal()
        assert len(minimal) == 1
        assert not any(t.is_null_tuple() for t in minimal.tuples())

    def test_minimal_is_equivalent_to_original(self, ps):
        assert ps.minimal().equivalent_to(ps)

    def test_paper_ps_is_not_minimal(self, ps):
        """(s1,-) and (s2,-) are subsumed by (s1,p1)/(s2,p1); (s3,-) is not."""
        minimal = ps.minimal()
        assert len(minimal) == 5
        assert minimal.x_contains(XTuple({"S#": "s3"}))


class TestPresentation:
    def test_to_table_uses_dash_for_nulls(self, emp_table_two):
        rendered = emp_table_two.to_table()
        assert "-" in rendered
        assert "SMITH" in rendered
        assert rendered.splitlines()[0].startswith("EMP(")

    def test_sorted_rows_is_deterministic(self, ps):
        assert [str(t) for t in ps.sorted_rows()] == [str(t) for t in ps.sorted_rows()]

    def test_repr(self, ps):
        assert "PS" in repr(ps)

    def test_with_schema_keeps_rows(self, emp_table_one):
        widened = emp_table_one.with_schema(emp_table_one.schema.extend(["TEL#"]))
        assert len(widened) == len(emp_table_one)
        assert widened.equivalent_to(emp_table_one)
