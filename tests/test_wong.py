"""Unit tests for the Wong-style statistical baseline (repro.wong)."""

import pytest

from repro import NI, Relation
from repro.core.errors import DomainError
from repro.datagen import parts_suppliers
from repro.wong import (
    Distribution,
    ProbabilisticValue,
    answer_spectrum,
    column_distribution,
    divide_with_threshold,
    probabilistic_relation,
    select_with_threshold,
)


class TestDistribution:
    def test_normalisation(self):
        d = Distribution({"a": 2, "b": 2})
        assert d.probability("a") == pytest.approx(0.5)
        assert d.probability("missing") == 0.0

    def test_uniform_and_point(self):
        u = Distribution.uniform(["x", "y", "z", "z"])
        assert u.probability("x") == pytest.approx(1 / 3)
        assert Distribution.point(7).probability(7) == 1.0

    def test_probability_that(self):
        d = Distribution({1: 1, 2: 1, 3: 2})
        assert d.probability_that(lambda v: v >= 2) == pytest.approx(0.75)

    def test_expected_value(self):
        d = Distribution({1: 1, 3: 1})
        assert d.expected_value() == pytest.approx(2.0)
        with pytest.raises(DomainError):
            Distribution({"a": 1}).expected_value()

    def test_most_likely(self):
        assert Distribution({"a": 1, "b": 3}).most_likely() == "b"

    def test_rejects_bad_inputs(self):
        with pytest.raises(DomainError):
            Distribution({})
        with pytest.raises(DomainError):
            Distribution({"a": -1})
        with pytest.raises(DomainError):
            Distribution({None: 1})
        with pytest.raises(DomainError):
            Distribution.uniform([])


class TestProbabilisticValue:
    def test_known_value(self):
        v = ProbabilisticValue(value=5)
        assert v.is_known
        assert v.probability_that(lambda x: x > 3) == 1.0
        assert v.probability_that(lambda x: x > 9) == 0.0

    def test_distributed_value(self):
        v = ProbabilisticValue(distribution=Distribution({1: 1, 10: 1}))
        assert not v.is_known
        assert v.probability_that(lambda x: x > 5) == pytest.approx(0.5)

    def test_exactly_one_of_value_or_distribution(self):
        with pytest.raises(DomainError):
            ProbabilisticValue()
        with pytest.raises(DomainError):
            ProbabilisticValue(value=1, distribution=Distribution({1: 1}))


class TestColumnDistribution:
    def test_empirical_estimate(self, ps):
        d = column_distribution(ps, "P#")
        assert d.probability("p1") == pytest.approx(2 / 4)
        assert d.probability("p2") == pytest.approx(1 / 4)

    def test_requires_nonnull_values(self):
        r = Relation.from_rows(["A"], [(None,), (None,)])
        with pytest.raises(DomainError):
            column_distribution(r, "A")

    def test_unknown_attribute(self, ps):
        with pytest.raises(DomainError):
            column_distribution(ps, "NOPE")

    def test_probabilistic_relation_lifts_nulls(self, ps):
        lifted = probabilistic_relation(ps)
        assert len(lifted) == len(ps)
        null_row = next(row for row in ps.tuples() if row["P#"] is NI)
        assert not lifted[null_row]["P#"].is_known
        assert lifted[null_row]["S#"].is_known


class TestThresholdQueries:
    def test_threshold_one_recovers_certain_answer(self, ps):
        certain = select_with_threshold(ps, "P#", "=", "p1", threshold=1.0)
        assert {t["S#"] for t in certain.tuples()} == {"s1", "s2"}

    def test_small_threshold_approaches_maybe_answer(self, ps):
        permissive = select_with_threshold(ps, "P#", "=", "p1", threshold=0.01)
        suppliers = {t["S#"] for t in permissive.tuples()}
        assert {"s1", "s2", "s3"} <= suppliers  # null rows now qualify
        assert "s4" not in suppliers            # p4 ≠ p1 stays excluded

    def test_invalid_threshold(self, ps):
        with pytest.raises(DomainError):
            select_with_threshold(ps, "P#", "=", "p1", threshold=1.5)

    def test_answer_spectrum_is_monotone(self, ps):
        spectrum = answer_spectrum(ps, "P#", "=", "p1", thresholds=(1.0, 0.5, 0.01))
        sizes = [size for _, size in spectrum]
        assert sizes == sorted(sizes)

    def test_divide_with_threshold_interpolates_between_answers(self, ps):
        divisor = ["p1"]
        certain = divide_with_threshold(ps, divisor, by="S#", over="P#", threshold=1.0)
        permissive = divide_with_threshold(ps, divisor, by="S#", over="P#", threshold=0.01)
        assert certain == {"s1", "s2"}            # the paper's A3
        assert {"s1", "s2", "s3"} <= permissive   # towards Codd's MAYBE answer A2
        assert "s4" not in permissive

    def test_divide_with_explicit_distribution(self, ps):
        from repro.wong import Distribution
        skewed = {"P#": Distribution({"p1": 9, "p2": 1})}
        result = divide_with_threshold(
            ps, ["p1"], by="S#", over="P#", threshold=0.8, distributions=skewed
        )
        assert "s3" in result  # its null part is p1 with probability 0.9

    def test_divide_threshold_validation(self, ps):
        with pytest.raises(DomainError):
            divide_with_threshold(ps, ["p1"], by="S#", over="P#", threshold=-0.1)
