"""Unit tests for images and division (Section 6)."""

import pytest

from repro import NI, Relation, XRelation, XTuple
from repro.core.algebra import (
    divide,
    divide_by_images,
    image_set,
    project,
    select_constant,
)
from repro.core.errors import AlgebraError


@pytest.fixture
def ps_x(ps):
    return XRelation(ps)


@pytest.fixture
def parts_of_s2(ps_x):
    return project(select_constant(ps_x, "S#", "=", "s2"), ["P#"])


class TestImageSet:
    def test_image_of_s1(self, ps_x):
        image = image_set(ps_x, {"S#": "s1"}, ["S#"], ["P#"])
        assert {t["P#"] for t in image.rows()} == {"p1", "p2"}

    def test_image_of_s3_is_empty(self, ps_x):
        image = image_set(ps_x, {"S#": "s3"}, ["S#"], ["P#"])
        assert image.is_empty()

    def test_image_of_unknown_supplier_is_empty(self, ps_x):
        image = image_set(ps_x, {"S#": "s99"}, ["S#"], ["P#"])
        assert image.is_empty()

    def test_image_accepts_xtuple(self, ps_x):
        image = image_set(ps_x, XTuple({"S#": "s4"}), ["S#"], ["P#"])
        assert {t["P#"] for t in image.rows()} == {"p4"}


class TestDivisionPaperExample:
    """Display (6.6): A3 = {s1, s2}, the answer to Q3."""

    def test_divide(self, ps_x, parts_of_s2):
        quotient = divide(ps_x, parts_of_s2, ["S#"])
        assert {t["S#"] for t in quotient.rows()} == {"s1", "s2"}

    def test_divide_by_images_agrees(self, ps_x, parts_of_s2):
        a = divide(ps_x, parts_of_s2, ["S#"])
        b = divide_by_images(ps_x, parts_of_s2, ["S#"])
        assert a == b

    def test_no_self_supply_paradox(self, ps_x, parts_of_s2):
        """s2 supplies every part s2 supplies — unlike Codd's TRUE division."""
        quotient = divide(ps_x, parts_of_s2, ["S#"])
        assert XTuple({"S#": "s2"}) in quotient


class TestDivisionGeneral:
    def test_division_on_total_relations_matches_classical(self):
        r = Relation.from_rows(
            ["S", "P"],
            [("a", 1), ("a", 2), ("b", 1), ("c", 2)],
            name="R",
        )
        divisor = Relation.from_rows(["P"], [(1,), (2,)], name="D")
        quotient = divide(r, divisor, ["S"])
        assert {t["S"] for t in quotient.rows()} == {"a"}
        assert divide_by_images(r, divisor, ["S"]) == quotient

    def test_division_by_empty_divisor_returns_all_candidates(self):
        r = Relation.from_rows(["S", "P"], [("a", 1), ("b", None)], name="R")
        divisor = Relation.empty(["P"])
        quotient = divide(r, divisor, ["S"])
        assert {t["S"] for t in quotient.rows()} == {"a", "b"}

    def test_non_y_total_rows_do_not_contribute(self):
        r = Relation.from_rows(["S", "P"], [(None, 1), ("a", 1)], name="R")
        divisor = Relation.from_rows(["P"], [(1,)], name="D")
        quotient = divide(r, divisor, ["S"])
        assert {t["S"] for t in quotient.rows()} == {"a"}

    def test_divisor_with_null_rows_requires_nothing_extra(self):
        """A null divisor row carries no information, so it cannot disqualify."""
        r = Relation.from_rows(["S", "P"], [("a", 1)], name="R")
        divisor = Relation.from_rows(["P"], [(1,), (None,)], name="D")
        quotient = divide(r, divisor, ["S"])
        assert {t["S"] for t in quotient.rows()} == {"a"}

    def test_overlapping_division_attributes_rejected(self, ps_x):
        bad_divisor = XRelation.from_rows(["S#"], [("s1",)], name="D")
        with pytest.raises(AlgebraError):
            divide(ps_x, bad_divisor, ["S#"])

    def test_divisor_attribute_missing_from_dividend_rejected(self, ps_x):
        foreign = XRelation.from_rows(["COLOUR"], [("red",)], name="D")
        with pytest.raises(AlgebraError):
            divide(ps_x, foreign, ["S#"])

    def test_division_agreement_on_random_relations(self):
        import random

        rng = random.Random(5)
        suppliers = [f"s{i}" for i in range(5)]
        parts = [f"p{i}" for i in range(4)]
        rows = []
        for _ in range(30):
            s = suppliers[rng.randrange(len(suppliers))]
            p = None if rng.random() < 0.25 else parts[rng.randrange(len(parts))]
            rows.append((s, p))
        r = Relation.from_rows(["S", "P"], rows, name="R")
        divisor = Relation.from_rows(["P"], [(parts[0],), (parts[1],)], name="D")
        assert divide(r, divisor, ["S"]) == divide_by_images(r, divisor, ["S"])


class TestDivisionComparisonWithCodd:
    """The Section 6 three-way comparison (experiment E6 in miniature)."""

    def test_codd_true_division_is_empty(self, ps):
        from repro.codd.algebra import codd_project, select_true
        from repro.codd.division import divide_true

        divisor = codd_project(select_true(ps, "S#", "=", "s2"), ["P#"])
        assert len(divide_true(ps, divisor, ["S#"])) == 0

    def test_codd_maybe_division(self, ps):
        from repro.codd.algebra import codd_project, select_true
        from repro.codd.division import divide_maybe

        divisor = codd_project(select_true(ps, "S#", "=", "s2"), ["P#"])
        result = divide_maybe(ps, divisor, ["S#"])
        assert {t["S#"] for t in result.tuples()} == {"s1", "s2", "s3"}

    def test_zaniolo_division_sits_between(self, ps_x, parts_of_s2, ps):
        from repro.codd.algebra import codd_project, select_true
        from repro.codd.division import divide_maybe, divide_true

        divisor = codd_project(select_true(ps, "S#", "=", "s2"), ["P#"])
        true_answer = {t["S#"] for t in divide_true(ps, divisor, ["S#"]).tuples()}
        maybe_answer = {t["S#"] for t in divide_maybe(ps, divisor, ["S#"]).tuples()}
        ours = {t["S#"] for t in divide(ps_x, parts_of_s2, ["S#"]).rows()}
        assert true_answer <= ours <= (true_answer | maybe_answer)
