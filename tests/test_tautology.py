"""Unit tests for the Appendix machinery (repro.tautology)."""

import pytest

from repro import NI, Relation, XTuple
from repro.core.errors import TautologyError
from repro.core.query import And, AttributeRef, Comparison, Constant, Not, Or, Query
from repro.tautology import (
    AndF,
    BOTTOM,
    DPLLStatistics,
    DetectionResult,
    NotF,
    OrF,
    TOP,
    TautologyDetector,
    Var,
    abstract_predicate,
    analyse,
    dpll_satisfiable,
    evaluate_unknown_lower_bound,
    is_satisfiable,
    is_tautology,
    to_cnf,
    to_nnf,
    truth_table_tautology,
)
from repro.constraints import BindingConstraint, RowConstraint, as_detector_constraints


# ---------------------------------------------------------------------------
# Propositional layer
# ---------------------------------------------------------------------------

class TestFormulas:
    def test_evaluation(self):
        p, q = Var("p"), Var("q")
        formula = (p & ~q) | BOTTOM
        assert formula.evaluate({"p": True, "q": False})
        assert not formula.evaluate({"p": True, "q": True})

    def test_missing_assignment(self):
        with pytest.raises(TautologyError):
            Var("p").evaluate({})

    def test_variables(self):
        assert (Var("p") & (Var("q") | ~Var("p"))).variables() == {"p", "q"}

    def test_nnf_pushes_negations(self):
        formula = ~(Var("p") & ~Var("q"))
        nnf = to_nnf(formula)
        assert isinstance(nnf, OrF)

    def test_cnf_of_tautology_negation_is_unsat(self):
        p = Var("p")
        clauses = to_cnf(NotF(p | ~p))
        assert dpll_satisfiable(clauses) is None

    def test_cnf_drops_tautological_clauses(self):
        p = Var("p")
        assert to_cnf(p | ~p) == []

    def test_truth_table_tautology(self):
        p, q = Var("p"), Var("q")
        assert truth_table_tautology(p | ~p)
        assert not truth_table_tautology(p | q)
        assert truth_table_tautology(TOP)
        assert not truth_table_tautology(BOTTOM)

    def test_truth_table_cap(self):
        big = OrF(*[Var(f"v{i}") for i in range(25)])
        with pytest.raises(TautologyError):
            truth_table_tautology(big)


class TestDPLL:
    def test_satisfiable_returns_model(self):
        p, q = Var("p"), Var("q")
        model = dpll_satisfiable(to_cnf(p & ~q))
        assert model is not None and model["p"] is True and model["q"] is False

    def test_unsatisfiable(self):
        p = Var("p")
        assert dpll_satisfiable(to_cnf(p & ~p)) is None

    def test_is_tautology_and_is_satisfiable(self):
        p, q = Var("p"), Var("q")
        assert is_tautology((p & q) | ~p | ~q)
        assert not is_tautology(p | q)
        assert is_satisfiable(p | q)
        assert not is_satisfiable(p & ~p)

    def test_statistics_collected(self):
        p, q, r = Var("p"), Var("q"), Var("r")
        statistics = DPLLStatistics()
        is_tautology((p | q | r) | ~p, statistics)
        assert statistics.unit_propagations + statistics.decisions + statistics.pure_literal_eliminations >= 0

    def test_pigeonhole_style_instance(self):
        """A slightly larger unsatisfiable instance exercises branching."""
        variables = [Var(f"x{i}") for i in range(6)]
        at_least_one = OrF(*variables)
        at_most_zero = AndF(*[NotF(v) for v in variables])
        assert dpll_satisfiable(to_cnf(at_least_one & at_most_zero)) is None


# ---------------------------------------------------------------------------
# Abstraction + interval layers
# ---------------------------------------------------------------------------

def _emp_binding(tel=NI, sex="F"):
    return {"e": XTuple({"NAME": "BROWN", "SEX": sex, "TEL#": tel})}


def _figure1_predicate(strict=True):
    greater = ">" if strict else ">="
    return Or(
        And(
            Comparison(AttributeRef("e", "SEX"), "=", Constant("F")),
            Comparison(AttributeRef("e", "TEL#"), greater, Constant(2634000)),
        ),
        Comparison(AttributeRef("e", "TEL#"), "<", Constant(2634000)),
    )


class TestAbstraction:
    def test_known_comparisons_fold_to_constants(self):
        predicate = _figure1_predicate()
        abstraction = abstract_predicate(predicate, _emp_binding(sex="M"))
        assert len(abstraction.atoms) == 2  # the two TEL# comparisons

    def test_identical_comparisons_share_a_variable(self):
        predicate = Or(
            Comparison(AttributeRef("e", "TEL#"), ">", Constant(5)),
            Comparison(AttributeRef("e", "TEL#"), ">", Constant(5)),
        )
        abstraction = abstract_predicate(predicate, _emp_binding())
        assert len(abstraction.atoms) == 1

    def test_ground_binding_has_no_atoms(self):
        predicate = _figure1_predicate()
        abstraction = abstract_predicate(predicate, _emp_binding(tel=2634001))
        assert not abstraction.atoms
        assert abstraction.formula.evaluate({})


class TestIntervalAnalysis:
    def test_figure1_weak_variant_is_tautology(self):
        """TEL# ≥ k ∨ TEL# < k is true whatever the (unknown) TEL# is."""
        result = analyse(_figure1_predicate(strict=False), _emp_binding())
        assert result.supported and result.is_tautology

    def test_figure1_strict_variant_is_not(self):
        """TEL# > k ∨ TEL# < k fails at TEL# = k — the region analysis finds it."""
        result = analyse(_figure1_predicate(strict=True), _emp_binding())
        assert result.supported and result.is_tautology is False

    def test_appendix_inequality_example(self):
        """t.A > 3 ∧ (t.B < 12 ∨ t.B > t.A) with A known in (3, 12) and B null."""
        predicate = And(
            Comparison(AttributeRef("t", "A"), ">", Constant(3)),
            Or(
                Comparison(AttributeRef("t", "B"), "<", Constant(12)),
                Comparison(AttributeRef("t", "B"), ">", AttributeRef("t", "A")),
            ),
        )
        binding = {"t": XTuple(A=7)}
        result = analyse(predicate, binding)
        assert result.supported and result.is_tautology

        outside = analyse(predicate, {"t": XTuple(A=20)})
        assert outside.supported and outside.is_tautology is False

    def test_two_null_terms_not_supported(self):
        predicate = Comparison(AttributeRef("t", "A"), "=", AttributeRef("t", "B"))
        result = analyse(predicate, {"t": XTuple()})
        assert not result.supported

    def test_equality_only_domain_reasoning(self):
        predicate = Or(
            Comparison(AttributeRef("t", "A"), "=", Constant("x")),
            Comparison(AttributeRef("t", "A"), "!=", Constant("x")),
        )
        result = analyse(predicate, {"t": XTuple()})
        assert result.supported and result.is_tautology

    def test_no_nulls_direct_evaluation(self):
        predicate = Comparison(AttributeRef("t", "A"), ">", Constant(1))
        result = analyse(predicate, {"t": XTuple(A=5)})
        assert result.supported and result.is_tautology


# ---------------------------------------------------------------------------
# Detector + unknown-interpretation evaluation
# ---------------------------------------------------------------------------

class TestDetector:
    def test_propositional_layer_confirms_syntactic_tautology(self):
        telgt = Comparison(AttributeRef("e", "TEL#"), ">", Constant(5))
        predicate = Or(telgt, Not(telgt))
        verdict = TautologyDetector().detect(predicate, _emp_binding())
        assert verdict.is_tautology and verdict.method == "propositional"

    def test_interval_layer_decides_arithmetic_tautology(self):
        verdict = TautologyDetector().detect(_figure1_predicate(strict=False), _emp_binding())
        assert verdict.is_tautology and verdict.method == "interval"

    def test_brute_force_with_constraints(self):
        """Figure 2's flavour: the schema constraint makes the clause a tautology."""
        predicate = Comparison(AttributeRef("e", "MGR#"), "!=", Constant(1120))
        binding = {"e": XTuple({"E#": 1120, "NAME": "SMITH"})}
        no_self_management = BindingConstraint(
            ["e"], lambda b: b["e"]["MGR#"] != b["e"]["E#"] or b["e"]["MGR#"] is NI
        )
        detector = TautologyDetector(
            domains={"MGR#": [1120, 2235, 1255]},
            constraints=as_detector_constraints([no_self_management]),
        )
        verdict = detector.detect(predicate, binding)
        assert verdict.is_tautology and verdict.method == "brute-force"

        unconstrained = TautologyDetector(domains={"MGR#": [1120, 2235, 1255]})
        assert unconstrained.detect(predicate, binding).is_tautology is False

    def test_undecided_without_domains(self):
        predicate = Comparison(AttributeRef("e", "COLOUR"), "=", AttributeRef("e", "SHADE"))
        verdict = TautologyDetector().detect(predicate, {"e": XTuple()})
        assert verdict.is_tautology is None
        assert verdict.method == "undecided"

    def test_brute_force_cap(self):
        predicate = Comparison(AttributeRef("e", "X"), "=", Constant(1))
        detector = TautologyDetector(domains={"X": list(range(1000))})
        with pytest.raises(TautologyError):
            detector.brute_force_check(predicate, {"e": XTuple()}, max_substitutions=10)

    def test_ground_binding_short_circuits(self):
        predicate = Comparison(AttributeRef("e", "A"), "=", Constant(1))
        verdict = TautologyDetector().detect(predicate, {"e": XTuple(A=1)})
        assert verdict.is_tautology and verdict.method == "ground"


class TestUnknownLowerBound:
    def test_figure1_weak_variant_includes_brown(self, emp_db):
        from repro.quel import compile_query
        from repro.datagen import FIGURE_1_QUERY

        weak = FIGURE_1_QUERY.replace("e.TEL# > 2634000", "e.TEL# >= 2634000")
        analyzed = compile_query(weak, emp_db)
        unknown = evaluate_unknown_lower_bound(analyzed.query, TautologyDetector())
        names = {t["e_NAME"] for t in unknown.rows()}
        assert names == {"JONES", "BROWN"}

    def test_ni_interpretation_excludes_brown(self, emp_db):
        from repro.core.query import evaluate_lower_bound
        from repro.quel import compile_query
        from repro.datagen import FIGURE_1_QUERY

        weak = FIGURE_1_QUERY.replace("e.TEL# > 2634000", "e.TEL# >= 2634000")
        analyzed = compile_query(weak, emp_db)
        names = {t["e_NAME"] for t in evaluate_lower_bound(analyzed.query).rows()}
        assert names == {"JONES"}

    def test_unknown_bound_always_contains_ni_bound(self, emp_db):
        from repro.core.query import evaluate_lower_bound
        from repro.quel import compile_query
        from repro.datagen import FIGURE_1_QUERY

        analyzed = compile_query(FIGURE_1_QUERY, emp_db)
        ni_bound = evaluate_lower_bound(analyzed.query)
        unknown_bound = evaluate_unknown_lower_bound(analyzed.query, TautologyDetector())
        assert unknown_bound.contains(ni_bound)
