"""Property-based agreement between the dominance engine and the oracles.

Every engine-backed production path must agree *exactly* with the
definitional forms it replaced, over randomized relations of varying
schema width and null fraction:

* :func:`repro.core.engine.bulk_reduce` (behind ``Relation.minimal`` /
  ``reduce_rows``) ≡ :func:`repro.core.minimal.reduce_rows_naive`;
* :func:`repro.core.setops.difference` ≡ the nested-loop (4.8) form
  :func:`repro.core.setops.difference_naive`;
* :func:`repro.core.setops.x_intersection` ≡ the full-meet-product (4.7)
  form :func:`repro.core.setops.x_intersection_naive`, and its
  x-membership matches the definitional oracle
  :func:`repro.core.setops.x_membership_intersection` (Definition 4.2);
* union's x-membership matches :func:`x_membership_union` (4.1);
* ``Relation.subsumes`` / ``x_contains`` ≡ the all-rows/any-row scans of
  Definition 4.1 / Proposition 4.2;
* the storage layer's live :class:`DominanceIndex` tracks table mutations.

These are the "no semantic drift from Definitions 3.1 / 4.1–4.8"
guarantees the engine PR promises.
"""

from hypothesis import given, settings, strategies as st

from repro import Relation, XTuple
from repro.core.engine import DominanceIndex, bulk_reduce
from repro.core.minimal import reduce_rows, reduce_rows_naive
from repro.core.setops import (
    difference,
    difference_naive,
    union,
    x_intersection,
    x_intersection_naive,
    x_membership_intersection,
    x_membership_union,
)
from repro.storage.table import Table


ATTRIBUTES = ("A", "B", "C", "D", "E")
#: None becomes ni, so null fraction varies freely with the draw.
VALUES = st.one_of(st.none(), st.integers(min_value=0, max_value=3))


@st.composite
def xtuples(draw, attributes=ATTRIBUTES):
    data = {}
    for attribute in attributes:
        value = draw(VALUES)
        if value is not None:
            data[attribute] = value
    return XTuple(data)


@st.composite
def relations(draw, name="R"):
    """A relation over a random prefix of ATTRIBUTES with random rows."""
    width = draw(st.integers(min_value=1, max_value=len(ATTRIBUTES)))
    attributes = ATTRIBUTES[:width]
    rows = draw(st.lists(xtuples(attributes), max_size=14))
    relation = Relation(attributes, name=name, validate=False)
    for row in rows:
        relation.add(row)
    return relation


def same_width_pair():
    """Two relations over the same schema (for the set operations)."""
    return st.integers(min_value=1, max_value=len(ATTRIBUTES)).flatmap(
        lambda width: st.tuples(
            st.lists(xtuples(ATTRIBUTES[:width]), max_size=14),
            st.lists(xtuples(ATTRIBUTES[:width]), max_size=14),
            st.just(ATTRIBUTES[:width]),
        )
    )


def build(attributes, rows, name):
    relation = Relation(attributes, name=name, validate=False)
    for row in rows:
        relation.add(row)
    return relation


class TestMinimalFormAgreement:
    @given(st.lists(xtuples(), max_size=20))
    def test_bulk_reduce_matches_naive(self, rows):
        assert set(bulk_reduce(rows)) == set(reduce_rows_naive(rows))

    @given(st.lists(xtuples(), max_size=20))
    def test_dispatcher_matches_naive(self, rows):
        assert set(reduce_rows(rows)) == set(reduce_rows_naive(rows))

    @given(relations())
    def test_minimal_relation_is_minimal_and_equivalent(self, relation):
        minimal = relation.minimal()
        assert minimal.is_minimal() or not minimal.tuples()
        assert minimal.equivalent_to(relation)


class TestSetOperationAgreement:
    @given(same_width_pair())
    def test_difference_matches_naive(self, pair):
        rows1, rows2, attributes = pair
        r1 = build(attributes, rows1, "L")
        r2 = build(attributes, rows2, "R")
        engine = difference(r1, r2)
        naive = difference_naive(r1, r2)
        assert engine.tuples() == naive.tuples()

    @given(same_width_pair())
    def test_difference_unminimised_matches_naive(self, pair):
        rows1, rows2, attributes = pair
        r1 = build(attributes, rows1, "L")
        r2 = build(attributes, rows2, "R")
        assert difference(r1, r2, minimize=False).tuples() == \
            difference_naive(r1, r2, minimize=False).tuples()

    @given(same_width_pair())
    def test_x_intersection_matches_naive(self, pair):
        rows1, rows2, attributes = pair
        r1 = build(attributes, rows1, "L")
        r2 = build(attributes, rows2, "R")
        engine = x_intersection(r1, r2)
        naive = x_intersection_naive(r1, r2)
        assert engine.tuples() == naive.tuples()

    # The membership oracles are compared on non-null candidates only:
    # reduction to minimal form deliberately drops the null tuple
    # (Definition 4.6 — it carries no information), so a relation like
    # {null} minimises to {} and literal Proposition-4.2 x-membership of
    # the null tuple is not preserved.  The seed implementations had the
    # identical boundary; it is a property of minimisation, not of the
    # engine routing.

    @given(same_width_pair(), st.lists(xtuples(), max_size=6))
    def test_x_intersection_matches_membership_oracle(self, pair, candidates):
        rows1, rows2, attributes = pair
        candidates = [c for c in candidates if not c.is_null_tuple()]
        r1 = build(attributes, rows1, "L")
        r2 = build(attributes, rows2, "R")
        result = x_intersection(r1, r2)
        oracle = x_membership_intersection(r1, r2, candidates)
        for candidate in candidates:
            assert result.x_contains(candidate) == (candidate in oracle)

    @given(same_width_pair(), st.lists(xtuples(), max_size=6))
    def test_union_matches_membership_oracle(self, pair, candidates):
        rows1, rows2, attributes = pair
        candidates = [c for c in candidates if not c.is_null_tuple()]
        r1 = build(attributes, rows1, "L")
        r2 = build(attributes, rows2, "R")
        result = union(r1, r2)
        oracle = x_membership_union(r1, r2, candidates)
        for candidate in candidates:
            assert result.x_contains(candidate) == (candidate in oracle)


class TestSubsumptionAgreement:
    @given(relations(), relations())
    def test_subsumes_matches_definition(self, r1, r2):
        expected = all(
            t.is_null_tuple() or any(r.more_informative_than(t) for r in r1.tuples())
            for t in r2.tuples()
        )
        assert r1.subsumes(r2) == expected

    @given(relations(), st.lists(xtuples(), max_size=6))
    def test_x_contains_matches_definition(self, relation, probes):
        relation.subsumes(relation)  # force the indexed probe path
        for probe in probes:
            expected = any(r.more_informative_than(probe) for r in relation.tuples())
            assert relation.x_contains(probe) == expected

    @given(st.lists(xtuples(), max_size=16), xtuples())
    def test_index_probes_match_definition(self, rows, probe):
        index = DominanceIndex(rows)
        unique = set(rows)
        assert set(index.probe_dominators(probe)) == {
            r for r in unique if r.more_informative_than(probe)
        }
        assert set(index.probe_dominated(probe)) == {
            r for r in unique if probe.more_informative_than(r)
        }


class TestTableLiveIndex:
    @given(st.lists(xtuples(("A", "B", "C")), max_size=10),
           st.lists(xtuples(("A", "B", "C")), max_size=4))
    @settings(max_examples=40)
    def test_live_index_tracks_mutations(self, inserts, deletes):
        table = Table(["A", "B", "C"], name="T")
        for row in inserts:
            if not row.is_null_tuple():
                table.insert(row)
        for target in deletes:
            # (4.8) deletion: removes exactly the rows the target subsumes.
            expected_removed = {
                r for r in table.rows() if target.more_informative_than(r)
            }
            removed = table.delete(target)
            assert removed == len(expected_removed)
        assert set(table.dominance.probe_dominators(XTuple())) == set(table.rows())
        for row in table.rows():
            assert table.x_contains(row)
