"""Unit tests for product, θ-joins, equi-joins and the union-join."""

import pytest

from repro import NI, Relation, XRelation, XTuple
from repro.core.algebra import (
    join_on,
    product,
    rename,
    theta_join,
    union_join,
)
from repro.core.errors import AlgebraError, AttributeNotFound


@pytest.fixture
def employees():
    return Relation.from_rows(
        ["E#", "DEPT"],
        [(1, "sales"), (2, "eng"), (3, None)],
        name="E",
    )


@pytest.fixture
def departments():
    return Relation.from_rows(
        ["DNAME", "FLOOR"],
        [("sales", 1), ("eng", 2), ("ops", 3)],
        name="D",
    )


class TestProduct:
    def test_cardinality(self, employees, departments):
        result = product(employees, departments)
        assert len(result) == 9

    def test_rows_are_tuple_joins(self, employees, departments):
        result = product(employees, departments)
        assert XTuple({"E#": 1, "DEPT": "sales", "DNAME": "eng", "FLOOR": 2}) in result.rows()

    def test_null_rows_excluded(self, departments):
        with_null_row = Relation.from_rows(["E#", "DEPT"], [(None, None), (1, "x")], name="E")
        result = product(with_null_row, departments)
        assert len(result) == 3

    def test_overlapping_schemas_rejected(self, employees):
        other = Relation.from_rows(["DEPT", "FLOOR"], [("sales", 1)])
        with pytest.raises(AlgebraError):
            product(employees, other)

    def test_product_with_empty_is_empty(self, employees):
        assert len(product(employees, Relation.empty(["X"]))) == 0


class TestThetaJoin:
    def test_equality_theta_join(self, employees, departments):
        result = theta_join(employees, departments, "DEPT", "=", "DNAME")
        assert {t["E#"] for t in result.rows()} == {1, 2}

    def test_rows_with_null_join_column_excluded(self, employees, departments):
        result = theta_join(employees, departments, "DEPT", "=", "DNAME")
        assert 3 not in {t["E#"] for t in result.rows()}

    def test_inequality_join(self):
        left = Relation.from_rows(["A"], [(1,), (5,)], name="L")
        right = Relation.from_rows(["B"], [(3,), (None,)], name="R")
        result = theta_join(left, right, "A", "<", "B")
        assert {t["A"] for t in result.rows()} == {1}


class TestJoinOn:
    def test_basic_equijoin(self):
        left = Relation.from_rows(["A", "B"], [(1, "x"), (2, "y"), (3, None)], name="L")
        right = Relation.from_rows(["B", "C"], [("x", 10), ("y", 20), (None, 30)], name="R")
        result = join_on(left, right, ["B"])
        assert XTuple(A=1, B="x", C=10) in result.rows()
        assert XTuple(A=2, B="y", C=20) in result.rows()
        assert len(result) == 2

    def test_join_excludes_rows_not_total_on_join_columns(self):
        """The footnote-7 policy: a null join value joins with nothing."""
        left = Relation.from_rows(["A", "B"], [(1, None)], name="L")
        right = Relation.from_rows(["B", "C"], [(None, 1), ("x", 2)], name="R")
        assert len(join_on(left, right, ["B"])) == 0

    def test_join_requires_join_attributes_on_both_sides(self):
        left = Relation.from_rows(["A"], [(1,)], name="L")
        right = Relation.from_rows(["B"], [(2,)], name="R")
        with pytest.raises(AttributeNotFound):
            join_on(left, right, ["B"])

    def test_extra_overlap_rejected(self):
        left = Relation.from_rows(["A", "B", "C"], [(1, 2, 3)], name="L")
        right = Relation.from_rows(["B", "C"], [(2, 3)], name="R")
        with pytest.raises(AlgebraError):
            join_on(left, right, ["B"])

    def test_empty_join_set_rejected(self):
        left = Relation.from_rows(["A"], [(1,)], name="L")
        with pytest.raises(AlgebraError):
            join_on(left, left, [])

    def test_multi_attribute_join(self):
        left = Relation.from_rows(["A", "B", "X"], [(1, 2, "l")], name="L")
        right = Relation.from_rows(["A", "B", "Y"], [(1, 2, "r"), (1, 3, "no")], name="R")
        result = join_on(left, right, ["A", "B"])
        assert len(result) == 1
        assert XTuple(A=1, B=2, X="l", Y="r") in result.rows()


class TestUnionJoin:
    def test_keeps_dangling_rows(self):
        """The information-preserving (outer) join of Section 5."""
        left = Relation.from_rows(["A", "B"], [(1, "x"), (2, "zzz")], name="L")
        right = Relation.from_rows(["B", "C"], [("x", 10), ("www", 20)], name="R")
        result = union_join(left, right, ["B"])
        assert XTuple(A=1, B="x", C=10) in result.rows()
        assert XTuple(A=2, B="zzz") in result.rows()
        assert XTuple(B="www", C=20) in result.rows()

    def test_matched_rows_are_subsumed_away(self):
        left = Relation.from_rows(["A", "B"], [(1, "x")], name="L")
        right = Relation.from_rows(["B", "C"], [("x", 10)], name="R")
        result = union_join(left, right, ["B"])
        assert len(result) == 1  # only the joined row survives minimisation

    def test_union_join_subsumes_both_operands(self):
        left = Relation.from_rows(["A", "B"], [(1, "x"), (2, "y")], name="L")
        right = Relation.from_rows(["B", "C"], [("x", 10), ("q", 5)], name="R")
        result = union_join(left, right, ["B"])
        assert result.contains(XRelation(left))
        assert result.contains(XRelation(right))

    def test_union_join_with_empty_side(self):
        left = Relation.from_rows(["A", "B"], [(1, "x")], name="L")
        right = Relation.empty(["B", "C"])
        result = union_join(left, right, ["B"])
        assert result == XRelation(left)

    def test_comparison_with_codd_outer_join(self):
        """Same information content as the classical outer join on this data."""
        from repro.codd.algebra import outer_join

        left = Relation.from_rows(["A", "B"], [(1, "x"), (2, "y")], name="L")
        right = Relation.from_rows(["BB", "C"], [("x", 10), ("z", 30)], name="R")
        classical = outer_join(left, right, "B", "BB")
        renamed = rename(right, {"BB": "B"})
        ours = union_join(left, renamed.representation, ["B"])
        assert ours.x_contains(XTuple(A=1, B="x", C=10))
        assert ours.x_contains(XTuple(A=2, B="y"))
        assert ours.x_contains(XTuple(B="z", C=30))
        # The classical outer join keeps the same facts (modulo column naming).
        assert any(t["A"] == 1 and t["C"] == 10 for t in classical.tuples())


class TestRenameForSelfJoins:
    def test_self_theta_join_via_rename(self, emp_db):
        emp = emp_db["EMP"]
        managers = rename(emp, {a: f"m.{a}" for a in emp.schema.attributes})
        result = theta_join(emp, managers, "MGR#", "=", "m.E#")
        pairs = {(t["NAME"], t["m.NAME"]) for t in result.rows()}
        assert ("SMITH", "JONES") in pairs
        assert ("GREEN", "ADAMS") in pairs
