"""Unit tests for the QUEL parser."""

import pytest

from repro.core.errors import QuelParseError
from repro.quel.ast_nodes import AndExpr, ColumnRef, ComparisonExpr, NotExpr, OrExpr
from repro.quel.parser import parse


class TestRangeAndTarget:
    def test_single_range(self):
        q = parse("range of e is EMP retrieve (e.NAME)")
        assert len(q.ranges) == 1
        assert q.ranges[0].variable == "e"
        assert q.ranges[0].relation == "EMP"

    def test_multiple_ranges(self):
        q = parse("range of e is EMP range of m is EMP retrieve (e.NAME)")
        assert [r.variable for r in q.ranges] == ["e", "m"]
        assert q.range_for("m") is not None
        assert q.range_for("zzz") is None

    def test_target_list(self):
        q = parse("range of e is EMP retrieve (e.NAME, e.E#)")
        assert [t.output_name() for t in q.target] == ["e_NAME", "e_E#"]

    def test_labelled_target(self):
        q = parse("range of e is EMP retrieve (who = e.NAME)")
        assert q.target[0].label == "who"
        assert q.target[0].output_name() == "who"

    def test_retrieve_unique_into(self):
        q = parse("range of e is EMP retrieve unique into RESULT (e.NAME)")
        assert q.unique and q.into == "RESULT"

    def test_missing_parenthesis(self):
        with pytest.raises(QuelParseError):
            parse("range of e is EMP retrieve e.NAME")

    def test_missing_retrieve(self):
        with pytest.raises(QuelParseError):
            parse("range of e is EMP")

    def test_trailing_garbage(self):
        with pytest.raises(QuelParseError):
            parse("range of e is EMP retrieve (e.NAME) garbage here")


class TestWhereClause:
    def test_simple_comparison(self):
        q = parse('range of e is EMP retrieve (e.NAME) where e.SEX = "F"')
        assert isinstance(q.where, ComparisonExpr)
        assert q.where.op == "="
        assert isinstance(q.where.left, ColumnRef)
        assert q.where.right.value == "F"

    def test_precedence_and_binds_tighter_than_or(self):
        q = parse(
            'range of e is EMP retrieve (e.NAME) '
            'where e.A = 1 and e.B = 2 or e.C = 3'
        )
        assert isinstance(q.where, OrExpr)
        assert isinstance(q.where.operands[0], AndExpr)

    def test_parentheses_override_precedence(self):
        q = parse(
            'range of e is EMP retrieve (e.NAME) '
            'where e.A = 1 and (e.B = 2 or e.C = 3)'
        )
        assert isinstance(q.where, AndExpr)
        assert isinstance(q.where.operands[1], OrExpr)

    def test_not(self):
        q = parse('range of e is EMP retrieve (e.NAME) where not e.A = 1')
        assert isinstance(q.where, NotExpr)

    def test_double_not(self):
        q = parse('range of e is EMP retrieve (e.NAME) where not not e.A = 1')
        assert isinstance(q.where, NotExpr)
        assert isinstance(q.where.operand, NotExpr)

    def test_constant_on_left(self):
        q = parse('range of e is EMP retrieve (e.NAME) where 5 < e.A')
        assert q.where.left.value == 5

    def test_column_to_column_comparison(self):
        q = parse('range of e is EMP range of m is EMP retrieve (e.NAME) where e.MGR# = m.E#')
        assert isinstance(q.where.left, ColumnRef) and isinstance(q.where.right, ColumnRef)

    def test_missing_comparator(self):
        with pytest.raises(QuelParseError):
            parse('range of e is EMP retrieve (e.NAME) where e.A 5')

    def test_missing_operand(self):
        with pytest.raises(QuelParseError):
            parse('range of e is EMP retrieve (e.NAME) where e.A = and e.B = 1')

    def test_unterminated_string_in_where(self):
        from repro.core.errors import QuelLexError
        with pytest.raises(QuelLexError):
            parse('range of e is EMP retrieve (e.NAME) where e.SEX = "F')

    def test_unclosed_parenthesis(self):
        with pytest.raises(QuelParseError):
            parse('range of e is EMP retrieve (e.NAME) where (e.A = 1 or e.B = 2')

    def test_parameter_operand(self):
        from repro.quel.ast_nodes import Parameter
        q = parse('range of e is EMP retrieve (e.NAME) where e.A = $a and $b <= e.B')
        left, right = q.where.operands
        assert isinstance(left.right, Parameter) and left.right.name == "a"
        assert isinstance(right.left, Parameter) and right.left.name == "b"

    def test_parameter_not_allowed_as_target(self):
        with pytest.raises(QuelParseError):
            parse('range of e is EMP retrieve ($a)')

    def test_trailing_tokens_after_where(self):
        with pytest.raises(QuelParseError):
            parse('range of e is EMP retrieve (e.NAME) where e.A = 1 e.B')


class TestPaperQueries:
    def test_figure_one_shape(self):
        from repro.datagen import FIGURE_1_QUERY
        q = parse(FIGURE_1_QUERY)
        assert [t.output_name() for t in q.target] == ["e_NAME", "e_E#"]
        assert isinstance(q.where, OrExpr)
        assert isinstance(q.where.operands[0], AndExpr)

    def test_figure_two_shape(self):
        from repro.datagen import FIGURE_2_QUERY
        q = parse(FIGURE_2_QUERY)
        assert len(q.ranges) == 2
        assert isinstance(q.where, AndExpr)
        assert len(q.where.operands) == 4

    def test_round_trip_str_is_parseable(self):
        from repro.datagen import FIGURE_2_QUERY
        q = parse(FIGURE_2_QUERY)
        again = parse(str(q).replace("not ", "not "))
        assert len(again.ranges) == 2
