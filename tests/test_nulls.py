"""Unit tests for the null taxonomy (repro.core.nulls)."""

import copy
import pickle

import pytest

from repro.core.nulls import (
    NI,
    MarkedNull,
    NoInformationNull,
    NonexistentNull,
    UnknownNull,
    coerce_null,
    is_ni,
    is_nonnull,
    is_null,
)


class TestNoInformationNull:
    def test_singleton(self):
        assert NoInformationNull() is NI

    def test_falsy(self):
        assert not NI

    def test_equality_reflexive(self):
        assert NI == NoInformationNull()
        assert not (NI != NoInformationNull())

    def test_not_equal_to_values(self):
        assert NI != 0
        assert NI != ""
        assert NI != "ni"

    def test_not_equal_to_other_null_kinds(self):
        assert NI != UnknownNull()
        assert NI != NonexistentNull()

    def test_str_is_dash(self):
        assert str(NI) == "-"

    def test_repr(self):
        assert repr(NI) == "ni"

    def test_hashable_and_stable(self):
        assert hash(NI) == hash(NoInformationNull())
        assert len({NI, NoInformationNull()}) == 1

    def test_copy_preserves_identity(self):
        assert copy.copy(NI) is NI
        assert copy.deepcopy(NI) is NI

    def test_pickle_preserves_singleton(self):
        assert pickle.loads(pickle.dumps(NI)) is NI


class TestOtherNulls:
    def test_unknown_equality(self):
        assert UnknownNull() == UnknownNull()
        assert hash(UnknownNull()) == hash(UnknownNull())

    def test_nonexistent_equality(self):
        assert NonexistentNull() == NonexistentNull()

    def test_marked_null_labelled_equality(self):
        assert MarkedNull("x") == MarkedNull("x")
        assert MarkedNull("x") != MarkedNull("y")

    def test_marked_null_requires_label(self):
        with pytest.raises(ValueError):
            MarkedNull("")

    def test_marked_null_str(self):
        assert str(MarkedNull("m1")) == "@m1"

    def test_all_null_kinds_falsy(self):
        assert not UnknownNull()
        assert not NonexistentNull()
        assert not MarkedNull("a")


class TestPredicates:
    @pytest.mark.parametrize("value", [NI, None, UnknownNull(), NonexistentNull(), MarkedNull("z")])
    def test_is_null_true(self, value):
        assert is_null(value)

    @pytest.mark.parametrize("value", [0, "", False, "x", 3.5, (), []])
    def test_is_null_false(self, value):
        assert not is_null(value)

    def test_is_nonnull(self):
        assert is_nonnull(0)
        assert not is_nonnull(NI)

    def test_is_ni_accepts_none(self):
        assert is_ni(None)
        assert is_ni(NI)
        assert not is_ni(UnknownNull())

    def test_coerce_null_maps_none(self):
        assert coerce_null(None) is NI

    def test_coerce_null_passthrough(self):
        marked = MarkedNull("k")
        assert coerce_null(marked) is marked
        assert coerce_null(42) == 42
