"""Property-based tests for x-relations: lattice laws and algebra invariants."""

from hypothesis import assume, given, settings, strategies as st

from repro import Relation, XRelation, XTuple
from repro.core.algebra import project, select_constant
from repro.core.lattice import check_difference_laws, check_distributivity, check_lattice_laws


ATTRIBUTES = ("A", "B")
VALUES = st.one_of(st.none(), st.integers(min_value=0, max_value=2))


@st.composite
def xtuples(draw):
    data = {}
    for attribute in ATTRIBUTES:
        value = draw(VALUES)
        if value is not None:
            data[attribute] = value
    return XTuple(data)


@st.composite
def xrelations(draw):
    rows = draw(st.lists(xtuples(), max_size=6))
    relation = Relation(ATTRIBUTES, validate=False)
    relation._rows = set(rows)
    return XRelation(relation)


class TestLatticeProperties:
    @given(xrelations(), xrelations(), xrelations())
    @settings(max_examples=40)
    def test_lattice_laws(self, a, b, c):
        assert all(check_lattice_laws(a, b, c).values())

    @given(xrelations(), xrelations(), xrelations())
    @settings(max_examples=40)
    def test_distributivity(self, a, b, c):
        assert all(check_distributivity(a, b, c).values())

    @given(xrelations(), xrelations())
    @settings(max_examples=40)
    def test_containment_is_a_partial_order(self, a, b):
        assert a >= a
        if a >= b and b >= a:
            assert a == b

    @given(xrelations(), xrelations())
    @settings(max_examples=40)
    def test_union_is_least_upper_bound(self, a, b):
        u = a | b
        assert u >= a and u >= b

    @given(xrelations(), xrelations(), xrelations())
    @settings(max_examples=40)
    def test_union_minimality(self, a, b, upper):
        """Proposition 4.4: any common upper bound contains the union."""
        if upper >= a and upper >= b:
            assert upper >= (a | b)

    @given(xrelations(), xrelations(), xrelations())
    @settings(max_examples=40)
    def test_intersection_maximality(self, a, b, lower):
        """Proposition 4.5: any common lower bound is contained in the x-intersection."""
        if a >= lower and b >= lower:
            assert (a & b) >= lower

    @given(xrelations(), xrelations())
    @settings(max_examples=40)
    def test_difference_laws(self, a, b):
        assert all(check_difference_laws(a | b, b).values())

    @given(xrelations(), xrelations())
    @settings(max_examples=40)
    def test_difference_union_covers_minuend(self, a, b):
        """Proposition 4.6 applied to the union: ((a∪b) − b) ∪ b = a∪b."""
        u = a | b
        assert ((u - b) | b) == u

    @given(xrelations())
    @settings(max_examples=40)
    def test_self_difference_is_bottom(self, a):
        assert (a - a).is_empty()


class TestMembershipProperties:
    @given(xrelations(), xrelations(), xtuples())
    @settings(max_examples=60)
    def test_union_membership_definition(self, a, b, t):
        """(4.1): t ∈̂ a∪b iff t ∈̂ a or t ∈̂ b (for non-null t).

        The null tuple is excluded: it carries no information, and the
        paper's Definition 4.1 of subsumption explicitly ignores it, so its
        "membership" is not characterised by Proposition 4.2.
        """
        assume(not t.is_null_tuple())
        assert ((t in (a | b)) == ((t in a) or (t in b)))

    @given(xrelations(), xrelations(), xtuples())
    @settings(max_examples=60)
    def test_intersection_membership_definition(self, a, b, t):
        """(4.2): t ∈̂ a∩̂b iff t ∈̂ a and t ∈̂ b (for non-null t)."""
        assume(not t.is_null_tuple())
        assert ((t in (a & b)) == ((t in a) and (t in b)))

    @given(xrelations(), xtuples())
    @settings(max_examples=60)
    def test_membership_downward_closed(self, a, t):
        if t in a:
            assert t.meet(t) in a  # trivial
            for attribute in list(t.attributes):
                weaker = t.drop([attribute])
                assert weaker in a

    @given(xrelations(), xrelations())
    @settings(max_examples=40)
    def test_containment_characterised_by_membership(self, a, b):
        """a ⊒ b iff every minimal-representation row of b x-belongs to a."""
        expected = all(t in a for t in b.rows())
        assert (a >= b) == expected


class TestAlgebraProperties:
    @given(xrelations())
    @settings(max_examples=40)
    def test_selection_result_is_contained_in_input(self, a):
        selected = select_constant(a, "A", "=", 1)
        assert a >= selected

    @given(xrelations())
    @settings(max_examples=40)
    def test_selection_rows_satisfy_predicate(self, a):
        selected = select_constant(a, "A", "=", 1)
        assert all(t["A"] == 1 for t in selected.rows())

    @given(xrelations())
    @settings(max_examples=40)
    def test_projection_of_projection(self, a):
        assert project(project(a, ["A", "B"]), ["A"]) == project(a, ["A"])

    @given(xrelations(), xrelations())
    @settings(max_examples=40)
    def test_projection_distributes_over_union(self, a, b):
        assert project(a | b, ["A"]) == (project(a, ["A"]) | project(b, ["A"]))

    @given(xrelations(), xrelations())
    @settings(max_examples=40)
    def test_selection_distributes_over_union(self, a, b):
        left = select_constant(a | b, "A", "=", 1)
        right = select_constant(a, "A", "=", 1) | select_constant(b, "A", "=", 1)
        assert left == right
