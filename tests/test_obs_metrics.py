"""Tests for ``repro.obs``: the metrics registry and query tracing.

Three property-based invariants anchor the subsystem (the rest are
deterministic unit tests):

* ``repro_statements_total`` by kind exactly equals the number of
  statements executed of that kind (and the latency histogram's
  ``_count`` agrees);
* a histogram's cumulative bucket counts are monotone and the ``+Inf``
  bucket equals the observation count;
* ``collect()`` round-trips through the Prometheus text renderer —
  every sample value survives ``render_prometheus()`` →
  ``parse_prometheus()`` bit-for-bit, label escaping included.
"""

import logging
import math
from collections import Counter as Tally

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs import (
    ERROR_RATIO_BUCKETS,
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    disabled_registry,
    get_registry,
    parse_prometheus,
    registry_for,
    set_registry,
)
from repro.storage import Database
from repro.storage.wal import CheckpointWorker


def fresh_database(registry=None, rows=5):
    database = Database("obsdb", metrics=registry)
    table = database.create_table("T", ["A", "B"])
    table.insert_many([(i, i % 3) for i in range(rows)])
    return database


# ---------------------------------------------------------------------------
# primitives


class TestPrimitives:
    def test_counter_monotone(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = Gauge()
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.value == 13.0

    def test_histogram_bucket_placement(self):
        histogram = Histogram(buckets=(1.0, 2.0, 5.0))
        for value in (0.5, 1.0, 1.5, 4.0, 99.0):
            histogram.observe(value)
        snapshot = histogram.snapshot()
        # cumulative: le=1 → {0.5, 1.0}; le=2 → +1.5; le=5 → +4.0; +Inf → +99
        assert snapshot["buckets"] == [(1.0, 2), (2.0, 3), (5.0, 4), (math.inf, 5)]
        assert snapshot["count"] == 5
        assert snapshot["sum"] == pytest.approx(106.0)

    def test_latency_buckets_are_log_scaled_1_2_5(self):
        assert LATENCY_BUCKETS[0] == pytest.approx(1e-5)
        assert LATENCY_BUCKETS[-1] == pytest.approx(50.0)
        assert list(LATENCY_BUCKETS) == sorted(LATENCY_BUCKETS)
        assert 1.0 in ERROR_RATIO_BUCKETS  # a perfect estimate has its own edge


# ---------------------------------------------------------------------------
# families and the registry


class TestRegistry:
    def test_family_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("repro_x_total", "x", ("kind",))
        again = registry.counter("repro_x_total", "x", ("kind",))
        assert first is again

    def test_kind_or_label_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", "x", ("kind",))
        with pytest.raises(ValueError):
            registry.gauge("repro_x_total", "x", ("kind",))
        with pytest.raises(ValueError):
            registry.counter("repro_x_total", "x", ("other",))

    def test_labels_validated(self):
        family = MetricsRegistry().counter("repro_x_total", "x", ("kind",))
        with pytest.raises(ValueError):
            family.labels(wrong="retrieve")
        family.labels(kind="retrieve").inc()
        assert family.labels(kind="retrieve").value == 1.0

    def test_disabled_registry_is_noop(self):
        registry = disabled_registry()
        family = registry.counter("repro_x_total", "x", ("kind",))
        child = family.labels(kind="anything-goes")  # not even validated
        child.inc(7)
        child.observe(1.0)
        assert child.value == 0.0
        assert registry.collect() == [
            {"name": "repro_x_total", "type": "counter", "help": "x", "samples": []}
        ]

    def test_registry_for_resolution(self):
        registry = MetricsRegistry()
        database = fresh_database(registry)
        assert registry_for(database) is registry
        assert database.metrics is registry
        assert registry_for(None) is get_registry()
        assert registry_for(fresh_database()) is get_registry()

    def test_set_registry_swaps_the_global(self):
        mine = MetricsRegistry()
        previous = set_registry(mine)
        try:
            assert get_registry() is mine
        finally:
            assert set_registry(previous) is mine

    def test_scrape_callbacks_run_and_prune(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("repro_cb", "cb")
        calls = []

        def live():
            calls.append("live")
            gauge.set(len(calls))

        def dead():
            calls.append("dead")
            return False

        registry.add_callback(live)
        registry.add_callback(dead)
        registry.collect()
        registry.collect()
        # the False-returning callback is pruned after its first run
        assert calls == ["live", "dead", "live"]
        assert gauge.labels().value == 3.0  # len(calls) when live last ran


# ---------------------------------------------------------------------------
# the engine's series (one mixed workload)


class TestEngineSeries:
    def test_mixed_workload_emits_the_catalog(self):
        registry = MetricsRegistry()
        database = fresh_database(registry, rows=20)
        session = database.session()
        session.execute("range of t is T retrieve (t.A) where t.B != 99").rows
        session.execute("append to T (A = 100, B = 1)")
        session.execute("range of t is T replace t (B = 9) where t.A = 0")
        session.execute("range of t is T delete t where t.A = 1")
        with session.transaction():
            session.execute("append to T (A = 101, B = 2)")
        parsed = parse_prometheus(registry.render_prometheus())

        def series(name, **labels):
            return parsed[(name, tuple(sorted(labels.items())))]

        assert series("repro_statements_total", kind="retrieve", outcome="ok") == 1
        assert series("repro_statements_total", kind="append", outcome="ok") == 2
        assert series("repro_statement_seconds_count", kind="retrieve") == 1
        assert series("repro_plan_cache_total", event="miss") >= 1
        assert series("repro_transactions_total", op="begin") == 1
        assert series("repro_transactions_total", op="commit") == 1
        assert series("repro_plans_total", mode="serial") >= 1
        assert series("repro_exec_rows_total") >= 20
        assert series("repro_exec_operator_rows_total", operator="TableScan") >= 20
        assert series("repro_stats_mutations_since_analyze", database="obsdb", table="T") > 0
        assert series("repro_stats_stale", database="obsdb", table="T") == 0

        # push the table past the staleness threshold: the gauge trips
        database.catalog.table("T").statistics.staleness_threshold = 0
        session.execute("append to T (A = 102, B = 0)")
        parsed = parse_prometheus(registry.render_prometheus())
        assert series("repro_stats_stale", database="obsdb", table="T") == 1

    def test_recent_traces_ring_buffer_and_phases(self):
        database = fresh_database(MetricsRegistry())
        from repro.api.session import Session
        session = Session(database, result_cache_size=0)
        session._traces = type(session._traces)(maxlen=3)
        for _ in range(5):
            session.execute("range of t is T retrieve (t.A)").rows
        traces = session.recent_traces()
        assert len(traces) == 3
        assert session.recent_traces(limit=2) == traces[-2:]
        trace = traces[-1]
        assert trace.kind == "retrieve"
        assert trace.outcome == "ok"
        assert set(trace.phases) >= {"parse", "analyze", "execute"}
        assert trace.rows_out == 5
        assert any(step["operator"] == "TableScan" for step in trace.operators)
        as_dict = trace.as_dict()
        assert as_dict["kind"] == "retrieve" and as_dict["rows_out"] == 5

    def test_repeated_retrieve_traces_mark_result_cache_hits(self):
        database = fresh_database(MetricsRegistry())
        session = database.session()
        for _ in range(3):
            session.execute("range of t is T retrieve (t.A)").rows
        trace = session.recent_traces()[-1]
        assert trace.kind == "retrieve"
        assert trace.outcome == "ok"
        assert trace.tags.get("result_cache") == "hit"
        assert trace.rows_out == 5

    def test_slow_query_threshold_marks_and_counts(self, caplog):
        registry = MetricsRegistry()
        database = fresh_database(registry)
        session = database.session()
        session.slow_query_threshold = 0.0  # everything is slow
        with caplog.at_level(logging.WARNING, logger="repro.obs.slow_query"):
            session.execute("range of t is T retrieve (t.A)").rows
        assert session.recent_traces()[-1].slow
        assert "slow query" in caplog.text
        parsed = parse_prometheus(registry.render_prometheus())
        assert parsed[("repro_slow_queries_total", ())] == 1

    def test_failed_statement_counted_by_outcome(self):
        registry = MetricsRegistry()
        database = fresh_database(registry)
        session = database.session()
        with pytest.raises(Exception):
            session.execute("range of t is NOPE retrieve (t.A)")
        parsed = parse_prometheus(registry.render_prometheus())
        assert parsed[("repro_statements_total", (("kind", "retrieve"), ("outcome", "error")))] == 1
        assert session.recent_traces()[-1].outcome == "error"


# ---------------------------------------------------------------------------
# checkpoint-worker failure surfacing (the WAL PR's latched error, exported)


class TestCheckpointWorkerSurfacing:
    def test_errors_surface_as_metrics_and_log_once_per_distinct(self, caplog):
        registry = MetricsRegistry()
        database = fresh_database(registry)
        worker = CheckpointWorker(database)
        boom = RuntimeError("disk full")
        with caplog.at_level(logging.WARNING, logger="repro.storage.wal"):
            worker._record_outcome(boom)
            worker._record_outcome(boom)  # same error: counted, not re-logged
        assert worker.last_error is boom
        assert sum("disk full" in r.message for r in caplog.records) == 1
        parsed = parse_prometheus(registry.render_prometheus())
        assert parsed[("repro_checkpoint_worker_errors_total", ())] == 2
        assert parsed[("repro_checkpoint_worker_failing", ())] == 1

        with caplog.at_level(logging.WARNING, logger="repro.storage.wal"):
            worker._record_outcome(RuntimeError("other"))  # distinct: logged
        assert sum("other" in r.message for r in caplog.records) == 1

        worker._record_outcome(None)  # recovery clears the gauge and dedup
        assert worker.last_error is None
        parsed = parse_prometheus(registry.render_prometheus())
        assert parsed[("repro_checkpoint_worker_failing", ())] == 0
        with caplog.at_level(logging.WARNING, logger="repro.storage.wal"):
            worker._record_outcome(RuntimeError("disk full"))  # re-logged after recovery
        assert sum("disk full" in r.message for r in caplog.records) == 2


# ---------------------------------------------------------------------------
# property-based invariants


STATEMENTS = {
    "retrieve": "range of t is T retrieve (t.A)",
    "append": "append to T (A = 50, B = 1)",
    "delete": "range of t is T delete t where t.A = 999",
    "replace": "range of t is T replace t (B = 7) where t.A = 0",
}


class TestProperties:
    @given(batch=st.lists(st.sampled_from(sorted(STATEMENTS)), min_size=1, max_size=12))
    @settings(max_examples=25, deadline=None)
    def test_statements_total_matches_executed_counts(self, batch):
        registry = MetricsRegistry()
        session = fresh_database(registry).session()
        for kind in batch:
            result = session.execute(STATEMENTS[kind])
            if kind == "retrieve":
                result.rows
        parsed = parse_prometheus(registry.render_prometheus())
        for kind, count in Tally(batch).items():
            labels = (("kind", kind), ("outcome", "ok"))
            assert parsed[("repro_statements_total", labels)] == count
            assert parsed[("repro_statement_seconds_count", (("kind", kind),))] == count

    @given(values=st.lists(
        st.floats(min_value=0.0, max_value=1e3, allow_nan=False),
        min_size=1, max_size=60,
    ))
    @settings(max_examples=50, deadline=None)
    def test_histogram_buckets_sum_to_observation_count(self, values):
        histogram = Histogram(LATENCY_BUCKETS)
        for value in values:
            histogram.observe(value)
        snapshot = histogram.snapshot()
        counts = [count for _, count in snapshot["buckets"]]
        assert counts == sorted(counts)  # cumulative buckets are monotone
        assert snapshot["buckets"][-1][0] == math.inf
        assert counts[-1] == len(values) == snapshot["count"]
        assert snapshot["sum"] == pytest.approx(sum(values))
        # each observation is counted by every bound that covers it
        for bound, count in snapshot["buckets"]:
            assert count == sum(1 for v in values if v <= bound)

    # label values exercise quote-escaping and brace/space edge cases
    # (backslash escaping is covered by the renderer unit tests; the
    # parser's job is only the subset the engine emits)
    label_values = st.text(alphabet='abz019 _"{},=', max_size=8)

    @given(data=st.data())
    @settings(max_examples=50, deadline=None)
    def test_collect_round_trips_through_renderer(self, data):
        registry = MetricsRegistry()
        counter = registry.counter("repro_t_total", "c", ("who",))
        for label, amount in data.draw(
            st.dictionaries(self.label_values, st.integers(0, 10**9), max_size=4)
        ).items():
            counter.labels(who=label).inc(amount)
        registry.gauge("repro_t_gauge", "g").set(
            data.draw(st.floats(-1e9, 1e9, allow_nan=False))
        )
        histogram = registry.histogram("repro_t_seconds", "h")
        for value in data.draw(st.lists(st.floats(0, 100, allow_nan=False), max_size=20)):
            histogram.observe(value)

        parsed = parse_prometheus(registry.render_prometheus())
        for family in registry.collect():
            for sample in family["samples"]:
                labels = tuple(sorted(sample["labels"].items()))
                if family["type"] == "histogram":
                    assert parsed[(family["name"] + "_count", labels)] == sample["count"]
                    assert parsed[(family["name"] + "_sum", labels)] == sample["sum"]
                    for bound, count in sample["buckets"]:
                        bucket_labels = tuple(sorted(
                            list(sample["labels"].items()) + [("le", _fmt(bound))]
                        ))
                        assert parsed[(family["name"] + "_bucket", bucket_labels)] == count
                else:
                    assert parsed[(family["name"], labels)] == sample["value"]


def _fmt(bound):
    from repro.obs.metrics import _format_bound

    return _format_bound(bound)
