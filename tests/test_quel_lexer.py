"""Unit tests for the QUEL lexer."""

import pytest

from repro.core.errors import QuelLexError
from repro.quel.lexer import tokenize
from repro.quel.tokens import TokenType


def kinds(text):
    return [t.type for t in tokenize(text)]


def values(text):
    return [t.value for t in tokenize(text) if t.type is not TokenType.END]


class TestBasics:
    def test_keywords_case_insensitive(self):
        assert kinds("RANGE of e IS emp")[:4] == [
            TokenType.RANGE, TokenType.OF, TokenType.IDENTIFIER, TokenType.IS
        ]

    def test_identifier_with_hash(self):
        tokens = tokenize("e.TEL#")
        assert tokens[0].value == "e"
        assert tokens[1].type is TokenType.DOT
        assert tokens[2].value == "TEL#"

    def test_numbers(self):
        tokens = tokenize("2634000 3.5")
        assert tokens[0].value == 2634000 and isinstance(tokens[0].value, int)
        assert tokens[1].value == 3.5 and isinstance(tokens[1].value, float)

    def test_strings_double_and_single_quoted(self):
        assert values('"F" \'M\'') == ["F", "M"]

    def test_string_escape(self):
        assert values(r'"a\"b"') == ['a"b']

    def test_unterminated_string(self):
        with pytest.raises(QuelLexError):
            tokenize('"oops')

    def test_end_token_always_present(self):
        assert tokenize("")[-1].type is TokenType.END
        assert tokenize("retrieve")[-1].type is TokenType.END


class TestOperators:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("=", TokenType.EQUALS),
            ("==", TokenType.EQUALS),
            ("!=", TokenType.NOT_EQUALS),
            ("<>", TokenType.NOT_EQUALS),
            ("≠", TokenType.NOT_EQUALS),
            ("<", TokenType.LESS),
            ("<=", TokenType.LESS_EQUAL),
            (">", TokenType.GREATER),
            (">=", TokenType.GREATER_EQUAL),
        ],
    )
    def test_comparison_operators(self, text, expected):
        assert kinds(text)[0] is expected

    def test_symbolic_connectives(self):
        assert kinds("∧ ∨ ¬")[:3] == [TokenType.AND, TokenType.OR, TokenType.NOT]

    def test_word_connectives(self):
        assert kinds("and or not")[:3] == [TokenType.AND, TokenType.OR, TokenType.NOT]

    def test_bare_bang_rejected(self):
        with pytest.raises(QuelLexError):
            tokenize("!")

    def test_unexpected_character(self):
        with pytest.raises(QuelLexError) as excinfo:
            tokenize("retrieve $")
        assert "line 1" in str(excinfo.value)

    def test_unknown_comparator_character(self):
        with pytest.raises(QuelLexError):
            tokenize("e.A ~ 5")

    def test_bang_followed_by_non_equals(self):
        with pytest.raises(QuelLexError):
            tokenize("e.A !< 5")


class TestParameters:
    def test_parameter_token(self):
        tokens = tokenize("$rate")
        assert tokens[0].type is TokenType.PARAMETER
        assert tokens[0].value == "rate"

    def test_parameter_describe(self):
        assert tokenize("$k")[0].describe() == "PARAMETER($k)"

    def test_parameter_needs_a_name(self):
        with pytest.raises(QuelLexError):
            tokenize("$1")

    def test_parameter_name_with_underscore_and_digits(self):
        assert tokenize("$max_sal2")[0].value == "max_sal2"

    def test_dml_keywords(self):
        assert kinds("append to delete replace")[:4] == [
            TokenType.APPEND, TokenType.TO, TokenType.DELETE, TokenType.REPLACE
        ]


class TestCommentsAndPositions:
    def test_line_comment(self):
        assert values("retrieve -- a comment\n (e.A)") == ["retrieve", "(", "e", ".", "A", ")"]

    def test_block_comment(self):
        assert values("retrieve /* hi\nthere */ (e.A)")[0] == "retrieve"

    def test_unterminated_block_comment(self):
        with pytest.raises(QuelLexError):
            tokenize("/* never closed")

    def test_positions_track_lines(self):
        tokens = tokenize("range\nof")
        assert tokens[0].line == 1
        assert tokens[1].line == 2

    def test_figure_one_lexes(self):
        from repro.datagen import FIGURE_1_QUERY
        token_types = kinds(FIGURE_1_QUERY)
        assert TokenType.RETRIEVE in token_types
        assert TokenType.WHERE in token_types
        assert token_types.count(TokenType.IDENTIFIER) >= 8
