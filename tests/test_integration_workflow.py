"""End-to-end integration test: an application workflow across all subsystems.

Models a small enterprise database the way a downstream user of the
library would: schema with constraints and foreign keys, data arriving
incrementally with nulls, schema evolution, views, QUEL queries under both
execution strategies, a probability-qualified report, CSV/JSON export and
re-import — asserting information-content invariants at every step.
"""

import pytest

from repro import NI, Relation, XRelation, XTuple
from repro.constraints import (
    ForeignKeyConstraint,
    FunctionalDependency,
    KeyConstraint,
    NotNullConstraint,
)
from repro.core.errors import KeyViolation, ReferentialViolation
from repro.io import database_from_dict, database_to_dict, from_csv_text, to_csv_text
from repro.quel import run_query
from repro.storage import Database, add_attribute
from repro.views import ViewCatalog, base, network_to_relational
from repro.wong import divide_with_threshold


@pytest.fixture
def enterprise():
    db = Database("enterprise")
    db.create_table(
        "DEPT",
        ["DNAME", "FLOOR"],
        constraints=[KeyConstraint(["DNAME"])],
    )
    db.create_table(
        "EMP",
        ["E#", "NAME", "SEX", "DNAME", "MGR#"],
        constraints=[KeyConstraint(["E#"]), NotNullConstraint(["NAME"])],
    )
    db.add_foreign_key("EMP", ForeignKeyConstraint(["DNAME"], "DEPT", ["DNAME"]))
    db.insert_many("DEPT", [("eng", 2), ("sales", 1), ("ops", 3)])
    db.insert_many("EMP", [
        (1, "ann", "F", "eng", 4),
        (2, "bob", "M", "sales", 4),
        (3, "cat", "F", None, None),      # department and manager unknown
        (4, "dan", "M", "eng", None),
    ])
    return db


class TestWorkflow:
    def test_constraints_guard_updates(self, enterprise):
        with pytest.raises(KeyViolation):
            enterprise.insert("EMP", (1, "dup", "F", "eng", None))
        with pytest.raises(ReferentialViolation):
            enterprise.insert("EMP", (9, "eve", "F", "legal", None))
        enterprise.insert("EMP", (9, "eve", "F", None, None))  # unknown dept is fine
        assert len(enterprise["EMP"]) == 5

    def test_updates_never_lose_information(self, enterprise):
        before = enterprise.xrelation("EMP")
        enterprise.insert("EMP", (10, "fay", "F", "ops", 4))
        table = enterprise.table("EMP")
        fay = table.lookup(["E#"], [10])[0]
        enterprise.update("EMP", fay, {**fay.as_dict(), "MGR#": 2})
        after = enterprise.xrelation("EMP")
        assert after >= before

    def test_schema_evolution_mid_flight(self, enterprise):
        before = enterprise.xrelation("EMP")
        report = add_attribute(enterprise.table("EMP"), "TEL#")
        assert report.information_preserved
        assert enterprise.xrelation("EMP") == before
        enterprise.insert("EMP", (11, "gil", "M", "ops", None, 5551))
        result = run_query(
            "range of e is EMP retrieve (e.NAME) where e.TEL# > 0",
            enterprise,
        )
        assert {t["e_NAME"] for t in result.rows} == {"gil"}

    def test_queries_agree_across_strategies(self, enterprise):
        text = (
            'range of e is EMP range of m is EMP retrieve (e.NAME, m.NAME) '
            'where e.MGR# = m.E# and m.SEX = "M"'
        )
        tuple_answer = run_query(text, enterprise, strategy="tuple").answer
        algebra_answer = run_query(text, enterprise, strategy="algebra").answer
        assert tuple_answer == algebra_answer
        assert {t["e_NAME"] for t in tuple_answer.rows()} == {"ann", "bob"}

    def test_views_over_the_database(self, enterprise):
        catalog = ViewCatalog()
        staffing = network_to_relational("DEPT", "EMP", link=["DNAME"])
        catalog.define(staffing.name, staffing.expression)
        catalog.define("WOMEN", base(staffing.name).select("SEX", "=", "F").project(["NAME", "DNAME"]))
        women = catalog.evaluate("WOMEN", enterprise)
        assert women.x_contains({"NAME": "ann", "DNAME": "eng"})
        assert women.x_contains({"NAME": "cat"})       # kept despite unknown dept
        # the staffing view loses neither employees nor departments
        staffing_result = catalog.evaluate(staffing.name, enterprise)
        assert enterprise.xrelation("EMP") <= staffing_result
        assert enterprise.xrelation("DEPT") <= staffing_result

    def test_probability_qualified_report(self, enterprise):
        managers = divide_with_threshold(
            enterprise["EMP"], [4], by="DNAME", over="MGR#", threshold=1.0
        )
        assert "eng" in managers

    def test_round_trips_preserve_information(self, enterprise):
        emp = enterprise["EMP"]
        via_csv = from_csv_text(to_csv_text(emp), name="EMP")
        assert XRelation(via_csv) == XRelation(emp)
        rebuilt = database_from_dict(database_to_dict(enterprise))
        assert set(rebuilt) == set(enterprise)
        for name in enterprise:
            assert XRelation(rebuilt[name]) == XRelation(enterprise[name])

    def test_constraint_validation_after_bulk_load(self, enterprise):
        table = enterprise.table("EMP")
        table.add_constraint(FunctionalDependency(["E#"], ["NAME"]))
        table.validate()
        with pytest.raises(Exception):
            table.insert((1, "other-name", "M", "eng", None))
