"""Unit tests for integrity constraints (repro.constraints)."""

import pytest

from repro import NI, Relation, XTuple
from repro.constraints import (
    BindingConstraint,
    ForeignKeyConstraint,
    FunctionalDependency,
    KeyConstraint,
    NotNullConstraint,
    RowConstraint,
    as_detector_constraints,
    attribute_closure,
    candidate_keys,
    implies,
    is_superkey,
)
from repro.core.errors import (
    ConstraintViolation,
    KeyViolation,
    NotNullViolation,
    ReferentialViolation,
)


class TestNotNull:
    def test_accepts_nonnull_rows(self):
        NotNullConstraint(["A"]).check_row(XTuple(A=1))

    def test_rejects_null_rows(self):
        with pytest.raises(NotNullViolation):
            NotNullConstraint(["A"]).check_row(XTuple(B=2))

    def test_check_whole_relation(self):
        r = Relation.from_rows(["A", "B"], [(1, 2), (None, 3)])
        with pytest.raises(NotNullViolation):
            NotNullConstraint(["A"]).check(r)


class TestKeys:
    def test_unique_keys_pass(self):
        r = Relation.from_rows(["K", "V"], [(1, "a"), (2, "a")])
        KeyConstraint(["K"]).check(r)

    def test_duplicate_keys_rejected(self):
        r = Relation.from_rows(["K", "V"], [(1, "a"), (1, "b")])
        with pytest.raises(KeyViolation):
            KeyConstraint(["K"]).check(r)

    def test_null_key_rejected(self):
        """Entity integrity: a 'no information' key identifies nothing."""
        r = Relation.from_rows(["K", "V"], [(None, "a")])
        with pytest.raises(KeyViolation):
            KeyConstraint(["K"]).check(r)

    def test_check_insert_guards_duplicates(self):
        r = Relation.from_rows(["K", "V"], [(1, "a")])
        with pytest.raises(KeyViolation):
            KeyConstraint(["K"]).check_insert(r, XTuple(K=1, V="zzz"))
        KeyConstraint(["K"]).check_insert(r, XTuple(K=2, V="b"))

    def test_composite_key(self):
        r = Relation.from_rows(["A", "B", "V"], [(1, 1, "x"), (1, 2, "y")])
        KeyConstraint(["A", "B"]).check(r)
        with pytest.raises(KeyViolation):
            KeyConstraint(["A", "B"]).check_insert(r, XTuple(A=1, B=2, V="clash"))


class TestFunctionalDependencies:
    def test_strong_satisfaction(self):
        r = Relation.from_rows(["E", "D", "M"], [(1, "d1", "m1"), (2, "d1", "m1")])
        assert FunctionalDependency(["D"], ["M"]).holds_strong(r)

    def test_strong_violation_detected(self):
        r = Relation.from_rows(["E", "D", "M"], [(1, "d1", "m1"), (2, "d1", "m2")])
        fd = FunctionalDependency(["D"], ["M"])
        assert not fd.holds_strong(r)
        assert len(fd.violations(r)) == 1
        with pytest.raises(ConstraintViolation):
            fd.check(r)

    def test_null_dependent_violates_strong_but_not_weak(self):
        r = Relation.from_rows(["E", "D", "M"], [(1, "d1", "m1"), (2, "d1", None)])
        fd = FunctionalDependency(["D"], ["M"])
        assert not fd.holds_strong(r)
        assert fd.holds_weak(r)

    def test_null_determinant_constrains_nothing(self):
        r = Relation.from_rows(["E", "D", "M"], [(1, None, "m1"), (2, None, "m2")])
        fd = FunctionalDependency(["D"], ["M"])
        assert fd.holds_strong(r)
        assert fd.holds_weak(r)

    def test_weak_violation(self):
        r = Relation.from_rows(["E", "D", "M"], [(1, "d1", "m1"), (2, "d1", "m2")])
        assert not FunctionalDependency(["D"], ["M"]).holds_weak(r)

    def test_check_insert(self):
        r = Relation.from_rows(["E", "D", "M"], [(1, "d1", "m1")])
        fd = FunctionalDependency(["D"], ["M"])
        fd.check_insert(r, XTuple(E=2, D="d1", M="m1"))
        with pytest.raises(ConstraintViolation):
            fd.check_insert(r, XTuple(E=3, D="d1", M="other"))

    def test_empty_sides_rejected(self):
        with pytest.raises(ConstraintViolation):
            FunctionalDependency([], ["A"])


class TestArmstrongMachinery:
    FDS = [
        FunctionalDependency(["A"], ["B"]),
        FunctionalDependency(["B"], ["C"]),
        FunctionalDependency(["C", "D"], ["E"]),
    ]

    def test_attribute_closure(self):
        assert attribute_closure(["A"], self.FDS) == frozenset({"A", "B", "C"})
        assert attribute_closure(["A", "D"], self.FDS) == frozenset({"A", "B", "C", "D", "E"})

    def test_implies(self):
        assert implies(self.FDS, FunctionalDependency(["A"], ["C"]))
        assert not implies(self.FDS, FunctionalDependency(["A"], ["E"]))

    def test_superkey_and_candidate_keys(self):
        universe = ["A", "B", "C", "D", "E"]
        assert is_superkey(["A", "D"], universe, self.FDS)
        assert not is_superkey(["A"], universe, self.FDS)
        keys = candidate_keys(universe, self.FDS)
        assert frozenset({"A", "D"}) in keys
        assert all(not frozenset({"A"}) == key for key in keys)


class TestForeignKeys:
    @pytest.fixture
    def departments(self):
        return Relation.from_rows(["D#", "DNAME"], [(1, "eng"), (2, "ops")], name="DEPT")

    @pytest.fixture
    def fk(self):
        return ForeignKeyConstraint(["DEPT#"], "DEPT", ["D#"])

    def test_matching_reference_passes(self, departments, fk):
        employees = Relation.from_rows(["E#", "DEPT#"], [(10, 1)], name="EMP")
        fk.check(employees, departments)

    def test_null_reference_passes(self, departments, fk):
        employees = Relation.from_rows(["E#", "DEPT#"], [(10, None)], name="EMP")
        fk.check(employees, departments)

    def test_dangling_reference_rejected(self, departments, fk):
        employees = Relation.from_rows(["E#", "DEPT#"], [(10, 99)], name="EMP")
        with pytest.raises(ReferentialViolation):
            fk.check(employees, departments)

    def test_partial_composite_reference_rejected(self, departments):
        fk = ForeignKeyConstraint(["X", "Y"], "DEPT", ["D#", "DNAME"])
        employees = Relation.from_rows(["E#", "X", "Y"], [(1, 1, None)], name="EMP")
        with pytest.raises(ReferentialViolation):
            fk.check(employees, departments)

    def test_mismatched_arity_rejected(self):
        with pytest.raises(ReferentialViolation):
            ForeignKeyConstraint(["A", "B"], "T", ["X"])

    def test_check_delete_restricts(self, departments, fk):
        employees = Relation.from_rows(["E#", "DEPT#"], [(10, 1)], name="EMP")
        with pytest.raises(ReferentialViolation):
            fk.check_delete(employees, XTuple({"D#": 1, "DNAME": "eng"}), departments)
        fk.check_delete(employees, XTuple({"D#": 2, "DNAME": "ops"}), departments)


class TestSchemaConstraints:
    def test_row_constraint(self):
        no_self_management = RowConstraint(
            "EMP", lambda row: row["E#"] != row["MGR#"] or row["MGR#"] is NI
        )
        no_self_management.check_row(XTuple({"E#": 1, "MGR#": 2}))
        no_self_management.check_row(XTuple({"E#": 1}))
        with pytest.raises(ConstraintViolation):
            no_self_management.check_row(XTuple({"E#": 1, "MGR#": 1}))

    def test_binding_constraint_ignores_missing_variables(self):
        constraint = BindingConstraint(["e", "m"], lambda b: b["e"]["A"] != b["m"]["A"])
        assert constraint({"e": XTuple(A=1)})  # m missing → vacuously true
        assert constraint({"e": XTuple(A=1), "m": XTuple(A=2)})
        assert not constraint({"e": XTuple(A=1), "m": XTuple(A=1)})

    def test_as_detector_constraints_adapts_row_constraints(self):
        row_constraint = RowConstraint("EMP", lambda row: row["A"] != 5)
        adapted = as_detector_constraints([row_constraint], {"e": "EMP", "o": "OTHER"})
        assert len(adapted) == 1
        assert adapted[0]({"e": XTuple(A=1), "o": XTuple(A=5)})
        assert not adapted[0]({"e": XTuple(A=5)})

    def test_as_detector_constraints_rejects_garbage(self):
        with pytest.raises(ConstraintViolation):
            as_detector_constraints([42])
