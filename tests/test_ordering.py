"""Unit tests for the quasi-order utilities (repro.core.ordering)."""

from repro import XTuple
from repro.core.ordering import (
    chains,
    compare,
    is_antichain,
    maximal_tuples,
    meet_closure,
    minimal_tuples,
    subsumed_by_any,
    subsumes_any,
)


def test_maximal_tuples_drops_dominated():
    rows = [XTuple(A=1), XTuple(A=1, B=2), XTuple(C=3)]
    maxima = maximal_tuples(rows)
    assert XTuple(A=1, B=2) in maxima
    assert XTuple(C=3) in maxima
    assert XTuple(A=1) not in maxima


def test_maximal_tuples_deduplicates():
    rows = [XTuple(A=1), XTuple(A=1)]
    assert maximal_tuples(rows) == [XTuple(A=1)]


def test_minimal_tuples_keeps_bottoms():
    rows = [XTuple(A=1), XTuple(A=1, B=2), XTuple(C=3)]
    minima = minimal_tuples(rows)
    assert XTuple(A=1) in minima
    assert XTuple(C=3) in minima
    assert XTuple(A=1, B=2) not in minima


def test_is_antichain():
    assert is_antichain([XTuple(A=1), XTuple(B=2)])
    assert not is_antichain([XTuple(A=1), XTuple(A=1, B=2)])
    assert is_antichain([])


def test_subsumes_and_subsumed():
    pool = [XTuple(A=1), XTuple(B=2)]
    assert subsumes_any(XTuple(A=1, C=3), pool)
    assert not subsumes_any(XTuple(C=3), pool)
    assert subsumed_by_any(XTuple(), pool)
    assert subsumed_by_any(XTuple(A=1), [XTuple(A=1, B=2)])
    assert not subsumed_by_any(XTuple(A=2), pool)


def test_meet_closure_contains_pairwise_meets():
    a, b = XTuple(A=1, B=2), XTuple(A=1, C=3)
    closed = meet_closure([a, b])
    assert XTuple(A=1) in closed
    assert a in closed and b in closed


def test_meet_closure_idempotent():
    items = [XTuple(A=1, B=2), XTuple(A=1, C=3), XTuple(B=2)]
    once = meet_closure(items)
    twice = meet_closure(once)
    assert set(once) == set(twice)


def test_compare_classification():
    assert compare(XTuple(A=1), XTuple(A=1)) == "equivalent"
    assert compare(XTuple(A=1, B=2), XTuple(A=1)) == "more"
    assert compare(XTuple(A=1), XTuple(A=1, B=2)) == "less"
    assert compare(XTuple(A=1), XTuple(B=1)) == "incomparable"


def test_chains_lists_strict_pairs():
    a, b = XTuple(A=1), XTuple(A=1, B=2)
    pairs = chains([a, b])
    assert (a, b) in pairs
    assert (b, a) not in pairs
