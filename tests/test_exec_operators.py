"""Unit tests for the streaming executor (:mod:`repro.exec`).

Three families:

* **Block-boundary behaviour** per operator — empty input, exactly one
  block, inputs straddling block boundaries (including duplicates that
  must be recognised across the boundary).
* **Pipeline semantics** — lazy iteration pulls only what it needs, a
  partial stream resumes into a full drain without re-reading, and the
  trace/tree rendering carries per-node estimates, actuals and time.
* **The streaming contract** — iterating a selective conjunctive
  multi-join's result yields first rows without constructing a single
  intermediate :class:`~repro.core.xrelation.XRelation` (pinned by
  instrumenting the constructor), and ``explain(analyze=True)`` reports
  per-operator actual row counts identical to the materializing
  executor's step trace.
"""

from __future__ import annotations

import re

import pytest

import repro.core.xrelation as xrelation_module
from repro.core.relation import Relation, RelationSchema
from repro.core.tuples import XTuple
from repro.core.xrelation import XRelation
from repro.exec import (
    AppendSink,
    DeleteSink,
    Filter,
    HashJoin,
    IndexNLJoin,
    IndexProbe,
    Materialize,
    Pipeline,
    Product,
    Project,
    Reduce,
    Rename,
    ReplaceSink,
    TableScan,
    TraceStep,
)
from repro.quel.planner import Plan
from repro.storage.database import Database
from repro.storage.index import HashIndex


def rows_of(*dicts) -> list:
    return [XTuple(d) for d in dicts]


def scan_of(rows, block_size=2) -> TableScan:
    return TableScan(list(rows), label="scan", block_size=block_size)


def drain(node) -> list:
    return [row for block in node.blocks() for row in block]


class TestTableScan:
    def test_empty_input_yields_no_blocks(self):
        scan = scan_of([])
        assert list(scan.blocks()) == []
        assert scan.actual_rows == 0 and scan.finished

    def test_exactly_one_block(self):
        rows = rows_of({"A": 1}, {"A": 2})
        scan = scan_of(rows, block_size=2)
        blocks = list(scan.blocks())
        assert len(blocks) == 1 and len(blocks[0]) == 2
        assert scan.actual_rows == 2 and scan.actual_blocks == 1

    def test_straddling_input_splits_into_blocks(self):
        rows = rows_of({"A": 1}, {"A": 2}, {"A": 3}, {"A": 4}, {"A": 5})
        scan = scan_of(rows, block_size=2)
        assert [len(b) for b in scan.blocks()] == [2, 2, 1]

    def test_null_tuples_are_skipped(self):
        rows = rows_of({"A": 1}, {}, {"A": 2})
        assert {r["A"] for r in drain(scan_of(rows))} == {1, 2}

    def test_source_is_snapshotted_at_construction(self):
        """Statement-time semantics: the scan captures the row references
        when the tree is built, so mutating the table between execution
        and iteration neither crashes the drain nor leaks new rows."""
        live = [XTuple({"A": 7})]
        scan = TableScan(live, block_size=2)
        live.append(XTuple({"A": 8}))  # post-statement mutation
        assert [r["A"] for r in drain(scan)] == [7]


class TestFilterRenameProject:
    def test_filter_streams_and_counts(self):
        rows = rows_of({"A": 1}, {"A": 2}, {"A": 3}, {"A": 4})
        node = Filter(scan_of(rows), lambda r: r["A"] % 2 == 0, block_size=2)
        assert {r["A"] for r in drain(node)} == {2, 4}
        assert node.actual_rows == 2

    def test_filter_empty_input(self):
        node = Filter(scan_of([]), lambda r: True)
        assert drain(node) == []

    def test_all_filtered_blocks_are_suppressed(self):
        rows = rows_of({"A": 1}, {"A": 3})
        node = Filter(scan_of(rows), lambda r: False, block_size=1)
        assert list(node.blocks()) == []
        assert node.actual_blocks == 0

    def test_rename_maps_every_attribute(self):
        rows = rows_of({"A": 1, "B": 2})
        node = Rename(scan_of(rows), {"A": "v.A", "B": "v.B"})
        (row,) = drain(node)
        assert row["v.A"] == 1 and row["v.B"] == 2

    def test_project_deduplicates_across_block_boundary(self):
        # Four distinct inputs collapse to two outputs; the duplicates sit
        # in *different* blocks, so the seen-set must span blocks.
        rows = rows_of(
            {"A": 1, "B": 1}, {"A": 1, "B": 2}, {"A": 2, "B": 1}, {"A": 2, "B": 2}
        )
        node = Project(scan_of(rows, block_size=1), [("out", "A")], block_size=1)
        assert sorted(r["out"] for r in drain(node)) == [1, 2]
        assert node.actual_rows == 2

    def test_project_exactly_one_block(self):
        rows = rows_of({"A": 1}, {"A": 2})
        node = Project(scan_of(rows, block_size=4), [("out", "A")], block_size=4)
        blocks = list(node.blocks())
        assert len(blocks) == 1 and len(blocks[0]) == 2

    def test_project_drops_the_null_projection(self):
        rows = rows_of({"A": 1, "B": 2}, {"B": 3})  # second row is null on A
        node = Project(scan_of(rows), [("out", "A")])
        assert [r["out"] for r in drain(node)] == [1]


class TestJoins:
    def left_rows(self):
        return rows_of(
            {"l.K": 1, "l.X": 10}, {"l.K": 2, "l.X": 20}, {"l.K": 1, "l.X": 30},
            {"l.X": 40},  # null on the probe key: must not join
        )

    def build_rows(self):
        return rows_of({"K": 1, "Y": 100}, {"K": 3, "Y": 300}, {"Y": 400})

    def test_hash_join_matches_across_blocks(self):
        node = HashJoin(
            scan_of(self.left_rows(), block_size=1),
            scan_of(self.build_rows(), block_size=1),
            ["K"], ["l.K"],
            transform=lambda r: r.rename({"K": "r.K", "Y": "r.Y"}),
            block_size=1,
        )
        out = drain(node)
        assert {(r["l.X"], r["r.Y"]) for r in out} == {(10, 100), (30, 100)}
        assert node.actual_rows == 2

    def test_hash_join_empty_build_side_never_pulls_the_probe(self):
        probe = scan_of(self.left_rows())
        node = HashJoin(probe, scan_of([]), ["K"], ["l.K"])
        assert drain(node) == []
        assert not probe.started

    def test_hash_join_empty_probe_side(self):
        node = HashJoin(scan_of([]), scan_of(self.build_rows()), ["K"], ["l.K"])
        assert drain(node) == []

    def test_index_probe_as_build_side(self):
        """Regression: ``IndexProbe`` snapshots its bucket into an
        attribute; it must not shadow the inherited ``rows()`` method the
        join's build phase drains through."""
        index = HashIndex(["K"], name="ix")
        for row in self.build_rows():
            index.insert(row)
        probe = IndexProbe(index.lookup, (1,), block_size=2)
        node = HashJoin(
            scan_of(self.left_rows()), probe, ["K"], ["l.K"],
            transform=lambda r: r.rename({"K": "r.K", "Y": "r.Y"}),
        )
        assert {(r["l.X"], r["r.Y"]) for r in drain(node)} == {(10, 100), (30, 100)}

    def test_index_selected_range_as_join_build_side_end_to_end(self):
        """Same regression through the planner: a pushed index selection
        leaves an ``IndexProbe`` at the top of a range's chain, and a
        later hash join drains that chain as its build side."""
        database = Database("probe-build")
        r = database.create_table("R", ["A", "B"])
        s = database.create_table("S", ["B", "C"])
        r.insert_many([(1, 0), (2, 1)])
        s.insert_many([(i % 4, i % 2) for i in range(50)])
        s.create_index(["C"], name="s_c")
        from repro.quel.evaluator import run_query
        text = (
            "range of r is R range of s is S "
            "retrieve (r.A, s.B) where r.B = s.B and s.C = 1"
        )
        result = run_query(text, database, strategy="algebra")
        assert any("index select" in step for step in result.plan.steps)
        assert result.answer == run_query(text, database, strategy="tuple").answer

    def test_index_nl_join_probes_a_live_index(self):
        index = HashIndex(["K"], name="ix")
        for row in self.build_rows():
            index.insert(row)
        node = IndexNLJoin(
            scan_of(self.left_rows(), block_size=2),
            index.lookup, ["l.K"],
            transform=lambda r: r.rename({"K": "r.K", "Y": "r.Y"}),
        )
        out = drain(node)
        assert {(r["l.X"], r["r.Y"]) for r in out} == {(10, 100), (30, 100)}

    def test_product_pairs_every_row(self):
        left = rows_of({"l.A": 1}, {"l.A": 2}, {"l.A": 3})
        right = rows_of({"B": 7}, {"B": 8})
        node = Product(
            scan_of(left, block_size=2), scan_of(right),
            transform=lambda r: r.rename({"B": "r.B"}), block_size=2,
        )
        assert len(drain(node)) == 6

    def test_product_empty_right_side(self):
        node = Product(scan_of(rows_of({"l.A": 1})), scan_of([]))
        assert drain(node) == []


class TestBlockingOperators:
    def test_reduce_drops_dominated_rows_across_blocks(self):
        rows = rows_of({"A": 1, "B": 2}, {"A": 1}, {"B": 9}, {"A": 1, "B": 2})
        node = Reduce(scan_of(rows, block_size=1), block_size=1)
        out = drain(node)
        assert set(out) == {XTuple({"A": 1, "B": 2}), XTuple({"B": 9})}

    def test_reduce_empty_input(self):
        assert drain(Reduce(scan_of([]))) == []

    def test_materialize_returns_the_minimal_xrelation(self):
        rows = rows_of({"A": 1, "B": 2}, {"A": 1})
        schema = RelationSchema(("A", "B"), name="M")
        node = Materialize(scan_of(rows), schema)
        answer = node.relation()
        assert isinstance(answer, XRelation)
        assert set(answer.rows()) == {XTuple({"A": 1, "B": 2})}
        assert node.relation() is answer  # cached


class TestPipeline:
    def make_pipeline(self, n=100, block_size=4) -> Pipeline:
        rows = rows_of(*({"A": i, "B": i % 3} for i in range(n)))
        scan = scan_of(rows, block_size=block_size)
        project = Project(scan, [("out", "A")], block_size=block_size)
        schema = RelationSchema(("out",), name="Q")
        return Pipeline(project, schema, [TraceStep("project onto ['out']", node=project, show_est=False)])

    def test_iter_rows_is_lazy(self):
        pipeline = self.make_pipeline(n=100, block_size=4)
        iterator = pipeline.iter_rows()
        first = next(iterator)
        assert first["out"] is not None
        scan = pipeline.root.children[0]
        assert 0 < scan.actual_rows < 100  # only the first block(s) were read
        assert not pipeline.drained

    def test_partial_stream_resumes_into_full_drain(self):
        pipeline = self.make_pipeline(n=50, block_size=4)
        iterator = pipeline.iter_rows()
        streamed = [next(iterator) for _ in range(5)]
        answer = pipeline.run()
        assert len(answer) == 50
        assert set(streamed) <= set(answer.rows())
        # the prefix replays — nothing was lost or produced twice
        assert len(list(pipeline.iter_rows())) == 50

    def test_trace_rows_appear_after_drain(self):
        pipeline = self.make_pipeline(n=10)
        assert pipeline.step_lines() == ["project onto ['out']"]
        pipeline.run()
        assert pipeline.step_lines() == ["project onto ['out'] [rows=10]"]

    def test_explain_analyze_reports_actuals_and_time(self):
        pipeline = self.make_pipeline(n=10)
        tree = pipeline.explain(analyze=True)
        for line in tree.splitlines():
            assert re.search(r"actual rows=\d+ time=\d+\.\d+ms", line), line

    def test_operator_error_latches_instead_of_truncating(self):
        """An exception escaping a draining pipeline must re-raise on
        every later consumption — never pass off the partial prefix as
        the canonical answer."""
        rows = rows_of(*({"A": i} for i in range(10)))

        def explode(row):
            if row["A"] == 5:
                raise RuntimeError("boom")
            return True

        node = Filter(scan_of(rows, block_size=2), explode, block_size=2)
        pipeline = Pipeline(node, RelationSchema(("A",), name="Q"))
        iterator = pipeline.iter_rows()
        with pytest.raises(RuntimeError):
            list(iterator)
        with pytest.raises(RuntimeError):
            pipeline.run()
        # A fresh iterator replays the valid prefix, then re-raises at
        # the point of failure instead of reporting exhaustion.
        with pytest.raises(RuntimeError):
            list(pipeline.iter_rows())


class TestSinks:
    @pytest.fixture
    def database(self) -> Database:
        database = Database("sinkdb")
        table = database.create_table("T", ["A", "B"])
        table.insert_many([(1, 10), (2, 20), (3, 30)])
        return database

    def source_pipeline(self, rows) -> Pipeline:
        scan = TableScan(list(rows), label="src")
        return Pipeline(scan, RelationSchema(("A", "B"), name="S"))

    def test_append_sink_literal_rows(self, database):
        sink = AppendSink(
            database, database.table("T"), literal_rows=rows_of({"A": 4, "B": 40})
        )
        assert sink.run() == 1
        assert len(database.table("T")) == 4

    def test_append_sink_builds_rows_from_source(self, database):
        source = self.source_pipeline(rows_of({"A": 7, "B": 70}, {"A": 7, "B": 70}))
        sink = AppendSink(
            database, database.table("T"), source,
            row_builder=lambda row: XTuple({"A": row["A"], "B": row["B"]}),
        )
        assert sink.run() == 1  # duplicates collapse before the atomic insert
        assert database.table("T").x_contains({"A": 7, "B": 70})

    def test_delete_sink_applies_the_bulk_path(self, database):
        source = self.source_pipeline(rows_of({"A": 1, "B": 10}, {"A": 3, "B": 30}))
        sink = DeleteSink(database, database.table("T"), source)
        assert sink.run() == 2
        assert {row["A"] for row in database.table("T").rows()} == {2}

    def test_replace_sink_rolls_back_wholesale(self, database):
        from repro.constraints.keys import KeyConstraint
        table = database.table("T")
        table.add_constraint(KeyConstraint(["A"]))
        before = set(table.rows())
        source = self.source_pipeline(rows_of({"A": 1, "B": 10}))
        sink = ReplaceSink(
            database, table, source,
            row_builder=lambda row: XTuple({"A": 2, "B": row["B"]}),  # key clash
        )
        with pytest.raises(Exception):
            sink.run()
        assert set(table.rows()) == before


class TestStreamingContract:
    """The acceptance pins: no intermediate XRelation while streaming, and
    analyze actuals ≡ the materializing executor's step row counts."""

    @pytest.fixture
    def database(self) -> Database:
        database = Database("pipes")
        r = database.create_table("R", ["A", "B"])
        s = database.create_table("S", ["B", "C"])
        t = database.create_table("T", ["C", "D"])
        r.insert_many([(i % 7, i % 11) for i in range(200)])
        s.insert_many([(i % 11, i % 13) for i in range(200)])
        t.insert_many([(i % 13, i) for i in range(200)])
        return database

    QUERY = (
        "range of r is R range of s is S range of t is T "
        "retrieve (r.A, t.D) "
        "where r.B = s.B and s.C = t.C and r.A = 1 and t.D < 50"
    )

    def test_first_rows_without_any_intermediate_xrelation(self, database, monkeypatch):
        session = database.session()
        constructed = []
        original = XRelation.__init__

        def counting(self, representation):
            constructed.append(representation)
            original(self, representation)

        monkeypatch.setattr(xrelation_module.XRelation, "__init__", counting)
        result = session.execute(self.QUERY)
        iterator = iter(result)
        first = next(iterator)
        assert first["r_A"] == 1
        # Planning + streaming the first rows built NO XRelation at all.
        assert constructed == []
        # Draining to the canonical answer builds exactly the final one.
        rows = result.rows
        assert rows and len(constructed) == 1

    def test_analyze_actuals_match_materializing_step_counts(self, database):
        from repro.quel.evaluator import compile_query

        query = compile_query(self.QUERY, database).query
        streaming = Plan(query, database)
        materializing = Plan(query, database, streaming=False)
        answer = streaming.execute()
        assert answer == materializing.execute()
        # Same logical plan, and — on null-free data — identical measured
        # row counts, so the rendered step traces agree line for line.
        assert streaming.steps == materializing.steps
        # The analyze tree reports the same actuals per operator node.
        tree = streaming.pipeline.explain(analyze=True)
        assert re.search(r"est=\d+ actual rows=\d+ time=\d+\.\d+ms", tree)
        for step in streaming.steps:
            match = re.search(r"rows=(\d+)\]$", step)
            if match and "join" in step:
                assert f"actual rows={match.group(1)}" in tree

    def test_lazy_result_survives_post_statement_mutation(self, database):
        """Mutating a scanned table between execution and iteration must
        neither crash the drain (the live row set would resize under the
        iterator) nor leak post-statement rows into the answer."""
        session = database.session()
        before = session.execute(self.QUERY)
        expected = set(before.to_relation().rows())
        result = session.execute(self.QUERY)
        iterator = iter(result)
        first = next(iterator)
        database.insert("R", (1, 0))       # would join: must not appear
        database.delete("T", (0, 0))
        remaining = list(iterator)         # completes without RuntimeError
        assert {first, *remaining} >= expected
        assert set(result.to_relation().rows()) == expected

    def test_streaming_default_and_opt_out(self, database):
        from repro.quel.evaluator import compile_query

        query = compile_query(self.QUERY, database).query
        assert Plan(query, database).streaming is True
        baseline = Plan(query, database, streaming=False)
        assert baseline.execute() == Plan(query, database).execute()


class TestExplainAnalyzeDrainsFirst:
    """``ResultSet.explain(analyze=True)`` must never report partial
    actuals: called on a fresh or partially-streamed result set it drains
    the pipeline first, so the tree it renders always shows the finished
    counts (pinned here; the drain also caches the canonical answer)."""

    def make_database(self, n=200) -> Database:
        database = Database("explaindb")
        table = database.create_table("T", ["A", "B"])
        table.insert_many([(i, i % 7) for i in range(n)])
        return database

    QUERY = "range of t is T retrieve (t.A) where t.B != 99"

    def test_fresh_result_explain_analyze_reports_full_actuals(self):
        database = self.make_database(n=200)
        session = database.session()
        result = session.execute(self.QUERY)
        tree = result.explain(analyze=True)
        assert result.pipeline.drained
        assert "(partial)" not in tree
        assert "actual rows=200" in tree  # the scan saw every row
        # and the drain cached the canonical answer as a side effect
        assert len(result.rows) == 200

    def test_partially_streamed_result_drains_before_reporting(self):
        from repro.api.session import Session

        database = self.make_database(n=200)
        # Result caching off: this test compares the physical trees of
        # two genuine executions of the same text.
        session = Session(database, result_cache_size=0)
        result = session.execute(self.QUERY)
        iterator = iter(result)
        for _ in range(3):   # pull a prefix only
            next(iterator)
        assert not result.pipeline.drained
        tree = result.explain(analyze=True)
        assert result.pipeline.drained
        assert "(partial)" not in tree
        assert "actual rows=200" in tree
        # identical to the tree of a result drained the normal way
        drained = session.execute(self.QUERY)
        drained.rows
        strip = lambda text: re.sub(r"time=\d+\.\d+ms", "time=?", text)
        assert strip(tree) == strip(drained.explain(analyze=True))

    def test_undrained_tree_rendering_is_marked_partial(self):
        """Rendering an operator tree mid-stream (the low-level
        render_tree surface, not ResultSet.explain) must flag nodes that
        are still producing instead of passing partial counts off as
        finals."""
        from repro.exec.pipeline import render_tree

        database = self.make_database(n=200)
        session = database.session()
        result = session.execute(self.QUERY)
        iterator = iter(result)
        next(iterator)
        tree = render_tree(result.pipeline.root, analyze=True)
        assert "(partial)" in tree
        result.rows  # drain
        assert "(partial)" not in render_tree(result.pipeline.root, analyze=True)
