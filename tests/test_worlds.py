"""Unit tests for possible-worlds semantics (repro.worlds)."""

import pytest

from repro import NI, Relation, XTuple
from repro.core.nulls import MarkedNull
from repro.core.query import And, AttributeRef, Comparison, Constant, Or, Query
from repro.core.query import evaluate_lower_bound
from repro.worlds import (
    CompletionSpace,
    WorldSpaceTooLarge,
    certain_answers,
    completions,
    evaluate_bounds,
    lower_bound_is_sound,
    possible_answers,
    world_count,
)


@pytest.fixture
def tiny():
    return Relation.from_rows(["A", "B"], [(1, None), (2, 5)], name="T")


class TestCompletionSpace:
    def test_world_count_with_explicit_domain(self, tiny):
        assert world_count(tiny, domains={"B": [5, 6, 7]}) == 3

    def test_world_count_default_active_domain_plus_fresh(self, tiny):
        # active domain of B is {5}, plus one fresh value → 2 worlds.
        assert world_count(tiny) == 2

    def test_completions_are_total(self, tiny):
        for world in completions(tiny, domains={"B": [5, 6]}):
            assert world.is_total()

    def test_completion_count_matches(self, tiny):
        worlds = list(completions(tiny, domains={"B": [5, 6, 7]}))
        assert len(worlds) == 3

    def test_cap_enforced(self, tiny):
        with pytest.raises(WorldSpaceTooLarge):
            list(completions(tiny, domains={"B": list(range(100))}, cap=10))

    def test_total_relation_has_single_world(self, emp_table_one):
        assert world_count(emp_table_one) == 1
        worlds = list(completions(emp_table_one))
        assert len(worlds) == 1 and worlds[0].equivalent_to(emp_table_one)

    def test_marked_nulls_substituted_consistently(self):
        marked = MarkedNull("m")
        r = Relation.from_rows(["A", "B"], [(marked, 1)], name="R")
        r2 = Relation.from_rows(["C"], [(marked,)], name="S")
        space = CompletionSpace([r, r2], domains={"A": [7, 8], "B": [1], "C": [7, 8]})
        worlds = list(space.worlds())
        assert len(worlds) == 2  # one shared site, two candidate values
        for first, second in worlds:
            a_values = {row["A"] for row in first.tuples()}
            c_values = {row["C"] for row in second.tuples()}
            assert a_values == c_values

    def test_null_site_count(self, tiny):
        assert CompletionSpace([tiny]).null_site_count() == 1


class TestBounds:
    def _query(self, relation, op, constant):
        where = Comparison(AttributeRef("t", "B"), op, Constant(constant))
        return Query({"t": relation}, [AttributeRef("t", "A")], where)

    def test_certain_and_possible_answers(self, tiny):
        query = self._query(tiny, ">", 3)
        bounds = evaluate_bounds(query, domains={"B": [2, 5, 9]})
        certain = {t["t_A"] for t in bounds.certain}
        possible = {t["t_A"] for t in bounds.possible}
        assert certain == {2}
        assert possible == {1, 2}
        assert bounds.world_count == 3

    def test_certain_answers_relation_wrapper(self, tiny):
        query = self._query(tiny, ">", 3)
        certain = certain_answers(query, domains={"B": [2, 5]})
        possible = possible_answers(query, domains={"B": [2, 5]})
        assert XTuple(t_A=2) in certain
        assert XTuple(t_A=1) in possible

    def test_lower_bound_contained_in_certain(self, tiny):
        query = self._query(tiny, ">", 3)
        approx = evaluate_lower_bound(query)
        exact = certain_answers(query, domains={"B": [2, 5, 9]})
        for row in approx.rows():
            assert row in exact

    def test_tautologous_query_shows_incompleteness(self, tiny):
        """B > 3 ∨ B ≤ 3 is certain for every world, but the 3VL bound misses row 1."""
        where = Or(
            Comparison(AttributeRef("t", "B"), ">", Constant(3)),
            Comparison(AttributeRef("t", "B"), "<=", Constant(3)),
        )
        query = Query({"t": tiny}, [AttributeRef("t", "A")], where)
        exact = {t["t_A"] for t in certain_answers(query, domains={"B": [1, 5]}).rows()}
        approx = {t["t_A"] for t in evaluate_lower_bound(query).rows()}
        assert exact == {1, 2}
        assert approx == {2}

    def test_soundness_checker_accepts_sound_queries(self, tiny):
        query = self._query(tiny, ">", 3)
        assert lower_bound_is_sound(query, domains={"B": [2, 5, 9]})

    def test_soundness_on_figure_one(self, emp_db):
        from repro.datagen import FIGURE_1_QUERY
        from repro.quel import compile_query

        analyzed = compile_query(FIGURE_1_QUERY, emp_db)
        assert lower_bound_is_sound(
            analyzed.query, domains={"TEL#": [2633999, 2634000, 2634001]}
        )

    def test_soundness_randomised(self):
        import random

        rng = random.Random(3)
        for trial in range(4):
            rows = []
            for _ in range(5):
                a = rng.randrange(3)
                b = None if rng.random() < 0.4 else rng.randrange(3)
                rows.append((a, b))
            relation = Relation.from_rows(["A", "B"], rows, name="R")
            where = Or(
                Comparison(AttributeRef("t", "B"), "=", Constant(1)),
                And(
                    Comparison(AttributeRef("t", "A"), ">", Constant(0)),
                    Comparison(AttributeRef("t", "B"), "!=", Constant(2)),
                ),
            )
            query = Query({"t": relation}, [AttributeRef("t", "A")], where)
            assert lower_bound_is_sound(query, domains={"B": [0, 1, 2]})
