"""Unit and integration tests for QUEL analysis, planning and evaluation."""

import pytest

from repro import XTuple
from repro.core.errors import QuelError, QuelSemanticError
from repro.datagen import FIGURE_1_QUERY, FIGURE_2_QUERY, employee_database
from repro.quel import analyze, compile_query, parse, plan_query, run_query


@pytest.fixture
def db():
    return employee_database()


class TestAnalyzer:
    def test_resolves_relations_case_insensitively(self, db):
        analyzed = compile_query("range of e is emp retrieve (e.NAME)", db)
        assert analyzed.query.ranges["e"] is db["EMP"]

    def test_unknown_relation(self, db):
        with pytest.raises(QuelSemanticError):
            compile_query("range of e is NOPE retrieve (e.NAME)", db)

    def test_duplicate_range_variable(self, db):
        with pytest.raises(QuelSemanticError):
            compile_query("range of e is EMP range of e is EMP retrieve (e.NAME)", db)

    def test_unknown_attribute_in_target(self, db):
        with pytest.raises(QuelSemanticError):
            compile_query("range of e is EMP retrieve (e.SALARY)", db)

    def test_unknown_variable_in_where(self, db):
        with pytest.raises(QuelSemanticError):
            compile_query("range of e is EMP retrieve (e.NAME) where x.E# = 1", db)

    def test_unknown_attribute_in_where(self, db):
        with pytest.raises(QuelSemanticError):
            compile_query("range of e is EMP retrieve (e.NAME) where e.SALARY = 1", db)

    def test_literal_only_comparison_rejected(self, db):
        with pytest.raises(QuelSemanticError):
            compile_query("range of e is EMP retrieve (e.NAME) where 1 = 1", db)

    def test_labelled_target_propagates(self, db):
        analyzed = compile_query("range of e is EMP retrieve (who = e.NAME)", db)
        assert analyzed.query.output_attributes() == ("who",)

    def test_into_names_result(self, db):
        analyzed = compile_query("range of e is EMP retrieve into ANSWERS (e.NAME)", db)
        assert analyzed.query.name == "ANSWERS"
        assert analyzed.into == "ANSWERS"


class TestEvaluator:
    def test_figure_one_lower_bound(self, db):
        result = run_query(FIGURE_1_QUERY, db)
        assert {t["e_NAME"] for t in result.rows} == {"JONES"}

    def test_brown_is_excluded(self, db):
        """Under the ni interpretation Brown's null TEL# satisfies nothing."""
        result = run_query(FIGURE_1_QUERY, db)
        assert "BROWN" not in {t["e_NAME"] for t in result.rows}

    def test_figure_two(self, db):
        result = run_query(FIGURE_2_QUERY, db)
        assert {t["e_NAME"] for t in result.rows} == {"GREEN"}

    def test_unknown_strategy(self, db):
        with pytest.raises(QuelError):
            run_query(FIGURE_1_QUERY, db, strategy="quantum")

    def test_query_without_where(self, db):
        result = run_query("range of e is EMP retrieve (e.NAME)", db)
        assert len(result) == len(db["EMP"])

    def test_result_to_table(self, db):
        assert "JONES" in run_query(FIGURE_1_QUERY, db).to_table()


class TestPlanner:
    def test_algebra_strategy_agrees_with_tuple_strategy(self, db):
        for text in (FIGURE_1_QUERY, FIGURE_2_QUERY,
                     'range of e is EMP retrieve (e.NAME) where e.SEX = "F"'):
            tuple_answer = run_query(text, db, strategy="tuple").answer
            algebra_answer = run_query(text, db, strategy="algebra").answer
            assert tuple_answer == algebra_answer

    def test_selection_pushdown_recorded_in_plan(self, db):
        text = 'range of e is EMP range of m is EMP retrieve (e.NAME) ' \
               'where e.SEX = "F" and e.MGR# = m.E#'
        result = run_query(text, db, strategy="algebra")
        assert any("select" in step and "on e" in step for step in result.plan.steps)
        tuple_answer = run_query(text, db, strategy="tuple").answer
        assert result.answer == tuple_answer

    def test_plan_explain_is_numbered(self, db):
        result = run_query(FIGURE_1_QUERY, db, strategy="algebra")
        explanation = result.plan.explain()
        assert explanation.splitlines()[0].startswith("1.")

    def test_constant_on_left_is_pushed(self, db):
        text = 'range of e is EMP retrieve (e.NAME) where 2634000 < e.TEL#'
        algebra = run_query(text, db, strategy="algebra").answer
        tuples = run_query(text, db, strategy="tuple").answer
        assert algebra == tuples
        assert {t["e_NAME"] for t in algebra.rows()} == {"JONES", "ADAMS"}

    def test_database_query_helper(self, db):
        assert {t["e_NAME"] for t in db.query(FIGURE_2_QUERY).rows} == {"GREEN"}
