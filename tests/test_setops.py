"""Unit tests for the generalised set operations (repro.core.setops)."""

import pytest

from repro import NI, Relation, XTuple
from repro.core.setops import (
    difference,
    union,
    x_intersection,
    x_membership_difference,
    x_membership_intersection,
    x_membership_union,
)


@pytest.fixture
def left():
    return Relation.from_rows(["A", "B"], [(1, 2), (3, None)], name="L")


@pytest.fixture
def right():
    return Relation.from_rows(["A", "B"], [(1, 2), (None, 4)], name="R")


class TestUnion:
    def test_pools_rows(self, left, right):
        u = union(left, right)
        assert u.x_contains(XTuple(A=1, B=2))
        assert u.x_contains(XTuple(A=3))
        assert u.x_contains(XTuple(B=4))

    def test_no_union_compatibility_needed(self):
        a = Relation.from_rows(["A"], [(1,)])
        b = Relation.from_rows(["B"], [(2,)])
        u = union(a, b)
        assert set(u.schema.attributes) == {"A", "B"}
        assert u.x_contains(XTuple(A=1)) and u.x_contains(XTuple(B=2))

    def test_result_is_minimal_by_default(self, left):
        subsumed = Relation.from_rows(["A", "B"], [(1, None)])
        u = union(left, subsumed)
        assert u.is_minimal()
        assert len(u) == 2

    def test_minimize_false_keeps_everything(self, left):
        subsumed = Relation.from_rows(["A", "B"], [(1, None)])
        u = union(left, subsumed, minimize=False)
        assert len(u) == 3

    def test_union_with_empty_is_identity(self, left):
        empty = Relation.empty(["A", "B"])
        assert union(left, empty).equivalent_to(left)

    def test_union_subsumes_both_operands(self, left, right):
        u = union(left, right)
        assert u.subsumes(left) and u.subsumes(right)


class TestXIntersection:
    def test_pairwise_meets(self, left, right):
        i = x_intersection(left, right)
        assert i.x_contains(XTuple(A=1, B=2))

    def test_section7_example(self):
        """x-intersection of {(a,b1)} and {(a,b2)} x-contains (a, -)."""
        r1 = Relation.from_rows(["A", "B"], [("a", "b1")])
        r2 = Relation.from_rows(["A", "B"], [("a", "b2")])
        i = x_intersection(r1, r2)
        assert i.x_contains(XTuple(A="a"))
        assert not i.x_contains(XTuple(A="a", B="b1"))

    def test_intersection_with_empty_is_empty(self, left):
        empty = Relation.empty(["A", "B"])
        assert len(x_intersection(left, empty)) == 0

    def test_intersection_is_lower_bound(self, left, right):
        i = x_intersection(left, right)
        assert left.subsumes(i) and right.subsumes(i)

    def test_disjoint_schemas_yield_empty(self):
        a = Relation.from_rows(["A"], [(1,)])
        b = Relation.from_rows(["B"], [(2,)])
        assert len(x_intersection(a, b)) == 0


class TestDifference:
    def test_removes_subsumed_rows(self, left):
        exact = Relation.from_rows(["A", "B"], [(1, 2)])
        d = difference(left, exact)
        assert not d.x_contains(XTuple(A=1, B=2))
        assert d.x_contains(XTuple(A=3))

    def test_subtrahend_more_informative_removes(self):
        """A row is removed when the subtrahend has a MORE informative row."""
        minuend = Relation.from_rows(["A", "B"], [(1, None)])
        subtrahend = Relation.from_rows(["A", "B"], [(1, 5)])
        d = difference(minuend, subtrahend)
        assert len(d) == 0

    def test_subtrahend_less_informative_does_not_remove(self):
        minuend = Relation.from_rows(["A", "B"], [(1, 5)])
        subtrahend = Relation.from_rows(["A", "B"], [(1, None)])
        d = difference(minuend, subtrahend)
        assert d.x_contains(XTuple(A=1, B=5))

    def test_difference_with_empty_is_identity(self, left):
        assert difference(left, Relation.empty(["A", "B"])).equivalent_to(left)

    def test_self_difference_is_empty(self, left):
        assert len(difference(left, left)) == 0

    def test_paper_query_q4(self, ps):
        """Q4: parts supplied by s1 but not by s2 = {p2} (Section 6)."""
        from repro.core.algebra import project, select_constant
        s1_parts = project(select_constant(ps, "S#", "=", "s1"), ["P#"]).representation
        s2_parts = project(select_constant(ps, "S#", "=", "s2"), ["P#"]).representation
        result = difference(s1_parts, s2_parts)
        assert {t["P#"] for t in result.minimal().tuples()} == {"p2"}


class TestDefinitionalForms:
    def test_union_oracle_agrees(self, left, right):
        candidates = [XTuple(A=1, B=2), XTuple(A=3), XTuple(B=4), XTuple(A=9)]
        oracle = x_membership_union(left, right, candidates)
        efficient = union(left, right)
        for candidate in candidates:
            assert (candidate in oracle) == efficient.x_contains(candidate)

    def test_intersection_oracle_agrees(self, left, right):
        candidates = [XTuple(A=1, B=2), XTuple(A=1), XTuple(A=3), XTuple(B=4)]
        oracle = x_membership_intersection(left, right, candidates)
        efficient = x_intersection(left, right)
        for candidate in candidates:
            assert (candidate in oracle) == efficient.x_contains(candidate)

    def test_difference_oracle_respects_definition(self, left, right):
        candidates = [XTuple(A=3), XTuple(A=1, B=2)]
        oracle = x_membership_difference(left, right, candidates)
        assert XTuple(A=3) in oracle
        assert XTuple(A=1, B=2) not in oracle
