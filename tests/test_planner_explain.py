"""Plan.explain() traces: the composite-key join fusion must be visible.

The planner's contract after the bulk-mutation PR: every equality
conjunct linking two ranges is consumed by *one* fused multi-attribute
hash join — the trace reports ``hash equi-join … on [A = …, B = …]`` and
no residual selection is left behind.  These tests pin the trace shape
(what ``EXPLAIN`` shows users) alongside the answers.
"""

from __future__ import annotations

import re

import pytest

from repro.quel.evaluator import run_query
from repro.quel.planner import Plan
from repro.storage.database import Database


@pytest.fixture
def db() -> Database:
    database = Database("shipments")
    supply = database.create_table("SUPPLY", ["S#", "P#", "QTY"])
    demand = database.create_table("DEMAND", ["S#", "P#", "NEED"])
    supply.insert_many([
        ("s1", "p1", 10),
        ("s1", "p2", 20),
        ("s2", "p1", 30),
        ("s2", None, 5),
    ])
    demand.insert_many([
        ("s1", "p1", 7),
        ("s1", "p3", 2),
        ("s2", "p1", 9),
        (None, "p1", 4),
    ])
    return database


def join_steps(plan):
    return [step for step in plan.steps if "hash equi-join" in step]


def residual_steps(plan):
    # A *separate* residual selection step — a join step carrying a
    # "fused residual" annotation is not one.
    return [step for step in plan.steps if step.startswith("select residual")]


class TestCompositeJoinTraces:
    def test_two_attribute_link_is_one_fused_join(self, db):
        text = (
            "range of s is SUPPLY range of d is DEMAND "
            "retrieve (s.QTY, d.NEED) where s.S# = d.S# and s.P# = d.P#"
        )
        result = run_query(text, db, strategy="algebra")
        joins = join_steps(result.plan)
        assert len(joins) == 1
        # One fused composite-key join: both pairs inside one bracketed step.
        assert "on [" in joins[0]
        assert "s.S# = d.S#" in joins[0] and "s.P# = d.P#" in joins[0]
        # ... and nothing left over to re-check after the join.
        assert residual_steps(result.plan) == []
        assert "product" not in result.plan.explain()
        assert result.answer == run_query(text, db, strategy="tuple").answer

    def test_single_attribute_link_keeps_plain_trace(self, db):
        text = (
            "range of s is SUPPLY range of d is DEMAND "
            "retrieve (s.QTY) where s.S# = d.S#"
        )
        result = run_query(text, db, strategy="algebra")
        joins = join_steps(result.plan)
        assert len(joins) == 1
        assert "on s.S# = d.S#" in joins[0]
        assert "on [" not in joins[0]
        assert result.answer == run_query(text, db, strategy="tuple").answer

    def test_fused_join_filters_composite_key(self, db):
        """The fused join returns exactly the both-attribute matches — the
        single-key join would have paired (s1,p2) with (s1,p3)."""
        text = (
            "range of s is SUPPLY range of d is DEMAND "
            "retrieve (s.S#, s.P#) where s.S# = d.S# and s.P# = d.P#"
        )
        answer = run_query(text, db, strategy="algebra").answer
        pairs = {(t["s_S#"], t["s_P#"]) for t in answer.rows()}
        assert pairs == {("s1", "p1"), ("s2", "p1")}

    def test_non_equality_conjunct_fuses_into_join_probe(self, db):
        """The inequality is not a join key, but since the parallel-exec
        PR it rides the join anyway: the probe loop evaluates it on the
        (probe, build) pair before constructing the joined tuple, so the
        trace shows one join with a fused residual and no separate
        residual selection step."""
        text = (
            "range of s is SUPPLY range of d is DEMAND "
            "retrieve (s.QTY) where s.S# = d.S# and s.QTY > d.NEED"
        )
        result = run_query(text, db, strategy="algebra")
        joins = join_steps(result.plan)
        assert len(joins) == 1
        assert "on s.S# = d.S#" in joins[0] or "on d.S# = s.S#" in joins[0]
        assert "fused residual" in joins[0] and "QTY" in joins[0]
        assert residual_steps(result.plan) == []
        assert result.answer == run_query(text, db, strategy="tuple").answer

    def test_pushed_selections_precede_join_choice(self, db):
        text = (
            "range of s is SUPPLY range of d is DEMAND "
            'retrieve (s.QTY) where s.S# = d.S# and s.P# = d.P# and d.NEED > 3 and s.QTY > 5'
        )
        result = run_query(text, db, strategy="algebra")
        steps = result.plan.steps
        select_positions = [i for i, s in enumerate(steps) if s.startswith("select") and "residual" not in s]
        join_positions = [i for i, s in enumerate(steps) if "hash equi-join" in s]
        assert select_positions and join_positions
        assert max(select_positions) < min(join_positions)
        assert len(join_positions) == 1 and "on [" in steps[join_positions[0]]
        assert residual_steps(result.plan) == []
        assert result.answer == run_query(text, db, strategy="tuple").answer

    def test_three_ranges_chain_mixes_fused_and_plain_joins(self, db):
        text = (
            "range of s is SUPPLY range of d is DEMAND range of e is DEMAND "
            "retrieve (s.QTY, e.NEED) "
            "where s.S# = d.S# and s.P# = d.P# and d.P# = e.P#"
        )
        result = run_query(text, db, strategy="algebra")
        joins = join_steps(result.plan)
        assert len(joins) == 2
        fused = [j for j in joins if "on [" in j]
        assert len(fused) == 1  # s–d is composite, d–e is single-attribute
        assert residual_steps(result.plan) == []
        assert result.answer == run_query(text, db, strategy="tuple").answer

    def test_unlinked_ranges_fall_back_to_product(self, db):
        text = (
            "range of s is SUPPLY range of d is DEMAND "
            "retrieve (s.QTY, d.NEED)"
        )
        result = run_query(text, db, strategy="algebra")
        assert join_steps(result.plan) == []
        assert any("product" in step for step in result.plan.steps)
        assert result.answer == run_query(text, db, strategy="tuple").answer

    def test_null_rows_never_join(self, db):
        """Rows null on any fused key attribute are dropped by the join —
        the Section 5 TRUE-only discipline on every conjunct at once."""
        text = (
            "range of s is SUPPLY range of d is DEMAND "
            "retrieve (s.S#) where s.S# = d.S# and s.P# = d.P#"
        )
        answer = run_query(text, db, strategy="algebra").answer
        # (s2, ni) and (ni, p1) carry a null key component: no contribution.
        assert all(t["s_S#"] in {"s1", "s2"} for t in answer.rows())
        assert len(answer) == 2


class TestCostOptimizerTraces:
    """The statistics PR's contract: joins run in estimated-cost order,
    residual conjuncts are pushed through the joins, persistent indexes
    turn joins into index-nested-loop probes, and every executed step is
    annotated with ``est=…, rows=…``."""

    @pytest.fixture
    def chain_db(self) -> Database:
        """BIG1 –A– BIG2 –B– SEL, with SEL highly selective on C."""
        database = Database("chain")
        big1 = database.create_table("BIG1", ["A", "X"])
        big2 = database.create_table("BIG2", ["A", "B"])
        sel = database.create_table("SEL", ["B", "C"])
        big1.insert_many([(i % 4, i) for i in range(16)])
        big2.insert_many([(i % 4, i % 8) for i in range(16)])
        sel.insert_many([(i % 8, i) for i in range(16)])
        return database

    CHAIN_QUERY = (
        "range of b1 is BIG1 range of b2 is BIG2 range of s is SEL "
        "retrieve (b1.X, s.C) "
        "where b1.A = b2.A and b2.B = s.B and s.C = 3"
    )

    def test_join_reorder_starts_from_selective_range(self, chain_db):
        """The selection on SEL leaves one row, so cost ordering starts
        there and walks the chain SEL → BIG2 → BIG1 — the syntactic order
        would have built BIG1 ⋈ BIG2 first."""
        result = run_query(self.CHAIN_QUERY, chain_db, strategy="algebra")
        joins = join_steps(result.plan)
        assert len(joins) == 2
        assert "with b2" in joins[0] and "s.B = b2.B" in joins[0]
        assert "with b1" in joins[1] and "b2.A = b1.A" in joins[1]
        assert "product" not in result.plan.explain()
        assert result.answer == run_query(self.CHAIN_QUERY, chain_db, strategy="tuple").answer

    def test_syntactic_baseline_keeps_declaration_order(self, chain_db):
        """cost_based=False reproduces the previous planner's trace."""
        analyzed = run_query(self.CHAIN_QUERY, chain_db, strategy="algebra").analyzed
        plan = Plan(analyzed.query, chain_db, cost_based=False)
        answer = plan.execute()
        joins = join_steps(plan)
        assert len(joins) == 2
        assert "with b2" in joins[0] and "b1.A = b2.A" in joins[0]
        assert "with s" in joins[1]
        assert "est=" not in plan.explain()
        assert answer == run_query(self.CHAIN_QUERY, chain_db, strategy="tuple").answer

    def test_steps_carry_estimates_and_actuals(self, chain_db):
        plan = run_query(self.CHAIN_QUERY, chain_db, strategy="algebra").plan
        for step in plan.steps:
            if step.startswith(("select", "hash", "index-nested-loop", "product")):
                assert re.search(r"\[est=\d+, rows=\d+\]$", step), step
        assert re.search(r"\[rows=\d+\]$", plan.steps[-1])

    def test_index_nested_loop_join_trace(self, db):
        """A persistent index covering the fused join key turns the hash
        join into an index-nested-loop probe of the live index."""
        db.table("DEMAND").create_index(["S#", "P#"], name="demand_key")
        text = (
            "range of s is SUPPLY range of d is DEMAND "
            "retrieve (s.S#, s.P#) where s.S# = d.S# and s.P# = d.P#"
        )
        result = run_query(text, db, strategy="algebra")
        inl = [s for s in result.plan.steps if "index-nested-loop join" in s]
        assert len(inl) == 1
        assert "with d using index demand_key" in inl[0]
        assert "s.S# = d.S#" in inl[0] and "s.P# = d.P#" in inl[0]
        assert join_steps(result.plan) == []  # no bucket-rebuild join ran
        pairs = {(t["s_S#"], t["s_P#"]) for t in result.answer.rows()}
        assert pairs == {("s1", "p1"), ("s2", "p1")}
        assert result.answer == run_query(text, db, strategy="tuple").answer

    def test_index_matches_attribute_set_in_any_order(self, db):
        db.table("DEMAND").create_index(["P#", "S#"], name="reversed_key")
        text = (
            "range of s is SUPPLY range of d is DEMAND "
            "retrieve (s.QTY) where s.S# = d.S# and s.P# = d.P#"
        )
        result = run_query(text, db, strategy="algebra")
        assert any("using index reversed_key" in s for s in result.plan.steps)
        assert result.answer == run_query(text, db, strategy="tuple").answer

    def test_filtered_range_does_not_probe_index(self, db):
        """A pushed selection invalidates the stored index for that range:
        the plan falls back to the hash join over the filtered rows."""
        db.table("DEMAND").create_index(["S#"], name="demand_s")
        text = (
            "range of s is SUPPLY range of d is DEMAND "
            "retrieve (s.QTY) where s.S# = d.S# and d.NEED > 3"
        )
        result = run_query(text, db, strategy="algebra")
        assert not any("index-nested-loop" in s for s in result.plan.steps)
        assert len(join_steps(result.plan)) == 1
        assert result.answer == run_query(text, db, strategy="tuple").answer

    def test_use_indexes_flag_disables_probing(self, db):
        db.table("DEMAND").create_index(["S#"], name="demand_s")
        text = (
            "range of s is SUPPLY range of d is DEMAND "
            "retrieve (s.QTY) where s.S# = d.S#"
        )
        analyzed = run_query(text, db, strategy="algebra").analyzed
        plan = Plan(analyzed.query, db, use_indexes=False)
        answer = plan.execute()
        assert not any("index-nested-loop" in s for s in plan.steps)
        assert len(join_steps(plan)) == 1
        assert answer == run_query(text, db, strategy="tuple").answer

    def test_residual_pushed_through_joins(self, db):
        """A two-variable residual conjunct applies as soon as both its
        ranges are combined — before later joins, not after them."""
        text = (
            "range of s is SUPPLY range of d is DEMAND range of e is DEMAND "
            "retrieve (s.QTY, e.NEED) "
            "where s.S# = d.S# and s.QTY > d.NEED and d.P# = e.P#"
        )
        result = run_query(text, db, strategy="algebra")
        steps = result.plan.steps
        residual_positions = [i for i, s in enumerate(steps) if "residual" in s]
        join_with_e = [i for i, s in enumerate(steps) if "join with e" in s]
        assert len(residual_positions) == 1 and len(join_with_e) == 1
        assert residual_positions[0] < join_with_e[0]
        assert result.answer == run_query(text, db, strategy="tuple").answer
