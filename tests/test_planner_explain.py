"""Plan.explain() traces: the composite-key join fusion must be visible.

The planner's contract after the bulk-mutation PR: every equality
conjunct linking two ranges is consumed by *one* fused multi-attribute
hash join — the trace reports ``hash equi-join … on [A = …, B = …]`` and
no residual selection is left behind.  These tests pin the trace shape
(what ``EXPLAIN`` shows users) alongside the answers.
"""

from __future__ import annotations

import pytest

from repro.quel.evaluator import run_query
from repro.storage.database import Database


@pytest.fixture
def db() -> Database:
    database = Database("shipments")
    supply = database.create_table("SUPPLY", ["S#", "P#", "QTY"])
    demand = database.create_table("DEMAND", ["S#", "P#", "NEED"])
    supply.insert_many([
        ("s1", "p1", 10),
        ("s1", "p2", 20),
        ("s2", "p1", 30),
        ("s2", None, 5),
    ])
    demand.insert_many([
        ("s1", "p1", 7),
        ("s1", "p3", 2),
        ("s2", "p1", 9),
        (None, "p1", 4),
    ])
    return database


def join_steps(plan):
    return [step for step in plan.steps if "hash equi-join" in step]


def residual_steps(plan):
    return [step for step in plan.steps if "residual" in step]


class TestCompositeJoinTraces:
    def test_two_attribute_link_is_one_fused_join(self, db):
        text = (
            "range of s is SUPPLY range of d is DEMAND "
            "retrieve (s.QTY, d.NEED) where s.S# = d.S# and s.P# = d.P#"
        )
        result = run_query(text, db, strategy="algebra")
        joins = join_steps(result.plan)
        assert len(joins) == 1
        # One fused composite-key join: both pairs inside one bracketed step.
        assert "on [" in joins[0]
        assert "s.S# = d.S#" in joins[0] and "s.P# = d.P#" in joins[0]
        # ... and nothing left over to re-check after the join.
        assert residual_steps(result.plan) == []
        assert "product" not in result.plan.explain()
        assert result.answer == run_query(text, db, strategy="tuple").answer

    def test_single_attribute_link_keeps_plain_trace(self, db):
        text = (
            "range of s is SUPPLY range of d is DEMAND "
            "retrieve (s.QTY) where s.S# = d.S#"
        )
        result = run_query(text, db, strategy="algebra")
        joins = join_steps(result.plan)
        assert len(joins) == 1
        assert "on s.S# = d.S#" in joins[0]
        assert "on [" not in joins[0]
        assert result.answer == run_query(text, db, strategy="tuple").answer

    def test_fused_join_filters_composite_key(self, db):
        """The fused join returns exactly the both-attribute matches — the
        single-key join would have paired (s1,p2) with (s1,p3)."""
        text = (
            "range of s is SUPPLY range of d is DEMAND "
            "retrieve (s.S#, s.P#) where s.S# = d.S# and s.P# = d.P#"
        )
        answer = run_query(text, db, strategy="algebra").answer
        pairs = {(t["s_S#"], t["s_P#"]) for t in answer.rows()}
        assert pairs == {("s1", "p1"), ("s2", "p1")}

    def test_non_equality_conjunct_stays_residual(self, db):
        text = (
            "range of s is SUPPLY range of d is DEMAND "
            "retrieve (s.QTY) where s.S# = d.S# and s.QTY > d.NEED"
        )
        result = run_query(text, db, strategy="algebra")
        joins = join_steps(result.plan)
        assert len(joins) == 1
        assert "s.QTY" not in joins[0]
        assert len(residual_steps(result.plan)) == 1
        assert result.answer == run_query(text, db, strategy="tuple").answer

    def test_pushed_selections_precede_join_choice(self, db):
        text = (
            "range of s is SUPPLY range of d is DEMAND "
            'retrieve (s.QTY) where s.S# = d.S# and s.P# = d.P# and d.NEED > 3 and s.QTY > 5'
        )
        result = run_query(text, db, strategy="algebra")
        steps = result.plan.steps
        select_positions = [i for i, s in enumerate(steps) if s.startswith("select") and "residual" not in s]
        join_positions = [i for i, s in enumerate(steps) if "hash equi-join" in s]
        assert select_positions and join_positions
        assert max(select_positions) < min(join_positions)
        assert len(join_positions) == 1 and "on [" in steps[join_positions[0]]
        assert residual_steps(result.plan) == []
        assert result.answer == run_query(text, db, strategy="tuple").answer

    def test_three_ranges_chain_mixes_fused_and_plain_joins(self, db):
        text = (
            "range of s is SUPPLY range of d is DEMAND range of e is DEMAND "
            "retrieve (s.QTY, e.NEED) "
            "where s.S# = d.S# and s.P# = d.P# and d.P# = e.P#"
        )
        result = run_query(text, db, strategy="algebra")
        joins = join_steps(result.plan)
        assert len(joins) == 2
        fused = [j for j in joins if "on [" in j]
        assert len(fused) == 1  # s–d is composite, d–e is single-attribute
        assert residual_steps(result.plan) == []
        assert result.answer == run_query(text, db, strategy="tuple").answer

    def test_unlinked_ranges_fall_back_to_product(self, db):
        text = (
            "range of s is SUPPLY range of d is DEMAND "
            "retrieve (s.QTY, d.NEED)"
        )
        result = run_query(text, db, strategy="algebra")
        assert join_steps(result.plan) == []
        assert any("product" in step for step in result.plan.steps)
        assert result.answer == run_query(text, db, strategy="tuple").answer

    def test_null_rows_never_join(self, db):
        """Rows null on any fused key attribute are dropped by the join —
        the Section 5 TRUE-only discipline on every conjunct at once."""
        text = (
            "range of s is SUPPLY range of d is DEMAND "
            "retrieve (s.S#) where s.S# = d.S# and s.P# = d.P#"
        )
        answer = run_query(text, db, strategy="algebra").answer
        # (s2, ni) and (ni, p1) carry a null key component: no contribution.
        assert all(t["s_S#"] in {"s1", "s2"} for t in answer.rows())
        assert len(answer) == 2
