"""Behavioural tests for the semantic result cache (``repro.api.result_cache``).

The contract: a cache hit returns the *same answer* the executor would
produce for the tables' current states — never a stale one.  Keys embed
the normalized statement, the bound parameters, the database epoch and
each referenced table's mutation counter, so any DML, DDL, ANALYZE,
snapshot restore or transaction rollback makes old entries unreachable
structurally (no invalidation hooks to forget).
"""

from __future__ import annotations

import pytest

from repro.api.session import Session, connect
from repro.obs import MetricsRegistry, registry_for
from repro.storage.database import Database


def fresh_database(name="cachedb"):
    database = Database(name, metrics=MetricsRegistry())
    table = database.create_table("T", ["A", "B"])
    table.insert_many([(i, i % 7) for i in range(50)])
    database.analyze()
    return database


def series(database, name, **labels):
    registry = registry_for(database)
    rendered = registry.render_prometheus()
    wanted = "".join(
        f'{k}="{v}"' for k, v in sorted(labels.items())
    )
    for line in rendered.splitlines():
        if not line.startswith(name):
            continue
        if labels:
            if "{" not in line:
                continue
            body = line[line.index("{") + 1:line.index("}")]
            if sorted(body.split(",")) != sorted(
                f'{k}="{v}"' for k, v in labels.items()
            ):
                continue
        return float(line.rsplit(" ", 1)[1])
    return 0.0


QUERY = "range of t is T retrieve (t.A, t.B) where t.B != 3"


class TestHitsAndMisses:
    def test_second_execution_hits_and_returns_same_rows(self):
        database = fresh_database()
        session = Session(database)
        first = session.execute(QUERY).rows
        second = session.execute(QUERY)
        assert second.rows == first
        assert "cached result" in second.explain()
        assert series(database, "repro_result_cache_total", event="hit") == 1
        assert series(database, "repro_result_cache_total", event="miss") == 1
        assert series(database, "repro_result_cache_entries") == 1

    def test_equivalent_texts_share_one_entry(self):
        database = fresh_database()
        session = Session(database)
        session.execute(QUERY).rows
        spaced = (
            "range of t is T  retrieve ( t.A , t.B )  where t.B != 3"
        )
        assert "cached result" in session.execute(spaced).explain()

    def test_distinct_params_get_distinct_entries(self):
        database = fresh_database()
        session = Session(database)
        text = "range of t is T retrieve (t.A) where t.B = $b"
        three = session.execute(text, {"b": 3}).rows
        four = session.execute(text, {"b": 4}).rows
        assert three != four
        assert series(database, "repro_result_cache_total", event="hit") == 0
        assert session.execute(text, {"b": 3}).rows == three
        assert session.execute(text, {"b": 4}).rows == four
        assert series(database, "repro_result_cache_total", event="hit") == 2

    def test_undrained_retrieve_is_not_cached(self):
        database = fresh_database()
        session = Session(database)
        result = session.execute(QUERY)
        iterator = iter(result)
        next(iterator)  # partially streamed: the pipeline never finished
        assert len(session.result_cache) == 0
        repeat = session.execute(QUERY)
        assert "cached result" not in repeat.explain()


class TestStructuralInvalidation:
    def test_dml_invalidates(self):
        database = fresh_database()
        session = Session(database)
        before = session.execute(QUERY).rows
        session.execute("append to T (A = 999, B = 0)")
        after = session.execute(QUERY)
        assert "cached result" not in after.explain()
        assert len(after.rows) == len(before) + 1

    def test_delete_and_replace_invalidate(self):
        database = fresh_database()
        session = Session(database)
        baseline = session.execute(QUERY).rows
        session.execute("range of t is T delete t where t.A = 0")
        assert "cached result" not in session.execute(QUERY).explain()
        smaller = session.execute(QUERY).rows
        assert len(smaller) == len(baseline) - 1
        session.execute("range of t is T replace t (B = 6) where t.A = 1")
        replaced = session.execute(QUERY)
        assert "cached result" not in replaced.explain()

    def test_drop_and_recreate_invalidates(self):
        database = fresh_database()
        session = Session(database)
        session.execute(QUERY).rows
        database.drop_table("T")
        table = database.create_table("T", ["A", "B"])
        table.insert_many([(1, 0)])
        fresh = session.execute(QUERY)
        assert "cached result" not in fresh.explain()
        assert len(fresh.rows) == 1

    def test_index_and_analyze_move_the_key(self):
        database = fresh_database()
        session = Session(database)
        session.execute(QUERY).rows
        database.catalog.table("T").create_index(["B"])
        assert "cached result" not in session.execute(QUERY).explain()
        session.execute(QUERY).rows  # repopulate under the new epoch
        database.analyze()
        assert "cached result" not in session.execute(QUERY).explain()

    def test_rollback_invalidates(self):
        database = fresh_database()
        session = Session(database)
        baseline = session.execute(QUERY).rows
        with pytest.raises(RuntimeError):
            with session.transaction():
                session.execute("append to T (A = 999, B = 0)")
                inside = session.execute(QUERY)
                assert "cached result" not in inside.explain()
                assert len(inside.rows) == len(baseline) + 1
                raise RuntimeError("force rollback")
        # Rows are back to the pre-transaction state; the entry cached
        # inside the aborted group must be unreachable.
        after = session.execute(QUERY)
        assert "cached result" not in after.explain()
        assert after.rows == baseline

    def test_cached_answers_equal_uncached_after_random_interleaving(self):
        database = fresh_database("cache_on")
        oracle_db = fresh_database("cache_off")
        cached = Session(database)
        uncached = Session(oracle_db, result_cache_size=0)
        statements = [
            QUERY,
            "append to T (A = 100, B = 1)",
            QUERY,
            QUERY,
            "range of t is T delete t where t.B = 1",
            QUERY,
            "range of t is T replace t (B = 5) where t.A = 2",
            QUERY,
            QUERY,
        ]
        for text in statements:
            assert cached.execute(text).rows == uncached.execute(text).rows
        assert series(database, "repro_result_cache_total", event="hit") > 0


class TestKnobsAndScope:
    def test_disable_knob(self):
        database = fresh_database()
        session = Session(database, result_cache_size=0)
        assert session.result_cache is None
        session.execute(QUERY).rows
        assert "cached result" not in session.execute(QUERY).explain()

    def test_connect_passes_knob_through(self):
        session = connect(fresh_database())
        assert session.result_cache is not None
        disabled = connect(fresh_database("nocache"), result_cache_size=0)
        assert disabled.result_cache is None

    def test_mutations_and_into_are_never_cached(self):
        database = fresh_database()
        session = Session(database)
        session.execute("append to T (A = 777, B = 2)")
        session.execute("append to T (A = 778, B = 2)")
        session.execute("range of t is T retrieve into T2 (t.A) where t.B = 2")
        assert len(session.result_cache) == 0

    def test_parallel_execution_bypasses_the_cache(self):
        database = fresh_database()
        session = Session(database)
        session.execute(QUERY).rows
        result = session.execute(QUERY, parallelism=2)
        assert "cached result" not in result.explain()

    def test_capacity_eviction_is_lru_and_counted(self):
        database = fresh_database()
        session = Session(database, result_cache_size=2)
        text = "range of t is T retrieve (t.A) where t.B = $b"
        for b in (0, 1, 2):
            session.execute(text, {"b": b}).rows
        assert len(session.result_cache) == 2
        assert series(database, "repro_result_cache_total", event="eviction") == 1
        assert series(database, "repro_result_cache_entries") == 2
        # b=0 was evicted (oldest); b=2 still hits.
        assert "cached result" in session.execute(text, {"b": 2}).explain()
        assert "cached result" not in session.execute(text, {"b": 0}).explain()

    def test_unhashable_params_skip_the_cache(self):
        database = fresh_database()
        session = Session(database)
        cache = session.result_cache
        key = cache.key_for("stmt", {"x": [1, 2]}, ("x",), ())
        assert key is None

    def test_clear_resets_occupancy(self):
        database = fresh_database()
        session = Session(database)
        session.execute(QUERY).rows
        assert len(session.result_cache) == 1
        session.result_cache.clear()
        assert len(session.result_cache) == 0
        assert series(database, "repro_result_cache_entries") == 0
