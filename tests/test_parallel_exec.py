"""Parallel partitioned execution: Exchange/Merge edge cases.

What must hold, whatever the partitioning does:

* correctness never depends on the shard layout — empty partitions,
  single-row shards and everything hashing to one worker all reproduce
  the serial answer (the Merge reduction reconciles any shard frontier);
* ``parallelism=1`` *is* the serial plan, block for block;
* a worker exception surfaces cleanly through the pipeline (latched and
  re-raised, like any operator error) and leaves no orphaned processes;
* the auto heuristic and the partitioning kernels behave as documented.
"""

from __future__ import annotations

import multiprocessing
import random

import pytest

from repro.core.engine.dominance import (
    bulk_reduce,
    merge_reduced,
    partition_rows_by_signature,
)
from repro.core.engine.joins import build_join_buckets, probe_join_block
from repro.core.relation import RelationSchema
from repro.core.tuples import XTuple
from repro.exec import (
    Exchange,
    Merge,
    Pipeline,
    PlanFragment,
    partition_rows_by_key,
)
from repro.quel import compile_query
from repro.quel.planner import Plan
from repro.stats import suggest_parallelism
from repro.storage import Database


def make_database(rows: int = 60, seed: int = 11) -> Database:
    """EMP(NAME, DEPT, SAL) — nullable DEPT — linked to DEPT(DNAME, FLOOR)."""
    rng = random.Random(seed)
    db = Database("parallel")
    emp = db.create_table("EMP", ["NAME", "DEPT", "SAL"])
    dept = db.create_table("DEPT", ["DNAME", "FLOOR"])
    for i in range(rows):
        emp.insert({
            "NAME": f"e{i}",
            "DEPT": f"d{rng.randrange(8)}" if rng.random() > 0.3 else None,
            "SAL": rng.randrange(5),
        })
    for j in range(8):
        dept.insert({"DNAME": f"d{j}", "FLOOR": j % 3})
    return db


JOIN_QUERY = (
    "range of e is EMP range of d is DEPT "
    "retrieve (N = e.NAME, F = d.FLOOR) "
    "where e.DEPT = d.DNAME and e.SAL > d.FLOOR"
)
SINGLE_RANGE_QUERY = "range of e is EMP retrieve (D = e.DEPT, S = e.SAL)"
PRODUCT_QUERY = (
    "range of e is EMP range of d is DEPT "
    "retrieve (N = e.NAME, F = d.FLOOR) where e.SAL > d.FLOOR"
)


def answers_for(db: Database, text: str, **plan_kwargs):
    analyzed = compile_query(text, db)
    plan = Plan(analyzed.query, db, **plan_kwargs)
    return plan, plan.execute()


# ---------------------------------------------------------------------------
# Partitioning kernels
# ---------------------------------------------------------------------------

class TestPartitioningKernels:
    def test_partition_count_must_be_positive(self):
        with pytest.raises(ValueError):
            partition_rows_by_signature([], 0)
        with pytest.raises(ValueError):
            partition_rows_by_key([], ["A"], 0)

    def test_key_partitioning_drops_null_key_rows(self):
        rows = [XTuple({"A": 1, "B": 2}), XTuple({"B": 3}), XTuple({"A": 4})]
        shards = partition_rows_by_key(rows, ["A"], 3)
        scattered = [row for shard in shards for row in shard]
        # The row null on A can never satisfy an equality on A.
        assert sorted(r["B"] if "B" in r.attributes else 0 for r in scattered) == [0, 2]

    def test_key_partitioning_copartitions_equal_keys(self):
        left = [XTuple({"A": i % 5, "L": i}) for i in range(40)]
        right = [XTuple({"B": i % 5, "R": i}) for i in range(40)]
        left_shards = partition_rows_by_key(left, ["A"], 3)
        right_shards = partition_rows_by_key(right, ["B"], 3)
        placement = {}
        for index, shard in enumerate(left_shards):
            for row in shard:
                placement.setdefault(row["A"], set()).add(index)
        for index, shard in enumerate(right_shards):
            for row in shard:
                placement.setdefault(row["B"], set()).add(index)
        # Every key value lives in exactly one partition, on both sides.
        assert all(len(indices) == 1 for indices in placement.values())

    def test_signature_sharding_then_merge_equals_bulk_reduce(self):
        rng = random.Random(3)
        rows = []
        for _ in range(300):
            values = {}
            for attribute in ("A", "B", "C"):
                if rng.random() > 0.4:
                    values[attribute] = rng.randrange(4)
            if values:
                rows.append(XTuple(values))
        for partitions in (1, 2, 3, 5):
            shards = partition_rows_by_signature(rows, partitions)
            assert sum(len(s) for s in shards) == len(rows)
            locally_reduced = [bulk_reduce(shard) for shard in shards]
            assert set(merge_reduced(locally_reduced)) == set(bulk_reduce(rows))


# ---------------------------------------------------------------------------
# Exchange/Merge over real plans
# ---------------------------------------------------------------------------

class TestExchangeEdgeCases:
    @pytest.mark.parametrize("text", [JOIN_QUERY, SINGLE_RANGE_QUERY, PRODUCT_QUERY])
    @pytest.mark.parametrize("partitions", [2, 4])
    def test_parallel_matches_serial(self, text, partitions):
        db = make_database()
        _, serial = answers_for(db, text)
        _, inline = answers_for(
            db, text, parallelism=partitions, parallel_mode="inline"
        )
        assert set(inline.rows()) == set(serial.rows())

    def test_process_mode_matches_serial(self):
        db = make_database()
        _, serial = answers_for(db, JOIN_QUERY)
        _, parallel = answers_for(db, JOIN_QUERY, parallelism=2)
        assert set(parallel.rows()) == set(serial.rows())

    def test_more_partitions_than_rows_leaves_empty_shards(self):
        db = Database("tiny")
        emp = db.create_table("EMP", ["NAME", "DEPT", "SAL"])
        dept = db.create_table("DEPT", ["DNAME", "FLOOR"])
        emp.insert({"NAME": "e0", "DEPT": "d0", "SAL": 4})
        emp.insert({"NAME": "e1", "DEPT": "d1", "SAL": 4})
        dept.insert({"DNAME": "d0", "FLOOR": 0})
        dept.insert({"DNAME": "d1", "FLOOR": 1})
        _, serial = answers_for(db, JOIN_QUERY)
        plan, parallel = answers_for(
            db, JOIN_QUERY, parallelism=6, parallel_mode="inline"
        )
        assert set(parallel.rows()) == set(serial.rows())
        exchange = plan.pipeline.root.child
        assert isinstance(exchange, Exchange)
        # More partitions than rows: some shards are necessarily empty,
        # every partition still ran and reported stats.
        assert 0 in exchange.partitioned_rows
        assert all(stats is not None for stats in exchange.partition_stats)

    def test_single_row_shards_reconcile(self):
        # Hand-built partitions, one row each — no hashing involved.
        rows = [XTuple({"A": i, "B": i % 2}) for i in range(5)]
        fragment = PlanFragment(
            steps=(("rename", "v"), ("project", (("A", "v.A"), ("B", "v.B")))),
            mappings={"v": {"A": "v.A", "B": "v.B"}},
            start="v",
            variables=("v",),
        )
        exchange = Exchange(
            fragment, [{"v": [row]} for row in rows], mode="inline"
        )
        pipeline = Pipeline(Merge(exchange), RelationSchema(("A", "B"), name="Q"), [])
        answer = pipeline.run()
        assert set(answer.rows()) == set(rows)

    def test_all_rows_hashing_to_one_worker(self):
        db = Database("skewed")
        emp = db.create_table("EMP", ["NAME", "DEPT", "SAL"])
        dept = db.create_table("DEPT", ["DNAME", "FLOOR"])
        for i in range(20):
            emp.insert({"NAME": f"e{i}", "DEPT": "d0", "SAL": 4})
        dept.insert({"DNAME": "d0", "FLOOR": 1})
        _, serial = answers_for(db, JOIN_QUERY)
        plan, parallel = answers_for(
            db, JOIN_QUERY, parallelism=3, parallel_mode="inline"
        )
        assert set(parallel.rows()) == set(serial.rows())
        exchange = plan.pipeline.root.child
        # A single join-key value: every partitioned row lands in one
        # shard, the other workers run empty, and the skew says so.
        counts = sorted(exchange.partitioned_rows)
        assert counts[:-1] == [0, 0] and counts[-1] == 21
        assert exchange.skew == pytest.approx(3.0)

    def test_parallelism_one_is_the_serial_tree_block_for_block(self):
        db = make_database()
        analyzed = compile_query(JOIN_QUERY, db)
        serial_blocks = [
            list(block) for block in Plan(analyzed.query, db).compile().root.blocks()
        ]
        one_blocks = [
            list(block)
            for block in Plan(analyzed.query, db).compile(parallelism=1).root.blocks()
        ]
        assert one_blocks == serial_blocks

    def test_explain_analyze_reports_partitions_and_skew(self):
        db = make_database()
        plan, _ = answers_for(db, JOIN_QUERY, parallelism=3, parallel_mode="inline")
        rendered = plan.pipeline.explain(analyze=True)
        assert "Exchange [3 partitions" in rendered
        assert "skew=" in rendered
        assert "Merge [reduce shard frontier]" in rendered
        for index in range(3):
            assert f"partition {index} [rows_in=" in rendered
        # The logical step trace carries the aggregated per-worker counts.
        joined = "\n".join(plan.pipeline.step_lines())
        assert "exchange over 3 partitions" in joined
        assert "hash equi-join" in joined and "rows=" in joined

    def test_index_backed_plans_resolve_at_the_coordinator(self):
        db = make_database(rows=40)
        # EMP is the larger range, so the planner starts from DEPT and
        # joins EMP as the build side — the index on EMP.DEPT makes the
        # serial join an index-nested-loop.
        db.catalog.table("EMP").create_index(["DEPT"])
        analyzed = compile_query(JOIN_QUERY, db)
        serial_plan = Plan(analyzed.query, db)
        serial = serial_plan.execute()
        # The serial plan's join consults the persistent index...
        assert any("index" in step for step in serial_plan.steps)
        parallel_plan = Plan(
            analyzed.query, db, parallelism=2, parallel_mode="inline"
        )
        parallel = parallel_plan.execute()
        # ...while workers (shared-nothing) get the same answer without it.
        assert set(parallel.rows()) == set(serial.rows())


# ---------------------------------------------------------------------------
# Worker failure
# ---------------------------------------------------------------------------

class ExplodingPredicate:
    """A picklable predicate whose evaluation always fails in the worker."""

    def references(self):
        return ["v"]

    def evaluate(self, binding):
        raise RuntimeError("boom in worker")

    def __repr__(self):
        return "ExplodingPredicate()"


def _exploding_pipeline(mode: str) -> Pipeline:
    rows = [XTuple({"A": i}) for i in range(8)]
    fragment = PlanFragment(
        steps=(
            ("rename", "v"),
            ("select-var", "v", ExplodingPredicate()),
            ("project", (("A", "v.A"),)),
        ),
        mappings={"v": {"A": "v.A"}},
        start="v",
        variables=("v",),
    )
    exchange = Exchange(
        fragment, [{"v": rows[:4]}, {"v": rows[4:]}], mode=mode
    )
    return Pipeline(Merge(exchange), RelationSchema(("A",), name="Q"), [])


class TestWorkerFailure:
    @pytest.mark.parametrize("mode", ["inline", "process"])
    def test_worker_exception_propagates_and_latches(self, mode):
        pipeline = _exploding_pipeline(mode)
        with pytest.raises(RuntimeError, match="boom in worker"):
            pipeline.run()
        # The failure is latched: later consumption re-raises instead of
        # passing off the partial prefix as the answer.
        with pytest.raises(RuntimeError, match="boom in worker"):
            pipeline.run()
        with pytest.raises(RuntimeError, match="boom in worker"):
            list(pipeline.iter_rows())

    def test_failed_query_leaves_no_orphaned_processes(self):
        pipeline = _exploding_pipeline("process")
        with pytest.raises(RuntimeError, match="boom in worker"):
            pipeline.run()
        # The pool was terminated and joined in the exchange's finally
        # block; reap anything still shutting down, then require quiet.
        for child in multiprocessing.active_children():
            child.join(timeout=10)
        assert multiprocessing.active_children() == []


# ---------------------------------------------------------------------------
# The auto heuristic
# ---------------------------------------------------------------------------

class TestSuggestParallelism:
    def test_below_threshold_is_serial(self):
        assert suggest_parallelism(100, cpu_count=8, available=True) == 1
        assert suggest_parallelism(49_999, cpu_count=8, available=True) == 1

    def test_above_threshold_caps_by_cpu_and_max_workers(self):
        assert suggest_parallelism(200_000, cpu_count=2, available=True) == 2
        assert suggest_parallelism(200_000, cpu_count=16, available=True) == 4
        assert suggest_parallelism(
            200_000, cpu_count=16, max_workers=8, available=True
        ) == 8

    def test_unavailable_multiprocessing_means_serial(self):
        assert suggest_parallelism(10**9, cpu_count=64, available=False) == 1

    def test_auto_resolves_to_serial_on_small_inputs(self):
        db = make_database(rows=30)
        analyzed = compile_query(JOIN_QUERY, db)
        plan = Plan(analyzed.query, db)
        assert plan._resolve_parallelism("auto") == 1

    def test_explicit_zero_and_none_are_serial(self):
        db = make_database(rows=10)
        analyzed = compile_query(JOIN_QUERY, db)
        plan = Plan(analyzed.query, db)
        assert plan._resolve_parallelism(None) == 1
        assert plan._resolve_parallelism(0) == 1
        with pytest.raises(ValueError):
            plan._resolve_parallelism(-2)


# ---------------------------------------------------------------------------
# Fused residual predicates in the join probe loop
# ---------------------------------------------------------------------------

class TestResidualFusion:
    def test_fused_join_matches_tuple_oracle(self):
        from repro.quel.evaluator import run_query

        db = make_database()
        algebra = run_query(JOIN_QUERY, db, strategy="algebra")
        oracle = run_query(JOIN_QUERY, db, strategy="tuple")
        assert algebra.answer == oracle.answer
        joins = [s for s in algebra.plan.steps if "equi-join" in s]
        assert len(joins) == 1 and "fused residual" in joins[0]
        assert not any(s.startswith("select residual") for s in algebra.plan.steps)

    def test_probe_join_block_residual_rejects_before_joining(self):
        probe_rows = [XTuple({"e.K": i, "e.V": i * 10}) for i in range(6)]
        build_rows = [XTuple({"K": i, "W": i % 3}) for i in range(6)]
        buckets = build_join_buckets(build_rows, ["K"])
        calls = []

        def residual(left, right):
            calls.append((left["e.K"], right["K"]))
            return right["W"] > 0

        out = probe_join_block(
            probe_rows, ["e.K"], lambda key: buckets.get(key, ()),
            lambda row: row.rename({"K": "d.K", "W": "d.W"}), {}, residual,
        )
        # Every candidate pair was offered to the residual, only the
        # passing ones were joined (W > 0 ⇔ K % 3 != 0).
        assert len(calls) == 6
        assert sorted(row["d.K"] for row in out) == [1, 2, 4, 5]

    def test_fusion_skips_non_conjunctive_shapes(self):
        from repro.quel.evaluator import run_query

        db = make_database()
        text = (
            "range of e is EMP range of d is DEPT "
            "retrieve (N = e.NAME) "
            "where e.DEPT = d.DNAME and (e.SAL > d.FLOOR or e.SAL = 0)"
        )
        algebra = run_query(text, db, strategy="algebra")
        # An OR cannot compile to the fast pair predicate: it stays a
        # separate residual selection after the join.
        assert any(s.startswith("select residual") for s in algebra.plan.steps)
        assert algebra.answer == run_query(text, db, strategy="tuple").answer
