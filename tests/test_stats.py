"""Unit tests for the statistics/cost-model subsystem (``repro.stats``).

The property-level pinning — incremental maintenance ≡ ``analyze()`` from
scratch after arbitrary mutation interleavings — lives in
``tests/test_storage_properties.py``; these are the direct behavioural
tests for the counters, the staleness tracker and the null-aware
estimation formulas.
"""

from __future__ import annotations

import pytest

from repro.core.tuples import XTuple
from repro.stats import CostModel, DEFAULT_COST_MODEL, TableStatistics
from repro.storage.table import Table


def rows(*specs):
    return [XTuple({a: v for a, v in spec.items() if v is not None}) for spec in specs]


class TestTableStatistics:
    def test_counts_rows_distincts_and_nulls(self):
        stats = TableStatistics(rows(
            {"A": 1, "B": "x"},
            {"A": 1, "B": "y"},
            {"A": 2, "B": None},
            {"A": None, "B": "x"},
        ))
        assert stats.row_count == 4
        assert stats.distinct_count("A") == 2
        assert stats.distinct_count("B") == 2
        assert stats.non_null_count("A") == 3
        assert stats.null_count("A") == 1
        assert stats.null_count("B") == 1
        assert stats.null_fraction("A") == pytest.approx(0.25)
        assert stats.distinct_count("C") == 0
        assert stats.null_count("C") == 4

    def test_signature_histogram_tracks_null_patterns(self):
        stats = TableStatistics(rows(
            {"A": 1, "B": 2},
            {"A": 3, "B": 4},
            {"A": 5, "B": None},
            {"A": None, "B": None},
        ))
        assert stats.signature_histogram() == {
            ("A", "B"): 2,
            ("A",): 1,
            (): 1,
        }

    def test_incremental_add_remove_round_trip(self):
        batch = rows({"A": 1, "B": 2}, {"A": 1, "B": None}, {"A": 2, "B": 2})
        stats = TableStatistics()
        stats.add_rows(batch)
        assert stats == TableStatistics(batch)
        stats.remove_row(batch[0])
        assert stats == TableStatistics(batch[1:])
        stats.remove_rows(batch[1:])
        assert stats.row_count == 0
        assert stats.signature_histogram() == {}
        assert stats == TableStatistics()

    def test_staleness_trips_after_threshold_and_analyze_resets(self):
        stats = TableStatistics(staleness_threshold=2)
        assert not stats.stale
        seen = []
        for i in range(3):
            row = XTuple({"A": i})
            seen.append(row)
            stats.add_row(row)
        assert stats.mutations_since_analyze == 3
        assert stats.stale
        stats.analyze(seen)
        assert stats.mutations_since_analyze == 0
        assert not stats.stale
        assert stats.row_count == 3

    def test_bulk_add_counts_one_staleness_tick(self):
        stats = TableStatistics(staleness_threshold=2)
        stats.add_rows(rows({"A": 1}, {"A": 2}, {"A": 3}))
        assert stats.mutations_since_analyze == 1
        stats.add_rows([])
        assert stats.mutations_since_analyze == 1

    def test_table_analyze_is_noop_on_counters(self):
        table = Table(["A", "B"], name="T")
        table.insert_many([(1, 2), (1, None), (3, 4)])
        table.delete((1, None))
        before = TableStatistics(table.rows())
        assert table.statistics == before
        table.analyze()
        assert table.statistics == before
        assert table.statistics.mutations_since_analyze == 0


class TestCostModel:
    @pytest.fixture
    def stats(self) -> TableStatistics:
        # 10 rows: A has 5 distinct values over 8 non-null rows (2 null);
        # B is always null.
        return TableStatistics(rows(
            *({"A": i % 5, "B": None} for i in range(8)),
            {"A": None, "B": None},
            {"A": None, "B": None},
        ))

    def test_equality_selectivity_discounts_nulls(self, stats):
        model = CostModel()
        # visible fraction 0.8, uniform over 5 distinct values
        assert model.selection_selectivity(stats, "A", "=") == pytest.approx(0.8 / 5)
        # an all-null attribute can never satisfy an equality
        assert model.selection_selectivity(stats, "B", "=") == 0.0

    def test_inequality_keeps_nonnull_complement(self, stats):
        model = CostModel()
        assert model.selection_selectivity(stats, "A", "!=") == pytest.approx(0.8 * 0.8)
        # nulls fail != too: ni is never TRUE
        assert model.selection_selectivity(stats, "B", "!=") == 0.0

    def test_range_selectivity_uses_theta_fraction(self, stats):
        model = CostModel(theta_selectivity=0.5)
        assert model.selection_selectivity(stats, "A", "<") == pytest.approx(0.8 * 0.5)
        assert model.estimate_selection(stats, "A", "<") == pytest.approx(10 * 0.4)
        assert model.estimate_selection(stats, "A", "<", cardinality=100) == pytest.approx(40)

    def test_empty_table_selects_nothing(self):
        model = CostModel()
        assert model.selection_selectivity(TableStatistics(), "A", "=") == 0.0

    def test_join_cardinality_divides_by_max_distinct(self):
        model = CostModel()
        assert model.join_cardinality(100, 200, [(10, 20)]) == pytest.approx(1000)
        # composite keys multiply the divisors
        assert model.join_cardinality(100, 200, [(10, 20), (4, 2)]) == pytest.approx(250)
        # zero distinct counts never divide by zero
        assert model.join_cardinality(10, 10, [(0, 0)]) == pytest.approx(100)
        assert model.join_cardinality(0, 10, [(3, 3)]) == 0.0

    def test_join_cardinality_discounts_null_fractions(self):
        model = CostModel()
        estimate = model.join_cardinality(100, 100, [(10, 10)], [(0.0, 0.5)])
        assert estimate == pytest.approx(500)

    def test_product_and_residual_defaults(self):
        model = DEFAULT_COST_MODEL
        assert model.product_cardinality(7, 9) == 63
        assert model.residual_selectivity(["="]) == pytest.approx(model.default_eq_selectivity)
        assert model.residual_selectivity(["<", ">"]) == pytest.approx(model.theta_selectivity ** 2)
