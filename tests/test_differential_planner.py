"""Differential fuzz harness: the algebraic planner against the Section 5 oracle.

The planner (:mod:`repro.quel.planner`) claims that whatever strategy it
picks — selection pushdown, composite-key hash equi-joins, Cartesian
products, residual selections — the answer is information-wise identical
to the definitional tuple-at-a-time evaluation
:func:`repro.core.query.evaluate_lower_bound`.  This harness generates
random QUEL-level queries (random ranges, conjuncts, disjunctions,
negations, and multi-attribute equality links between ranges) over random
relations with nulls, and asserts ``Plan.execute() ≡ oracle`` on every
one.  Every new planner fast path must keep this green — it is the
information-wise-equivalence oracle the bulk-mutation PR pairs with its
composite-join fast path.

All tests run derandomized (seeded) so CI failures reproduce exactly.
"""

from __future__ import annotations

from hypothesis import assume, given, settings, strategies as st

from repro.core.errors import QuelSemanticError
from repro.core.query import (
    And,
    AttributeRef,
    Comparison,
    Not,
    Or,
    Query,
    evaluate_lower_bound,
)
from repro.core.relation import Relation
from repro.core.tuples import XTuple
from repro.quel.evaluator import run_query
from repro.quel.planner import Plan
from repro.storage.database import Database

ATTRIBUTES = ("A", "B", "C")
OPS = ("=", "!=", "<", "<=", ">", ">=")
#: Small domain so equalities actually hit; None becomes a null cell.
VALUES = st.one_of(st.none(), st.integers(min_value=0, max_value=3))


@st.composite
def relations(draw, name: str) -> Relation:
    rows = draw(st.lists(st.tuples(VALUES, VALUES, VALUES), max_size=8))
    relation = Relation(ATTRIBUTES, name=name, validate=False)
    for values in rows:
        relation.add(XTuple(
            {a: v for a, v in zip(ATTRIBUTES, values) if v is not None}
        ))
    return relation


@st.composite
def comparisons(draw, variables):
    """One random conjunct: constant filter, var-var equality, or var-var θ."""
    kind = draw(st.sampled_from(
        # Equality links are over-weighted: they are what the composite-key
        # join fusion consumes, so they deserve the deepest coverage.
        ["var-const", "var-var-eq", "var-var-eq", "var-var-cmp"]
    ))
    left = AttributeRef(draw(st.sampled_from(variables)), draw(st.sampled_from(ATTRIBUTES)))
    if kind == "var-const":
        op = draw(st.sampled_from(OPS))
        constant = draw(st.integers(min_value=0, max_value=3))
        if draw(st.booleans()):
            return Comparison(left, op, constant)
        return Comparison(constant, op, left)
    right = AttributeRef(draw(st.sampled_from(variables)), draw(st.sampled_from(ATTRIBUTES)))
    op = "=" if kind == "var-var-eq" else draw(st.sampled_from(OPS))
    return Comparison(left, op, right)


@st.composite
def predicates(draw, variables):
    conjuncts = draw(st.lists(comparisons(variables), min_size=1, max_size=4))
    shape = draw(st.sampled_from(["and", "and", "or", "not"]))
    if shape == "or":
        return Or(*conjuncts)
    if shape == "not":
        return Not(conjuncts[0]) if len(conjuncts) == 1 else And(Not(conjuncts[0]), *conjuncts[1:])
    return conjuncts[0] if len(conjuncts) == 1 else And(*conjuncts)


@st.composite
def queries(draw) -> Query:
    base = {
        "R1": draw(relations("R1")),
        "R2": draw(relations("R2")),
    }
    count = draw(st.integers(min_value=1, max_value=3))
    variables = [f"v{i}" for i in range(count)]
    ranges = {
        variable: base[draw(st.sampled_from(("R1", "R2")))]
        for variable in variables
    }
    width = draw(st.integers(min_value=1, max_value=2))
    target = [
        (
            f"out{i}",
            AttributeRef(
                draw(st.sampled_from(variables)),
                draw(st.sampled_from(ATTRIBUTES)),
            ),
        )
        for i in range(width)
    ]
    where = draw(st.one_of(st.none(), predicates(variables)))
    return Query(ranges, target, where, name="fuzz")


@settings(max_examples=120, deadline=None, derandomize=True)
@given(queries())
def test_plan_execute_matches_lower_bound_oracle(query):
    """``Plan.execute()`` ≡ ``evaluate_lower_bound`` on arbitrary queries.

    XRelation equality is information-wise equality of the minimal
    representations (Proposition 4.1), exactly the planner's contract.
    """
    assert Plan(query).execute() == evaluate_lower_bound(query)


def test_null_constant_comparison_selects_nothing_like_the_oracle():
    """A pushed comparison against a null constant is ni for every row —
    the cost-based plan must answer empty exactly as the oracle does,
    not crash in ``select_constant`` (which rightly refuses null
    constants at the algebra level)."""
    from repro.core.query import Constant

    relation = Relation(ATTRIBUTES, name="R1", validate=False)
    relation.add(XTuple({"A": 1, "B": 2}))
    for op in OPS:
        query = Query(
            {"v0": relation},
            [("out0", AttributeRef("v0", "A"))],
            Comparison(AttributeRef("v0", "A"), op, Constant(None)),
            name="nullconst",
        )
        oracle = evaluate_lower_bound(query)
        assert len(oracle) == 0
        assert Plan(query).execute() == oracle


def test_null_tuple_ranges_contribute_nothing_in_both_evaluations():
    """Regression: a range row binding no attribute (the null tuple) is
    information-free — Definition 4.6 drops it from every minimal form,
    so neither the tuple-at-a-time oracle nor any plan may let it bind.
    Before ``Query.bindings()`` skipped it, the oracle was
    representation-sensitive and diverged from every planner mode here."""
    v0 = Relation(ATTRIBUTES, name="R1", validate=False)
    v0.add(XTuple({"A": 1}))
    v1 = Relation(ATTRIBUTES, name="R2", validate=False)
    v1.add(XTuple({}))
    query = Query(
        {"v0": v0, "v1": v1}, [("out0", AttributeRef("v0", "A"))], None, name="null"
    )
    oracle = evaluate_lower_bound(query)
    assert len(oracle) == 0
    assert Plan(query, cost_based=True).execute() == oracle
    assert Plan(query, cost_based=False).execute() == oracle
    # A real row alongside the null tuple contributes exactly itself.
    v1.add(XTuple({"B": 2}))
    oracle = evaluate_lower_bound(query)
    assert len(oracle) == 1
    assert Plan(query, cost_based=True).execute() == oracle
    assert Plan(query, cost_based=False).execute() == oracle


@settings(max_examples=120, deadline=None, derandomize=True)
@given(queries())
def test_cost_ordered_and_syntactic_plans_agree_with_oracle(query):
    """The cost-based optimizer (greedy join reorder + selection
    push-through) and the pre-statistics syntactic planner both stay
    information-wise equal to the oracle — reordering joins and applying
    residual conjuncts early are strategy changes only."""
    oracle = evaluate_lower_bound(query)
    assert Plan(query, cost_based=True).execute() == oracle
    assert Plan(query, cost_based=False).execute() == oracle


@settings(max_examples=120, deadline=None, derandomize=True)
@given(queries())
def test_plan_explain_never_leaks_fused_equalities(query):
    """Every equality conjunct is either fused into a join or kept residual —
    and the plan still agrees with the oracle when re-executed (steps are
    rebuilt per execution, so explain() reflects the run that produced the
    answer)."""
    plan = Plan(query)
    answer = plan.execute()
    explanation = plan.explain()
    assert len(explanation.splitlines()) == len(plan.steps)
    assert answer == evaluate_lower_bound(query)


# ---------------------------------------------------------------------------
# The same differential property through the full QUEL front end
# ---------------------------------------------------------------------------

@st.composite
def quel_texts(draw):
    """Random QUEL source with conjuncts and multi-attribute equality links."""
    count = draw(st.integers(min_value=1, max_value=3))
    variables = [f"v{i}" for i in range(count)]
    lines = [
        f"range of {variable} is {draw(st.sampled_from(('R1', 'R2')))}"
        for variable in variables
    ]
    width = draw(st.integers(min_value=1, max_value=2))
    outputs = ", ".join(
        f"{draw(st.sampled_from(variables))}.{draw(st.sampled_from(ATTRIBUTES))}"
        for _ in range(width)
    )
    lines.append(f"retrieve ({outputs})")
    clauses = []
    for _ in range(draw(st.integers(min_value=0, max_value=3))):
        kind = draw(st.sampled_from(["const", "eq", "eq", "cmp"]))
        left = f"{draw(st.sampled_from(variables))}.{draw(st.sampled_from(ATTRIBUTES))}"
        if kind == "const":
            clauses.append(f"{left} {draw(st.sampled_from(OPS))} {draw(st.integers(0, 3))}")
        else:
            op = "=" if kind == "eq" else draw(st.sampled_from(OPS))
            right = f"{draw(st.sampled_from(variables))}.{draw(st.sampled_from(ATTRIBUTES))}"
            clauses.append(f"{left} {op} {right}")
    if clauses:
        lines.append("where " + " and ".join(clauses))
    return "\n".join(lines)


@st.composite
def databases(draw) -> Database:
    database = Database("fuzz")
    for name in ("R1", "R2"):
        table = database.create_table(name, ATTRIBUTES)
        table.load(draw(relations(name)).tuples())
    return database


@settings(max_examples=60, deadline=None, derandomize=True)
@given(databases(), quel_texts())
def test_quel_strategies_agree(database, text):
    """parse → analyse → (algebra plan ≡ tuple oracle), end to end."""
    tuple_answer = run_query(text, database, strategy="tuple").answer
    algebra_answer = run_query(text, database, strategy="algebra").answer
    assert tuple_answer == algebra_answer


INDEX_CHOICES = (("A",), ("B",), ("A", "B"), ("B", "C"), ("C", "A", "B"))


@st.composite
def indexed_databases(draw) -> Database:
    """Databases carrying persistent hash indexes the optimizer may probe."""
    database = Database("fuzz-indexed")
    for name in ("R1", "R2"):
        table = database.create_table(name, ATTRIBUTES)
        table.load(draw(relations(name)).tuples())
        for attributes in draw(
            st.lists(st.sampled_from(INDEX_CHOICES), max_size=3, unique=True)
        ):
            table.create_index(attributes)
    return database


@settings(max_examples=60, deadline=None, derandomize=True)
@given(indexed_databases(), quel_texts())
def test_index_backed_plans_agree_with_oracle(database, text):
    """With persistent indexes present the optimizer may emit
    index-nested-loop joins that probe stored (unreduced) rows; the
    answer must stay information-wise identical to the oracle and to the
    same plan with index probing disabled."""
    try:
        tuple_answer = run_query(text, database, strategy="tuple").answer
    except QuelSemanticError:
        # e.g. a duplicate output column — rejected before any strategy runs
        assume(False)
    indexed = run_query(text, database, strategy="algebra")
    assert indexed.answer == tuple_answer
    query = indexed.analyzed.query
    assert Plan(query, database, use_indexes=False).execute() == tuple_answer
    assert Plan(query, database, cost_based=False).execute() == tuple_answer


# ---------------------------------------------------------------------------
# Streaming executor ≡ materializing executor ≡ tuple oracle
# ---------------------------------------------------------------------------

@settings(max_examples=60, deadline=None, derandomize=True)
@given(indexed_databases(), quel_texts(), st.booleans(), st.sampled_from((2, 7, 256)))
def test_streaming_matches_materializing_and_oracle(database, text, analyzed, block_size):
    """The streaming operator-tree executor and the materializing
    executor interpret the *same* logical plan; both must stay
    information-wise identical to the tuple oracle over random schemas,
    persistent indexes, ANALYZE states and block sizes (tiny blocks force
    every operator across block boundaries)."""
    if analyzed:
        database.analyze()
    try:
        tuple_answer = run_query(text, database, strategy="tuple").answer
    except QuelSemanticError:
        assume(False)
    query = compile_text(text, database)
    streaming = Plan(query, database, block_size=block_size)
    materializing = Plan(query, database, streaming=False)
    assert streaming.execute() == tuple_answer
    assert materializing.execute() == tuple_answer


@st.composite
def total_databases(draw) -> Database:
    """Indexed databases whose rows carry no nulls: there the streaming
    and materializing executors must agree not only information-wise but
    *count for count*, per operator."""
    database = Database("fuzz-total")
    values = st.integers(min_value=0, max_value=3)
    for name in ("R1", "R2"):
        table = database.create_table(name, ATTRIBUTES)
        rows = draw(st.lists(st.tuples(values, values, values), max_size=8))
        table.load(rows)
        for attributes in draw(
            st.lists(st.sampled_from(INDEX_CHOICES), max_size=2, unique=True)
        ):
            table.create_index(attributes)
    return database


def compile_text(text, database):
    from repro.quel.evaluator import compile_query

    return compile_query(text, database).query


# ---------------------------------------------------------------------------
# Parallel partitioned execution ≡ serial streaming ≡ materializing ≡ oracle
# ---------------------------------------------------------------------------

@settings(max_examples=60, deadline=None, derandomize=True)
@given(
    indexed_databases(),
    quel_texts(),
    st.sampled_from((1, 2, 3, 4)),
    st.sampled_from((2, 7, 256)),
)
def test_parallel_matches_serial_and_oracle(database, text, partitions, block_size):
    """Partitioned Exchange/Merge execution is a pure strategy change:
    over random schemas, indexes, partition counts 1–4 and block sizes,
    the parallel pipeline must stay information-wise identical to the
    serial streaming tree, the materializing executor and the tuple
    oracle.  Fragments run in inline mode — byte-identical worker code,
    minus the process shipping the dedicated process-mode tests cover —
    so the fuzz loop stays fast."""
    try:
        tuple_answer = run_query(text, database, strategy="tuple").answer
    except QuelSemanticError:
        assume(False)
    query = compile_text(text, database)
    serial = Plan(query, database, block_size=block_size).execute()
    materializing = Plan(query, database, streaming=False).execute()
    parallel = Plan(
        query, database, block_size=block_size,
        parallelism=partitions, parallel_mode="inline",
    ).execute()
    assert serial == tuple_answer
    assert materializing == tuple_answer
    assert parallel == tuple_answer


@settings(max_examples=60, deadline=None, derandomize=True)
@given(total_databases(), quel_texts())
def test_streaming_step_counts_match_materializing_on_total_rows(database, text):
    """On null-free data no intermediate carries dominated rows, so the
    per-step actual row counts of the streaming pipeline must equal the
    materializing executor's — the rendered traces agree line for line,
    which is exactly what makes ``explain(analyze=True)`` a trustworthy
    audit of the cost annotations."""
    try:
        query = compile_text(text, database)
    except QuelSemanticError:
        assume(False)
    streaming = Plan(query, database)
    materializing = Plan(query, database, streaming=False)
    assert streaming.execute() == materializing.execute()
    assert len(streaming.steps) == len(materializing.steps)
    for streamed, materialized in zip(streaming.steps, materializing.steps):
        if streamed.endswith("rows=?]"):
            # The streaming executor proved this operator unnecessary (an
            # empty join side short-circuits the whole probe subtree);
            # the materializing path ran it eagerly.  Text and estimate
            # must still agree — only the measurement is absent.
            prefix = streamed[: streamed.rindex("rows=")]
            assert materialized.startswith(prefix)
        else:
            assert streamed == materialized


# ---------------------------------------------------------------------------
# Optimizer v2: DP join enumeration ≡ greedy ≡ oracle; adaptive feedback
# and the semantic result cache never change answers
# ---------------------------------------------------------------------------

@settings(max_examples=60, deadline=None, derandomize=True)
@given(indexed_databases(), quel_texts(), st.booleans())
def test_dp_and_greedy_join_enumeration_agree_with_oracle(
    database, text, analyzed
):
    """Selinger-style DP enumeration is a pure strategy change: whatever
    order it picks over random schemas, indexes and ANALYZE states, the
    answer stays information-wise identical to the greedy enumerator's
    and to the tuple oracle."""
    if analyzed:
        database.analyze()
    try:
        tuple_answer = run_query(text, database, strategy="tuple").answer
    except QuelSemanticError:
        assume(False)
    query = compile_text(text, database)
    assert Plan(query, database, join_enumeration="dp").execute() == tuple_answer
    assert Plan(query, database, join_enumeration="greedy").execute() == tuple_answer


@settings(max_examples=60, deadline=None, derandomize=True)
@given(
    indexed_databases(),
    quel_texts(),
    st.lists(
        st.floats(min_value=1.0 / 16.0, max_value=16.0, allow_nan=False),
        min_size=2, max_size=2,
    ),
)
def test_feedback_corrected_plans_agree_with_oracle(database, text, factors):
    """Adaptive correction factors scale estimates — they may flip join
    orders and access paths, but never the answer."""
    for factor, name in zip(factors, ("R1", "R2")):
        database.catalog.table(name).statistics.correction = factor
    try:
        tuple_answer = run_query(text, database, strategy="tuple").answer
    except QuelSemanticError:
        assume(False)
    query = compile_text(text, database)
    assert Plan(query, database).execute() == tuple_answer
    assert Plan(query, database, join_enumeration="greedy").execute() == tuple_answer


@settings(max_examples=30, deadline=None, derandomize=True)
@given(indexed_databases(), quel_texts())
def test_session_feedback_loop_preserves_answers(database, text):
    """Executing through a session folds real actual/estimated ratios
    into the tables' corrections after every drain; forced re-planning
    under those live corrections keeps every repeat identical to the
    oracle."""
    from repro.api.session import Session

    try:
        tuple_answer = run_query(text, database, strategy="tuple").answer
    except QuelSemanticError:
        assume(False)
    session = Session(database, result_cache_size=0)
    for _ in range(3):
        assert session.execute(text).to_relation() == tuple_answer
        session.clear_statement_cache()  # re-plan under folded corrections


@st.composite
def interleaved_mutations(draw):
    """A short program of DML statements and DDL/ANALYZE calls."""
    ops = []
    for _ in range(draw(st.integers(min_value=1, max_value=5))):
        kind = draw(st.sampled_from(
            ["append", "append", "delete", "replace", "analyze", "index"]
        ))
        table = draw(st.sampled_from(("R1", "R2")))
        attribute = draw(st.sampled_from(ATTRIBUTES))
        value = draw(st.integers(min_value=0, max_value=3))
        if kind == "append":
            a, b, c = (draw(st.integers(0, 3)) for _ in range(3))
            ops.append(("quel", f"append to {table} (A = {a}, B = {b}, C = {c})"))
        elif kind == "delete":
            ops.append((
                "quel",
                f"range of m is {table} delete m where m.{attribute} = {value}",
            ))
        elif kind == "replace":
            ops.append((
                "quel",
                f"range of m is {table} replace m ({attribute} = {value}) "
                f"where m.{attribute} != {value}",
            ))
        elif kind == "analyze":
            ops.append(("analyze",))
        else:
            ops.append(("index", table, draw(st.sampled_from(INDEX_CHOICES))))
    return ops


@settings(max_examples=30, deadline=None, derandomize=True)
@given(indexed_databases(), quel_texts(), interleaved_mutations())
def test_cache_enabled_session_never_serves_stale_answers(
    database, text, mutations
):
    """The stale-hit property: under arbitrary DML / index-DDL / ANALYZE
    interleavings, a cache-enabled session's answer equals a fresh
    oracle evaluation of the *current* table states at every step — a
    repeat (the likely cache hit) included."""
    from repro.api.session import Session

    session = Session(database)
    def check():
        try:
            expected = run_query(text, database, strategy="tuple").answer
        except QuelSemanticError:
            assume(False)
        assert session.execute(text).to_relation() == expected
        assert session.execute(text).to_relation() == expected

    check()
    for op in mutations:
        if op[0] == "quel":
            session.execute(op[1])
        elif op[0] == "analyze":
            database.analyze()
        else:
            _, name, attributes = op
            table = database.catalog.table(name)
            existing = set(map(tuple, table.index_specs().values()))
            if tuple(attributes) not in existing:
                table.create_index(attributes)
        check()
