"""Unit tests for the lattice structure of x-relations (repro.core.lattice)."""

import pytest

from repro import Relation, XRelation, XTuple
from repro.core.domains import TypedDomain
from repro.core.errors import DomainError
from repro.core.lattice import (
    AttributeUniverse,
    boolean_sublattice_elements,
    bottom,
    check_difference_laws,
    check_distributivity,
    check_lattice_laws,
    complement_counterexample,
    has_boolean_complement,
    is_total_with_scope_u,
    pseudo_complement,
    set_intersection_of_totals,
    top,
)


@pytest.fixture
def universe():
    return AttributeUniverse.from_values({"A": ["a1", "a2"], "B": ["b1", "b2"]})


@pytest.fixture
def triple():
    a = XRelation.from_rows(["A", "B"], [("a1", "b1"), ("a2", None)], name="a")
    b = XRelation.from_rows(["A", "B"], [("a1", None), ("a2", "b2")], name="b")
    c = XRelation.from_rows(["A", "B"], [("a1", "b2")], name="c")
    return a, b, c


class TestAttributeUniverse:
    def test_cardinality(self, universe):
        assert universe.cardinality() == 4

    def test_total_tuples(self, universe):
        totals = list(universe.total_tuples())
        assert len(totals) == 4
        assert XTuple(A="a1", B="b2") in totals

    def test_all_tuples_includes_partial(self, universe):
        everything = list(universe.all_tuples())
        assert len(everything) == 9  # (2+1) * (2+1)
        assert XTuple(A="a1") in everything
        assert XTuple() in everything

    def test_rejects_infinite_domains(self):
        with pytest.raises(DomainError):
            AttributeUniverse({"A": TypedDomain(str)})

    def test_schema(self, universe):
        assert universe.schema().attributes == ("A", "B")


class TestBottomAndTop:
    def test_bottom_is_least(self, triple):
        a, _, _ = triple
        assert a >= bottom(["A", "B"])
        assert (a & bottom(["A", "B"])).is_empty()

    def test_top_is_greatest(self, universe, triple):
        t = top(universe)
        for x in triple:
            assert (x | t) == t
            assert t >= x

    def test_top_has_all_total_tuples(self, universe):
        assert len(top(universe)) == 4


class TestLatticeLaws:
    def test_laws_hold_on_paper_style_relations(self, triple):
        a, b, c = triple
        assert all(check_lattice_laws(a, b, c).values())

    def test_distributivity(self, triple):
        a, b, c = triple
        assert all(check_distributivity(a, b, c).values())

    def test_difference_laws(self, triple):
        a, b, _ = triple
        u = a | b
        results = check_difference_laws(u, a)
        assert all(results.values())

    def test_laws_with_empty_operand(self, triple):
        a, b, _ = triple
        empty = bottom(["A", "B"])
        assert all(check_lattice_laws(a, b, empty).values())
        assert all(check_distributivity(a, empty, b).values())


class TestPseudoComplement:
    def test_union_with_pseudo_complement_is_top(self, universe):
        r = XRelation.from_rows(["A", "B"], [("a1", "b1")], name="R")
        star = pseudo_complement(r, universe)
        assert (r | star) == top(universe)

    def test_pseudo_complement_is_total_scope_u(self, universe):
        r = XRelation.from_rows(["A", "B"], [("a1", None)], name="R")
        star = pseudo_complement(r, universe)
        assert is_total_with_scope_u(star, universe)

    def test_pseudo_complement_of_bottom_is_top(self, universe):
        assert pseudo_complement(bottom(["A", "B"]), universe) == top(universe)

    def test_pseudo_complement_of_top_is_bottom(self, universe):
        assert pseudo_complement(top(universe), universe).is_empty()

    def test_no_boolean_complement_in_general(self):
        """The Section 4 counter-example: R = {(a1, b1)} over {a1} × {b1, b2}."""
        example = complement_counterexample()
        assert example["union_is_top"]
        assert not example["intersection_empty"]
        assert example["intersection"].x_contains(example["witness_in_both"])
        assert not has_boolean_complement(example["r"], example["universe"])

    def test_total_relations_complement_only_under_set_meet(self, universe):
        """Section 7: the pseudo-complements form a Boolean lattice, but only
        with *set intersection* as the meet — under the x-intersection meet
        even total scope-U x-relations generally lack a complement."""
        r = XRelation.from_rows(
            ["A", "B"], [("a1", "b1"), ("a2", "b2")], name="R"
        )
        star = pseudo_complement(r, universe)
        # Within the Boolean sublattice (set-intersection meet) star is a
        # genuine complement of r ...
        assert (r | star) == top(universe)
        assert set_intersection_of_totals(r, star, universe).is_empty()
        # ... but under the x-intersection meet it is not, because the meets
        # of disagreeing total tuples are partial tuples, not nothing.
        assert not has_boolean_complement(r, universe)
        assert not (r & star).is_empty()


class TestBooleanSublattice:
    def test_enumeration_size(self):
        tiny = AttributeUniverse.from_values({"A": ["a1"], "B": ["b1", "b2"]})
        elements = boolean_sublattice_elements(tiny)
        assert len(elements) == 2 ** 2

    def test_two_meets_differ(self):
        """Section 7: set intersection vs x-intersection on total x-relations."""
        tiny = AttributeUniverse.from_values({"A": ["a1"], "B": ["b1", "b2"]})
        r1 = XRelation.from_rows(["A", "B"], [("a1", "b1")], name="R1")
        r2 = XRelation.from_rows(["A", "B"], [("a1", "b2")], name="R2")
        boolean_meet = set_intersection_of_totals(r1, r2, tiny)
        x_meet = r1 & r2
        assert boolean_meet.is_empty()
        assert not x_meet.is_empty()
        assert x_meet.x_contains(XTuple(A="a1"))

    def test_refuses_large_universes(self):
        big = AttributeUniverse.from_values({"A": list("abcde"), "B": list("abcde")})
        with pytest.raises(DomainError):
            boolean_sublattice_elements(big)
