"""Unit tests for the core query machinery (repro.core.query)."""

import pytest

from repro import NI, Relation, XTuple
from repro.core.errors import QuelSemanticError
from repro.core.query import (
    ALWAYS_TRUE,
    And,
    AttributeRef,
    Comparison,
    Constant,
    Not,
    Or,
    Query,
    TruthConstant,
    evaluate_lower_bound,
    evaluate_truth_partition,
)
from repro.core.threevalued import FALSE, NI_TRUTH, TRUE


@pytest.fixture
def emp(emp_db):
    return emp_db["EMP"]


def binding_for(relation, **filters):
    for row in relation.tuples():
        if all(row[k] == v for k, v in filters.items()):
            return {"e": row}
    raise AssertionError(f"no row matching {filters}")


class TestTermsAndPredicates:
    def test_attribute_ref_value(self, emp):
        ref = AttributeRef("e", "NAME")
        assert ref.value(binding_for(emp, NAME="SMITH")) == "SMITH"

    def test_attribute_ref_unbound_variable(self):
        ref = AttributeRef("x", "NAME")
        with pytest.raises(QuelSemanticError):
            ref.value({})

    def test_constant_value(self):
        assert Constant(5).value({}) == 5

    def test_comparison_with_null_is_ni(self, emp):
        predicate = Comparison(AttributeRef("e", "TEL#"), ">", Constant(0))
        assert predicate.evaluate(binding_for(emp, NAME="SMITH")) == NI_TRUTH

    def test_comparison_known_values(self, emp):
        predicate = Comparison(AttributeRef("e", "SEX"), "=", Constant("F"))
        assert predicate.evaluate(binding_for(emp, NAME="BROWN")) == TRUE
        assert predicate.evaluate(binding_for(emp, NAME="SMITH")) == FALSE

    def test_and_or_not_combinators(self, emp):
        female = Comparison(AttributeRef("e", "SEX"), "=", Constant("F"))
        has_phone = Comparison(AttributeRef("e", "TEL#"), ">", Constant(0))
        brown = binding_for(emp, NAME="BROWN")
        assert (female & has_phone).evaluate(brown) == NI_TRUTH
        assert (female | has_phone).evaluate(brown) == TRUE
        assert (~female).evaluate(brown) == FALSE

    def test_operator_sugar_builds_nodes(self):
        a = Comparison(AttributeRef("e", "A"), "=", Constant(1))
        b = Comparison(AttributeRef("e", "B"), "=", Constant(2))
        assert isinstance(a & b, And)
        assert isinstance(a | b, Or)
        assert isinstance(~a, Not)

    def test_comparisons_collection(self):
        a = Comparison(AttributeRef("e", "A"), "=", Constant(1))
        b = Comparison(AttributeRef("e", "B"), "=", Constant(2))
        assert set(map(repr, (a & ~b).comparisons())) == {repr(a), repr(b)}

    def test_references(self):
        a = Comparison(AttributeRef("e", "A"), "=", AttributeRef("m", "B"))
        assert set(a.references()) == {"e", "m"}

    def test_truth_constant(self):
        assert TruthConstant(TRUE).evaluate({}) == TRUE
        assert ALWAYS_TRUE.evaluate({}) == TRUE


class TestQueryValidation:
    def test_requires_ranges_and_target(self, emp):
        with pytest.raises(QuelSemanticError):
            Query({}, [AttributeRef("e", "NAME")])
        with pytest.raises(QuelSemanticError):
            Query({"e": emp}, [])

    def test_target_must_reference_declared_variable(self, emp):
        with pytest.raises(QuelSemanticError):
            Query({"e": emp}, [AttributeRef("x", "NAME")])

    def test_target_must_reference_existing_attribute(self, emp):
        with pytest.raises(QuelSemanticError):
            Query({"e": emp}, [AttributeRef("e", "SALARY")])

    def test_where_must_reference_known_names(self, emp):
        bad = Comparison(AttributeRef("e", "SALARY"), ">", Constant(0))
        with pytest.raises(QuelSemanticError):
            Query({"e": emp}, [AttributeRef("e", "NAME")], bad)

    def test_output_attributes_default_naming(self, emp):
        query = Query({"e": emp}, [AttributeRef("e", "NAME")])
        assert query.output_attributes() == ("e_NAME",)

    def test_output_attributes_custom_naming(self, emp):
        query = Query({"e": emp}, [("who", AttributeRef("e", "NAME"))])
        assert query.output_attributes() == ("who",)


class TestEvaluation:
    def test_no_where_returns_all_rows_projected(self, emp):
        query = Query({"e": emp}, [AttributeRef("e", "NAME")])
        result = evaluate_lower_bound(query)
        assert len(result) == len(emp)

    def test_lower_bound_discards_ni_rows(self, emp):
        where = Comparison(AttributeRef("e", "TEL#"), ">", Constant(2630000))
        query = Query({"e": emp}, [AttributeRef("e", "NAME")], where)
        names = {t["e_NAME"] for t in evaluate_lower_bound(query).rows()}
        assert names == {"JONES", "ADAMS"}

    def test_multi_variable_query(self, emp):
        where = And(
            Comparison(AttributeRef("e", "MGR#"), "=", AttributeRef("m", "E#")),
            Comparison(AttributeRef("m", "SEX"), "=", Constant("F")),
        )
        query = Query(
            {"e": emp, "m": emp},
            [("employee", AttributeRef("e", "NAME")), ("manager", AttributeRef("m", "NAME"))],
            where,
        )
        pairs = {(t["employee"], t["manager"]) for t in evaluate_lower_bound(query).rows()}
        assert pairs == {("SMITH", "JONES"), ("BROWN", "JONES"), ("ADAMS", "JONES")}

    def test_answers_may_contain_nulls(self, emp):
        where = Comparison(AttributeRef("e", "SEX"), "=", Constant("M"))
        query = Query({"e": emp}, [AttributeRef("e", "NAME"), AttributeRef("e", "TEL#")], where)
        result = evaluate_lower_bound(query)
        smith_rows = [t for t in result.rows() if t["e_NAME"] == "SMITH"]
        assert smith_rows and smith_rows[0]["e_TEL#"] is NI

    def test_truth_partition_buckets(self, emp):
        where = Comparison(AttributeRef("e", "TEL#"), ">", Constant(2630000))
        query = Query({"e": emp}, [AttributeRef("e", "NAME")], where)
        buckets = evaluate_truth_partition(query)
        assert len(buckets["TRUE"]) == 2
        assert len(buckets["ni"]) == 3
        assert len(buckets["FALSE"]) == 0
        assert sum(map(len, buckets.values())) == len(emp)

    def test_empty_range_produces_empty_answer(self):
        empty = Relation.empty(["A"])
        query = Query({"e": empty}, [AttributeRef("e", "A")])
        assert evaluate_lower_bound(query).is_empty()
