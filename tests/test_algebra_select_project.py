"""Unit tests for selection, projection and rename (repro.core.algebra)."""

import pytest

from repro import NI, Relation, XRelation, XTuple
from repro.core.algebra import (
    project,
    rename,
    select_attributes,
    select_constant,
    select_predicate,
)
from repro.core.errors import AlgebraError, AttributeNotFound
from repro.core.threevalued import TRUE, FALSE, NI_TRUTH


@pytest.fixture
def grades():
    return Relation.from_rows(
        ["NAME", "SCORE", "BONUS"],
        [
            ("ann", 80, 5),
            ("bob", 60, None),
            ("cat", None, 10),
            ("dan", 95, 95),
        ],
        name="G",
    )


class TestSelectConstant:
    def test_keeps_only_true_rows(self, grades):
        result = select_constant(grades, "SCORE", ">", 70)
        names = {t["NAME"] for t in result.rows()}
        assert names == {"ann", "dan"}

    def test_null_rows_are_discarded_not_maybe(self, grades):
        result = select_constant(grades, "SCORE", ">", 0)
        assert "cat" not in {t["NAME"] for t in result.rows()}

    def test_equality_selection(self, ps):
        result = select_constant(ps, "S#", "=", "s2")
        assert {t["S#"] for t in result.rows()} == {"s2"}

    def test_selection_on_unknown_attribute(self, grades):
        with pytest.raises(AttributeNotFound):
            select_constant(grades, "NOPE", "=", 1)

    def test_selection_against_null_constant_rejected(self, grades):
        with pytest.raises(AlgebraError):
            select_constant(grades, "SCORE", "=", NI)
        with pytest.raises(AlgebraError):
            select_constant(grades, "SCORE", "=", None)

    def test_empty_result(self, grades):
        assert len(select_constant(grades, "SCORE", ">", 1000)) == 0

    def test_accepts_xrelation_input(self, grades):
        result = select_constant(XRelation(grades), "SCORE", "<", 70)
        assert {t["NAME"] for t in result.rows()} == {"bob"}

    def test_result_preserved_schema(self, grades):
        result = select_constant(grades, "SCORE", ">", 70)
        assert set(result.schema.attributes) == {"NAME", "SCORE", "BONUS"}


class TestSelectAttributes:
    def test_compares_two_columns(self, grades):
        result = select_attributes(grades, "SCORE", "=", "BONUS")
        assert {t["NAME"] for t in result.rows()} == {"dan"}

    def test_rows_with_null_in_either_column_discarded(self, grades):
        result = select_attributes(grades, "SCORE", ">", "BONUS")
        assert {t["NAME"] for t in result.rows()} == {"ann"}

    def test_unknown_attribute(self, grades):
        with pytest.raises(AttributeNotFound):
            select_attributes(grades, "SCORE", "=", "NOPE")


class TestSelectPredicate:
    def test_three_valued_predicate(self, grades):
        def qualifies(row):
            if row["SCORE"] is NI:
                return NI_TRUTH
            return TRUE if row["SCORE"] >= 80 else FALSE

        result = select_predicate(grades, qualifies)
        assert {t["NAME"] for t in result.rows()} == {"ann", "dan"}

    def test_boolean_predicate_allowed(self, grades):
        result = select_predicate(grades, lambda r: r["NAME"] == "bob")
        assert {t["NAME"] for t in result.rows()} == {"bob"}


class TestProject:
    def test_restricts_attributes(self, grades):
        result = project(grades, ["NAME"])
        assert result.schema.attributes == ("NAME",)
        assert len(result) == 4

    def test_projection_can_create_subsumed_rows_then_minimises(self, ps):
        result = project(ps, ["P#"])
        values = {t["P#"] for t in result.rows()}
        assert values == {"p1", "p2", "p4"}
        assert result.representation.is_minimal()

    def test_projection_to_all_null_column_is_empty(self, emp_table_two):
        result = project(emp_table_two, ["TEL#"])
        assert result.is_empty()

    def test_unknown_attribute(self, grades):
        with pytest.raises(AttributeNotFound):
            project(grades, ["NAME", "NOPE"])

    def test_projection_order_follows_request(self, grades):
        result = project(grades, ["BONUS", "NAME"])
        assert result.schema.attributes == ("BONUS", "NAME")


class TestRename:
    def test_renames_attributes_and_rows(self, grades):
        result = rename(grades, {"NAME": "WHO"})
        assert "WHO" in result.schema.attributes
        assert {t["WHO"] for t in result.rows()} == {"ann", "bob", "cat", "dan"}

    def test_identity_rename(self, grades):
        result = rename(grades, {})
        assert set(result.schema.attributes) == set(grades.schema.attributes)
        assert len(result) == len(grades.minimal())


class TestClosureProperty:
    """Section 7: the operators stay inside x-relations whatever the operands."""

    def test_select_project_compose(self, ps):
        result = project(select_constant(ps, "S#", "=", "s1"), ["P#"])
        assert isinstance(result, XRelation)
        assert {t["P#"] for t in result.rows()} == {"p1", "p2"}

    def test_codd_correspondence_on_total_relations(self, emp_table_one):
        """Operating on total x-relations mirrors classical operations (Sec. 7)."""
        from repro.codd.algebra import codd_project, select_true

        classical = codd_project(select_true(emp_table_one, "SEX", "=", "M"), ["NAME"])
        extended = project(select_constant(emp_table_one, "SEX", "=", "M"), ["NAME"])
        assert XRelation(classical) == extended
