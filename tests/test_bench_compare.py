"""Unit tests for the ``benchmarks/compare.py`` regression-diff CLI.

Synthetic results files make the checks deterministic: the tool must
flag exactly the metrics slower than the threshold, ignore keys missing
from either run, honour the experiment filter, and translate findings
into its exit code.
"""

from __future__ import annotations

import importlib.util
import json
import os

import pytest

_COMPARE_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "benchmarks", "compare.py",
)
_spec = importlib.util.spec_from_file_location("bench_compare", _COMPARE_PATH)
compare_module = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(compare_module)


def results_document(seconds_by_key):
    experiments = {}
    for (experiment, op, variant, rows), seconds in seconds_by_key.items():
        entry = experiments.setdefault(experiment, {"lines": [], "metrics": []})
        entry["metrics"].append(
            {"op": op, "variant": variant, "rows": rows, "seconds": seconds}
        )
    return {"experiments": experiments}


def write_results(path, seconds_by_key):
    with open(path, "w") as handle:
        json.dump(results_document(seconds_by_key), handle)
    return str(path)


BASE = {
    ("e17", "full_drain", "streaming", 10_000): 1.00,
    ("e17", "first_page", "streaming", 10_000): 0.10,
    ("e15", "join_reorder", "engine", 10_000): 0.50,
    ("e13", "minimal", "engine", 10_000): 0.20,  # absent from the current run
}


class TestCompare:
    def test_no_regression_within_threshold(self, tmp_path):
        baseline = write_results(tmp_path / "base.json", BASE)
        current = write_results(tmp_path / "cur.json", {
            ("e17", "full_drain", "streaming", 10_000): 1.10,  # +10%
            ("e17", "first_page", "streaming", 10_000): 0.09,  # faster
            ("e15", "join_reorder", "engine", 10_000): 0.55,
        })
        _, regressions = compare_module.compare(
            compare_module.load_metrics(baseline),
            compare_module.load_metrics(current),
            threshold=0.2,
        )
        assert regressions == []
        assert compare_module.main([baseline, current]) == 0

    def test_regression_beyond_threshold_fails(self, tmp_path):
        baseline = write_results(tmp_path / "base.json", BASE)
        current = write_results(tmp_path / "cur.json", {
            ("e17", "full_drain", "streaming", 10_000): 1.50,  # +50%
            ("e17", "first_page", "streaming", 10_000): 0.10,
        })
        report, regressions = compare_module.compare(
            compare_module.load_metrics(baseline),
            compare_module.load_metrics(current),
            threshold=0.2,
        )
        assert len(regressions) == 1
        assert "full_drain" in regressions[0]
        assert any(line.startswith("REGRESSION") for line in report)
        assert compare_module.main([baseline, current]) == 1

    def test_unmatched_keys_never_fail(self, tmp_path):
        baseline = write_results(tmp_path / "base.json", BASE)
        current = write_results(tmp_path / "cur.json", {
            # different sizes entirely (a quick smoke vs a full sweep)
            ("e17", "full_drain", "streaming", 500): 99.0,
        })
        _, regressions = compare_module.compare(
            compare_module.load_metrics(baseline),
            compare_module.load_metrics(current),
            threshold=0.2,
        )
        assert regressions == []

    def test_experiment_filter_limits_the_gate(self, tmp_path):
        baseline = write_results(tmp_path / "base.json", BASE)
        current = write_results(tmp_path / "cur.json", {
            ("e17", "full_drain", "streaming", 10_000): 5.00,  # regressed
            ("e15", "join_reorder", "engine", 10_000): 0.50,
        })
        _, regressions = compare_module.compare(
            compare_module.load_metrics(baseline),
            compare_module.load_metrics(current),
            threshold=0.2,
            experiments=["e15"],
        )
        assert regressions == []
        assert compare_module.main(
            [baseline, current, "--experiments", "e17"]
        ) == 1

    def test_machine_metadata_is_ignored_by_the_diff(self, tmp_path):
        """Two runs differing only in the document-level ``machine`` stamp
        (and containing stray non-dict experiment entries) diff clean."""
        plain = write_results(tmp_path / "base.json", BASE)
        stamped_doc = results_document(BASE)
        stamped_doc["machine"] = {
            "cpu_count": 64, "python": "3.99.0", "timestamp": "2099-01-01",
        }
        stamped_doc["experiments"]["e_broken"] = "not a mapping"
        stamped = tmp_path / "cur.json"
        stamped.write_text(json.dumps(stamped_doc))
        base_metrics = compare_module.load_metrics(plain)
        cur_metrics = compare_module.load_metrics(str(stamped))
        assert base_metrics == cur_metrics
        _, regressions = compare_module.compare(
            base_metrics, cur_metrics, threshold=0.0
        )
        assert regressions == []
        assert compare_module.main([plain, str(stamped), "--threshold", "0"]) == 0

    def test_self_comparison_is_clean_on_the_committed_results(self):
        """The CI smoke: the committed results.json compared to itself has
        overlapping keys and zero regressions."""
        results = os.path.join(
            os.path.dirname(_COMPARE_PATH), "results.json"
        )
        if not os.path.exists(results):
            pytest.skip("no committed results.json")
        metrics = compare_module.load_metrics(results)
        assert metrics  # the file carries structured metrics
        _, regressions = compare_module.compare(metrics, metrics, threshold=0.0)
        assert regressions == []
