"""Crash-recovery tests for the write-ahead log + checkpoint subsystem.

The durability contract under test:

* every bulk mutation / DDL entry point logs a replayable record *before*
  applying, so ``Database.open`` on the surviving files reconstructs
  exactly the state as of the last durable boundary;
* a crash may tear the trailing record (partial frame, bad checksum) —
  recovery discards the torn tail, never half-applies it;
* statements inside a ``Session.transaction()`` group become durable
  all-or-nothing: a log ending inside an open group loses the whole
  group, and an aborted group replays (via its compensation records) to
  the pre-group state;
* a checkpoint atomically serialises the whole database (rows + index
  definitions + statistics) and truncates the log; recovery is
  checkpoint + log tail.

The kill-at-random-offset tests simulate the crash by truncating a copy
of the log at *every* byte offset (deterministic workload) or at an
arbitrary hypothesis-chosen offset (random workload), then recovering
into a fresh database and comparing against an oracle: the live states
recorded at each durable boundary while the workload ran.
"""

from __future__ import annotations

import os
import shutil
import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro.api.session import connect
from repro.constraints.keys import KeyConstraint
from repro.constraints.referential import ForeignKeyConstraint
from repro.constraints.schema_constraints import RowConstraint
from repro.core.errors import StorageError, WalError, WalWarning
from repro.core.tuples import XTuple
from repro.storage.database import Database
from repro.storage.wal import (
    CheckpointWorker,
    WriteAheadLog,
    committed_prefix,
    encode_frame,
    read_frames,
)


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------

def canonical_state(database: Database):
    """Rows, index specs and foreign-key names per table — what recovery
    must reproduce exactly."""
    tables = {}
    for name in database.catalog.table_names():
        table = database.catalog.table(name)
        tables[name] = (
            frozenset(table.rows()),
            tuple(sorted(
                (index_name, tuple(attrs))
                for index_name, attrs in table.index_specs().items()
            )),
        )
    fks = tuple(sorted(
        (owner, fk.name) for owner, fk in database.catalog.foreign_key_entries()
    ))
    return tables, fks


def copy_wal_dir(source: str, target: str) -> None:
    """Simulate pulling the plug: copy the durable files as they are."""
    if os.path.exists(target):
        shutil.rmtree(target)
    shutil.copytree(source, target)


def recover_copy(source: str, target: str, truncate_to=None) -> Database:
    """Recover a fresh database from a crash-copy of *source*."""
    copy_wal_dir(source, target)
    if truncate_to is not None:
        with open(os.path.join(target, "wal.log"), "r+b") as handle:
            handle.truncate(truncate_to)
    return Database.open(target, name="recovered")


def run_workload(database: Database, session, boundaries):
    """A deterministic mixed workload; records ``(log position, state)``
    at every durable (transaction-depth-zero) boundary."""
    wal = database.wal

    def mark():
        wal.flush()
        boundaries.append((wal.position(), canonical_state(database)))

    database.create_table("T", ["K", "A"], constraints=[KeyConstraint(["K"])])
    mark()
    database.insert_many("T", [{"K": i, "A": i % 3} for i in range(8)])
    mark()
    database.table("T").create_index(["A"])
    mark()
    database.delete_many("T", [{"K": 2}, {"K": 5}])
    mark()
    database.update("T", {"K": 3, "A": 0}, {"K": 3, "A": 2})
    mark()
    with session.transaction():
        database.insert("T", {"K": 100, "A": 1})
        database.insert("T", {"K": 101, "A": 2})
    mark()
    try:
        with session.transaction():
            database.insert("T", {"K": 200, "A": 0})
            raise RuntimeError("rollback me")
    except RuntimeError:
        pass
    mark()
    database.create_table("S", ["X"])
    mark()
    database.insert_many("S", [{"X": 1}, {"X": 2}])
    mark()
    database.table("T").drop_index("idx(A)")
    mark()
    database.table("T").analyze()
    mark()
    database.drop_table("S")
    mark()


def oracle_at(boundaries, offset: int):
    """The expected recovered state after truncating the log at *offset*:
    the last durable boundary whose log position survived in full."""
    state = None
    for position, snapshot in boundaries:
        if position <= offset:
            state = snapshot
        else:
            break
    return state


# ---------------------------------------------------------------------------
# Frame-level behaviour
# ---------------------------------------------------------------------------

class TestFrames:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "wal.log")
        records = [{"op": "insert", "table": "T", "rows": [XTuple({"A": 1})]},
                   {"op": "begin"}, {"op": "commit"}]
        with open(path, "wb") as handle:
            for record in records:
                handle.write(encode_frame(record))
        decoded, ends, valid = read_frames(path)
        assert decoded == records
        assert valid == ends[-1] == os.path.getsize(path)

    def test_torn_tail_discarded_at_every_offset(self, tmp_path):
        path = str(tmp_path / "wal.log")
        records = [{"op": "insert", "table": "T", "rows": [XTuple({"A": i})]}
                   for i in range(4)]
        frames = [encode_frame(r) for r in records]
        data = b"".join(frames)
        ends = []
        total = 0
        for frame in frames:
            total += len(frame)
            ends.append(total)
        for cut in range(len(data) + 1):
            with open(path, "wb") as handle:
                handle.write(data[:cut])
            decoded, _, valid = read_frames(path)
            survived = sum(1 for end in ends if end <= cut)
            assert len(decoded) == survived
            assert decoded == records[:survived]
            assert valid == (ends[survived - 1] if survived else 0)

    def test_corrupt_checksum_stops_the_read(self, tmp_path):
        path = str(tmp_path / "wal.log")
        frames = [encode_frame({"op": "insert", "table": "T", "rows": []}),
                  encode_frame({"op": "truncate", "table": "T"})]
        data = bytearray(b"".join(frames))
        data[len(frames[0]) + 10] ^= 0xFF  # flip a payload byte of frame 2
        with open(path, "wb") as handle:
            handle.write(bytes(data))
        decoded, _, valid = read_frames(path)
        assert len(decoded) == 1
        assert valid == len(frames[0])

    def test_missing_file_is_an_empty_log(self, tmp_path):
        decoded, ends, valid = read_frames(str(tmp_path / "absent.log"))
        assert decoded == [] and ends == [] and valid == 0

    def test_committed_prefix_drops_unfinished_group(self):
        records = [
            {"op": "insert", "table": "T", "rows": []},
            {"op": "begin"},
            {"op": "insert", "table": "T", "rows": []},
            {"op": "commit"},
            {"op": "begin"},
            {"op": "remove", "table": "T", "rows": []},
        ]
        ends = [10, 20, 30, 40, 50, 60]
        applied, keep = committed_prefix(records, ends)
        assert applied == records[:4]
        assert keep == 40

    def test_committed_prefix_keeps_aborted_group(self):
        records = [{"op": "begin"},
                   {"op": "insert", "table": "T", "rows": []},
                   {"op": "load", "table": "T", "rows": []},
                   {"op": "abort"}]
        ends = [1, 2, 3, 4]
        applied, keep = committed_prefix(records, ends)
        assert applied == records
        assert keep == 4

    def test_unknown_sync_mode_rejected(self, tmp_path):
        with pytest.raises(WalError):
            WriteAheadLog(str(tmp_path / "w"), sync="everything")


# ---------------------------------------------------------------------------
# End-to-end recovery
# ---------------------------------------------------------------------------

class TestRecovery:
    def test_open_recovers_full_state(self, tmp_path):
        source = str(tmp_path / "db")
        database = Database.open(source)
        session = connect(database)
        boundaries = []
        run_workload(database, session, boundaries)
        expected = canonical_state(database)
        expected_stats = {
            name: database.table(name).statistics.copy()
            for name in database.catalog.table_names()
        }
        # No close(): recovery must work from the files as they are.
        recovered = recover_copy(source, str(tmp_path / "copy"))
        assert canonical_state(recovered) == expected
        for name, stats in expected_stats.items():
            assert recovered.table(name).statistics == stats
        database.close()
        recovered.close()

    def test_kill_at_every_offset_matches_oracle_prefix(self, tmp_path):
        source = str(tmp_path / "db")
        database = Database.open(source, sync="none")
        session = connect(database)
        boundaries = [(0, canonical_state(database))]
        run_workload(database, session, boundaries)
        database.wal.flush()
        log_size = os.path.getsize(os.path.join(source, "wal.log"))
        assert log_size > 0
        target = str(tmp_path / "cut")
        for offset in range(log_size + 1):
            recovered = recover_copy(source, target, truncate_to=offset)
            expected = oracle_at(boundaries, offset)
            assert canonical_state(recovered) == expected, f"offset {offset}"
            recovered.close()
        database.close()

    def test_checkpoint_mid_workload(self, tmp_path):
        source = str(tmp_path / "db")
        database = Database.open(source)
        database.create_table("T", ["K"])
        database.insert_many("T", [{"K": i} for i in range(50)])
        assert database.checkpoint() is True
        # The log restarts with just the checkpoint mark; pre-checkpoint
        # state now lives in checkpoint.bin.
        assert database.wal.tail_bytes() == 0
        database.insert_many("T", [{"K": i} for i in range(50, 80)])
        expected = canonical_state(database)
        recovered = recover_copy(source, str(tmp_path / "copy"))
        assert canonical_state(recovered) == expected
        database.close()
        recovered.close()

    def test_recover_then_continue_then_recover(self, tmp_path):
        source = str(tmp_path / "db")
        first = Database.open(source)
        first.create_table("T", ["K"])
        first.insert_many("T", [{"K": i} for i in range(10)])
        first.wal.close()  # crash-ish: no final checkpoint

        second = Database.open(source, name="second")
        assert len(second["T"]) == 10
        second.insert_many("T", [{"K": i} for i in range(10, 25)])
        second.table("T").create_index(["K"])
        expected = canonical_state(second)
        recovered = recover_copy(source, str(tmp_path / "copy"))
        assert canonical_state(recovered) == expected
        second.close()
        recovered.close()

    def test_unfinished_transaction_discarded(self, tmp_path):
        source = str(tmp_path / "db")
        database = Database.open(source)
        session = connect(database)
        database.create_table("T", ["K"])
        database.insert("T", {"K": 1})
        before = canonical_state(database)
        with session.transaction():
            database.insert("T", {"K": 2})
            database.delete("T", {"K": 1})
            database.wal.flush()
            # Crash inside the group: the copy holds begin + mutations
            # but no commit marker.
            recovered = recover_copy(source, str(tmp_path / "copy"))
        assert canonical_state(recovered) == before
        recovered.close()
        database.close()

    def test_aborted_transaction_replays_to_pre_group_state(self, tmp_path):
        source = str(tmp_path / "db")
        database = Database.open(source)
        session = connect(database)
        database.create_table("T", ["K"])
        database.insert("T", {"K": 1})
        before = canonical_state(database)
        try:
            with session.transaction():
                database.insert("T", {"K": 2})
                database.create_table("EXTRA", ["X"])
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert canonical_state(database) == before
        recovered = recover_copy(source, str(tmp_path / "copy"))
        assert canonical_state(recovered) == before
        recovered.close()
        database.close()

    def test_recovery_requires_empty_database(self, tmp_path):
        source = str(tmp_path / "db")
        durable = Database.open(source)
        durable.create_table("T", ["K"])
        durable.close()
        occupied = Database("occupied")
        occupied.create_table("X", ["A"])
        with pytest.raises(WalError):
            occupied.attach_wal(source)

    def test_double_attach_rejected(self, tmp_path):
        database = Database.open(str(tmp_path / "db"))
        with pytest.raises(StorageError):
            database.attach_wal(str(tmp_path / "other"))
        database.close()

    def test_close_then_reopen_without_log_replay(self, tmp_path):
        source = str(tmp_path / "db")
        database = Database.open(source)
        database.create_table("T", ["K"])
        database.insert_many("T", [{"K": i} for i in range(5)])
        expected = canonical_state(database)
        database.close()  # final checkpoint: only the mark is left on disk
        records, _, _ = read_frames(os.path.join(source, "wal.log"))
        assert [record["op"] for record in records] == ["checkpoint_mark"]
        reopened = Database.open(source)
        assert canonical_state(reopened) == expected
        reopened.close()


# ---------------------------------------------------------------------------
# Crash windows around the checkpoint itself, and other recovery edges
# ---------------------------------------------------------------------------

class TestCheckpointCrashAtomicity:
    def test_crash_between_checkpoint_rename_and_log_reset(self, tmp_path):
        """A crash after os.replace(checkpoint) but before the log reset
        leaves the *new* checkpoint plus the *old* log.  The stale log's
        checkpoint_mark names an older checkpoint, so recovery must
        discard it — replaying it used to re-run the DDL over the
        checkpointed state ('table users already exists') and silently
        corrupt DML-only histories."""
        source = str(tmp_path / "db")
        database = Database.open(source)
        database.create_table("users", ["K"], constraints=[KeyConstraint(["K"])])
        database.insert_many("users", [{"K": i} for i in range(20)])
        database.delete_many("users", [{"K": 3}])
        database.wal.flush()
        with open(os.path.join(source, "wal.log"), "rb") as handle:
            stale_log = handle.read()
        assert database.checkpoint() is True
        expected = canonical_state(database)
        crash = str(tmp_path / "crash")
        copy_wal_dir(source, crash)
        with open(os.path.join(crash, "wal.log"), "wb") as handle:
            handle.write(stale_log)  # the pre-checkpoint log survived
        recovered = Database.open(crash, name="recovered")
        assert canonical_state(recovered) == expected
        recovered.close()
        database.close()

    def test_stale_dml_only_log_is_not_replayed(self, tmp_path):
        """The silent variant: a stale log holding only remove records
        would subtract checkpointed rows again."""
        source = str(tmp_path / "db")
        database = Database.open(source)
        database.create_table("T", ["K"])
        database.insert_many("T", [{"K": i} for i in range(10)])
        assert database.checkpoint() is True
        database.delete_many("T", [{"K": k} for k in (1, 2)])
        database.wal.flush()
        with open(os.path.join(source, "wal.log"), "rb") as handle:
            stale_log = handle.read()
        assert database.checkpoint() is True
        expected = canonical_state(database)
        crash = str(tmp_path / "crash")
        copy_wal_dir(source, crash)
        with open(os.path.join(crash, "wal.log"), "wb") as handle:
            handle.write(stale_log)
        recovered = Database.open(crash, name="recovered")
        assert canonical_state(recovered) == expected
        assert len(recovered["T"]) == 8
        recovered.close()
        database.close()

    def test_log_requiring_a_missing_checkpoint_fails_loudly(self, tmp_path):
        """A log whose mark names a newer checkpoint than the file on
        disk means the checkpoint it depends on is gone — recovery must
        refuse rather than replay a tail over the wrong base state."""
        source = str(tmp_path / "db")
        database = Database.open(source)
        database.create_table("T", ["K"])
        with open(os.path.join(source, "checkpoint.bin"), "rb") as handle:
            old_checkpoint = handle.read()  # the baseline checkpoint
        database.insert("T", {"K": 1})
        database.close()  # final checkpoint; the log mark now names it
        with open(os.path.join(source, "checkpoint.bin"), "wb") as handle:
            handle.write(old_checkpoint)  # roll the checkpoint back
        with pytest.raises(WalError):
            Database.open(source, name="recovered")

    def test_failed_rollback_still_closes_the_group(self, tmp_path):
        """When Transaction._restore raises (table dropped inside the
        group), the abort marker must still land: otherwise the log's
        transaction depth stays open forever, every later autocommitted
        statement is buffered into the dead group (discarded at
        recovery) and every checkpoint silently returns False."""
        source = str(tmp_path / "db")
        database = Database.open(source)
        session = connect(database)
        database.create_table("T", ["K"])
        database.create_table("DOOMED", ["X"])
        with pytest.raises(StorageError):
            with session.transaction():
                database.drop_table("DOOMED")
                raise RuntimeError("trigger the rollback")
        assert database.wal.transaction_depth == 0
        assert not session.in_transaction
        # Durability continues: later statements autocommit and survive,
        # and checkpoints are taken again.
        database.insert("T", {"K": 42})
        recovered = recover_copy(source, str(tmp_path / "copy"))
        assert XTuple({"K": 42}) in recovered.table("T").rows()
        assert database.checkpoint() is True
        recovered.close()
        database.close()

    def test_replayed_load_restores_statistics(self, tmp_path):
        """A logged 'load' carries the statistics handed to reset_rows,
        so crash recovery reproduces the same planner estimates and
        staleness tracker as the live restore path — not a re-analysis."""
        source = str(tmp_path / "db")
        database = Database.open(source)
        database.create_table("T", ["A", "B"])
        database.insert_many("T", [{"A": i, "B": i % 2} for i in range(6)])
        database.table("T").analyze()
        database.insert_many("T", [{"A": 10, "B": 0}])  # churn since analyze
        snapshot = database.snapshot()
        database.insert_many("T", [{"A": 11, "B": 1}])
        database.restore(snapshot)  # logs one load record, statistics included
        stats = database.table("T").statistics
        assert stats.mutations_since_analyze > 0
        recovered = recover_copy(source, str(tmp_path / "copy"))
        replayed = recovered.table("T").statistics
        assert replayed == stats
        assert replayed.mutations_since_analyze == stats.mutations_since_analyze
        assert replayed.staleness_threshold == stats.staleness_threshold
        recovered.close()
        database.close()

    def test_rename_table_rewrites_foreign_keys_durably(self, tmp_path):
        source = str(tmp_path / "db")
        database = Database.open(source)
        database.create_table("DEPT", ["D#"], constraints=[KeyConstraint(["D#"])])
        database.create_table("EMP", ["E#", "D#"])
        database.insert("DEPT", {"D#": 1})
        database.insert("EMP", {"E#": 1, "D#": 1})
        database.add_foreign_key(
            "EMP", ForeignKeyConstraint(["D#"], "DEPT", ["D#"], name="emp_dept")
        )
        database.catalog.rename_table("DEPT", "DIVISION")
        expected = canonical_state(database)
        recovered = recover_copy(source, str(tmp_path / "copy"))
        assert canonical_state(recovered) == expected
        entries = recovered.catalog.foreign_key_entries()
        assert [(owner, fk.referenced_relation) for owner, fk in entries] == [
            ("EMP", "DIVISION")
        ]
        recovered.close()
        database.close()

    def test_unpicklable_constraint_warns_when_dropped_and_at_recovery(self, tmp_path):
        source = str(tmp_path / "db")
        database = Database.open(source)
        constraint = RowConstraint(
            "T", lambda row: row["K"] is None or row["K"] < 100, name="k_small"
        )
        with pytest.warns(WalWarning, match="k_small"):
            database.create_table("T", ["K"], constraints=[constraint])
        database.insert("T", {"K": 1})
        with pytest.warns(WalWarning, match="k_small"):
            assert database.checkpoint() is True
        with pytest.warns(WalWarning, match="k_small"):
            recovered = recover_copy(source, str(tmp_path / "copy"))
        assert XTuple({"K": 1}) in recovered.table("T").rows()
        assert all(
            getattr(c, "name", "") != "k_small"
            for c in recovered.table("T").constraints
        )
        recovered.close()
        database.close()


# ---------------------------------------------------------------------------
# Property test: random workload, random truncation point
# ---------------------------------------------------------------------------

VALUES = st.one_of(st.none(), st.integers(min_value=0, max_value=2))
ROW = st.tuples(VALUES, VALUES)
ROWS = st.lists(ROW, max_size=4)

STATEMENTS = st.one_of(
    st.tuples(st.just("insert_many"), ROWS),
    st.tuples(st.just("delete_many"), ROWS),
    st.tuples(st.just("delete_where"), st.integers(min_value=0, max_value=2)),
    st.tuples(st.just("load"), ROWS),
    st.tuples(st.just("truncate")),
    st.tuples(st.just("toggle_index")),
    st.tuples(st.just("analyze")),
    st.tuples(st.just("txn"), st.lists(st.tuples(st.just("insert_many"), ROWS),
                                       max_size=3), st.booleans()),
)


def apply_statement(database: Database, session, statement) -> None:
    kind = statement[0]
    table = database.table("T")
    if kind == "insert_many":
        database.insert_many("T", statement[1])
    elif kind == "delete_many":
        database.delete_many("T", statement[1])
    elif kind == "delete_where":
        value = statement[1]
        table.delete_where(lambda row: row["A"] == value)
    elif kind == "load":
        table.load(statement[1])
    elif kind == "truncate":
        table.truncate()
    elif kind == "toggle_index":
        if table.find_index(["A"]) is None:
            table.create_index(["A"])
        else:
            table.drop_index(["A"])
    elif kind == "analyze":
        table.analyze()
    elif kind == "txn":
        _, body, commit = statement
        try:
            with session.transaction():
                for inner in body:
                    apply_statement(database, session, inner)
                if not commit:
                    raise _Rollback()
        except _Rollback:
            pass


class _Rollback(Exception):
    pass


class TestRecoveryProperty:
    @settings(max_examples=40, deadline=None, derandomize=True)
    @given(
        statements=st.lists(STATEMENTS, min_size=1, max_size=8),
        cut_fraction=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_recovered_state_is_an_oracle_prefix(
        self, tmp_path_factory, statements, cut_fraction
    ):
        base = tmp_path_factory.mktemp("walprop")
        source = str(base / "db")
        database = Database.open(source, sync="none")
        session = connect(database)
        try:
            database.create_table("T", ["A", "B"])
            wal = database.wal
            wal.flush()
            boundaries = [(wal.position(), canonical_state(database))]
            for statement in statements:
                apply_statement(database, session, statement)
                wal.flush()
                boundaries.append((wal.position(), canonical_state(database)))
            log_size = os.path.getsize(os.path.join(source, "wal.log"))
            offset = round(cut_fraction * log_size)
            recovered = recover_copy(source, str(base / "cut"), truncate_to=offset)
            try:
                expected = oracle_at(boundaries, offset)
                if expected is None:
                    # Cut before even the create_table survived: recovery
                    # yields the baseline (empty) checkpoint state.
                    expected = ({}, ())
                assert canonical_state(recovered) == expected
            finally:
                recovered.close()
        finally:
            database.close()
            shutil.rmtree(str(base), ignore_errors=True)


# ---------------------------------------------------------------------------
# The background checkpoint worker
# ---------------------------------------------------------------------------

class TestCheckpointWorker:
    def test_run_once_checkpoints_and_truncates(self, tmp_path):
        database = Database.open(str(tmp_path / "db"))
        database.create_table("T", ["K"])
        database.insert_many("T", [{"K": i} for i in range(10)])
        worker = CheckpointWorker(database, interval=3600.0)
        assert database.wal.tail_bytes() > 0
        assert worker.run_once() is True
        assert database.wal.tail_bytes() == 0
        # Nothing new in the log: the next cycle is a no-op.
        assert worker.run_once() is False
        database.close()

    def test_worker_skips_open_transaction(self, tmp_path):
        database = Database.open(str(tmp_path / "db"))
        session = connect(database)
        database.create_table("T", ["K"])
        worker = CheckpointWorker(database, interval=3600.0)
        with session.transaction():
            database.insert("T", {"K": 1})
            assert worker.run_once() is False
            assert database.checkpoint() is False
        assert worker.run_once() is True
        database.close()

    def test_background_thread_checkpoints(self, tmp_path):
        database = Database.open(
            str(tmp_path / "db"), checkpoint_interval=0.05
        )
        worker = database.checkpoint_worker
        assert worker is not None and worker.running
        database.create_table("T", ["K"])
        database.insert_many("T", [{"K": i} for i in range(100)])
        deadline = threading.Event()
        for _ in range(100):  # up to ~5s for one cycle
            if worker.cycles >= 1:
                break
            deadline.wait(0.05)
        assert worker.cycles >= 1
        assert worker.last_error is None
        expected = canonical_state(database)
        database.close()
        assert not worker.running
        recovered = Database.open(str(tmp_path / "db"), name="recovered")
        assert canonical_state(recovered) == expected
        recovered.close()

    def test_concurrent_mutations_with_worker_lose_nothing(self, tmp_path):
        """Append+apply hold the WAL lock, so a background checkpoint can
        never truncate a logged-but-unapplied record: every committed row
        survives recovery no matter how the checkpoints interleave."""
        source = str(tmp_path / "db")
        database = Database.open(source, checkpoint_interval=0.01)
        database.create_table("T", ["K"])
        for i in range(60):
            database.insert("T", {"K": i})
        expected = canonical_state(database)
        database.close()
        recovered = Database.open(source, name="recovered")
        assert canonical_state(recovered) == expected
        recovered.close()


class TestGroupCommit:
    """PR 9 satellite: concurrent depth-0 commit boundaries coalesce into
    shared fsyncs (one fsync serves all writers queued behind it) without
    weakening the statement-returns-after-durable guarantee."""

    def test_single_threaded_fsync_per_commit_unchanged(self, tmp_path):
        database = Database.open(str(tmp_path / "db"))
        database.create_table("T", ["K"])
        wal = database.wal
        base = wal.fsyncs_issued
        for i in range(7):
            database.insert("T", {"K": i})
        # No concurrency → nothing to coalesce: one fsync per boundary.
        assert wal.fsyncs_issued - base == 7
        assert wal.commits_coalesced == 0
        database.close()

    def test_explicit_scope_defers_to_one_fsync(self, tmp_path):
        database = Database.open(str(tmp_path / "db"))
        database.create_table("T", ["K"])
        wal = database.wal
        base = wal.fsyncs_issued
        with wal.commit_scope():
            database.insert("T", {"K": 1})
            database.insert("T", {"K": 2})
        # Both appends deferred to the outer scope's single exit sync.
        assert wal.fsyncs_issued - base == 1
        database.close()

    def test_concurrent_commits_coalesce_and_recover(self, tmp_path):
        source = str(tmp_path / "db")
        database = Database.open(source)
        database.create_table("T", ["A", "B"])
        wal = database.wal
        base = wal.fsyncs_issued
        threads, per_thread = 6, 40

        def work(worker: int) -> None:
            for i in range(per_thread):
                database.insert("T", {"A": worker, "B": i})

        pool = [
            threading.Thread(target=work, args=(worker,))
            for worker in range(threads)
        ]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        commits = threads * per_thread
        # Every commit boundary was made durable exactly once: by its own
        # fsync or by a later writer's covering fsync.
        assert wal.fsyncs_issued - base + wal.commits_coalesced == commits
        assert len(database.catalog.table("T").relation.tuples()) == commits
        expected = canonical_state(database)
        database.close()
        recovered = Database.open(source, name="recovered")
        assert canonical_state(recovered) == expected
        recovered.close()

    def test_group_commit_off_restores_inline_fsync(self, tmp_path):
        database = Database.open(str(tmp_path / "db"), group_commit=False)
        database.create_table("T", ["K"])
        wal = database.wal
        assert wal.group_commit is False
        base = wal.fsyncs_issued
        with wal.commit_scope():
            database.insert("T", {"K": 1})
            database.insert("T", {"K": 2})
        # Inline mode fsyncs inside the critical section, scope or not.
        assert wal.fsyncs_issued - base == 2
        database.close()

    def test_sync_none_never_fsyncs_on_append(self, tmp_path):
        database = Database.open(str(tmp_path / "db2"), sync="none")
        database.create_table("T", ["K"])
        wal = database.wal
        base = wal.fsyncs_issued
        for i in range(5):
            database.insert("T", {"K": i})
        assert wal.fsyncs_issued == base
        database.close()

    def test_transaction_markers_still_fsync_at_close(self, tmp_path):
        database = Database.open(str(tmp_path / "db"))
        database.create_table("T", ["K"])
        session = connect(database)
        wal = database.wal
        base = wal.fsyncs_issued
        with session.transaction():
            session.execute("append to T (K = 1)")
            session.execute("append to T (K = 2)")
        # Inside the group nothing syncs; the commit marker is the one
        # durability point the group rides out on.
        assert wal.fsyncs_issued - base == 1
        database.close()
