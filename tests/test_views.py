"""Unit tests for algebra expression trees and the view catalog (repro.views)."""

import pytest

from repro import Relation, XRelation, XTuple
from repro.core.errors import StorageError
from repro.storage import Database
from repro.views import (
    Base,
    UnionJoin,
    View,
    ViewCatalog,
    base,
    network_to_relational,
)


@pytest.fixture
def db():
    database = Database("views-test")
    dept = database.create_table("DEPT", ["DNAME", "FLOOR"])
    dept.insert_many([("eng", 2), ("sales", 1), ("ops", 3)])
    emp = database.create_table("EMP", ["E#", "NAME", "DNAME"])
    emp.insert_many([
        (1, "ann", "eng"),
        (2, "bob", "sales"),
        (3, "cat", None),      # department unknown
    ])
    return database


class TestExpressions:
    def test_base_resolution(self, db):
        assert len(base("EMP").evaluate(db)) == 3
        with pytest.raises(StorageError):
            base("NOPE").evaluate(db)

    def test_select_project_chain(self, db):
        expression = base("EMP").select("DNAME", "=", "eng").project(["NAME"])
        result = expression.evaluate(db)
        assert {t["NAME"] for t in result.rows()} == {"ann"}

    def test_join_and_union_join(self, db):
        inner = base("EMP").join(base("DEPT"), on=["DNAME"]).evaluate(db)
        outer = base("EMP").union_join(base("DEPT"), on=["DNAME"]).evaluate(db)
        assert len(inner) == 2                      # cat's null DNAME cannot join
        assert outer.x_contains({"NAME": "cat"})    # ...but survives the union-join
        assert outer.x_contains({"DNAME": "ops"})   # ...as does the empty department

    def test_set_operators(self, db):
        eng = base("EMP").select("DNAME", "=", "eng")
        sales = base("EMP").select("DNAME", "=", "sales")
        union = eng.union(sales).evaluate(db)
        difference = base("EMP").difference(eng).evaluate(db)
        assert len(union) == 2
        assert not difference.x_contains({"NAME": "ann"})
        assert difference.x_contains({"NAME": "bob"})

    def test_rename_and_product(self, db):
        renamed = base("DEPT").rename({"DNAME": "D", "FLOOR": "F"})
        product = base("EMP").project(["E#"]).product(renamed).evaluate(db)
        assert len(product) == 9

    def test_divide_expression(self):
        database = {"PS": Relation.from_rows(
            ["S#", "P#"], [("s1", "p1"), ("s1", "p2"), ("s2", "p1")], name="PS")}
        divisor = base("PS").project(["P#"])
        quotient = base("PS").divide(divisor, by=["S#"]).evaluate(database)
        assert {t["S#"] for t in quotient.rows()} == {"s1"}

    def test_references_and_explain(self, db):
        expression = base("EMP").join(base("DEPT"), on=["DNAME"]).project(["NAME", "FLOOR"])
        assert expression.references() == {"EMP", "DEPT"}
        explanation = expression.explain()
        assert "Project" in explanation and "Base(EMP)" in explanation


class TestViewCatalog:
    def test_define_and_evaluate(self, db):
        catalog = ViewCatalog()
        catalog.define("ENG_STAFF", base("EMP").select("DNAME", "=", "eng").project(["NAME"]))
        result = catalog.evaluate("ENG_STAFF", db)
        assert {t["NAME"] for t in result.rows()} == {"ann"}

    def test_duplicate_and_missing_views(self, db):
        catalog = ViewCatalog()
        catalog.define("V", base("EMP"))
        with pytest.raises(StorageError):
            catalog.define("V", base("EMP"))
        with pytest.raises(StorageError):
            catalog.view("MISSING")

    def test_views_can_stack(self, db):
        catalog = ViewCatalog()
        catalog.define("STAFFED", base("EMP").union_join(base("DEPT"), on=["DNAME"]))
        catalog.define("STAFFED_NAMES", base("STAFFED").project(["NAME"]))
        result = catalog.evaluate("STAFFED_NAMES", db)
        assert {t["NAME"] for t in result.rows()} == {"ann", "bob", "cat"}

    def test_cyclic_views_detected(self, db):
        catalog = ViewCatalog()
        catalog.define("A", base("B"))
        catalog.define("B", base("A"))
        with pytest.raises(StorageError):
            catalog.evaluate("A", db)

    def test_dependency_queries_and_drop_protection(self, db):
        catalog = ViewCatalog()
        catalog.define("V1", base("EMP"))
        catalog.define("V2", base("V1").project(["NAME"]))
        assert [v.name for v in catalog.views_reading("EMP")] == ["V1"]
        assert [v.name for v in catalog.views_reading("V1")] == ["V2"]
        with pytest.raises(StorageError):
            catalog.drop("V1")
        catalog.drop("V2")
        catalog.drop("V1")
        assert len(catalog) == 0

    def test_materialisation_and_staleness(self, db):
        catalog = ViewCatalog()
        catalog.define("ALL_EMPS", base("EMP").project(["NAME"]))
        snapshot = catalog.materialise("ALL_EMPS", db)
        assert not catalog.is_stale("ALL_EMPS", db)
        db.insert("EMP", (4, "dan", "ops"))
        assert catalog.is_stale("ALL_EMPS", db)
        assert catalog.invalidate_readers_of("EMP") == ["ALL_EMPS"]
        assert catalog.materialised("ALL_EMPS") is None
        assert len(snapshot) == 3

    def test_network_to_relational_view(self, db):
        view = network_to_relational("DEPT", "EMP", link=["DNAME"])
        result = view.evaluate(db)
        # Information-preserving: every employee and every department is
        # recoverable from the single view relation.
        assert result.x_contains({"NAME": "cat"})
        assert result.x_contains({"DNAME": "ops"})
        assert XRelation(db["EMP"]) <= result
        assert XRelation(db["DEPT"]) <= result
