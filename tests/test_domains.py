"""Unit tests for attribute domains (repro.core.domains)."""

import random

import pytest

from repro.core.domains import (
    ANY,
    AnyDomain,
    EnumeratedDomain,
    IntegerRangeDomain,
    TypedDomain,
    active_domain,
)
from repro.core.errors import DomainError
from repro.core.nulls import NI


class TestEnumeratedDomain:
    def test_membership(self):
        domain = EnumeratedDomain(["a", "b", "c"])
        assert domain.contains("a")
        assert not domain.contains("d")

    def test_extended_membership_includes_ni(self):
        domain = EnumeratedDomain(["a"])
        assert domain.contains_extended(NI)
        assert domain.contains_extended(None)
        assert not domain.contains("a2") or domain.contains_extended("a2") == domain.contains("a2")

    def test_rejects_null_member(self):
        with pytest.raises(DomainError):
            EnumeratedDomain(["a", None])

    def test_rejects_empty(self):
        with pytest.raises(DomainError):
            EnumeratedDomain([])

    def test_deduplicates_preserving_order(self):
        domain = EnumeratedDomain(["b", "a", "b", "c", "a"])
        assert domain.values == ("b", "a", "c")

    def test_finite_iteration(self):
        domain = EnumeratedDomain([1, 2, 3])
        assert domain.is_finite()
        assert list(domain) == [1, 2, 3]
        assert len(domain) == 3

    def test_sample_is_deterministic_with_seeded_rng(self):
        domain = EnumeratedDomain(["x", "y", "z"])
        first = domain.sample(5, random.Random(7))
        second = domain.sample(5, random.Random(7))
        assert first == second
        assert all(v in ("x", "y", "z") for v in first)

    def test_validate_normalises_none(self):
        domain = EnumeratedDomain(["a"])
        assert domain.validate(None) is NI

    def test_validate_rejects_foreign_value(self):
        domain = EnumeratedDomain(["a"])
        with pytest.raises(DomainError):
            domain.validate("q", attribute="A")


class TestIntegerRangeDomain:
    def test_membership(self):
        domain = IntegerRangeDomain(5, 10)
        assert domain.contains(5)
        assert domain.contains(10)
        assert not domain.contains(11)
        assert not domain.contains(4)

    def test_bool_is_not_an_integer_member(self):
        domain = IntegerRangeDomain(0, 1)
        assert not domain.contains(True)

    def test_rejects_inverted_bounds(self):
        with pytest.raises(DomainError):
            IntegerRangeDomain(5, 4)

    def test_length_and_iteration(self):
        domain = IntegerRangeDomain(1, 4)
        assert len(domain) == 4
        assert list(domain) == [1, 2, 3, 4]

    def test_sample_stays_in_range(self):
        domain = IntegerRangeDomain(3, 6)
        for value in domain.sample(20, random.Random(1)):
            assert 3 <= value <= 6


class TestTypedAndAnyDomains:
    def test_typed_domain_membership(self):
        domain = TypedDomain(str)
        assert domain.contains("hello")
        assert not domain.contains(4)

    def test_typed_int_domain_rejects_bool(self):
        assert not TypedDomain(int).contains(True)

    def test_typed_domain_is_not_finite(self):
        domain = TypedDomain(str)
        assert not domain.is_finite()
        with pytest.raises(DomainError):
            len(domain)
        with pytest.raises(DomainError):
            list(domain)

    def test_any_domain_accepts_everything(self):
        assert ANY.contains(object())
        assert ANY.contains("x")
        assert isinstance(ANY, AnyDomain)


class TestActiveDomain:
    def test_builds_from_nonnull_values(self):
        domain = active_domain(["a", NI, "b", None, "a"])
        assert set(domain.values) == {"a", "b"}

    def test_requires_some_nonnull_value(self):
        with pytest.raises(DomainError):
            active_domain([NI, None])
