"""The QUEL DML statements: grammar, semantics, and differential pins.

Every DML statement executed through the Session API must be equivalent
to the corresponding direct :class:`repro.storage.Database` mutation —
``append to`` ≡ ``insert_many``, ``delete`` ≡ ``delete_many`` of the
matching rows (with the (4.8) subsumption closure), ``replace`` ≡
delete-then-insert.  The pins here run each statement and its direct
equivalent on twin databases and assert snapshot equality.
"""

import pytest
from hypothesis import given, settings, strategies as st

import repro
from repro.constraints.keys import KeyConstraint
from repro.core.errors import (
    QuelError,
    QuelParseError,
    QuelSemanticError,
    StorageError,
)
from repro.core.threevalued import compare
from repro.core.tuples import XTuple
from repro.core.xrelation import XRelation
from repro.quel import parse, run_query
from repro.quel.ast_nodes import (
    AppendStatement,
    DeleteStatement,
    Parameter,
    ReplaceStatement,
    normalize_statement,
)
from repro.storage import Database


# ---------------------------------------------------------------------------
# Grammar
# ---------------------------------------------------------------------------

class TestDmlGrammar:
    def test_append_shape(self):
        s = parse('append to EMP (E# = 1, NAME = "SMITH")')
        assert isinstance(s, AppendStatement)
        assert s.relation == "EMP"
        assert [a.attribute for a in s.assignments] == ["E#", "NAME"]
        assert s.where is None and s.ranges == ()

    def test_append_from_query_shape(self):
        s = parse(
            'range of e is EMP append to NAMES (NAME = e.NAME) where e.E# > 1'
        )
        assert isinstance(s, AppendStatement)
        assert len(s.ranges) == 1 and s.where is not None

    def test_append_requires_to(self):
        with pytest.raises(QuelParseError):
            parse('append EMP (E# = 1)')

    def test_delete_shape(self):
        s = parse('range of e is EMP delete e where e.E# = 1')
        assert isinstance(s, DeleteStatement)
        assert s.variable == "e" and s.where is not None

    def test_delete_without_where(self):
        s = parse('range of e is EMP delete e')
        assert s.where is None

    def test_replace_shape(self):
        s = parse('range of e is EMP replace e (NAME = $n) where e.E# = $k')
        assert isinstance(s, ReplaceStatement)
        assert isinstance(s.assignments[0].value, Parameter)

    def test_parameter_operand_in_where(self):
        s = parse('range of e is EMP retrieve (e.NAME) where e.E# = $k')
        assert isinstance(s.where.right, Parameter)
        assert s.where.right.name == "k"

    def test_assignment_requires_equals(self):
        with pytest.raises(QuelParseError):
            parse('append to EMP (E# 1)')

    def test_trailing_tokens_after_dml_rejected(self):
        with pytest.raises(QuelParseError):
            parse('range of e is EMP delete e garbage')

    def test_empty_assignment_list_rejected(self):
        with pytest.raises(QuelParseError):
            parse('append to EMP ()')

    def test_statement_str_round_trips(self):
        for text in (
            'append to EMP (E# = 1, NAME = "SMITH")',
            'range of e is EMP delete e where e.E# = 1',
            'range of e is EMP replace e (NAME = $n) where e.E# = 2',
        ):
            statement = parse(text)
            again = parse(str(statement))
            assert normalize_statement(again) == normalize_statement(statement)

    def test_normalization_ignores_whitespace_and_comments(self):
        a = parse('range of e is EMP delete e where e.E# = 1')
        b = parse('range of e is EMP  -- say\n delete e\n where e.E# = 1')
        assert normalize_statement(a) == normalize_statement(b)

    def test_run_query_rejects_dml_text(self):
        db = Database()
        db.create_table("EMP", ["E#", "NAME"])
        with pytest.raises(QuelError):
            run_query('append to EMP (E# = 1)', db)


# ---------------------------------------------------------------------------
# Semantic errors
# ---------------------------------------------------------------------------

@pytest.fixture
def db():
    database = Database("dml")
    emp = database.create_table("EMP", ["E#", "NAME", "SAL"])
    emp.insert_many([
        (1, "SMITH", 10),
        (2, "JONES", 20),
        (3, "BROWN", None),
    ])
    database.create_table("NAMES", ["NAME"])
    return database


@pytest.fixture
def session(db):
    return repro.connect(db)


class TestDmlSemanticErrors:
    def test_append_unknown_relation(self, session):
        with pytest.raises(QuelSemanticError):
            session.execute('append to NOPE (A = 1)')

    def test_append_unknown_attribute(self, session):
        with pytest.raises(QuelSemanticError):
            session.execute('append to EMP (WAGE = 1)')

    def test_append_duplicate_attribute(self, session):
        with pytest.raises(QuelSemanticError):
            session.execute('append to EMP (E# = 1, E# = 2)')

    def test_append_where_without_ranges(self, session):
        with pytest.raises(QuelSemanticError):
            session.execute('append to EMP (E# = 1) where 1 = 1')

    def test_append_column_ref_without_ranges(self, session):
        with pytest.raises(QuelSemanticError):
            session.execute('append to NAMES (NAME = e.NAME)')

    def test_delete_undeclared_variable(self, session):
        with pytest.raises(QuelSemanticError):
            session.execute('delete e')

    def test_replace_value_from_other_range(self, session):
        with pytest.raises(QuelSemanticError):
            session.execute(
                'range of e is EMP range of m is EMP '
                'replace e (NAME = m.NAME) where e.E# = m.E#'
            )

    def test_missing_parameter_value(self, session):
        with pytest.raises(QuelSemanticError):
            session.execute('append to EMP (E# = $k)')

    def test_case_insensitive_relation_resolution(self, session, db):
        session.execute('append to emp (E# = 9, NAME = "X", SAL = 1)')
        assert XTuple({"E#": 9, "NAME": "X", "SAL": 1}) in db["EMP"].tuples()


# ---------------------------------------------------------------------------
# Execution semantics
# ---------------------------------------------------------------------------

class TestDmlExecution:
    def test_append_literal_row(self, session, db):
        result = session.execute('append to EMP (E# = 4, NAME = "GREEN", SAL = 30)')
        assert result.rows_affected == 1
        assert len(result) == 0 and result.columns == ()
        assert XTuple({"E#": 4, "NAME": "GREEN", "SAL": 30}) in db["EMP"].tuples()

    def test_append_partial_row_leaves_nulls(self, session, db):
        session.execute('append to EMP (E# = 5)')
        assert XTuple({"E#": 5}) in db["EMP"].tuples()

    def test_append_with_parameters(self, session, db):
        session.execute('append to EMP (E# = $e, NAME = $n)', {"e": 6, "n": "WHITE"})
        assert XTuple({"E#": 6, "NAME": "WHITE"}) in db["EMP"].tuples()

    def test_append_from_query(self, session, db):
        result = session.execute(
            'range of e is EMP append to NAMES (NAME = e.NAME) where e.SAL >= 10'
        )
        assert result.rows_affected == 2
        assert {t["NAME"] for t in db["NAMES"].tuples()} == {"SMITH", "JONES"}

    def test_delete_where(self, session, db):
        result = session.execute('range of e is EMP delete e where e.E# = 2')
        assert result.rows_affected == 1
        assert {t["NAME"] for t in db["EMP"].tuples()} == {"SMITH", "BROWN"}

    def test_delete_null_comparison_never_true(self, session, db):
        """BROWN's SAL is null: ``e.SAL < 100`` is ni, never TRUE, so the
        TRUE-only discipline protects the row from the delete."""
        session.execute('range of e is EMP delete e where e.SAL < 100')
        assert {t["NAME"] for t in db["EMP"].tuples()} == {"BROWN"}

    def test_delete_all(self, session, db):
        result = session.execute('range of e is EMP delete e')
        assert result.rows_affected == 3
        assert len(db["EMP"]) == 0

    def test_replace_updates_matching_rows(self, session, db):
        result = session.execute(
            'range of e is EMP replace e (SAL = 99) where e.E# = 1'
        )
        assert result.rows_affected == 1
        assert XTuple({"E#": 1, "NAME": "SMITH", "SAL": 99}) in db["EMP"].tuples()

    def test_replace_value_from_own_row(self, session, db):
        session.execute('range of e is EMP replace e (SAL = e.E#)')
        sals = {t["E#"]: t["SAL"] for t in db["EMP"].tuples()}
        assert sals == {1: 1, 2: 2, 3: 3}

    def test_replace_atomic_on_key_violation(self, db):
        keyed = Database("keyed")
        table = keyed.create_table(
            "R", ["K", "V"], constraints=[KeyConstraint(["K"])]
        )
        table.insert_many([(1, "a"), (2, "b")])
        before = {name: dict(entry, rows=set(entry["rows"]))
                  for name, entry in keyed.snapshot().items()}
        session = repro.connect(keyed)
        with pytest.raises(Exception):
            # Collapsing both keys onto 1 violates the key constraint.
            session.execute('range of r is R replace r (K = 1)')
        assert keyed.snapshot() == before

    def test_retrieve_into_materializes(self, session, db):
        result = session.execute(
            'range of e is EMP retrieve into RICH (e.NAME, e.SAL) where e.SAL >= 20'
        )
        assert result.rows_affected == 1
        assert "RICH" in db
        assert {t["e_NAME"] for t in db["RICH"].tuples()} == {"JONES"}

    def test_retrieve_into_existing_table_rejected(self, session):
        with pytest.raises(StorageError):
            session.execute('range of e is EMP retrieve into NAMES (e.NAME)')

    def test_append_from_query_keeps_bindings_with_all_null_assigned_columns(self):
        """Regression: a qualifying binding whose *assigned* columns are
        all null must still append (its constant columns carry real
        information).  The binding sub-query projects every range
        attribute precisely so minimization cannot collapse such a
        binding into the droppable null tuple."""
        database = Database()
        src = database.create_table("SRC", ["A", "B"])
        src.insert(XTuple({"B": 5}))  # A is null
        database.create_table("DST", ["X", "Y"])
        session = repro.connect(database)
        result = session.execute(
            'range of e is SRC append to DST (X = e.A, Y = 1) where e.B = 5'
        )
        assert result.rows_affected == 1
        assert XTuple({"Y": 1}) in database["DST"].tuples()
        # Same hole for an all-constant assignment list: existence of a
        # TRUE binding is what matters, not its projection.
        result = session.execute(
            'range of e is SRC append to DST (X = 99) where e.B = 5'
        )
        assert result.rows_affected == 1
        assert XTuple({"X": 99}) in database["DST"].tuples()

    def test_append_assignment_from_undeclared_variable_rejected(self):
        database = Database()
        database.create_table("SRC", ["A"])
        database.create_table("DST", ["X"])
        session = repro.connect(database)
        with pytest.raises(QuelSemanticError):
            session.execute('range of e is SRC append to DST (X = z.A)')
        with pytest.raises(QuelSemanticError):
            session.execute('range of e is SRC append to DST (X = e.NOPE)')

    def test_delete_applies_48_subsumption(self):
        """Deleting a row also deletes every less-informative stored row,
        exactly like a direct ``delete_many`` (Section 7 via (4.8))."""
        database = Database()
        table = database.create_table("R", ["A", "B"])
        table.insert_many([(1, 2), (1, None)])
        session = repro.connect(database)
        result = session.execute('range of r is R delete r where r.B = 2')
        assert result.rows_affected == 2
        assert len(database["R"]) == 0


# ---------------------------------------------------------------------------
# Differential pins: QUEL DML ≡ direct Database mutation
# ---------------------------------------------------------------------------

ROWS = st.lists(
    st.tuples(
        st.one_of(st.none(), st.integers(0, 3)),
        st.one_of(st.none(), st.integers(0, 3)),
    ),
    max_size=8,
)


def _twin_databases(rows):
    def build():
        database = Database("twin")
        table = database.create_table("R", ["A", "B"])
        table.insert_many([
            XTuple({a: v for a, v in zip(("A", "B"), values) if v is not None})
            for values in rows
        ])
        return database
    return build(), build()


def _matching(database, attribute, op, constant):
    return [
        t for t in database["R"].tuples()
        if compare(t[attribute], op, constant).is_true()
    ]


@settings(max_examples=60, deadline=None, derandomize=True)
@given(ROWS, st.integers(0, 3))
def test_quel_delete_equals_direct_delete_many(rows, constant):
    quel_db, direct_db = _twin_databases(rows)
    session = repro.connect(quel_db)
    result = session.execute(
        'range of r is R delete r where r.A = $k', {"k": constant}
    )
    direct_count = direct_db.delete_many("R", _matching(direct_db, "A", "=", constant))
    assert quel_db["R"].tuples() == direct_db["R"].tuples()
    assert result.rows_affected == direct_count


@settings(max_examples=60, deadline=None, derandomize=True)
@given(ROWS, st.integers(0, 3), st.integers(0, 3))
def test_quel_replace_equals_direct_delete_insert(rows, constant, new_value):
    """REPLACE works on the *minimal form* of the matching rows (its
    matching query answers with an x-relation); the direct equivalent is
    delete-then-insert of that minimal matched set, and the resulting
    states must be information-wise equal."""
    quel_db, direct_db = _twin_databases(rows)
    session = repro.connect(quel_db)
    result = session.execute(
        'range of r is R replace r (B = $v) where r.A = $k',
        {"v": new_value, "k": constant},
    )
    matched = list(XRelation.from_rows(
        ("A", "B"), _matching(direct_db, "A", "=", constant)
    ).rows())
    replacements = [
        XTuple(dict(old.items(), B=new_value)) for old in matched
    ]
    table = direct_db.table("R")
    table.delete_many(matched)
    table.insert_many(replacements)
    assert (
        XRelation(quel_db["R"]) == XRelation(direct_db["R"])
    ), (quel_db["R"].tuples(), direct_db["R"].tuples())
    assert result.rows_affected == len(matched)


@settings(max_examples=60, deadline=None, derandomize=True)
@given(ROWS, st.integers(0, 3))
def test_quel_append_from_query_equals_direct_insert_many(rows, constant):
    """APPEND-from-query inserts the minimal form of the source answer;
    inserting the raw matching rows directly yields an information-wise
    equal table."""
    quel_db, direct_db = _twin_databases(rows)
    for database in (quel_db, direct_db):
        database.create_table("OUT", ["A", "B"])
    session = repro.connect(quel_db)
    result = session.execute(
        'range of r is R append to OUT (A = r.A, B = r.B) where r.A = $k',
        {"k": constant},
    )
    minimal = list(XRelation.from_rows(
        ("A", "B"), _matching(direct_db, "A", "=", constant)
    ).rows())
    direct_db.insert_many("OUT", minimal)
    assert XRelation(quel_db["OUT"]) == XRelation(direct_db["OUT"])
    assert result.rows_affected == len(minimal)


def test_quel_append_literal_equals_direct_insert():
    quel_db, direct_db = _twin_databases([(1, 2)])
    repro.connect(quel_db).execute('append to R (A = 3, B = 0)')
    direct_db.insert_many("R", [XTuple({"A": 3, "B": 0})])
    assert quel_db["R"].tuples() == direct_db["R"].tuples()
