"""The concurrent network service (PR 9).

Covers the tentpole surface end to end — statements with parameters,
server-side prepared handles, cursor-paged streaming, transactions over
the pinned statement gate, the error-taxonomy → HTTP mapping, overload
rejection, the ``/metrics`` scrape — plus the concurrency guarantees:
N client threads of mixed DML/retrieve are equivalent to the serial
order of their ``seq`` stamps, and a torn connection mid-cursor or
mid-transaction leaves nothing behind.
"""

import json
import socket
import threading
import time

import pytest
from hypothesis import given, settings, strategies as st

import repro
from repro.core.errors import StaleResultError
from repro.obs import MetricsRegistry, parse_prometheus, set_registry
from repro.server import (
    ReproServer,
    ServerClient,
    ServerError,
    StatementGate,
    serve,
    status_for,
)
from repro.server.http import ProtocolError
from repro.storage import Database


def wait_until(predicate, timeout=5.0, interval=0.02):
    """Poll *predicate* until true (the server notices disconnects
    asynchronously); fail the test on timeout."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError("condition not reached before timeout")


@pytest.fixture
def db():
    database = Database("served", metrics=MetricsRegistry())
    table = database.create_table("T", ["A", "B"])
    table.insert_many([(i, i % 7) for i in range(300)])
    return database


@pytest.fixture
def handle(db):
    running = serve(db)
    yield running
    running.stop()


@pytest.fixture
def client(handle):
    with ServerClient.for_handle(handle) as c:
        yield c


def server_gauges(handle):
    series = parse_prometheus(handle.server.registry.render_prometheus())
    return {
        "cursors": series.get(("repro_server_open_cursors", ()), 0),
        "connections": series.get(("repro_server_connections_open", ()), 0),
    }


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------

class TestStatements:
    def test_parameterized_retrieve(self, client):
        rows = client.rows(
            "range of t is T retrieve (t.B) where t.A = $a", {"a": 12}
        )
        assert rows == [{"t_B": 12 % 7}]

    def test_write_returns_rows_affected_and_seq(self, client):
        first = client.execute("append to T (A = 9001, B = 1)")
        second = client.execute("append to T (A = 9002, B = 2)")
        assert first["rows_affected"] == 1
        assert second["seq"] == first["seq"] + 1

    def test_null_param_crosses_as_ni(self, client):
        client.execute("append to T (A = $a)", {"a": 9100})
        rows = client.rows(
            "range of t is T retrieve (t.A, t.B) where t.A = 9100"
        )
        # B was never bound: the wire shows JSON null for NI.
        assert rows == [{"t_A": 9100, "t_B": None}]

    def test_retrieve_into_is_a_write(self, client):
        result = client.execute(
            "range of t is T retrieve into COPY (t.A, t.B) where t.B = 0"
        )
        assert "seq" in result  # took the exclusive path
        assert any(t["name"] == "COPY" for t in client.schema()["tables"])

    def test_missing_statement_field(self, client):
        with pytest.raises(ServerError) as excinfo:
            client._checked("POST", "/statements", {"nope": 1})
        assert excinfo.value.status == 400


# ---------------------------------------------------------------------------
# Prepared handles
# ---------------------------------------------------------------------------

class TestPrepared:
    def test_prepare_and_execute(self, client):
        handle = client.prepare(
            "range of t is T retrieve (t.B) where t.A = $a"
        )
        assert handle.parameters == ("a",)
        assert handle.kind == "retrieve"
        assert handle.execute({"a": 3})["rows"] == [{"t_B": 3}]
        assert handle.execute({"a": 4})["rows"] == [{"t_B": 4}]

    def test_unknown_handle_404(self, client):
        with pytest.raises(ServerError) as excinfo:
            client.execute_prepared("ps-nope-1")
        assert excinfo.value.status == 404

    def test_handles_are_per_connection(self, handle, client):
        prepared = client.prepare("range of t is T retrieve (t.A)")
        with ServerClient.for_handle(handle) as other:
            with pytest.raises(ServerError) as excinfo:
                other.execute_prepared(prepared.id)
            assert excinfo.value.status == 404

    def test_prepared_survives_ddl_epoch_bump(self, client):
        prepared = client.prepare(
            "range of t is T retrieve (t.B) where t.A = $a"
        )
        client.execute("append to T (A = 7777, B = 5)")  # bump stats
        assert prepared.execute({"a": 7777})["rows"] == [{"t_B": 5}]


# ---------------------------------------------------------------------------
# Cursors
# ---------------------------------------------------------------------------

class TestCursors:
    def test_paged_drain_matches_full_retrieve(self, client):
        full = client.rows("range of t is T retrieve (t.A, t.B)")
        paged = []
        for page in client.iter_pages(
            "range of t is T retrieve (t.A, t.B)", max_rows=37
        ):
            paged.extend(page.rows)
        key = lambda row: (row["t_A"], row["t_B"])
        assert sorted(paged, key=key) == sorted(full, key=key)

    def test_first_page_before_full_drain(self, client):
        page = client.open_cursor(
            "range of t is T retrieve (t.A)", max_rows=10
        )
        assert len(page.rows) == 10
        assert not page.done and page.cursor
        client.close_cursor(page.cursor)

    def test_small_result_closes_inline(self, client):
        page = client.open_cursor(
            "range of t is T retrieve (t.A) where t.A = 1", max_rows=10
        )
        assert page.done and page.cursor is None

    def test_explicit_close_then_fetch_404(self, client):
        page = client.open_cursor(
            "range of t is T retrieve (t.A)", max_rows=5
        )
        closed = client.close_cursor(page.cursor)
        assert closed["rows_served"] == 5
        with pytest.raises(ServerError) as excinfo:
            client.fetch(page.cursor)
        assert excinfo.value.status == 404

    def test_stale_cursor_is_409_retriable(self, handle, db, client):
        # An index-nested-loop join probes the inner table's live index;
        # a write between pages makes the next fetch a retriable 409.
        db.table("T").create_index(["A"], name="t_a")
        dept = db.create_table("D", ["K", "REF"])
        dept.insert_many([(i, i) for i in range(50)])
        page = client.open_cursor(
            "range of d is D range of t is T "
            "retrieve (d.K, t.B) where d.REF = t.A",
            max_rows=2,
        )
        assert not page.done
        with ServerClient.for_handle(handle) as writer:
            writer.execute("append to T (A = 8888, B = 3)")
        with pytest.raises(ServerError) as excinfo:
            client.fetch(page.cursor)
        assert excinfo.value.status == 409
        assert excinfo.value.retriable
        assert excinfo.value.error_type == "StaleResultError"


# ---------------------------------------------------------------------------
# Transactions
# ---------------------------------------------------------------------------

class TestTransactions:
    def test_commit_keeps_rollback_undoes(self, client):
        client.begin()
        client.execute("append to T (A = 5001, B = 1)")
        client.commit()
        assert client.rows("range of t is T retrieve (t.A) where t.A = 5001")
        client.begin()
        client.execute("range of t is T delete t where t.A = 5001")
        client.rollback()
        assert client.rows("range of t is T retrieve (t.A) where t.A = 5001")

    def test_double_begin_conflicts(self, client):
        client.begin()
        with pytest.raises(ServerError) as excinfo:
            client.begin()
        assert excinfo.value.status == 409
        client.rollback()

    def test_commit_without_begin_conflicts(self, client):
        with pytest.raises(ServerError) as excinfo:
            client.commit()
        assert excinfo.value.status == 409

    def test_open_transaction_queues_other_writers(self, handle, client):
        client.begin()
        client.execute("append to T (A = 6001, B = 1)")
        outcome = {}

        def other_writer():
            with ServerClient.for_handle(handle) as other:
                outcome["seq"] = other.execute(
                    "append to T (A = 6002, B = 2)"
                )["seq"]
                outcome["done_at"] = time.monotonic()

        thread = threading.Thread(target=other_writer)
        thread.start()
        time.sleep(0.15)  # the other writer must be parked on the gate
        assert "seq" not in outcome
        committed_at = time.monotonic()
        client.commit()
        thread.join(timeout=5)
        assert outcome["done_at"] >= committed_at
        rows = client.rows(
            "range of t is T retrieve (t.A) where t.A = 6002"
        )
        assert rows == [{"t_A": 6002}]


# ---------------------------------------------------------------------------
# Error mapping and protocol robustness
# ---------------------------------------------------------------------------

class TestErrors:
    def test_status_taxonomy(self):
        from repro.core.errors import (
            ConstraintViolation,
            QuelParseError,
            SessionClosedError,
            WalError,
        )
        assert status_for(QuelParseError("x")) == (400, False)
        assert status_for(ConstraintViolation("x")) == (409, False)
        assert status_for(StaleResultError("x")) == (409, True)
        assert status_for(SessionClosedError("x")) == (410, False)
        assert status_for(WalError("x")) == (500, False)
        assert status_for(RuntimeError("x")) == (500, False)

    def test_parse_error_400(self, client):
        with pytest.raises(ServerError) as excinfo:
            client.execute("retrieve ((")
        assert excinfo.value.status == 400
        assert excinfo.value.error_type == "QuelParseError"

    def test_constraint_violation_409(self, db, client):
        # Key constraints come from the storage API, not QUEL DDL — build
        # the keyed table directly and violate it over the wire.
        from repro.constraints.keys import KeyConstraint

        db.create_table("KEYED", ["X", "Y"], constraints=[KeyConstraint(["X"])])
        client.execute("append to KEYED (X = 1, Y = 1)")
        with pytest.raises(ServerError) as excinfo:
            client.execute("append to KEYED (X = 1, Y = 2)")
        assert excinfo.value.status == 409
        assert not excinfo.value.retriable

    def test_unknown_endpoint_404(self, client):
        status, payload = client.request("GET", "/nope")
        assert status == 404

    def test_overload_503(self, db):
        running = ReproServer(db, max_in_flight=0).start_in_thread()
        try:
            with ServerClient.for_handle(running) as c:
                with pytest.raises(ServerError) as excinfo:
                    c.execute("range of t is T retrieve (t.A)")
                assert excinfo.value.status == 503
                assert excinfo.value.retriable
            series = parse_prometheus(
                running.server.registry.render_prometheus()
            )
            assert series[("repro_server_rejected_overload_total", ())] >= 1
        finally:
            running.stop()

    def test_garbage_request_line_gets_400(self, handle):
        with socket.create_connection((handle.host, handle.port), timeout=5) as s:
            s.sendall(b"NOT A REQUEST\r\n\r\n")
            response = s.recv(4096)
        assert b"400" in response.split(b"\r\n", 1)[0]

    def test_bad_json_body_400(self, handle):
        with socket.create_connection((handle.host, handle.port), timeout=5) as s:
            body = b"{not json"
            s.sendall(
                b"POST /statements HTTP/1.1\r\n"
                b"Content-Length: " + str(len(body)).encode() + b"\r\n"
                b"\r\n" + body
            )
            response = s.recv(65536)
        assert b" 400 " in response.split(b"\r\n", 1)[0]


# ---------------------------------------------------------------------------
# Torn connections
# ---------------------------------------------------------------------------

class TestTornConnections:
    def test_mid_cursor_disconnect_cleans_up(self, handle, db):
        client = ServerClient.for_handle(handle)
        page = client.open_cursor(
            "range of t is T retrieve (t.A)", max_rows=5
        )
        assert not page.done
        assert server_gauges(handle)["cursors"] == 1
        client.close()  # tear the socket with the cursor still open
        wait_until(lambda: server_gauges(handle)["cursors"] == 0)
        wait_until(lambda: server_gauges(handle)["connections"] == 0)

    def test_mid_transaction_disconnect_rolls_back_and_unpins(self, handle, db):
        client = ServerClient.for_handle(handle)
        client.begin()
        client.execute("append to T (A = 7101, B = 1)")
        client.close()  # vanish mid-group
        # The gate must unpin and the append must be rolled back; a
        # fresh writer would hang forever if the pin leaked.
        wait_until(lambda: server_gauges(handle)["connections"] == 0)
        with ServerClient.for_handle(handle) as fresh:
            fresh.execute("append to T (A = 7102, B = 2)")
            assert not fresh.rows(
                "range of t is T retrieve (t.A) where t.A = 7101"
            )
            assert fresh.rows(
                "range of t is T retrieve (t.A) where t.A = 7102"
            )


# ---------------------------------------------------------------------------
# Metrics and traces
# ---------------------------------------------------------------------------

class TestObservability:
    def test_metrics_round_trip_includes_server_families(self, client):
        client.execute("range of t is T retrieve (t.A) where t.A = 1")
        page = client.open_cursor("range of t is T retrieve (t.A)", max_rows=3)
        series = parse_prometheus(client.metrics())
        names = {name for name, _ in series}
        assert "repro_server_requests_total" in names
        assert "repro_server_request_seconds_bucket" in names
        assert "repro_server_request_seconds_count" in names
        assert "repro_server_in_flight_requests" in names
        assert "repro_server_open_cursors" in names
        assert "repro_server_connections_open" in names
        # The engine's own families render through the same scrape.
        assert "repro_statements_total" in names
        assert series[("repro_server_open_cursors", ())] == 1
        assert (
            series[
                (
                    "repro_server_requests_total",
                    (("endpoint", "/statements"), ("status", "200")),
                )
            ]
            >= 2
        )
        client.close_cursor(page.cursor)

    def test_traces_carry_client_and_request_tags(self, handle, client):
        client.execute("range of t is T retrieve (t.A) where t.A = 2")
        (connection, _writer), = handle.server._connections
        trace = connection.session.recent_traces()[-1]
        assert trace.tags["client"] == connection.id
        assert trace.tags["request"].startswith("r")


# ---------------------------------------------------------------------------
# The statement gate itself
# ---------------------------------------------------------------------------

class TestStatementGate:
    def test_readers_overlap_writers_exclude(self):
        import asyncio

        async def scenario():
            gate = StatementGate()
            log = []

            async def reader(name):
                async with gate.shared(name):
                    log.append(f"{name}-in")
                    await asyncio.sleep(0.02)
                    log.append(f"{name}-out")

            async def writer(name):
                async with gate.exclusive(name):
                    log.append(f"{name}-in")
                    await asyncio.sleep(0.01)
                    log.append(f"{name}-out")

            await asyncio.gather(reader("r1"), reader("r2"), writer("w"))
            return log

        log = __import__("asyncio").run(scenario())
        # Both readers entered before either left (they overlapped) …
        assert log.index("r2-in") < log.index("r1-out")
        # … and the writer's span overlaps no one.
        w_in, w_out = log.index("w-in"), log.index("w-out")
        assert w_out == w_in + 1

    def test_pinned_owner_passes_unpinned_wait(self):
        import asyncio

        async def scenario():
            gate = StatementGate()
            owner, other = object(), object()
            await gate.pin(owner)
            # The pinning owner's own statements pass straight through.
            async with gate.exclusive(owner):
                pass
            async with gate.shared(owner):
                pass
            # Another connection's writer parks until unpin.
            entered = asyncio.Event()

            async def blocked():
                async with gate.exclusive(other):
                    entered.set()

            task = asyncio.create_task(blocked())
            await asyncio.sleep(0.02)
            assert not entered.is_set()
            await gate.unpin(owner)
            await asyncio.wait_for(task, timeout=2)
            assert entered.is_set()

        __import__("asyncio").run(scenario())


# ---------------------------------------------------------------------------
# Concurrent clients ≡ a serial order (the seq stamps)
# ---------------------------------------------------------------------------

def run_mixed_workload(handle, schedules):
    """Run one client thread per schedule; collect every write with the
    ``seq`` the server stamped on it."""
    writes = []
    lock = threading.Lock()
    errors = []

    def client_thread(schedule, base):
        try:
            with ServerClient.for_handle(handle) as c:
                for step, op in enumerate(schedule):
                    key = base + step
                    if op == "append":
                        out = c.execute(
                            "append to W (A = $a, B = $b)",
                            {"a": key, "b": key % 5},
                        )
                        with lock:
                            writes.append((out["seq"], "append", key))
                    elif op == "delete":
                        out = c.execute(
                            "range of w is W delete w where w.A = $a",
                            {"a": key - 1},
                        )
                        with lock:
                            writes.append((out["seq"], "delete", key - 1))
                    else:
                        c.rows(
                            "range of w is W retrieve (w.A) where w.B = $b",
                            {"b": key % 5},
                        )
        except Exception as error:  # surface thread failures in the test
            errors.append(error)

    threads = [
        threading.Thread(target=client_thread, args=(schedule, 1000 * (i + 1)))
        for i, schedule in enumerate(schedules)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)
    assert not errors, errors
    return writes


def replay_serially(writes):
    """Apply the writes in seq order to a twin database; its final rows
    are the serial-equivalence oracle."""
    twin = Database("twin", metrics=MetricsRegistry())
    twin.create_table("W", ["A", "B"])
    session = repro.connect(twin)
    for _seq, op, key in sorted(writes):
        if op == "append":
            session.execute(
                "append to W (A = $a, B = $b)", {"a": key, "b": key % 5}
            )
        else:
            session.execute(
                "range of w is W delete w where w.A = $a", {"a": key}
            )
    return {tuple(sorted(row.items())) for row in twin.catalog.table("W").rows()}


class TestConcurrentClients:
    def test_seqs_are_unique_and_dense(self, db):
        running = serve(db)
        try:
            db.create_table("W", ["A", "B"])
            writes = run_mixed_workload(
                running, [["append"] * 10] * 4
            )
            seqs = sorted(seq for seq, _op, _key in writes)
            assert seqs == list(range(seqs[0], seqs[0] + len(seqs)))
        finally:
            running.stop()

    def test_mixed_workload_equals_serial_replay(self, db):
        running = serve(db)
        try:
            db.create_table("W", ["A", "B"])
            schedules = [
                ["append", "retrieve", "append", "delete", "retrieve", "append"],
                ["append", "append", "retrieve", "delete", "append"],
                ["retrieve", "append", "append", "retrieve", "delete"],
                ["append", "delete", "append", "retrieve", "append"],
            ]
            writes = run_mixed_workload(running, schedules)
            final = {
                tuple(sorted(row.items()))
                for row in db.catalog.table("W").rows()
            }
            assert final == replay_serially(writes)
        finally:
            running.stop()

    @settings(max_examples=5, deadline=None)
    @given(
        schedules=st.lists(
            st.lists(
                st.sampled_from(["append", "delete", "retrieve"]),
                min_size=1,
                max_size=6,
            ),
            min_size=2,
            max_size=3,
        )
    )
    def test_hypothesis_interleavings_replay_serially(self, schedules):
        database = Database("fuzz", metrics=MetricsRegistry())
        database.create_table("W", ["A", "B"])
        running = serve(database)
        try:
            writes = run_mixed_workload(running, schedules)
            final = {
                tuple(sorted(row.items()))
                for row in database.catalog.table("W").rows()
            }
            assert final == replay_serially(writes)
        finally:
            running.stop()


# ---------------------------------------------------------------------------
# HTTP layer units
# ---------------------------------------------------------------------------

class TestHttpLayer:
    def _parse(self, raw: bytes):
        import asyncio
        from repro.server.http import read_request

        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(raw)
            reader.feed_eof()
            return await read_request(reader)

        return __import__("asyncio").run(scenario())

    def test_request_round_trip(self):
        body = json.dumps({"statement": "x"}).encode()
        request = self._parse(
            b"POST /statements?x=1&y=two HTTP/1.1\r\n"
            b"Content-Type: application/json\r\n"
            b"Content-Length: " + str(len(body)).encode() + b"\r\n"
            b"\r\n" + body
        )
        assert request.method == "POST"
        assert request.path == "/statements"
        assert request.query == {"x": "1", "y": "two"}
        assert request.json() == {"statement": "x"}
        assert request.keep_alive

    def test_eof_between_requests_is_none(self):
        assert self._parse(b"") is None

    def test_truncated_body_is_protocol_error(self):
        with pytest.raises(ProtocolError):
            self._parse(
                b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort"
            )

    def test_header_flood_is_protocol_error(self):
        flood = b"".join(
            b"X-H%d: v\r\n" % i for i in range(100)
        )
        with pytest.raises(ProtocolError):
            self._parse(b"GET / HTTP/1.1\r\n" + flood + b"\r\n")
