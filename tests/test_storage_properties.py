"""Property tests for the bulk-mutation subsystem of the storage layer.

Two families of guarantees:

* **Index consistency** — after any random interleaving of ``insert`` /
  ``insert_many`` / ``delete`` / ``delete_many`` / ``delete_where`` /
  ``update`` / ``truncate`` / ``load``, the live :class:`DominanceIndex`
  and every :class:`HashIndex` are *identical* to a from-scratch rebuild
  over the stored rows — the incremental and bulk maintenance paths can
  never drift from the definitional state.
* **Statistics consistency** — the incrementally-maintained
  :class:`~repro.stats.TableStatistics` (row count, per-attribute
  distinct/null counters, signature histogram) equals an
  ``analyze()``-from-scratch recount after the same interleavings; the
  incremental path can never drift from the definitional counts.
* **Atomicity** — a constraint failure anywhere in a batch leaves the
  table (rows, dominance index, hash indexes) exactly as it was.  The
  seed ``insert_many`` was a bare loop of ``insert``, so a mid-batch key
  violation used to leave the earlier rows behind; these are the
  regression tests pinning the all-or-nothing contract, including the
  sequential fallback used for constraints that predate the batch API.

All tests run derandomized (seeded) so CI failures reproduce exactly.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.constraints.keys import KeyConstraint, NotNullConstraint
from repro.constraints.referential import ForeignKeyConstraint
from repro.core.engine import DominanceIndex
from repro.core.errors import (
    ConstraintViolation,
    KeyViolation,
    ReferentialViolation,
    StorageError,
)
from repro.core.tuples import XTuple
from repro.stats import TableStatistics
from repro.storage.database import Database
from repro.storage.index import HashIndex
from repro.storage.table import Table

ATTRIBUTES = ("A", "B", "C")
VALUES = st.one_of(st.none(), st.integers(min_value=0, max_value=2))
ROWS = st.tuples(VALUES, VALUES, VALUES)

OPERATIONS = st.one_of(
    st.tuples(st.just("insert"), ROWS),
    st.tuples(st.just("insert_many"), st.lists(ROWS, max_size=5)),
    st.tuples(st.just("delete"), ROWS),
    st.tuples(st.just("delete_many"), st.lists(ROWS, max_size=3)),
    st.tuples(st.just("delete_where"), st.integers(min_value=0, max_value=2)),
    st.tuples(st.just("update"), ROWS, ROWS),
    st.tuples(st.just("update_many"), st.lists(st.tuples(ROWS, ROWS), max_size=3)),
    st.tuples(st.just("truncate")),
    st.tuples(st.just("load"), st.lists(ROWS, max_size=5)),
)


def apply_operations(table: Table, operations) -> None:
    for operation in operations:
        kind = operation[0]
        if kind == "insert":
            table.insert(operation[1])
        elif kind == "insert_many":
            table.insert_many(operation[1])
        elif kind == "delete":
            table.delete(operation[1])
        elif kind == "delete_many":
            table.delete_many(operation[1])
        elif kind == "delete_where":
            value = operation[1]
            table.delete_where(lambda row: row["A"] == value)
        elif kind == "update":
            try:
                table.update(operation[1], operation[2])
            except StorageError:
                pass  # the old row was not present; the table must be unchanged
        elif kind == "update_many":
            try:
                table.update_many(operation[1])
            except StorageError:
                pass  # some old row was not present; the table must be unchanged
        elif kind == "truncate":
            table.truncate()
        elif kind == "load":
            table.load(operation[1])


def assert_indexes_match_rebuild(table: Table) -> None:
    rows = set(table.rows())
    rebuilt_dominance = DominanceIndex(rows)
    assert len(table.dominance) == len(rebuilt_dominance) == len(rows)
    assert table.dominance._partitions == rebuilt_dominance._partitions
    for index in table.indexes.values():
        rebuilt = HashIndex(index.attributes)
        rebuilt.rebuild(rows)
        assert index._buckets == rebuilt._buckets
        assert index._unindexed == rebuilt._unindexed
    # Incremental statistics ≡ a full analyze() over the stored rows.
    assert table.statistics == TableStatistics(rows)


class TestMutationInterleavings:
    @settings(max_examples=120, deadline=None, derandomize=True)
    @given(st.lists(OPERATIONS, max_size=12))
    def test_dominance_and_hash_indexes_match_from_scratch_rebuild(self, operations):
        table = Table(ATTRIBUTES, name="T")
        table.create_index(["A"])
        table.create_index(["A", "B"])
        apply_operations(table, operations)
        assert_indexes_match_rebuild(table)

    @settings(max_examples=80, deadline=None, derandomize=True)
    @given(st.lists(ROWS, max_size=10), st.lists(ROWS, max_size=10))
    def test_bulk_mutations_equal_sequential_mutations(self, first, second):
        """insert_many/delete_many land on exactly the rows a loop of
        insert/delete would (same (4.8) subsumption semantics)."""
        bulk = Table(ATTRIBUTES, name="B")
        loop = Table(ATTRIBUTES, name="L")
        bulk.insert_many(first)
        for row in first:
            loop.insert(row)
        assert set(bulk.rows()) == set(loop.rows())
        bulk.delete_many(second)
        for row in second:
            loop.delete(row)
        assert set(bulk.rows()) == set(loop.rows())
        assert_indexes_match_rebuild(bulk)

    @settings(max_examples=80, deadline=None, derandomize=True)
    @given(st.lists(
        st.lists(
            st.lists(
                st.tuples(st.sampled_from(ATTRIBUTES), st.integers(0, 2)),
                max_size=3,
            ).map(dict),
            max_size=4,
        ),
        max_size=5,
    ))
    def test_engine_bulk_add_discard_equal_sequential(self, batches):
        """DominanceIndex.bulk_add/bulk_discard ≡ loops of add/discard."""
        bulk_index = DominanceIndex()
        loop_index = DominanceIndex()
        seen = []
        for batch in batches:
            rows = [XTuple(assignment) for assignment in batch]
            seen.extend(rows)
            bulk_index.bulk_add(rows)
            for row in rows:
                loop_index.add(row)
        assert bulk_index._partitions == loop_index._partitions
        assert len(bulk_index) == len(loop_index)
        victims = seen[::2]
        probed = bulk_index.bulk_probe_dominated(victims)
        expected_probe = set()
        for victim in victims:
            expected_probe.update(loop_index.probe_dominated(victim))
        assert probed == expected_probe
        removed = bulk_index.bulk_discard(victims)
        expected = sum(1 for _ in filter(None, [loop_index.discard(v) for v in dict.fromkeys(victims)]))
        assert removed == expected
        assert bulk_index._partitions == loop_index._partitions
        assert len(bulk_index) == len(loop_index)


class TestStatisticsProperties:
    @settings(max_examples=120, deadline=None, derandomize=True)
    @given(st.lists(OPERATIONS, max_size=12))
    def test_incremental_statistics_match_full_analyze(self, operations):
        """After any mutation interleaving the live counters — row count,
        per-attribute value counters, null counts, signature histogram —
        equal a from-scratch analyze() of the stored rows."""
        table = Table(ATTRIBUTES, name="T")
        apply_operations(table, operations)
        fresh = TableStatistics(set(table.rows()))
        assert table.statistics == fresh
        for attribute in ATTRIBUTES:
            assert table.statistics.distinct_count(attribute) == fresh.distinct_count(attribute)
            assert table.statistics.null_count(attribute) == fresh.null_count(attribute)
        # analyze() is a no-op on the counters, and resets staleness.
        table.analyze()
        assert table.statistics == fresh
        assert table.statistics.mutations_since_analyze == 0

    @settings(max_examples=60, deadline=None, derandomize=True)
    @given(st.lists(ROWS, max_size=8), st.lists(ROWS, max_size=8))
    def test_failed_batches_leave_statistics_untouched(self, first, second):
        """Atomicity extends to the statistics: a mid-batch key violation
        must not leak partial counts."""
        table = Table(
            ATTRIBUTES, constraints=[KeyConstraint(["A"]), NotNullConstraint(["A"])], name="T"
        )
        try:
            table.insert_many(first)
        except ConstraintViolation:
            pass
        before = TableStatistics(set(table.rows()))
        assert table.statistics == before
        try:
            table.insert_many(second)
        except ConstraintViolation:
            assert table.statistics == before
        else:
            assert table.statistics == TableStatistics(set(table.rows()))


class TestInsertManyAtomicity:
    @pytest.fixture
    def table(self) -> Table:
        table = Table(
            ["E#", "NAME", "TEL#"],
            constraints=[KeyConstraint(["E#"]), NotNullConstraint(["NAME"])],
            name="EMP",
        )
        table.create_index(["E#"])
        table.insert((1, "ann", None))
        return table

    def snapshot(self, table: Table):
        return (
            set(table.rows()),
            dict(table.dominance._partitions),
            {name: (dict(ix._buckets), set(ix._unindexed)) for name, ix in table.indexes.items()},
        )

    def test_mid_batch_key_violation_inserts_nothing(self, table):
        before = self.snapshot(table)
        with pytest.raises(KeyViolation):
            # The seed loop would have left (2, bob) and (3, cat) behind:
            # the offending duplicate comes *after* two valid rows.
            table.insert_many([(2, "bob", 5), (3, "cat", 6), (2, "dup", 7)])
        assert self.snapshot(table) == before

    def test_conflict_with_existing_row_inserts_nothing(self, table):
        before = self.snapshot(table)
        with pytest.raises(KeyViolation):
            table.insert_many([(9, "new", 1), (1, "clash", 2)])
        assert self.snapshot(table) == before

    def test_reinserting_identical_rows_is_permitted(self, table):
        table.insert_many([(1, "ann", None), (1, "ann", None), (2, "bob", 5)])
        assert len(table) == 2

    def test_not_null_violation_inserts_nothing(self, table):
        before = self.snapshot(table)
        with pytest.raises(ConstraintViolation):
            table.insert_many([(2, "bob", 5), (3, None, 6)])
        assert self.snapshot(table) == before

    def test_sequential_fallback_is_atomic_too(self):
        """A constraint offering only check_insert forces the sequential
        path; a mid-batch failure must still roll back wholesale."""

        class LegacyConstraint:
            def check_insert(self, relation, row):
                if row["A"] == 13:
                    raise ConstraintViolation("13 is right out")

        table = Table(["A"], constraints=[LegacyConstraint()], name="L")
        table.create_index(["A"])
        table.insert((1,))
        with pytest.raises(ConstraintViolation):
            table.insert_many([(2,), (3,), (13,), (4,)])
        assert {row["A"] for row in table.rows()} == {1}
        assert_indexes_match_rebuild(table)

    def test_successful_batch_lands_in_every_index(self, table):
        table.insert_many([(2, "bob", 5), (3, "cat", None)])
        assert len(table) == 3
        assert table.x_contains({"E#": 3})
        assert_indexes_match_rebuild(table)

    def test_load_checks_but_replaces(self):
        table = Table(["E#", "NAME"], constraints=[KeyConstraint(["E#"])], name="EMP")
        table.insert((1, "old"))
        table.load([(2, "new"), (3, "newer")])
        assert {row["E#"] for row in table.rows()} == {2, 3}
        with pytest.raises(KeyViolation):
            table.load([(5, "x"), (5, "y")])
        # the failed load left the previous contents in place
        assert {row["E#"] for row in table.rows()} == {2, 3}
        assert_indexes_match_rebuild(table)


class TestUpdateMany:
    """``update`` / ``update_many`` ride the bulk entry points: one batch
    coercion, bulk (4.8) delete, atomic bulk insert, and the post-state
    restore discipline — on failure the *whole* removed closure comes
    back, not just the named rows (the old hand-rolled update restored
    only the named row and stranded its dominated companions)."""

    def make_table(self) -> Table:
        table = Table(
            ["E#", "NAME", "TEL#"],
            constraints=[KeyConstraint(["E#"])],
            name="EMP",
        )
        table.create_index(["E#"])
        table.insert_many([(1, "ann", 5), (2, "bob", 6), (3, "cat", 7)])
        return table

    def test_update_many_is_delete_closure_then_atomic_insert(self):
        table = self.make_table()
        twin = self.make_table()
        inserted = table.update_many([
            ((1, "ann", 5), (1, "ann", 9)),
            ((2, "bob", 6), (4, "dan", 6)),
        ])
        assert [row["E#"] for row in inserted] == [1, 4]
        twin.delete_many([(1, "ann", 5), (2, "bob", 6)])
        twin.insert_many([(1, "ann", 9), (4, "dan", 6)])
        assert set(table.rows()) == set(twin.rows())
        assert_indexes_match_rebuild(table)

    def test_missing_old_row_changes_nothing(self):
        table = self.make_table()
        before = set(table.rows())
        with pytest.raises(StorageError):
            table.update_many([
                ((1, "ann", 5), (1, "ann", 9)),
                ((9, "ghost", 0), (9, "ghost", 1)),
            ])
        assert set(table.rows()) == before
        assert_indexes_match_rebuild(table)

    def test_mid_batch_violation_restores_everything(self):
        table = self.make_table()
        before = set(table.rows())
        with pytest.raises(KeyViolation):
            table.update_many([
                ((1, "ann", 5), (1, "ann", 9)),
                ((2, "bob", 6), (3, "clash", 0)),  # E# 3 already taken
            ])
        assert set(table.rows()) == before
        assert_indexes_match_rebuild(table)

    def test_failed_update_restores_the_dominated_closure(self):
        """The regression the refactor fixes: deleting the old row also
        removes every row it subsumes ((4.8)); a failed insert must bring
        the *whole* closure back, not just the named row."""
        table = Table(
            ["E#", "NAME"],
            constraints=[NotNullConstraint(["NAME"])],
            name="EMP",
        )
        table.create_index(["E#"])
        table.insert((1, "ann"))
        table.relation.add(XTuple({"E#": 1}))  # dominated by (1, 'ann')
        table.reset_rows(set(table.relation.tuples()))
        before = set(table.rows())
        assert XTuple({"E#": 1}) in before  # the closure member is stored
        with pytest.raises(ConstraintViolation):
            table.update((1, "ann"), (2, None))  # NAME may not be null
        assert set(table.rows()) == before
        assert table.x_contains({"E#": 1})
        assert_indexes_match_rebuild(table)

    def test_database_update_many_enforces_foreign_keys_post_state(self):
        """Modification = deletion followed by addition, so both FK
        directions are re-checked on the post state (exactly the REPLACE
        discipline), with wholesale restore on violation."""
        database = Database("hr")
        database.create_table("DEPT", ["DNAME"], constraints=[KeyConstraint(["DNAME"])])
        database.create_table("EMP", ["E#", "DNAME"], constraints=[KeyConstraint(["E#"])])
        database.add_foreign_key("EMP", ForeignKeyConstraint(["DNAME"], "DEPT", ["DNAME"]))
        database.insert_many("DEPT", [("eng",), ("ops",)])
        database.insert_many("EMP", [(1, "eng"), (2, "eng")])
        before = set(database.table("EMP").rows())
        # Outgoing: a new row referencing a missing key rolls the batch back.
        with pytest.raises(ReferentialViolation):
            database.update_many("EMP", [
                ((1, "eng"), (1, "eng")),
                ((2, "eng"), (2, "nowhere")),
            ])
        assert set(database.table("EMP").rows()) == before
        # Referencing: replacing a referenced key out from under its
        # referrers restricts instead of silently orphaning them.
        depts = set(database.table("DEPT").rows())
        with pytest.raises(ReferentialViolation):
            database.update("DEPT", ("eng",), ("games",))
        assert set(database.table("DEPT").rows()) == depts
        # Unreferenced keys may change; re-satisfying keys are fine too.
        database.update("DEPT", ("ops",), ("it",))
        updated = database.update_many("EMP", [((2, "eng"), (2, "eng"))])
        assert [row["E#"] for row in updated] == [2]


class TestDatabaseBulkPaths:
    @pytest.fixture
    def database(self) -> Database:
        database = Database("hr")
        database.create_table("DEPT", ["DNAME", "HEAD"], constraints=[KeyConstraint(["DNAME"])])
        database.create_table("EMP", ["E#", "NAME", "DNAME"], constraints=[KeyConstraint(["E#"])])
        database.add_foreign_key("EMP", ForeignKeyConstraint(["DNAME"], "DEPT", ["DNAME"]))
        database.insert_many("DEPT", [("eng", 1), ("ops", 2)])
        return database

    def test_fk_violation_mid_batch_inserts_nothing(self, database):
        before = set(database["EMP"].tuples())
        with pytest.raises(ReferentialViolation):
            database.insert_many("EMP", [(1, "ann", "eng"), (2, "bob", "legal")])
        assert set(database["EMP"].tuples()) == before

    def test_self_referencing_fk_sees_earlier_batch_rows(self):
        database = Database("mgmt")
        database.create_table("EMP", ["E#", "MGR#"], constraints=[KeyConstraint(["E#"])])
        database.add_foreign_key("EMP", ForeignKeyConstraint(["MGR#"], "EMP", ["E#"]))
        # 2 references 1, which is earlier in the same batch — the
        # sequential loop accepted this, so the bulk path must too.
        database.insert_many("EMP", [(1, None), (2, 1)])
        assert len(database["EMP"]) == 2
        with pytest.raises(ReferentialViolation):
            # 3 references 4, which only appears later: the sequential
            # loop rejected this ordering, so the bulk path must too.
            database.insert_many("EMP", [(3, 4), (4, None)])
        assert len(database["EMP"]) == 2

    def test_delete_many_takes_row_and_its_referrers_together(self):
        """A batch may delete a row together with everything referencing
        it: only references that *survive* the batch restrict the delete
        (the deferred reading — a sequential loop would need the lucky
        ordering)."""
        database = Database("mgmt")
        database.create_table("EMP", ["E#", "MGR#"], constraints=[KeyConstraint(["E#"])])
        database.add_foreign_key("EMP", ForeignKeyConstraint(["MGR#"], "EMP", ["E#"]))
        database.insert_many("EMP", [(1, None), (2, 1), (3, None)])
        with pytest.raises(ReferentialViolation):
            database.delete_many("EMP", [(1, None)])  # (2, 1) survives → blocked
        assert len(database["EMP"]) == 3
        assert database.delete_many("EMP", [(2, 1), (1, None)]) == 2
        assert {row["E#"] for row in database["EMP"].tuples()} == {3}

    def test_delete_many_respects_restrict_semantics(self, database):
        database.insert_many("EMP", [(1, "ann", "eng")])
        with pytest.raises(ReferentialViolation):
            database.delete_many("DEPT", [("eng", 1)])
        assert len(database["DEPT"]) == 2
        assert database.delete_many("DEPT", [("ops", 2)]) == 1

    def test_snapshot_restore_round_trip_keeps_indexes_fresh(self, database):
        table = database.table("EMP")
        table.create_index(["DNAME"])
        database.insert_many("EMP", [(1, "ann", "eng"), (2, "bob", "ops")])
        snapshot = database.snapshot()
        database.insert_many("EMP", [(3, "cat", "eng")])
        database.restore(snapshot)
        assert len(database["EMP"]) == 2
        assert_indexes_match_rebuild(table)
