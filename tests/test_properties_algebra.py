"""Property-based tests for the generalised algebra operators.

The key invariants exercised here:

* division agrees with its quantifier reading (a brute-force check over
  candidates and divisor rows) and with the image-set formulation;
* the union-join never loses information from either operand;
* join rows are exactly the joinable, X-agreeing pairs;
* products/selections/projections commute the way classical algebra
  promises, information-wise.
"""

from hypothesis import assume, given, settings, strategies as st

from repro import Relation, XRelation, XTuple
from repro.core.algebra import (
    divide,
    divide_by_images,
    image_set,
    join_on,
    project,
    select_constant,
    union_join,
)


SUPPLIERS = ["s1", "s2", "s3"]
PARTS = ["p1", "p2", "p3"]


@st.composite
def ps_relations(draw):
    rows = draw(st.lists(
        st.tuples(
            st.sampled_from(SUPPLIERS),
            st.one_of(st.none(), st.sampled_from(PARTS)),
        ),
        max_size=10,
    ))
    return Relation.from_rows(["S", "P"], rows, name="PS")


@st.composite
def divisors(draw):
    parts = draw(st.lists(st.sampled_from(PARTS), max_size=3, unique=True))
    return Relation.from_rows(["P"], [(p,) for p in parts], name="D") if parts else Relation.empty(["P"], name="D")


class TestDivisionProperties:
    @given(ps_relations(), divisors())
    @settings(max_examples=60, deadline=None)
    def test_division_matches_quantifier_reading(self, ps, divisor):
        quotient = divide(ps, divisor, ["S"])
        divisor_parts = [t["P"] for t in divisor.tuples() if t["P"] is not None and len(t)]
        candidates = {t["S"] for t in ps.tuples() if t.is_total_on(["S"])}
        expected = {
            s for s in candidates
            if all(
                any(r["S"] == s and r["P"] == part for r in ps.tuples())
                for part in divisor_parts
            )
        }
        assert {t["S"] for t in quotient.rows()} == expected

    @given(ps_relations(), divisors())
    @settings(max_examples=60, deadline=None)
    def test_division_formulations_agree(self, ps, divisor):
        assert divide(ps, divisor, ["S"]) == divide_by_images(ps, divisor, ["S"])

    @given(ps_relations())
    @settings(max_examples=40, deadline=None)
    def test_division_by_own_projection_contains_every_total_supplier(self, ps):
        """Dividing by a single supplier's parts must at least return that supplier."""
        assume(any(t.is_total_on(["S", "P"]) for t in ps.tuples()))
        supplier = next(t["S"] for t in ps.tuples() if t.is_total_on(["S", "P"]))
        divisor = project(select_constant(ps, "S", "=", supplier), ["P"])
        quotient = divide(ps, divisor, ["S"])
        assert XTuple(S=supplier) in quotient


@st.composite
def joinable_pairs(draw):
    left_rows = draw(st.lists(
        st.tuples(st.integers(0, 3), st.one_of(st.none(), st.sampled_from(["k1", "k2", "k3"]))),
        max_size=6,
    ))
    right_rows = draw(st.lists(
        st.tuples(st.one_of(st.none(), st.sampled_from(["k1", "k2", "k3"])), st.integers(0, 3)),
        max_size=6,
    ))
    left = Relation.from_rows(["A", "K"], left_rows, name="L")
    right = Relation.from_rows(["K", "B"], right_rows, name="R")
    return left, right


class TestJoinProperties:
    @given(joinable_pairs())
    @settings(max_examples=60, deadline=None)
    def test_join_rows_are_exactly_matching_pairs(self, pair):
        left, right = pair
        joined = join_on(left, right, ["K"])
        expected = set()
        for l in left.tuples():
            if not l.is_total_on(["K"]):
                continue
            for r in right.tuples():
                if r.is_total_on(["K"]) and r["K"] == l["K"]:
                    expected.add(l.join(r))
        for row in expected:
            assert joined.x_contains(row)
        for row in joined.rows():
            assert any(candidate.more_informative_than(row) for candidate in expected)

    @given(joinable_pairs())
    @settings(max_examples=60, deadline=None)
    def test_union_join_preserves_both_operands(self, pair):
        left, right = pair
        outer = union_join(left, right, ["K"])
        assert outer.contains(XRelation(left))
        assert outer.contains(XRelation(right))

    @given(joinable_pairs())
    @settings(max_examples=60, deadline=None)
    def test_union_join_contains_inner_join(self, pair):
        left, right = pair
        assert union_join(left, right, ["K"]).contains(join_on(left, right, ["K"]))


class TestImageProperties:
    @given(ps_relations(), st.sampled_from(SUPPLIERS))
    @settings(max_examples=60, deadline=None)
    def test_image_collects_exactly_the_suppliers_parts(self, ps, supplier):
        image = image_set(ps, {"S": supplier}, ["S"], ["P"])
        expected = {t["P"] for t in ps.tuples() if t["S"] == supplier and t.is_total_on(["P"])}
        assert {t["P"] for t in image.rows()} == expected

    @given(ps_relations(), st.sampled_from(SUPPLIERS))
    @settings(max_examples=40, deadline=None)
    def test_image_equals_select_then_project(self, ps, supplier):
        image = image_set(ps, {"S": supplier}, ["S"], ["P"])
        alternative = project(select_constant(ps, "S", "=", supplier), ["P"])
        assert image == alternative
