"""The Session API: prepared statements, plan caching, transactions.

Pins the tentpole invariants of the unified client surface:

* ``repro.connect`` sessions run every statement through the cost-based
  planner;
* prepared plans are cached by normalized AST and re-used across calls
  (observable through ``PreparedStatement.compile_count``);
* the cache is stamped with the catalog/index/stats epoch — after
  ``create_index`` / ``drop_index`` / ``analyze`` the cached plan
  transparently re-plans and its explain output reflects the new
  physical choice;
* ``transaction()`` rollback leaves the database snapshot-equal to its
  pre-transaction state under hypothesis-generated statement groups;
* the prepared fast path agrees with the Section 5 tuple oracle on
  arbitrary single-range conjunctive queries (with and without indexes).
"""

import pytest
from hypothesis import given, settings, strategies as st

import repro
from repro.core.errors import QuelSemanticError, StaleResultError, StorageError
from repro.core.tuples import XTuple
from repro.quel import run_query
from repro.storage import Database


@pytest.fixture
def db():
    database = Database("api")
    emp = database.create_table("EMP", ["E#", "NAME", "SAL"])
    emp.insert_many([
        (1, "SMITH", 10),
        (2, "JONES", 20),
        (3, "BROWN", None),
        (4, "GREEN", 20),
    ])
    return database


@pytest.fixture
def session(db):
    return repro.connect(db)


class TestConnect:
    def test_connect_wraps_database(self, db):
        session = repro.connect(db)
        assert session.database is db

    def test_connect_creates_fresh_database(self):
        session = repro.connect(name="scratch")
        assert session.database.name == "scratch"
        assert len(session.database) == 0

    def test_connect_rejects_non_database(self):
        with pytest.raises(TypeError):
            repro.connect({"R": None})


class TestResultSet:
    def test_retrieve_result_shape(self, session):
        result = session.execute(
            'range of e is EMP retrieve (e.NAME, e.SAL) where e.SAL = 20'
        )
        assert result.columns == ("e_NAME", "e_SAL")
        assert len(result) == 2
        assert {row["e_NAME"] for row in result} == {"JONES", "GREEN"}
        assert result.rows_affected == 0
        assert result.first()["e_NAME"] == "GREEN"
        assert result.to_relation() is not None
        assert "JONES" in result.to_table()
        assert result.explain().startswith("1.")

    def test_scalar(self, session):
        value = session.execute(
            'range of e is EMP retrieve (e.NAME) where e.E# = 1'
        ).scalar()
        assert value == "SMITH"
        with pytest.raises(ValueError):
            session.execute('range of e is EMP retrieve (e.NAME)').scalar()

    def test_mutation_result_shape(self, session):
        result = session.execute('append to EMP (E# = 9)')
        assert result.rows_affected == 1
        assert result.columns == () and len(result) == 0
        assert result.to_relation() is None
        assert "1 row(s) affected" in result.to_table()


class TestPreparedStatements:
    def test_prepare_returns_cached_statement(self, session):
        first = session.prepare('range of e is EMP retrieve (e.NAME)')
        second = session.prepare('range of e is EMP retrieve (e.NAME)')
        assert first is second
        assert session.cached_statements == 1

    def test_cache_keyed_by_normalized_ast(self, session):
        spaced = session.prepare(
            'range of e is EMP  retrieve (e.NAME)  -- comment'
        )
        compact = session.prepare('range of e is EMP retrieve (e.NAME)')
        assert spaced is compact

    def test_different_literals_are_different_plans(self, session):
        one = session.prepare('range of e is EMP retrieve (e.NAME) where e.E# = 1')
        two = session.prepare('range of e is EMP retrieve (e.NAME) where e.E# = 2')
        assert one is not two

    def test_parameters_share_one_template(self, session):
        a = session.prepare('range of e is EMP retrieve (e.NAME) where e.E# = $k')
        b = session.prepare('range of e is EMP retrieve (e.NAME) where e.E# = $k')
        assert a is b
        assert a.parameters == ("k",)

    def test_compile_once_across_executions(self, session):
        prepared = session.prepare(
            'range of e is EMP retrieve (e.NAME) where e.E# = $k'
        )
        for k in (1, 2, 3, 1, 2):
            prepared.execute({"k": k})
        assert prepared.compile_count == 1

    def test_lru_eviction(self, db):
        session = repro.connect(db, cache_size=2)
        session.prepare('range of e is EMP retrieve (e.NAME) where e.E# = 1')
        session.prepare('range of e is EMP retrieve (e.NAME) where e.E# = 2')
        session.prepare('range of e is EMP retrieve (e.NAME) where e.E# = 3')
        assert session.cached_statements == 2

    def test_missing_parameter_raises(self, session):
        prepared = session.prepare(
            'range of e is EMP retrieve (e.NAME) where e.E# = $k'
        )
        with pytest.raises(QuelSemanticError):
            prepared.execute()

    def test_explain_without_params_works_on_every_path(self, session, db):
        """explain() must not require bound parameters, whichever internal
        strategy (fast path or generic plan) the statement compiled to."""
        fast = session.explain(
            'range of e is EMP retrieve (e.NAME) where e.E# = $k'
        )
        assert "scan" in fast or "index" in fast
        db.create_table("DEPT2", ["D#", "MGR#"])
        generic = session.explain(
            'range of d is DEPT2 range of e is EMP '
            'retrieve (d.D#) where d.MGR# = e.E# and e.SAL = $s'
        )
        assert "join" in generic or "product" in generic

    def test_executemany(self, session, db):
        total = session.executemany(
            'append to EMP (E# = $e, NAME = $n)',
            [{"e": 10, "n": "A"}, {"e": 11, "n": "B"}],
        )
        assert total == 2
        assert XTuple({"E#": 11, "NAME": "B"}) in db["EMP"].tuples()


class TestPlanCacheInvalidation:
    """The acceptance-criterion pin: DDL/index/ANALYZE changes re-plan."""

    def test_create_index_replans_and_switches_to_index(self, session, db):
        prepared = session.prepare(
            'range of e is EMP retrieve (e.NAME) where e.E# = $k'
        )
        before = {r["e_NAME"] for r in prepared.execute({"k": 2})}
        assert prepared.compile_count == 1
        assert "index" not in prepared.explain()
        assert "scan" in prepared.explain()

        db.table("EMP").create_index(["E#"], name="emp_e")
        after = {r["e_NAME"] for r in prepared.execute({"k": 2})}
        assert prepared.compile_count == 2
        assert "index select" in prepared.explain()
        assert "emp_e" in prepared.explain()
        assert before == after == {"JONES"}

    def test_drop_index_replans_back_to_scan(self, session, db):
        db.table("EMP").create_index(["E#"], name="emp_e")
        prepared = session.prepare(
            'range of e is EMP retrieve (e.NAME) where e.E# = $k'
        )
        prepared.execute({"k": 1})
        assert "emp_e" in prepared.explain()
        db.table("EMP").drop_index("emp_e")
        result = prepared.execute({"k": 1})
        assert prepared.compile_count == 2
        assert "scan" in prepared.explain()
        assert {r["e_NAME"] for r in result} == {"SMITH"}

    def test_analyze_bumps_epoch_and_replans(self, session, db):
        prepared = session.prepare('range of e is EMP retrieve (e.NAME)')
        prepared.execute()
        epoch = db.epoch
        db.analyze()
        assert db.epoch > epoch
        prepared.execute()
        assert prepared.compile_count == 2

    def test_join_plan_switches_to_index_nested_loop(self, db):
        """The invalidation also covers the generic plan path: after an
        index appears on the join key, the same prepared join probes it."""
        dept = db.create_table("DEPT", ["D#", "MGR#"])
        dept.insert_many([(1, 1), (2, 2)])
        session = repro.connect(db)
        text = (
            'range of d is DEPT range of e is EMP '
            'retrieve (d.D#, e.NAME) where d.MGR# = e.E#'
        )
        prepared = session.prepare(text)
        before = prepared.execute()
        assert "index-nested-loop" not in before.explain()
        db.table("EMP").create_index(["E#"], name="emp_e")
        after = prepared.execute()
        assert "index-nested-loop" in after.explain()
        assert after.to_relation() == before.to_relation()

    def test_epoch_monotone_across_drop_table(self, db):
        db.create_table("TMP", ["A"]).create_index(["A"])
        epoch = db.epoch
        db.drop_table("TMP")
        assert db.epoch > epoch


class TestStaleResults:
    """Satellite bugfix: an undrained retrieve whose plan probes a live
    index (index-nested-loop join) fails loudly once the probed table
    mutates, instead of silently streaming post-statement rows."""

    @pytest.fixture
    def joined(self, db):
        db.table("EMP").create_index(["E#"], name="emp_e")
        dept = db.create_table("DEPT", ["D#", "MGR#"])
        dept.insert_many([(1, 1), (2, 2)])
        session = repro.connect(db)
        text = (
            'range of d is DEPT range of e is EMP '
            'retrieve (d.D#, e.NAME) where d.MGR# = e.E#'
        )
        return db, session, text

    def test_undrained_result_raises_after_mutation(self, joined):
        db, session, text = joined
        result = session.execute(text)
        assert "index-nested-loop" in result.explain()
        db.insert("EMP", (9, "NINE", 5))
        with pytest.raises(StaleResultError):
            list(result)

    def test_undrained_result_raises_after_index_ddl(self, joined):
        db, session, text = joined
        result = session.execute(text)
        db.table("EMP").drop_index("emp_e")
        with pytest.raises(StaleResultError):
            result.rows

    def test_stale_error_latches(self, joined):
        db, session, text = joined
        result = session.execute(text)
        db.insert("EMP", (9, "NINE", 5))
        with pytest.raises(StaleResultError):
            result.rows
        # A partial prefix must never be passed off as the answer later.
        with pytest.raises(StaleResultError):
            len(result)

    def test_drained_result_survives_mutation(self, joined):
        db, session, text = joined
        result = session.execute(text)
        before = result.rows  # drains the pipeline
        db.insert("EMP", (9, "NINE", 5))
        db.table("EMP").drop_index("emp_e")
        assert result.rows == before
        assert list(result) == before

    def test_hash_join_needs_no_guard(self, db):
        # Without an index the planner builds a hash join, which
        # snapshots both inputs at execute time: late consumption still
        # sees the statement-time answer.
        dept = db.create_table("DEPT", ["D#", "MGR#"])
        dept.insert_many([(1, 1), (2, 2)])
        session = repro.connect(db)
        result = session.execute(
            'range of d is DEPT range of e is EMP '
            'retrieve (d.D#, e.NAME) where d.MGR# = e.E#'
        )
        assert "index-nested-loop" not in result.explain()
        db.insert("EMP", (9, "NINE", 5))
        assert {r["e_NAME"] for r in result.rows} == {"SMITH", "JONES"}


class TestDefaults:
    def test_run_query_defaults_to_cost_based_plan(self, db):
        result = run_query('range of e is EMP retrieve (e.NAME)', db)
        assert result.strategy == "plan"
        assert result.plan is not None
        oracle = run_query('range of e is EMP retrieve (e.NAME)', db, strategy="tuple")
        assert result.answer == oracle.answer

    def test_database_query_returns_result_set(self, db):
        result = db.query('range of e is EMP retrieve (e.NAME) where e.SAL = 20')
        assert {r["e_NAME"] for r in result.rows} == {"JONES", "GREEN"}
        assert result.rows_affected == 0

    def test_database_query_strategy_keeps_oracle_path(self, db):
        result = db.query('range of e is EMP retrieve (e.NAME)', strategy="tuple")
        assert result.strategy == "tuple"

    def test_database_query_runs_dml(self, db):
        result = db.query('append to EMP (E# = $e)', {"e": 42})
        assert result.rows_affected == 1
        assert XTuple({"E#": 42}) in db["EMP"].tuples()

    def test_database_query_shares_one_session_cache(self, db):
        db.query('range of e is EMP retrieve (e.NAME)')
        db.query('range of e is EMP retrieve (e.NAME)')
        assert db.session().cached_statements == 1


class TestTransactions:
    def test_commit_keeps_effects(self, session, db):
        with session.transaction():
            session.execute('append to EMP (E# = 50)')
            session.execute('range of e is EMP delete e where e.E# = 1')
        assert XTuple({"E#": 50}) in db["EMP"].tuples()
        assert not any(t["E#"] == 1 for t in db["EMP"].tuples())

    def test_exception_rolls_back(self, session, db):
        before = db.snapshot()
        with pytest.raises(RuntimeError):
            with session.transaction():
                session.execute('range of e is EMP delete e')
                assert len(db["EMP"]) == 0
                raise RuntimeError("abort")
        assert db.snapshot() == before

    def test_explicit_rollback(self, session, db):
        before = db.snapshot()
        with session.transaction() as txn:
            session.execute('append to EMP (E# = 51)')
            txn.rollback()
        assert db.snapshot() == before

    def test_rollback_restores_indexes(self, session, db):
        before = db.snapshot()
        with pytest.raises(RuntimeError):
            with session.transaction():
                db.table("EMP").create_index(["E#"], name="tmp_idx")
                raise RuntimeError("abort")
        assert "tmp_idx" not in db.table("EMP").indexes
        assert db.snapshot() == before

    def test_rollback_drops_created_tables(self, session, db):
        with pytest.raises(RuntimeError):
            with session.transaction():
                session.execute('range of e is EMP retrieve into COPY (e.NAME)')
                assert "COPY" in db
                raise RuntimeError("abort")
        assert "COPY" not in db

    def test_rollback_removes_foreign_keys_added_inside(self, session, db):
        from repro.constraints.referential import ForeignKeyConstraint

        ref = db.create_table("REF", ["E#"])
        ref.insert_many([(1,), (77,)])  # 77 references nothing in EMP
        with pytest.raises(RuntimeError):
            with session.transaction():
                db.delete("REF", (77,))
                db.add_foreign_key("REF", ForeignKeyConstraint(["E#"], "EMP", ["E#"]))
                raise RuntimeError("abort")
        assert db.catalog.foreign_keys_of("REF") == []
        # The pre-transaction state (a dangling 77) is valid again.
        assert XTuple({"E#": 77}) in db["REF"].tuples()
        db.insert("REF", (99,))  # would violate the FK had it survived

    def test_drop_table_inside_transaction_fails_rollback_loudly(self, session, db):
        db.create_table("SCRATCH", ["A"])
        with pytest.raises(StorageError):
            with session.transaction():
                db.drop_table("SCRATCH")
                raise RuntimeError("abort")

    def test_in_transaction_flag(self, session):
        assert not session.in_transaction
        with session.transaction():
            assert session.in_transaction
        assert not session.in_transaction

    def test_nested_transactions(self, session, db):
        with session.transaction():
            session.execute('append to EMP (E# = 60)')
            with pytest.raises(RuntimeError):
                with session.transaction():
                    session.execute('append to EMP (E# = 61)')
                    raise RuntimeError("inner")
            # Inner rolled back, outer effect survives and commits.
            assert XTuple({"E#": 60}) in db["EMP"].tuples()
            assert XTuple({"E#": 61}) not in db["EMP"].tuples()
        assert XTuple({"E#": 60}) in db["EMP"].tuples()


# ---------------------------------------------------------------------------
# Hypothesis: rollback is snapshot-exact under arbitrary statement groups
# ---------------------------------------------------------------------------

_VALUES = st.one_of(st.none(), st.integers(0, 3))

_STATEMENTS = st.lists(
    st.one_of(
        st.tuples(st.just("append"), st.integers(0, 3), _VALUES),
        st.tuples(st.just("delete"), st.integers(0, 3), st.none()),
        st.tuples(st.just("replace"), st.integers(0, 3), st.integers(0, 3)),
        st.tuples(st.just("into"), st.integers(0, 3), st.none()),
    ),
    min_size=1,
    max_size=6,
)


def _apply(session, op, key, value):
    if op == "append":
        if value is None:
            session.execute('append to R (A = $a)', {"a": key})
        else:
            session.execute('append to R (A = $a, B = $b)', {"a": key, "b": value})
    elif op == "delete":
        session.execute('range of r is R delete r where r.A = $k', {"k": key})
    elif op == "replace":
        session.execute(
            'range of r is R replace r (B = $v) where r.A = $k',
            {"v": value, "k": key},
        )
    elif op == "into":
        name = f"OUT_{key}"
        if name not in session.database:
            session.execute(
                f'range of r is R retrieve into {name} (r.A)'
            )


@settings(max_examples=50, deadline=None, derandomize=True)
@given(
    st.lists(st.tuples(_VALUES, _VALUES), max_size=6),
    _STATEMENTS,
)
def test_transaction_rollback_is_snapshot_exact(rows, statements):
    database = Database("txn")
    table = database.create_table("R", ["A", "B"])
    table.insert_many([
        XTuple({a: v for a, v in zip(("A", "B"), values) if v is not None})
        for values in rows
    ])
    table.create_index(["A"], name="r_a")
    session = repro.connect(database)
    before = database.snapshot()
    tables_before = set(database.catalog.table_names())
    with pytest.raises(_Abort):
        with session.transaction():
            for op, key, value in statements:
                _apply(session, op, key, value)
            raise _Abort()
    assert set(database.catalog.table_names()) == tables_before
    assert database.snapshot() == before


class _Abort(Exception):
    pass


# ---------------------------------------------------------------------------
# Hypothesis: the prepared fast path ≡ the Section 5 tuple oracle
# ---------------------------------------------------------------------------

_OPS = ("=", "!=", "<", "<=", ">", ">=")


@settings(max_examples=60, deadline=None, derandomize=True)
@given(
    st.lists(st.tuples(_VALUES, _VALUES), max_size=8),
    st.lists(
        st.tuples(st.sampled_from(("A", "B")), st.sampled_from(_OPS), st.integers(0, 3)),
        max_size=3,
    ),
    st.booleans(),
)
def test_fast_path_agrees_with_tuple_oracle(rows, conjuncts, indexed):
    database = Database("fast")
    table = database.create_table("R", ["A", "B"])
    table.insert_many([
        XTuple({a: v for a, v in zip(("A", "B"), values) if v is not None})
        for values in rows
    ])
    if indexed:
        table.create_index(["A"])
    clauses = " and ".join(f"r.{a} {op} {k}" for a, op, k in conjuncts)
    text = 'range of r is R retrieve (r.A, r.B)'
    if clauses:
        text += f' where {clauses}'
    session = repro.connect(database)
    fast = session.execute(text).to_relation()
    oracle = run_query(text, database, strategy="tuple").answer
    assert fast == oracle, text
