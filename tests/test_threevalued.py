"""Unit tests for the three-valued logic of Table III (repro.core.threevalued)."""

import pytest

from repro import NI
from repro.core.errors import AlgebraError
from repro.core.threevalued import (
    FALSE,
    NI_TRUTH,
    TRUE,
    TRUTH_VALUES,
    TruthValue,
    compare,
    comparison_function,
    conjunction,
    disjunction,
    truth_of,
)


class TestTruthValues:
    def test_singletons(self):
        assert TruthValue("TRUE", 2) is TRUE
        assert TruthValue("ni", 1) is NI_TRUTH

    def test_predicates(self):
        assert TRUE.is_true() and not TRUE.is_false() and not TRUE.is_ni()
        assert FALSE.is_false()
        assert NI_TRUTH.is_ni()

    def test_bool_means_definitely_true(self):
        assert bool(TRUE)
        assert not bool(FALSE)
        assert not bool(NI_TRUTH)

    def test_equality_and_hash(self):
        assert TRUE == TRUE and TRUE != FALSE
        assert len({TRUE, FALSE, NI_TRUTH}) == 3

    def test_truth_of(self):
        assert truth_of(True) is TRUE
        assert truth_of(False) is FALSE
        assert truth_of(NI_TRUTH) is NI_TRUTH


class TestTableIII:
    """The AND/OR/NOT tables exactly as printed."""

    AND_TABLE = {
        (TRUE, TRUE): TRUE, (TRUE, NI_TRUTH): NI_TRUTH, (TRUE, FALSE): FALSE,
        (NI_TRUTH, TRUE): NI_TRUTH, (NI_TRUTH, NI_TRUTH): NI_TRUTH, (NI_TRUTH, FALSE): FALSE,
        (FALSE, TRUE): FALSE, (FALSE, NI_TRUTH): FALSE, (FALSE, FALSE): FALSE,
    }
    OR_TABLE = {
        (TRUE, TRUE): TRUE, (TRUE, NI_TRUTH): TRUE, (TRUE, FALSE): TRUE,
        (NI_TRUTH, TRUE): TRUE, (NI_TRUTH, NI_TRUTH): NI_TRUTH, (NI_TRUTH, FALSE): NI_TRUTH,
        (FALSE, TRUE): TRUE, (FALSE, NI_TRUTH): NI_TRUTH, (FALSE, FALSE): FALSE,
    }

    @pytest.mark.parametrize("pair", list(AND_TABLE))
    def test_and(self, pair):
        assert (pair[0] & pair[1]) == self.AND_TABLE[pair]

    @pytest.mark.parametrize("pair", list(OR_TABLE))
    def test_or(self, pair):
        assert (pair[0] | pair[1]) == self.OR_TABLE[pair]

    def test_not(self):
        assert ~TRUE == FALSE
        assert ~FALSE == TRUE
        assert ~NI_TRUTH == NI_TRUTH

    def test_de_morgan(self):
        for a in TRUTH_VALUES:
            for b in TRUTH_VALUES:
                assert ~(a & b) == (~a | ~b)
                assert ~(a | b) == (~a & ~b)

    def test_commutativity(self):
        for a in TRUTH_VALUES:
            for b in TRUTH_VALUES:
                assert (a & b) == (b & a)
                assert (a | b) == (b | a)

    def test_tautology_is_not_true_with_ni(self):
        """The three-valued blind spot: p ∨ ¬p is ni when p is ni."""
        assert (NI_TRUTH | ~NI_TRUTH) == NI_TRUTH


class TestFolds:
    def test_conjunction(self):
        assert conjunction([]) == TRUE
        assert conjunction([TRUE, TRUE]) == TRUE
        assert conjunction([TRUE, NI_TRUTH]) == NI_TRUTH
        assert conjunction([NI_TRUTH, FALSE]) == FALSE

    def test_disjunction(self):
        assert disjunction([]) == FALSE
        assert disjunction([FALSE, FALSE]) == FALSE
        assert disjunction([FALSE, NI_TRUTH]) == NI_TRUTH
        assert disjunction([NI_TRUTH, TRUE]) == TRUE


class TestComparisons:
    def test_nonnull_comparisons(self):
        assert compare(3, "<", 5) == TRUE
        assert compare(5, "<", 3) == FALSE
        assert compare("a", "=", "a") == TRUE
        assert compare("a", "!=", "a") == FALSE
        assert compare(2, ">=", 2) == TRUE

    @pytest.mark.parametrize("op", ["=", "!=", "<", "<=", ">", ">="])
    def test_null_operand_gives_ni(self, op):
        assert compare(NI, op, 5) == NI_TRUTH
        assert compare(5, op, NI) == NI_TRUTH
        assert compare(None, op, None) == NI_TRUTH

    def test_alternate_spellings(self):
        assert compare(1, "==", 1) == TRUE
        assert compare(1, "<>", 2) == TRUE
        assert compare(1, "≠", 1) == FALSE
        assert compare(1, "≤", 1) == TRUE
        assert compare(2, "≥", 1) == TRUE

    def test_unknown_operator(self):
        with pytest.raises(AlgebraError):
            compare(1, "~", 2)
        with pytest.raises(AlgebraError):
            comparison_function("like")

    def test_type_mismatch_equality(self):
        assert compare("a", "=", 1) == FALSE
        assert compare("a", "!=", 1) == TRUE

    def test_type_mismatch_order_raises(self):
        with pytest.raises(AlgebraError):
            compare("a", "<", 1)
