"""EXPLAIN with the cost-based optimizer: estimates, reordering, indexes.

This example builds a three-table supply chain, then shows how the same
QUEL query's plan evolves:

* the **pre-statistics plan** (``cost_based=False``): joins in the order
  the ranges were declared, residual qualification evaluated last;
* the **cost-ordered plan**: the optimizer starts from the selective
  range and walks the join chain outward, annotating every step with its
  estimated and measured row counts (``est=…, rows=…`` — compare them to
  audit the cost model);
* the plan **after** ``create_index`` + ``analyze()``: the join against
  the indexed table becomes an index-nested-loop probe of the live
  :class:`~repro.storage.index.HashIndex` — no per-query bucket rebuild.

Run with::

    python examples/explain_cost_optimizer.py
"""

import random

from repro.quel import compile_query
from repro.quel.planner import Plan
from repro.storage import Database


def build_database(size: int = 2_000, seed: int = 7) -> Database:
    rng = random.Random(seed)
    db = Database("supply-chain")
    parts = db.create_table("PARTS", ["P#", "WEIGHT"])
    stock = db.create_table("STOCK", ["P#", "S#"])
    suppliers = db.create_table("SUPPLIERS", ["S#", "CITY"])
    parts.insert_many([(p, rng.randrange(100)) for p in range(size)])
    stock.insert_many(
        [(rng.randrange(size), rng.randrange(size // 20)) for _ in range(size)]
    )
    suppliers.insert_many(
        [(s, f"city{s % 40}") for s in range(size // 20)]
    )
    return db


QUERY = (
    "range of p is PARTS range of st is STOCK range of s is SUPPLIERS "
    "retrieve (p.P#, s.S#) "
    "where p.P# = st.P# and st.S# = s.S# and s.CITY = \"city3\""
)


def show(title: str, plan: Plan) -> None:
    print("=" * 72)
    print(title)
    print("=" * 72)
    answer = plan.execute()
    print(plan.explain())
    print(f"-> {len(answer)} answer rows")
    print()


def main() -> None:
    db = build_database()
    query = compile_query(QUERY, db).query
    print(QUERY)
    print()

    show("pre-statistics planner (declaration order, residual last)",
         Plan(query, db, cost_based=False))

    show("cost-based optimizer (selective range first, est= vs rows=)",
         Plan(query, db))

    # Give the optimizer a persistent index on the fused join key of the
    # big unfiltered range and refresh the statistics, then plan the very
    # same query again.
    db.table("PARTS").create_index(["P#"], name="parts_p")
    db.analyze()
    show("after create_index + analyze(): index-nested-loop probe",
         Plan(query, db))


if __name__ == "__main__":
    main()
