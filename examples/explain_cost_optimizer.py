"""EXPLAIN with the cost-based optimizer: estimates, reordering, indexes.

This example builds a three-table supply chain, then shows how the same
QUEL query's plan evolves:

* the **pre-statistics plan** (``cost_based=False``): joins in the order
  the ranges were declared, residual qualification evaluated last;
* the **cost-ordered plan**: the optimizer starts from the selective
  range and walks the join chain outward, annotating every step with its
  estimated and measured row counts (``est=…, rows=…`` — compare them to
  audit the cost model);
* the plan **after** ``create_index`` + ``analyze()``: the join against
  the indexed table becomes an index-nested-loop probe of the live
  :class:`~repro.storage.index.HashIndex` — no per-query bucket rebuild.

Then two Optimizer v2 features:

* **histogram range estimates** — before ``analyze()`` a range predicate
  like ``WEIGHT < 5`` is guessed at the textbook 1/3 of the table; after
  ``analyze()`` the per-attribute equi-depth histogram pins it near the
  true count;
* the **semantic result cache** — re-executing an identical retrieve
  through a :class:`~repro.api.session.Session` answers from the cache
  (``explain()`` reports the ``cached result`` step) until any DML/DDL
  on a referenced table structurally invalidates the entry.

Run with::

    python examples/explain_cost_optimizer.py
"""

import random

from repro.api.session import Session
from repro.quel import compile_query
from repro.quel.planner import Plan
from repro.stats import DEFAULT_COST_MODEL
from repro.storage import Database


def build_database(size: int = 2_000, seed: int = 7) -> Database:
    rng = random.Random(seed)
    db = Database("supply-chain")
    parts = db.create_table("PARTS", ["P#", "WEIGHT"])
    stock = db.create_table("STOCK", ["P#", "S#"])
    suppliers = db.create_table("SUPPLIERS", ["S#", "CITY"])
    parts.insert_many([(p, rng.randrange(100)) for p in range(size)])
    stock.insert_many(
        [(rng.randrange(size), rng.randrange(size // 20)) for _ in range(size)]
    )
    suppliers.insert_many(
        [(s, f"city{s % 40}") for s in range(size // 20)]
    )
    return db


QUERY = (
    "range of p is PARTS range of st is STOCK range of s is SUPPLIERS "
    "retrieve (p.P#, s.S#) "
    "where p.P# = st.P# and st.S# = s.S# and s.CITY = \"city3\""
)


def show(title: str, plan: Plan) -> None:
    print("=" * 72)
    print(title)
    print("=" * 72)
    answer = plan.execute()
    print(plan.explain())
    print(f"-> {len(answer)} answer rows")
    print()


def show_histograms(db: Database) -> None:
    """Range selectivity before vs after ANALYZE builds histograms."""
    print("=" * 72)
    print("histogram range estimates (Optimizer v2)")
    print("=" * 72)
    parts = db.table("PARTS")
    actual = sum(1 for row in parts.rows()
                 if row.get("WEIGHT", None) is not None and row["WEIGHT"] < 5)
    stats = parts.statistics
    guess = DEFAULT_COST_MODEL.estimate_selection(stats, "WEIGHT", "<")
    print(f"WEIGHT < 5 over {len(parts)} rows: true count = {actual}")
    print(f"  before histograms: est = {guess:.0f}  (the 1/3 constant)")
    db.analyze()
    informed = DEFAULT_COST_MODEL.estimate_selection(
        stats, "WEIGHT", "<", value=5)
    print(f"  after  analyze():  est = {informed:.0f}  (equi-depth histogram)")
    print()


def show_result_cache(db: Database) -> None:
    """The same retrieve twice through a Session: the repeat is cached."""
    print("=" * 72)
    print("semantic result cache (Optimizer v2)")
    print("=" * 72)
    session = Session(db)
    text = ("range of p is PARTS retrieve (p.P#) where p.WEIGHT < 5")
    first = session.execute(text)
    print(f"first execution -> {len(first.rows)} rows, plan:")
    print("  " + first.explain().replace("\n", "\n  "))
    repeat = session.execute(text)
    print("repeated execution, explain():")
    print("  " + repeat.explain().replace("\n", "\n  "))
    session.execute('append to PARTS (P# = 999999, WEIGHT = 1)')
    invalidated = session.execute(text)
    print(f"after one append the entry is stale-proofed out: "
          f"{len(invalidated.rows)} rows, "
          f"cached={'cached result' in invalidated.explain()}")
    print()


def main() -> None:
    db = build_database()
    query = compile_query(QUERY, db).query
    print(QUERY)
    print()

    show("pre-statistics planner (declaration order, residual last)",
         Plan(query, db, cost_based=False))

    show("cost-based optimizer (selective range first, est= vs rows=)",
         Plan(query, db))

    show_histograms(db)

    # Give the optimizer a persistent index on the fused join key of the
    # big unfiltered range and refresh the statistics, then plan the very
    # same query again.
    db.table("PARTS").create_index(["P#"], name="parts_p")
    db.analyze()
    show("after create_index + analyze(): index-nested-loop probe",
         Plan(query, db))

    show_result_cache(db)


if __name__ == "__main__":
    main()
