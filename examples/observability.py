"""Observability: metrics and query traces for one mixed workload.

This example builds a small employee database, runs a mixed workload
(retrieves, DML, a transaction, a prepared-statement loop, one slow
query) against an **isolated** metrics registry, and then shows the two
read surfaces:

* ``registry.render_prometheus()`` — the text a ``/metrics`` endpoint
  would serve, with statement latency histograms by kind, plan-cache
  hit/miss counters, per-operator row and time totals, and the
  statistics-staleness gauges refreshed at scrape time;
* ``session.recent_traces()`` — structured :class:`~repro.obs.QueryTrace`
  spans with per-phase timings (parse → analyze → plan → execute) and
  per-operator actuals.

Run with::

    python examples/observability.py
"""

import random

import repro
from repro.obs import MetricsRegistry
from repro.storage import Database


def build_database(registry: MetricsRegistry, size: int = 2_000, seed: int = 7) -> Database:
    rng = random.Random(seed)
    db = Database("acme", metrics=registry)
    emp = db.create_table("EMP", ["E#", "NAME", "DEPT", "SAL"])
    emp.insert_many(
        (
            i,
            f"emp{i}",
            rng.choice(["toys", "tools", "shoes", None]),  # ni department
            rng.randrange(30_000, 90_000),
        )
        for i in range(size)
    )
    emp.create_index(["DEPT"], name="emp_dept")
    return db


def run_workload(session: repro.Session) -> None:
    # retrieves: one per department, through the plan cache
    lookup = session.prepare(
        "range of e is EMP retrieve (e.NAME, e.SAL) where e.DEPT = $d"
    )
    for dept in ["toys", "tools", "shoes", "toys", "toys"]:
        lookup.execute({"d": dept}).rows
    # the same text through execute(): a plan-cache hit plus a full trace
    session.execute(
        "range of e is EMP retrieve (e.NAME, e.SAL) where e.DEPT = $d",
        {"d": "tools"},
    ).rows

    # DML, autocommit and transactional
    session.execute("append to EMP (E# = 100000, NAME = 'newhire', DEPT = 'toys')")
    with session.transaction():
        session.execute("range of e is EMP replace e (SAL = 50000) where e.E# = 100000")
    session.execute("range of e is EMP delete e where e.E# = 100000")

    # a deliberately slow query (threshold 0 marks everything slow)
    session.slow_query_threshold = 0.0
    session.execute("range of e is EMP retrieve (e.DEPT) where e.SAL > 40000").rows
    session.slow_query_threshold = None


def main() -> None:
    registry = MetricsRegistry()
    db = build_database(registry)
    session = repro.connect(db)
    run_workload(session)

    print("=" * 72)
    print("rendered /metrics scrape (repro_* series)")
    print("=" * 72)
    print(registry.render_prometheus())

    print("=" * 72)
    print("the latest query traces (newest last)")
    print("=" * 72)
    for trace in session.recent_traces(limit=3):
        print(
            f"- kind={trace.kind} outcome={trace.outcome} "
            f"rows_out={trace.rows_out} slow={trace.slow} "
            f"seconds={trace.seconds:.6f}"
        )
        for phase, seconds in sorted(trace.phases.items()):
            print(f"    {phase:<8} {seconds * 1e6:9.1f} µs")
        for step in trace.operators:
            indent = "  " * step["depth"]
            print(
                f"    {indent}{step['operator']}: "
                f"rows={step['rows']} seconds={step['seconds']:.6f}"
            )


if __name__ == "__main__":
    main()
