"""The paper's Figure 1 and Figure 2 QUEL queries, run four ways.

For each query this example shows:

* the certain-answer lower bound through the Session API
  (``repro.connect`` — the cost-based planner, the default everywhere),
* the same answer computed tuple-at-a-time (Section 5), the
  definitional oracle, demonstrating the calculus↔algebra
  correspondence the paper relies on,
* the answer the "unknown" interpretation would require, computed with the
  tautology detector of the Appendix,
* the exact certain answers from possible-worlds enumeration, as a check.

Run with::

    python examples/quel_queries.py
"""

import repro
from repro.datagen import FIGURE_1_QUERY, FIGURE_2_QUERY, employee_database
from repro.quel import compile_query, run_query
from repro.tautology import TautologyDetector, evaluate_unknown_lower_bound
from repro.worlds import evaluate_bounds


def names(rows, attribute="e_NAME"):
    return sorted({t[attribute] for t in rows})


def run_all(title: str, text: str, session, worlds_domains=None) -> None:
    db = session.database
    print("=" * 72)
    print(title)
    print("=" * 72)
    print(text.strip())
    print()

    session_result = session.execute(text)
    tuple_result = run_query(text, db, strategy="tuple")
    print(f"ni lower bound (session, planned): {names(session_result.rows)}")
    print(f"ni lower bound (tuple oracle)    : {names(tuple_result.rows)}")
    print("plan:")
    for line in session_result.explain().splitlines():
        print(f"    {line}")
    print()

    analyzed = compile_query(text, db)
    detector = TautologyDetector()
    unknown = evaluate_unknown_lower_bound(analyzed.query, detector)
    print(f"unknown-interpretation bound     : {names(unknown.rows())}")

    if worlds_domains is not None:
        bounds = evaluate_bounds(analyzed.query, domains=worlds_domains)
        print(f"possible-worlds certain answers  : {names(bounds.certain)}"
              f"   ({bounds.world_count} worlds enumerated)")
        print(f"possible-worlds possible answers : {names(bounds.possible)}")
    print()


def main() -> None:
    db = employee_database()
    session = repro.connect(db)
    print("The employee database (Table II plus the two managers):")
    print(db["EMP"].to_table())
    print()

    run_all(
        "Figure 1 — Q_A, as printed (strict inequalities)",
        FIGURE_1_QUERY,
        session,
        worlds_domains={"TEL#": [2633999, 2634000, 2634001]},
    )

    weak_variant = FIGURE_1_QUERY.replace("e.TEL# > 2634000", "e.TEL# >= 2634000")
    run_all(
        "Figure 1 — Q_A with ≥ (the complementary-conditions reading)",
        weak_variant,
        session,
        worlds_domains={"TEL#": [2633999, 2634000, 2634001]},
    )
    print("Note how BROWN appears in the unknown-interpretation answer of the")
    print("≥ variant: deciding that required tautology analysis, which the ni")
    print("interpretation never needs — its answer is the same either way.")
    print()

    run_all("Figure 2 — Q_B (male managers, no self/mutual management)", FIGURE_2_QUERY, session)


if __name__ == "__main__":
    main()
