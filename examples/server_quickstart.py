"""Server quickstart: many clients, one database, over HTTP.

This example starts the asyncio HTTP front end (:mod:`repro.server`) on
a background thread over an employee database, then walks the wire
surface with the blocking :class:`~repro.server.ServerClient`:

* ``POST /statements`` — parameterized QUEL (JSON ``null`` travels as
  the no-information null, both directions);
* server-side prepared statements;
* cursor-paged streaming (``GET /cursors/{id}``) — the first page ships
  before the retrieve has drained;
* a transaction spanning several requests on one connection, while a
  second client's write waits its turn on the single-writer gate;
* four threaded clients hammering point reads concurrently;
* ``GET /schema`` and the ``GET /metrics`` Prometheus scrape.

Run with::

    PYTHONPATH=src python examples/server_quickstart.py
"""

import threading

from repro.obs import MetricsRegistry
from repro.server import ServerClient, ServerError, serve
from repro.storage import Database


def build_database() -> Database:
    db = Database("acme", metrics=MetricsRegistry())
    emp = db.create_table("EMP", ["E#", "NAME", "DEPT", "SAL"])
    emp.insert_many(
        (i, f"emp{i}", ("toys", "tools", "shoes", None)[i % 4], 30_000 + 10 * i)
        for i in range(2_000)
    )
    emp.create_index(["E#"], name="emp_e")
    return db


def main() -> None:
    db = build_database()
    handle = serve(db)
    print(f"serving {db.name!r} at {handle.url}\n")

    with ServerClient.for_handle(handle) as client:
        # -- statements, with parameters and nulls ---------------------------
        client.execute(
            "append to EMP (E# = $e, NAME = $n, DEPT = $d)",
            {"e": 100_000, "n": "newhire", "d": None},  # null → ni
        )
        row = client.rows(
            "range of e is EMP retrieve (e.NAME, e.DEPT) where e.E# = $e",
            {"e": 100_000},
        )[0]
        print(f"round-tripped: {row}")  # DEPT comes back as JSON null

        # -- prepared statements --------------------------------------------
        lookup = client.prepare(
            "range of e is EMP retrieve (e.NAME) where e.E# = $k"
        )
        print(f"prepared {lookup.id} expects params {list(lookup.parameters)}")
        for key in (3, 1999, 100_000):
            print("  ", lookup.execute({"k": key})["rows"])

        # -- cursor-paged streaming -----------------------------------------
        pages = 0
        rows = 0
        for page in client.iter_pages(
            "range of e is EMP retrieve (e.E#, e.SAL)", max_rows=256
        ):
            pages += 1
            rows += len(page.rows)
        print(f"cursor drained {rows} rows in {pages} pages")

        # -- a transaction spanning requests, racing another client ---------
        client.begin()
        client.execute('append to EMP (E# = 100001, NAME = "temp")')

        blocked_done = threading.Event()

        def other_writer() -> None:
            with ServerClient.for_handle(handle) as other:
                # parks on the gate until the transaction commits
                other.execute('append to EMP (E# = 100002, NAME = "queued")')
                blocked_done.set()

        thread = threading.Thread(target=other_writer, daemon=True)
        thread.start()
        print(
            "other writer finished while txn open? "
            f"{blocked_done.wait(timeout=0.3)}"
        )
        client.commit()
        thread.join(timeout=10)
        print(f"other writer finished after commit? {blocked_done.is_set()}")

        # -- errors carry the taxonomy --------------------------------------
        try:
            client.execute("retrieve (nonsense")
        except ServerError as error:
            print(f"parse error → {error}")

        # -- introspection ---------------------------------------------------
        schema = client.schema()
        emp = next(t for t in schema["tables"] if t["name"] == "EMP")
        print(f"EMP: {emp['row_count']} rows, indexes {emp['indexes']}")

    # -- four concurrent clients ---------------------------------------------
    def hammer(tid: int) -> None:
        with ServerClient.for_handle(handle) as c:
            prepared = c.prepare(
                "range of e is EMP retrieve (e.SAL) where e.E# = $k"
            )
            for n in range(50):
                prepared.execute({"k": (tid * 50 + n) % 2_000})

    threads = [
        threading.Thread(target=hammer, args=(i,), daemon=True)
        for i in range(4)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    with ServerClient.for_handle(handle) as client:
        scrape = client.metrics()
    print("\nserver families from /metrics:")
    for line in scrape.splitlines():
        if line.startswith("repro_server_requests_total") or line.startswith(
            "repro_server_connections_open"
        ):
            print("  " + line)

    handle.stop()
    print("\nserver stopped")


if __name__ == "__main__":
    main()
