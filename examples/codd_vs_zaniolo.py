"""A side-by-side tour of the baselines: Codd, Lien, possible worlds, Zaniolo.

Uses a synthetic employee workload to show the *shape* arguments of the
paper's practicability discussion:

* MAYBE answers balloon as the null density grows, while TRUE/ni answers
  shrink — the selectivity argument of Section 1;
* possible-worlds evaluation cost explodes exponentially in the number of
  nulls, while the three-valued lower bound scales with the data;
* Lien's nonexistent-interpretation operators coincide with the TRUE
  versions, as the paper remarks.

Run with::

    python examples/codd_vs_zaniolo.py
"""

import time

from repro.codd import select_maybe, select_true
from repro.core.algebra import select_constant
from repro.core.query import AttributeRef, Comparison, Constant, Query, evaluate_lower_bound
from repro.datagen import employee_relation
from repro.lien import lien_select
from repro.worlds import CompletionSpace, evaluate_bounds


def selectivity_sweep() -> None:
    print("=" * 72)
    print("Selectivity of TRUE vs MAYBE selections as the null density grows")
    print("(query: TEL# > 2500000 on a 60-row synthetic EMP relation)")
    print("=" * 72)
    print(f"{'null rate':>10s} {'TRUE rows':>10s} {'MAYBE rows':>11s} {'ni rows':>8s} {'Lien rows':>10s}")
    for rate in (0.0, 0.1, 0.2, 0.4, 0.6, 0.8):
        emp = employee_relation(60, null_rate=rate, seed=7)
        true_rows = len(select_true(emp, "TEL#", ">", 2500000))
        maybe_rows = len(select_maybe(emp, "TEL#", ">", 2500000))
        ni_rows = len(select_constant(emp, "TEL#", ">", 2500000))
        lien_rows = len(lien_select(emp, "TEL#", ">", 2500000))
        print(f"{rate:>10.1f} {true_rows:>10d} {maybe_rows:>11d} {ni_rows:>8d} {lien_rows:>10d}")
    print()
    print("TRUE, ni and Lien agree row for row; MAYBE returns nearly the whole")
    print("table once nulls are common — the low-selectivity complaint of Sec. 1.")
    print()


def worlds_cost_sweep() -> None:
    print("=" * 72)
    print("Cost of exact certain answers (possible worlds) vs the ni lower bound")
    print("=" * 72)
    print(f"{'rows':>5s} {'nulls':>6s} {'worlds':>10s} {'worlds time':>12s} {'ni time':>9s}")
    for size in (4, 6, 8, 10, 12):
        emp = employee_relation(size, null_rate=0.4, seed=3)
        where = Comparison(AttributeRef("e", "TEL#"), ">", Constant(2500000))
        query = Query({"e": emp}, [AttributeRef("e", "NAME")], where)

        space = CompletionSpace([emp], domains={"TEL#": [2400000, 2600000], "MGR#": [1, 2]})
        started = time.perf_counter()
        bounds = evaluate_bounds(query, domains={"TEL#": [2400000, 2600000], "MGR#": [1, 2]},
                                 cap=2_000_000)
        worlds_time = time.perf_counter() - started

        started = time.perf_counter()
        evaluate_lower_bound(query)
        ni_time = time.perf_counter() - started

        print(f"{size:>5d} {space.null_site_count():>6d} {bounds.world_count:>10d} "
              f"{worlds_time * 1000:>10.1f}ms {ni_time * 1000:>7.2f}ms")
    print()
    print("The world count doubles with every additional null; the ni evaluation")
    print("only grows with the number of rows.")
    print()


def main() -> None:
    selectivity_sweep()
    worlds_cost_sweep()


if __name__ == "__main__":
    main()
