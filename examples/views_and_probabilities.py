"""Beyond the core model: information-preserving views and statistical nulls.

The paper's introduction lists applications that null values enable —
views over network schemas, universal-relation interfaces — and its
Sections 2 and 6 discuss richer interpretations (probability-qualified
answers) as the other end of the accuracy/complexity trade-off.  This
example exercises both extension packages:

* ``repro.views`` — named views over the generalised algebra, including
  the union-join mapping of a network set type to a single relation;
* ``repro.wong`` — probability distributions on unknown values and
  probability-qualified answers, interpolating between the certain (ni)
  answer and Codd's MAYBE answer.

Run with::

    python examples/views_and_probabilities.py
"""

from repro.datagen import parts_suppliers
from repro.storage import Database
from repro.views import ViewCatalog, base, network_to_relational
from repro.wong import answer_spectrum, column_distribution, divide_with_threshold


def views_demo() -> ViewCatalog:
    print("=" * 72)
    print("Views over the generalised algebra")
    print("=" * 72)
    db = Database("enterprise")
    dept = db.create_table("DEPT", ["DNAME", "FLOOR"])
    dept.insert_many([("eng", 2), ("sales", 1), ("ops", 3)])
    emp = db.create_table("EMP", ["E#", "NAME", "DNAME", "TEL#"])
    emp.insert_many([
        (1, "ann", "eng", 5551),
        (2, "bob", "sales", None),
        (3, "cat", None, 5553),     # department unknown
    ])

    catalog = ViewCatalog()
    # The network-schema mapping of reference [26]: one relation per set
    # type, built with the information-preserving union-join.
    staffing = network_to_relational("DEPT", "EMP", link=["DNAME"])
    catalog.define(staffing.name, staffing.expression, staffing.description)
    catalog.define(
        "REACHABLE_STAFF",
        base(staffing.name).select("TEL#", ">", 0).project(["NAME", "TEL#"]),
        "Employees we can telephone, derived from the staffing view.",
    )

    print(f"defined views: {catalog.names()}")
    print()
    print("DEPT_EMP_set (no department or employee is lost):")
    print(catalog.evaluate("DEPT_EMP_set", db).to_table())
    print()
    print("REACHABLE_STAFF (stacked on the first view):")
    print(catalog.evaluate("REACHABLE_STAFF", db).to_table())
    print()
    catalog.materialise("REACHABLE_STAFF", db)
    db.insert("EMP", (4, "dan", "ops", 5554))
    print(f"stale after inserting dan? {catalog.is_stale('REACHABLE_STAFF', db)}")
    print(f"views reading EMP: {[v.name for v in catalog.views_reading('EMP')]}")
    print()
    return catalog


def probabilities_demo() -> None:
    print("=" * 72)
    print("Probability-qualified answers (the Wong-style interpretation)")
    print("=" * 72)
    ps = parts_suppliers()
    print(ps.to_table())
    print()
    distribution = column_distribution(ps, "P#")
    print(f"empirical distribution of P#: {distribution}")
    print()

    print("Answer spectrum for 'supplies p1' as the threshold is relaxed:")
    for threshold, size in answer_spectrum(ps, "P#", "=", "p1"):
        print(f"  threshold ≥ {threshold:>4.2f}: {size} supplier rows qualify")
    print()

    print("Probability-qualified division: who supplies every part s2 supplies?")
    for threshold in (1.0, 0.5, 0.05):
        answer = sorted(divide_with_threshold(ps, ["p1"], by="S#", over="P#", threshold=threshold))
        print(f"  with probability ≥ {threshold:>4.2f}: {answer}")
    print()
    print("At threshold 1.0 this is the paper's certain answer A3 = {s1, s2};")
    print("as the threshold drops the answer drifts towards Codd's MAYBE answer")
    print("A2 = {s1, s2, s3} — the trade-off Sections 2 and 6 describe.")


def main() -> None:
    views_demo()
    probabilities_demo()


if __name__ == "__main__":
    main()
