"""Quickstart: relations with no-information nulls in five minutes.

Walks through the core ideas of Zaniolo's paper on a tiny employee
database: building relations with nulls, the information ordering,
x-relation equality and containment, the generalised algebra, and
lower-bound query evaluation through the QUEL front end.

Run with::

    python examples/quickstart.py
"""

from repro import (
    NI,
    Relation,
    XRelation,
    XTuple,
    divide,
    project,
    select_constant,
    union_join,
)
from repro.quel import run_query
from repro.storage import Database


def section(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def main() -> None:
    section("1. Relations with no-information nulls")
    emp = Relation.from_rows(
        ["E#", "NAME", "SEX", "MGR#", "TEL#"],
        [
            (1120, "SMITH", "M", 2235, None),   # None spells the ni null
            (4335, "BROWN", "F", 2235, None),
            (8799, "GREEN", "M", 1255, None),
            (2235, "JONES", "F", 1255, 2634952),
            (1255, "ADAMS", "M", 2235, 2639001),
        ],
        name="EMP",
    )
    print(emp.to_table())

    section("2. The information ordering on tuples")
    partial = XTuple({"E#": 4335, "NAME": "BROWN"})
    full = XTuple({"E#": 4335, "NAME": "BROWN", "SEX": "F", "MGR#": 2235})
    print(f"partial tuple : {partial}")
    print(f"full tuple    : {full}")
    print(f"full ≥ partial: {full >= partial}")
    print(f"meet          : {full.meet(XTuple({'E#': 4335, 'SEX': 'M'}))}")

    section("3. x-relations: information-wise equality and containment")
    narrow = Relation.from_rows(
        ["E#", "NAME"], [(1120, "SMITH"), (4335, "BROWN")], name="NARROW"
    )
    widened = Relation.from_rows(
        ["E#", "NAME", "TEL#"], [(1120, "SMITH", None), (4335, "BROWN", None)], name="WIDE"
    )
    print(f"narrow == widened (as x-relations): {XRelation(narrow) == XRelation(widened)}")
    print(f"EMP x-contains (NAME=BROWN)?      : {XRelation(emp).x_contains({'NAME': 'BROWN'})}")

    section("4. The generalised algebra")
    females = select_constant(emp, "SEX", "=", "F")
    print("Selection SEX = 'F':")
    print(females.to_table())
    print()
    print("Projection on NAME, TEL# (note the null survives):")
    print(project(emp, ["NAME", "TEL#"]).to_table())

    section("5. Lower-bound query evaluation (QUEL)")
    db = Database("quickstart")
    table = db.create_table("EMP", emp.schema.attributes)
    table.insert_many(list(emp.tuples()))
    query = """
    range of e is EMP
    retrieve (e.NAME, e.E#)
    where (e.SEX = "F" and e.TEL# > 2634000)
       or (e.TEL# < 2634000)
    """
    result = db.query(query)
    print("Figure 1 query — only rows that are TRUE for sure are returned:")
    print(result.to_table())
    print()
    print("BROWN has a null TEL#, so she is not in the certain answer;")
    print("no tautology detection machinery was needed to decide that.")

    section("6. Division: who supplies every part s2 supplies (for sure)?")
    ps = XRelation.from_rows(
        ["S#", "P#"],
        [
            ("s1", "p1"), ("s1", "p2"), ("s1", None),
            ("s2", "p1"), ("s2", None), ("s3", None), ("s4", "p4"),
        ],
        name="PS",
    )
    parts_of_s2 = project(select_constant(ps, "S#", "=", "s2"), ["P#"])
    answer = divide(ps, parts_of_s2, ["S#"])
    print(answer.to_table())

    section("7. The information-preserving union-join (outer join)")
    phones = XRelation.from_rows(["NAME", "FAX#"], [("SMITH", 111), ("NOBODY", 999)], name="FAX")
    print(union_join(XRelation(emp), phones, ["NAME"]).to_table())


if __name__ == "__main__":
    main()
