"""Quickstart: relations with no-information nulls in five minutes.

Walks through the core ideas of Zaniolo's paper on a tiny employee
database: building relations with nulls, the information ordering,
x-relation equality and containment, the generalised algebra, and
lower-bound query evaluation through the QUEL front end.

Run with::

    python examples/quickstart.py
"""

import repro
from repro import (
    NI,
    Relation,
    XRelation,
    XTuple,
    divide,
    project,
    select_constant,
    union_join,
)


def section(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def main() -> None:
    section("1. Relations with no-information nulls")
    emp = Relation.from_rows(
        ["E#", "NAME", "SEX", "MGR#", "TEL#"],
        [
            (1120, "SMITH", "M", 2235, None),   # None spells the ni null
            (4335, "BROWN", "F", 2235, None),
            (8799, "GREEN", "M", 1255, None),
            (2235, "JONES", "F", 1255, 2634952),
            (1255, "ADAMS", "M", 2235, 2639001),
        ],
        name="EMP",
    )
    print(emp.to_table())

    section("2. The information ordering on tuples")
    partial = XTuple({"E#": 4335, "NAME": "BROWN"})
    full = XTuple({"E#": 4335, "NAME": "BROWN", "SEX": "F", "MGR#": 2235})
    print(f"partial tuple : {partial}")
    print(f"full tuple    : {full}")
    print(f"full ≥ partial: {full >= partial}")
    print(f"meet          : {full.meet(XTuple({'E#': 4335, 'SEX': 'M'}))}")

    section("3. x-relations: information-wise equality and containment")
    narrow = Relation.from_rows(
        ["E#", "NAME"], [(1120, "SMITH"), (4335, "BROWN")], name="NARROW"
    )
    widened = Relation.from_rows(
        ["E#", "NAME", "TEL#"], [(1120, "SMITH", None), (4335, "BROWN", None)], name="WIDE"
    )
    print(f"narrow == widened (as x-relations): {XRelation(narrow) == XRelation(widened)}")
    print(f"EMP x-contains (NAME=BROWN)?      : {XRelation(emp).x_contains({'NAME': 'BROWN'})}")

    section("4. The generalised algebra")
    females = select_constant(emp, "SEX", "=", "F")
    print("Selection SEX = 'F':")
    print(females.to_table())
    print()
    print("Projection on NAME, TEL# (note the null survives):")
    print(project(emp, ["NAME", "TEL#"]).to_table())

    section("5. Sessions: the QUEL client surface (repro.connect)")
    session = repro.connect(name="quickstart")
    db = session.database
    db.create_table("EMP", emp.schema.attributes)
    session.executemany(
        "append to EMP (E# = $e, NAME = $n, SEX = $s, MGR# = $m, TEL# = $t)",
        [dict(zip("ensmt", (r["E#"], r["NAME"], r["SEX"], r["MGR#"],
                            None if r["TEL#"] is NI else r["TEL#"])))
         for r in emp.tuples()],
    )
    query = """
    range of e is EMP
    retrieve (e.NAME, e.E#)
    where (e.SEX = "F" and e.TEL# > 2634000)
       or (e.TEL# < 2634000)
    """
    result = session.execute(query)
    print("Figure 1 query — only rows that are TRUE for sure are returned:")
    print(result.to_table())
    print()
    print("BROWN has a null TEL#, so she is not in the certain answer;")
    print("no tautology detection machinery was needed to decide that.")

    section("5b. DML, prepared statements and transactions")
    by_phone = session.prepare(
        "range of e is EMP retrieve (e.NAME) where e.TEL# = $tel"
    )
    print(f"prepared lookup: {[r['e_NAME'] for r in by_phone.execute({'tel': 2634952})]}")
    db.table("EMP").create_index(["TEL#"], name="emp_tel")
    print(f"...after create_index the cached plan transparently re-plans:")
    print("    " + by_phone.explain({"tel": 2634952}).replace("\n", "\n    "))
    session.execute(
        'range of e is EMP replace e (TEL# = 2639999) where e.NAME = "SMITH"'
    )
    with session.transaction() as txn:
        session.execute('range of e is EMP delete e where e.SEX = "M"')
        txn.rollback()  # changed our mind: nothing happened
    print(f"after replace + rolled-back delete: {len(db['EMP'])} rows, "
          f"SMITH now at {next(r['TEL#'] for r in db['EMP'].tuples() if r['NAME'] == 'SMITH')}")

    section("6. Division: who supplies every part s2 supplies (for sure)?")
    ps = XRelation.from_rows(
        ["S#", "P#"],
        [
            ("s1", "p1"), ("s1", "p2"), ("s1", None),
            ("s2", "p1"), ("s2", None), ("s3", None), ("s4", "p4"),
        ],
        name="PS",
    )
    parts_of_s2 = project(select_constant(ps, "S#", "=", "s2"), ["P#"])
    answer = divide(ps, parts_of_s2, ["S#"])
    print(answer.to_table())

    section("7. The information-preserving union-join (outer join)")
    phones = XRelation.from_rows(["NAME", "FAX#"], [("SMITH", 111), ("NOBODY", 999)], name="FAX")
    print(union_join(XRelation(emp), phones, ["NAME"]).to_table())


if __name__ == "__main__":
    main()
