"""The Section 2 story: schema evolution with no-information nulls.

Replays the paper's motivating example — the database administrator adds a
TEL# column to EMP before any telephone numbers have been collected — and
shows, executably, why only the no-information interpretation keeps the
database factual:

1. Table I and Table II are information-wise equivalent (no information
   was added by the schema change);
2. the update behaviour users expect (new database contains the old one)
   holds as a fact for x-relations, while Codd's substitution-principle
   containment only reaches MAYBE;
3. dropping a column reports honestly whether information was lost.

Run with::

    python examples/employee_schema_evolution.py
"""

from repro import XRelation
from repro.codd import containment_truth, equality_truth
from repro.constraints import KeyConstraint
from repro.datagen import ps_double_prime, ps_prime, table_one, table_two
from repro.storage import Table, add_attribute, drop_attribute


def main() -> None:
    print("Table I (before the schema change):")
    before = table_one()
    print(before.to_table())
    print()

    # Build the table and apply the schema change.
    table = Table(before.schema, constraints=[KeyConstraint(["E#"])], name="EMP")
    table.insert_many(list(before.tuples()))
    report = add_attribute(table, "TEL#")
    print("After `add_attribute(EMP, TEL#)`:")
    print(table.to_table())
    print()
    print(f"Evolution report: {report}")
    print()

    after = table_two()
    print(
        "Information-wise equivalent to the paper's Table II? "
        f"{table.as_xrelation() == XRelation(after)}"
    )
    print(
        "Equivalent to the original Table I (no information added)? "
        f"{table.as_xrelation() == XRelation(before)}"
    )
    print()

    # Telephone numbers trickle in as they become available.
    print("Recording JONES' telephone number as it becomes available...")
    smith = table.lookup(["E#"], [1120])[0]
    table.update(smith, {**smith.as_dict(), "TEL#": 2634001})
    print(table.to_table())
    print()
    print(
        "The updated table x-contains the old one (the user's expectation): "
        f"{table.as_xrelation() >= XRelation(before)}"
    )
    print()

    # Contrast with Codd's three-valued containment on the PS'/PS'' pair.
    print("Contrast: the Section 1 update anomaly under Codd's approach")
    ps1, ps2 = ps_prime(), ps_double_prime()
    print(ps1.to_table())
    print()
    print(ps2.to_table())
    print()
    print(f"  Codd: PS'' ⊇ PS' evaluates to ... {containment_truth(ps2, ps1)}")
    print(f"  Codd: PS'  =  PS' evaluates to ... {equality_truth(ps1, ps1)}")
    print(f"  x-relations: PS'' ⊒ PS' is ...... {XRelation(ps2) >= XRelation(ps1)}")
    print(f"  x-relations: PS' = PS' is ....... {XRelation(ps1) == XRelation(ps1)}")
    print()

    # Dropping columns: the report is honest about information loss.
    lossless = drop_attribute(table, "SEX") if False else None  # keep SEX; demo below on a copy
    scratch = Table(table.schema, name="SCRATCH")
    scratch.insert_many(list(table.rows()))
    report_null_column = drop_attribute(scratch, "SEX")
    print(f"Dropping a populated column: {report_null_column}")
    scratch2 = Table(["E#", "FAX#"], name="SCRATCH2")
    scratch2.insert_many([(1, None), (2, None)])
    report_empty_column = drop_attribute(scratch2, "FAX#")
    print(f"Dropping an all-null column:  {report_empty_column}")


if __name__ == "__main__":
    main()
