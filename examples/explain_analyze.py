"""EXPLAIN ANALYZE with the streaming executor: estimates vs. actuals.

This example builds a three-table supply chain and runs one selective
3-way join through the session API, showing the streaming executor from
three angles:

* **lazy iteration** — the ``ResultSet`` drains the compiled operator
  tree on demand: the first rows stream out having read only the blocks
  they needed, with no intermediate relation materialised anywhere;
* **``explain()``** — the logical step trace, annotated ``est=…,
  rows=…`` once the pipeline has drained;
* **``explain(analyze=True)``** — the physical operator tree, one line
  per node with the cost model's estimate (``est=``), the rows the node
  actually produced (``actual rows=``) and the wall time spent in its
  iterator (``time=``, children included).  Where estimate and
  actual diverge, the cost model — not the executor — is what to
  improve; this is the measurable audit the estimates always promised.

Run with::

    python examples/explain_analyze.py
"""

import random

import repro
from repro.storage import Database


def build_database(size: int = 5_000, seed: int = 17) -> Database:
    rng = random.Random(seed)
    db = Database("supply-chain")
    parts = db.create_table("PARTS", ["P#", "WEIGHT", "COLOR"])
    stock = db.create_table("STOCK", ["P#", "S#", "QTY"])
    suppliers = db.create_table("SUPPLIERS", ["S#", "CITY"])

    def maybe(value):
        return None if rng.random() < 0.2 else value  # no-information nulls

    parts.insert_many(
        [(p, maybe(rng.randrange(100)), f"c{p % 9}") for p in range(size)]
    )
    stock.insert_many(
        [(rng.randrange(size), rng.randrange(size // 20), maybe(rng.randrange(50)))
         for _ in range(size)]
    )
    suppliers.insert_many([(s, f"city{s % 40}") for s in range(size // 20)])
    return db


QUERY = """
    range of p is PARTS range of st is STOCK range of s is SUPPLIERS
    retrieve (p.P#, s.S#, st.QTY)
    where p.P# = st.P# and st.S# = s.S#
      and s.CITY = "city3" and p.COLOR = "c1"
"""


def main() -> None:
    session = repro.connect(build_database())

    print("=== Streaming the first rows (nothing materialised yet) ===")
    result = session.execute(QUERY)
    for i, row in enumerate(result):
        print(f"  {dict(row.items())}")
        if i == 2:
            break

    print("\n=== The logical step trace (after draining) ===")
    print(f"  canonical answer: {len(result)} row(s)")
    print(result.explain())

    print("\n=== EXPLAIN ANALYZE: the physical operator tree ===")
    print(result.explain(analyze=True))

    print("\n=== The same audit after ANALYZE + an index ===")
    session.database.table("STOCK").create_index(["S#"], name="stock_s")
    session.database.analyze()
    again = session.execute(QUERY)
    print(again.explain(analyze=True))
    print("\n(the join against STOCK now probes the live index — compare "
          "the est/actual pairs across the two trees)")


if __name__ == "__main__":
    main()
