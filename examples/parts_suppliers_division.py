"""Section 6 end to end: universal quantification over incomplete data.

Reproduces the PARTS-SUPPLIERS example of display (6.6) and the three
readings of the query

    Q: find each supplier who supplies every part supplied by s2

comparing Codd's TRUE division (Q1), Codd's MAYBE division (Q2) and
Zaniolo's division (Q3), plus the difference query Q4 ("parts supplied by
s1 but not by s2").

Run with::

    python examples/parts_suppliers_division.py
"""

from repro import XRelation, divide, divide_by_images, project, select_constant
from repro.codd import codd_project, divide_maybe, divide_true, select_maybe, select_true
from repro.datagen import parts_suppliers


def show(title, values) -> None:
    rendered = ", ".join(sorted(values)) if values else "∅  (no supplier)"
    print(f"  {title:<58s} {{{rendered}}}" if values else f"  {title:<58s} {rendered}")


def main() -> None:
    ps = parts_suppliers()
    print("The PARTS-SUPPLIERS relation of display (6.6):")
    print(ps.to_table())
    print()

    # The divisor: parts supplied (for sure) by s2.
    ps_x = XRelation(ps)
    divisor_ours = project(select_constant(ps_x, "S#", "=", "s2"), ["P#"])
    divisor_codd = codd_project(select_true(ps, "S#", "=", "s2"), ["P#"])
    print("Parts supplied by s2:")
    print(f"  Codd TRUE selection then projection : {sorted(str(t) for t in divisor_codd.tuples())}")
    print(f"  Codd MAYBE selection                : {len(select_maybe(ps, 'S#', '=', 's2'))} rows (empty set)")
    print(f"  minimal x-relation                  : {sorted(str(t) for t in divisor_ours.rows())}")
    print()

    print("Q: find each supplier who supplies every part supplied by s2")
    a1 = {t["S#"] for t in divide_true(ps, divisor_codd, ["S#"]).tuples()}
    a2 = {t["S#"] for t in divide_maybe(ps, divisor_codd, ["S#"]).tuples()}
    a3 = {t["S#"] for t in divide(ps_x, divisor_ours, ["S#"]).rows()}
    a3_img = {t["S#"] for t in divide_by_images(ps_x, divisor_ours, ["S#"]).rows()}
    show("A1 — Codd TRUE division (Q1: for sure / may be supplied):", a1)
    show("A2 — Codd MAYBE division (Q2: may be / for sure):", a2)
    show("A3 — Zaniolo division (Q3: for sure / for sure):", a3)
    show("A3 — image-set formulation (6.5), must agree:", a3_img)
    print()

    print("The paradox the paper points out, made executable:")
    if "s2" not in a1:
        print("  Under Codd's TRUE division: 'for sure, s2 does NOT supply all")
        print("  the parts s2 supplies' — A1 is empty.")
    if "s2" in a3:
        print("  Under the ni division, s2 of course qualifies, and so does s1,")
        print("  the only other supplier known to supply p1.")
    print()

    print("Q4: find all parts supplied by s1 but not by s2")
    s1_parts = project(select_constant(ps_x, "S#", "=", "s1"), ["P#"])
    s2_parts = divisor_ours
    q4 = s1_parts - s2_parts
    print(f"  answer: {sorted(t['P#'] for t in q4.rows())}   (the paper prints {{p2}})")
    print()

    print("Image sets (the Z_R(y) of definition (6.4)):")
    for supplier in ("s1", "s2", "s3", "s4"):
        image = ps_x.image({"S#": supplier}, ["S#"], ["P#"])
        parts = sorted(t["P#"] for t in image.rows())
        print(f"  parts known to be supplied by {supplier}: {parts or '∅'}")


if __name__ == "__main__":
    main()
