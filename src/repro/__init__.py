"""repro — a reproduction of Zaniolo's *Database Relations with Null Values*.

The package re-exports the core public API at the top level so the common
objects can be imported directly::

    from repro import XTuple, Relation, XRelation, NI
    from repro import select_constant, project, divide, union_join
    from repro import Query, AttributeRef, Comparison, evaluate_lower_bound

Subpackages:

``repro.core``
    The paper's contribution: the no-information null, the tuple
    information lattice, x-relations, the generalised set operations and
    relational algebra, and lower-bound query evaluation.
``repro.quel``
    A QUEL front end (lexer, parser, analyser, evaluator, planner) able to
    run the paper's Figure 1 and Figure 2 queries verbatim, plus the DML
    statements (APPEND TO / DELETE / REPLACE) and ``$name`` parameters.
``repro.api``
    The client surface: ``repro.connect(db)`` returns a Session speaking
    full QUEL (queries and mutations) through the cost-based planner,
    with prepared-statement plan caching and transactions.
``repro.codd``
    The Codd 1979 baseline: MAYBE-flavoured three-valued logic, TRUE/MAYBE
    selections, joins and division, and null-substitution containment.
``repro.worlds``
    Possible-worlds (completion) semantics: certain and possible answers,
    used as a correctness oracle and a cost baseline.
``repro.tautology``
    The Appendix machinery: tautology detection by brute force and by a
    DPLL-based symbolic analysis.
``repro.constraints``
    Keys, NOT NULL, referential integrity and functional dependencies in
    the presence of nulls.
``repro.lien``
    The Lien 1979 nonexistent-null baseline and multivalued dependencies
    with nulls.
``repro.storage``
    An in-memory database substrate (catalog, tables, indexes, updates
    defined through the extended algebra).
``repro.obs``
    The observability layer: a dependency-free metrics registry
    (counters, gauges, log-bucketed histograms, a Prometheus text
    renderer) and the structured query traces every ``Session.execute``
    records.
``repro.datagen``
    Synthetic relation and workload generators used by the benchmarks.
``repro.io``
    CSV and JSON round-trips with explicit null markers.
"""

from .core import *  # noqa: F401,F403 — the core API is the package API
from .core import __all__ as _core_all
from .api import PreparedStatement, ResultSet, Session, Transaction, connect
from . import obs

__version__ = "1.2.0"

__all__ = list(_core_all) + [
    "PreparedStatement", "ResultSet", "Session", "Transaction", "connect",
    "obs", "__version__",
]
