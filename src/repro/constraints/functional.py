"""Functional dependencies over relations with null values.

Section 8 of the paper is candid that, at the time of writing, no
generalisation of functional (or multivalued) dependencies was known that
preserves all their classical design-theoretic properties.  The library
therefore offers the two standard candidate semantics for an FD ``X → Y``
in the presence of nulls, so their behaviour can be compared:

* **strong satisfaction** — every pair of rows that is X-total and agrees
  on X must be Y-total and agree on Y; rows with nulls in X simply do not
  constrain anything (the "no information" reading: a null provides no
  evidence either way), but once the determinant is known the dependent
  must be known too;
* **weak satisfaction** — there exists a completion (possible world) of
  the relation in which the classical FD holds.  This is the
  Lien/Atzeni–Morfuni style notion; deciding it here is done by a direct
  combinatorial argument (chase-like merging of X-groups), not by
  enumerating worlds.

Classical Armstrong reasoning (closure of an attribute set, implication of
an FD set) is provided for *total* relations/schemas, since the design
algorithms of the classical theory remain the baseline the paper compares
its remarks against.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..core.errors import ConstraintViolation
from ..core.nulls import is_ni
from ..core.relation import Relation
from ..core.tuples import XTuple


class FunctionalDependency:
    """An FD ``X → Y`` with both satisfaction notions."""

    def __init__(self, determinant: Sequence[str], dependent: Sequence[str], name: Optional[str] = None):
        self.determinant: Tuple[str, ...] = tuple(determinant)
        self.dependent: Tuple[str, ...] = tuple(dependent)
        if not self.determinant or not self.dependent:
            raise ConstraintViolation("an FD needs non-empty determinant and dependent sets")
        self.name = name or f"{','.join(self.determinant)} -> {','.join(self.dependent)}"

    # -- strong satisfaction -------------------------------------------------
    def violations(self, relation: Relation) -> List[Tuple[XTuple, XTuple]]:
        """Pairs of rows violating the FD under strong satisfaction."""
        result: List[Tuple[XTuple, XTuple]] = []
        rows = [r for r in relation.tuples() if r.is_total_on(self.determinant)]
        groups: Dict[Tuple, List[XTuple]] = {}
        for row in rows:
            key = tuple(row[a] for a in self.determinant)
            groups.setdefault(key, []).append(row)
        for group in groups.values():
            for i, first in enumerate(group):
                for second in group[i + 1:]:
                    if not self._dependents_compatible_strong(first, second):
                        result.append((first, second))
        return result

    def _dependents_compatible_strong(self, first: XTuple, second: XTuple) -> bool:
        for attribute in self.dependent:
            a, b = first[attribute], second[attribute]
            if is_ni(a) or is_ni(b) or a != b:
                return False
        return True

    def holds_strong(self, relation: Relation) -> bool:
        """Strong satisfaction: known determinants force equal, known dependents."""
        return not self.violations(relation)

    # -- weak satisfaction -----------------------------------------------------
    def holds_weak(self, relation: Relation) -> bool:
        """Weak satisfaction: some completion of the relation satisfies the FD.

        Rows that agree on their (total) determinant may be completed
        consistently iff their known dependent values do not conflict; rows
        with a null in the determinant can always be steered to a fresh
        determinant value, so they never create conflicts.
        """
        rows = [r for r in relation.tuples() if r.is_total_on(self.determinant)]
        groups: Dict[Tuple, List[XTuple]] = {}
        for row in rows:
            key = tuple(row[a] for a in self.determinant)
            groups.setdefault(key, []).append(row)
        for group in groups.values():
            for attribute in self.dependent:
                known = {row[attribute] for row in group if not is_ni(row[attribute])}
                if len(known) > 1:
                    return False
        return True

    def check(self, relation: Relation) -> None:
        """Raise :class:`ConstraintViolation` unless strongly satisfied."""
        violations = self.violations(relation)
        if violations:
            first, second = violations[0]
            raise ConstraintViolation(
                f"FD {self.name} violated by rows {first!r} and {second!r} "
                f"({len(violations)} violating pair(s) in total)"
            )

    def check_insert(self, relation: Relation, row: XTuple) -> None:
        """Guard one insert: the new row must not create a strong violation."""
        if not row.is_total_on(self.determinant):
            return
        key = tuple(row[a] for a in self.determinant)
        for existing in relation.tuples():
            if existing == row or not existing.is_total_on(self.determinant):
                continue
            if tuple(existing[a] for a in self.determinant) != key:
                continue
            if not self._dependents_compatible_strong(existing, row):
                raise ConstraintViolation(
                    f"FD {self.name}: inserting {row!r} conflicts with {existing!r}"
                )

    def check_bulk_insert(self, relation: Relation, rows: Sequence[XTuple]) -> None:
        """Batch form of :meth:`check_insert`: one determinant grouping pass.

        Equivalent to guarding the batch row by row against the relation as
        it grows, but the stored rows are grouped by determinant value once
        — O(|relation| + Σ group sizes) instead of a full scan per row.
        Batch rows also guard each other, exactly as in the sequential form.
        """
        staged = [row for row in rows if row.is_total_on(self.determinant)]
        if not staged:
            return
        groups: Dict[Tuple, List[XTuple]] = {}
        for existing in relation.tuples():
            if not existing.is_total_on(self.determinant):
                continue
            key = tuple(existing[a] for a in self.determinant)
            groups.setdefault(key, []).append(existing)
        for row in staged:
            key = tuple(row[a] for a in self.determinant)
            group = groups.setdefault(key, [])
            for existing in group:
                if existing == row:
                    continue
                if not self._dependents_compatible_strong(existing, row):
                    raise ConstraintViolation(
                        f"FD {self.name}: inserting {row!r} conflicts with {existing!r}"
                    )
            group.append(row)

    def __repr__(self) -> str:
        return f"FunctionalDependency({list(self.determinant)} -> {list(self.dependent)})"


# ---------------------------------------------------------------------------
# Classical Armstrong machinery (total-relation design theory)
# ---------------------------------------------------------------------------

def attribute_closure(attributes: Iterable[str], fds: Sequence[FunctionalDependency]) -> FrozenSet[str]:
    """The closure X+ of an attribute set under a set of FDs (Armstrong axioms)."""
    closure: Set[str] = set(attributes)
    changed = True
    while changed:
        changed = False
        for fd in fds:
            if set(fd.determinant) <= closure and not set(fd.dependent) <= closure:
                closure |= set(fd.dependent)
                changed = True
    return frozenset(closure)


def implies(fds: Sequence[FunctionalDependency], candidate: FunctionalDependency) -> bool:
    """Does the FD set logically imply *candidate* (for total relations)?"""
    return set(candidate.dependent) <= attribute_closure(candidate.determinant, fds)


def is_superkey(attributes: Iterable[str], schema_attributes: Iterable[str], fds: Sequence[FunctionalDependency]) -> bool:
    """Is the attribute set a superkey of the (total) schema under the FDs?"""
    return set(schema_attributes) <= attribute_closure(attributes, fds)


def candidate_keys(schema_attributes: Sequence[str], fds: Sequence[FunctionalDependency]) -> List[FrozenSet[str]]:
    """All minimal keys of a (total) schema under the FDs — exponential scan.

    Intended for the small schemas of the examples and tests; a design
    tool would use a smarter algorithm.
    """
    from itertools import combinations

    universe = tuple(schema_attributes)
    keys: List[FrozenSet[str]] = []
    for size in range(1, len(universe) + 1):
        for combo in combinations(universe, size):
            if any(key <= set(combo) for key in keys):
                continue
            if is_superkey(combo, universe, fds):
                keys.append(frozenset(combo))
    return keys
