"""Referential integrity (foreign keys) in the presence of nulls.

The standard extension, which the paper's Section 8 endorses as
unproblematic: a foreign-key value must either be wholly null (the
no-information placeholder — nothing is being referenced) or match the key
of some row in the referenced relation.  Partially-null composite foreign
keys are rejected, matching the "match simple" rule.
"""

from __future__ import annotations

from typing import AbstractSet, Optional, Sequence, Tuple

from ..core.errors import ReferentialViolation
from ..core.nulls import is_ni
from ..core.relation import Relation
from ..core.tuples import XTuple


class ForeignKeyConstraint:
    """``referencing(attrs) → referenced(key_attrs)``."""

    def __init__(
        self,
        attributes: Sequence[str],
        referenced_relation: str,
        referenced_attributes: Sequence[str],
        name: Optional[str] = None,
    ):
        self.attributes: Tuple[str, ...] = tuple(attributes)
        self.referenced_relation = referenced_relation
        self.referenced_attributes: Tuple[str, ...] = tuple(referenced_attributes)
        if len(self.attributes) != len(self.referenced_attributes):
            raise ReferentialViolation(
                "foreign key and referenced key must have the same number of attributes"
            )
        self.name = name or (
            f"fk({', '.join(self.attributes)}) -> "
            f"{referenced_relation}({', '.join(self.referenced_attributes)})"
        )

    # -- row-level checks ------------------------------------------------------
    def _classify(self, row: XTuple) -> str:
        null_count = sum(1 for a in self.attributes if is_ni(row[a]))
        if null_count == 0:
            return "total"
        if null_count == len(self.attributes):
            return "null"
        return "partial"

    def check_row(self, row: XTuple, referenced: Relation) -> None:
        kind = self._classify(row)
        if kind == "null":
            return
        if kind == "partial":
            raise ReferentialViolation(
                f"{self.name}: composite foreign key is partially null in {row!r}"
            )
        wanted = tuple(row[a] for a in self.attributes)
        for target in referenced.tuples():
            if all(
                not is_ni(target[ra]) and target[ra] == value
                for ra, value in zip(self.referenced_attributes, wanted)
            ):
                return
        raise ReferentialViolation(
            f"{self.name}: value {wanted!r} has no matching row in {referenced.name}"
        )

    # -- relation-level checks ----------------------------------------------------
    def check(self, referencing: Relation, referenced: Relation) -> None:
        for row in referencing.tuples():
            self.check_row(row, referenced)

    def check_insert(self, referencing: Relation, row: XTuple, referenced: Relation) -> None:
        self.check_row(row, referenced)

    def check_bulk_insert(
        self, referencing: Relation, rows: Sequence[XTuple], referenced: Relation
    ) -> None:
        """Batch form of :meth:`check_insert`: index the referenced keys once.

        Equivalent to checking the batch row by row in order while it is
        being inserted: for a *self*-referencing key (``referencing is
        referenced``) each staged row's referenced-key values become
        visible to the rows after it, exactly as in the sequential loop.
        """
        keys = set()
        for target in referenced.tuples():
            key = tuple(target[a] for a in self.referenced_attributes)
            if not any(is_ni(v) for v in key):
                keys.add(key)
        self_referencing = referencing is referenced
        for row in rows:
            kind = self._classify(row)
            if kind == "partial":
                raise ReferentialViolation(
                    f"{self.name}: composite foreign key is partially null in {row!r}"
                )
            if kind == "total":
                wanted = tuple(row[a] for a in self.attributes)
                if wanted not in keys:
                    raise ReferentialViolation(
                        f"{self.name}: value {wanted!r} has no matching row in {referenced.name}"
                    )
            if self_referencing:
                provided = tuple(row[a] for a in self.referenced_attributes)
                if not any(is_ni(v) for v in provided):
                    keys.add(provided)

    def check_delete(self, referencing: Relation, removed: XTuple, referenced: Relation) -> None:
        """Guard a delete from the *referenced* relation (restrict semantics)."""
        key = tuple(removed[a] for a in self.referenced_attributes)
        if any(is_ni(v) for v in key):
            return
        for row in referencing.tuples():
            if self._classify(row) != "total":
                continue
            if tuple(row[a] for a in self.attributes) == key:
                raise ReferentialViolation(
                    f"{self.name}: cannot delete {removed!r}; still referenced by {row!r}"
                )

    def check_bulk_delete(
        self,
        referencing: Relation,
        removed_rows: Sequence[XTuple],
        referenced: Relation,
        exclude: AbstractSet[XTuple] = frozenset(),
    ) -> None:
        """Batch form of :meth:`check_delete`: index the referencing keys once.

        One pass over the referencing relation builds the key index, then
        each removed row is a single dict probe — O(|referencing| +
        |batch|) instead of a full referencing scan per removed row.

        *exclude* names referencing rows that this same batch removes (the
        self-referencing-key case): a reference only restricts a delete if
        the referencing row *survives* the batch, so a batch may delete a
        row together with everything that references it — the deferred
        reading of restrict semantics.
        """
        holders = {}
        for row in referencing.tuples():
            if row in exclude or self._classify(row) != "total":
                continue
            holders.setdefault(tuple(row[a] for a in self.attributes), row)
        if not holders:
            return
        for removed in removed_rows:
            key = tuple(removed[a] for a in self.referenced_attributes)
            if any(is_ni(v) for v in key):
                continue
            row = holders.get(key)
            if row is not None:
                raise ReferentialViolation(
                    f"{self.name}: cannot delete {removed!r}; still referenced by {row!r}"
                )

    def __repr__(self) -> str:
        return (
            f"ForeignKeyConstraint({list(self.attributes)} -> "
            f"{self.referenced_relation}{list(self.referenced_attributes)})"
        )
