"""Integrity constraints in the presence of null values (Section 8, Appendix).

Keys and NOT NULL (:mod:`repro.constraints.keys`), foreign keys
(:mod:`repro.constraints.referential`), functional dependencies with
strong/weak satisfaction (:mod:`repro.constraints.functional`), and the
schema-level semantic constraints the Appendix's tautology analysis needs
(:mod:`repro.constraints.schema_constraints`).
"""

from .keys import KeyConstraint, NotNullConstraint
from .functional import (
    FunctionalDependency,
    attribute_closure,
    candidate_keys,
    implies,
    is_superkey,
)
from .referential import ForeignKeyConstraint
from .schema_constraints import BindingConstraint, RowConstraint, as_detector_constraints

__all__ = [
    "KeyConstraint", "NotNullConstraint",
    "FunctionalDependency", "attribute_closure", "candidate_keys", "implies", "is_superkey",
    "ForeignKeyConstraint",
    "BindingConstraint", "RowConstraint", "as_detector_constraints",
]
