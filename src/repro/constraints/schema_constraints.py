"""Schema-level semantic constraints used by the tautology analysis.

The Appendix's Figure 2 discussion turns on constraints the *schema*
implies but no tuple exhibits: an employee cannot be his own manager, nor
the manager of his own manager.  Deciding tautologies correctly under the
"unknown" interpretation requires the query processor to understand such
constraints; the paper's point is that this is expensive and, for
procedurally enforced constraints, impossible.

This module gives constraints a declarative, executable form:

* :class:`RowConstraint` — a predicate over a single row (e.g.
  ``E# ≠ MGR#``);
* :class:`BindingConstraint` — a predicate over a binding of several range
  variables (e.g. "no employee manages his own manager", which relates an
  ``e`` row and an ``m`` row);
* :func:`as_detector_constraints` — adapt either kind to the call shape
  expected by :class:`repro.tautology.TautologyDetector`, so the brute
  force layer only enumerates *legal* substitutions.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Mapping, Optional, Sequence

from ..core.errors import ConstraintViolation
from ..core.relation import Relation
from ..core.tuples import XTuple


class RowConstraint:
    """A boolean predicate that every (total enough) row must satisfy.

    The predicate receives the row and returns True when the row is
    acceptable.  Rows on which the predicate raises or cannot decide
    (because of nulls) should return True — constraints restrict *known*
    information only.
    """

    def __init__(self, relation_name: str, predicate: Callable[[XTuple], bool], name: Optional[str] = None):
        self.relation_name = relation_name
        self.predicate = predicate
        self.name = name or f"row_constraint({relation_name})"

    def check_row(self, row: XTuple) -> None:
        if not self.predicate(row):
            raise ConstraintViolation(f"{self.name}: row {row!r} violates the constraint")

    def check(self, relation: Relation) -> None:
        for row in relation.tuples():
            self.check_row(row)

    def check_insert(self, relation: Relation, row: XTuple) -> None:
        self.check_row(row)

    def check_bulk_insert(self, relation: Relation, rows: Sequence[XTuple]) -> None:
        """Batch form of :meth:`check_insert` (per-row; nothing to amortise)."""
        for row in rows:
            self.check_row(row)

    def __repr__(self) -> str:
        return f"RowConstraint({self.relation_name!r}, {self.name!r})"


class BindingConstraint:
    """A boolean predicate over a binding of range variables.

    Used to express cross-tuple semantic knowledge ("an employee is not the
    manager of his own manager") that the unknown-interpretation evaluator
    must respect when enumerating substitutions.
    """

    def __init__(self, variables: Sequence[str], predicate: Callable[[Mapping[str, XTuple]], bool], name: Optional[str] = None):
        self.variables = tuple(variables)
        self.predicate = predicate
        self.name = name or f"binding_constraint({', '.join(self.variables)})"

    def __call__(self, binding: Mapping[str, XTuple]) -> bool:
        if not all(variable in binding for variable in self.variables):
            return True
        return self.predicate(binding)

    def __repr__(self) -> str:
        return f"BindingConstraint({list(self.variables)}, {self.name!r})"


def as_detector_constraints(
    constraints: Iterable[object],
    variable_relations: Optional[Mapping[str, str]] = None,
) -> List[Callable[[Mapping[str, XTuple]], bool]]:
    """Adapt row/binding constraints to TautologyDetector constraint callables.

    *variable_relations* maps range-variable names to relation names so a
    :class:`RowConstraint` on relation R applies to every variable ranging
    over R.  Unknown constraint objects that are already callables are
    passed through.
    """
    adapted: List[Callable[[Mapping[str, XTuple]], bool]] = []
    variable_relations = dict(variable_relations or {})
    for constraint in constraints:
        if isinstance(constraint, BindingConstraint):
            adapted.append(constraint)
        elif isinstance(constraint, RowConstraint):
            relation_name = constraint.relation_name

            def row_adapter(binding: Mapping[str, XTuple], _constraint=constraint, _relation=relation_name) -> bool:
                for variable, row in binding.items():
                    if variable_relations.get(variable, _relation) != _relation:
                        continue
                    if not _constraint.predicate(row):
                        return False
                return True

            adapted.append(row_adapter)
        elif callable(constraint):
            adapted.append(constraint)  # type: ignore[arg-type]
        else:
            raise ConstraintViolation(f"cannot adapt constraint object {constraint!r}")
    return adapted
