"""Key and NOT NULL constraints in the presence of null values.

Section 8 of the paper notes that "basic constraints, such as uniqueness
of keys and referential integrity, can be extended and enforced in the
presence of null values, without major problems".  This module provides
that extension for keys:

* a :class:`NotNullConstraint` simply forbids ``ni`` in the listed
  attributes;
* a :class:`KeyConstraint` requires (a) every key attribute to be non-null
  in every row — a key value of "no information" cannot identify anything
  — and (b) no two distinct rows to agree on all key attributes.  This is
  the *entity integrity* reading standard since Codd (1979).

Constraints expose ``check`` (validate a whole relation) and
``check_insert`` (validate a candidate row against an existing relation),
which is what the storage layer calls on updates.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.errors import KeyViolation, NotNullViolation
from ..core.nulls import is_ni
from ..core.relation import Relation
from ..core.tuples import XTuple


class NotNullConstraint:
    """Forbids the null value in the given attributes."""

    def __init__(self, attributes: Sequence[str], name: Optional[str] = None):
        self.attributes: Tuple[str, ...] = tuple(attributes)
        self.name = name or f"not_null({', '.join(self.attributes)})"

    def check_row(self, row: XTuple) -> None:
        for attribute in self.attributes:
            if is_ni(row[attribute]):
                raise NotNullViolation(
                    f"{self.name}: attribute {attribute!r} is null in {row!r}"
                )

    def check_insert(self, relation: Relation, row: XTuple) -> None:
        self.check_row(row)

    def check_bulk_insert(self, relation: Relation, rows: Sequence[XTuple]) -> None:
        """Batch form of :meth:`check_insert` (per-row; nothing to amortise)."""
        for row in rows:
            self.check_row(row)

    def check(self, relation: Relation) -> None:
        for row in relation.tuples():
            self.check_row(row)

    def __repr__(self) -> str:
        return f"NotNullConstraint({list(self.attributes)})"


class KeyConstraint:
    """A (primary or candidate) key over the given attributes.

    Entity integrity: key attributes must be non-null, and the key values
    must be unique across the relation.
    """

    def __init__(self, attributes: Sequence[str], name: Optional[str] = None):
        self.attributes: Tuple[str, ...] = tuple(attributes)
        self.name = name or f"key({', '.join(self.attributes)})"

    def _key_of(self, row: XTuple) -> Tuple:
        values = []
        for attribute in self.attributes:
            value = row[attribute]
            if is_ni(value):
                raise KeyViolation(
                    f"{self.name}: key attribute {attribute!r} is null in {row!r}"
                )
            values.append(value)
        return tuple(values)

    def check_insert(self, relation: Relation, row: XTuple) -> None:
        key = self._key_of(row)
        for existing in relation.tuples():
            if existing == row:
                continue
            try:
                existing_key = self._key_of(existing)
            except KeyViolation:
                continue  # the full check will flag it; inserts only guard the new row
            if existing_key == key:
                raise KeyViolation(
                    f"{self.name}: duplicate key {key!r} (existing row {existing!r})"
                )

    def check_bulk_insert(self, relation: Relation, rows: Sequence[XTuple]) -> None:
        """Batch form of :meth:`check_insert`: one pass over the relation.

        Semantically equivalent to checking the batch row by row against the
        relation as it grows (the seed ``insert_many`` loop), but the
        existing keys are indexed once — O(|relation| + |batch|) instead of
        the quadratic scan-per-row.  Re-inserting a row identical to a
        stored row (or repeated within the batch) is permitted, exactly as
        in the sequential form: relations are sets, so it is a no-op.
        """
        existing: Dict[Tuple, XTuple] = {}
        for stored in relation.tuples():
            try:
                existing[self._key_of(stored)] = stored
            except KeyViolation:
                continue  # the full check will flag it; inserts only guard new rows
        staged: Dict[Tuple, XTuple] = {}
        for row in rows:
            key = self._key_of(row)
            holder = existing.get(key)
            if holder is not None and holder != row:
                raise KeyViolation(
                    f"{self.name}: duplicate key {key!r} (existing row {holder!r})"
                )
            prior = staged.get(key)
            if prior is not None and prior != row:
                raise KeyViolation(
                    f"{self.name}: duplicate key {key!r} within one batch "
                    f"({prior!r} and {row!r})"
                )
            staged[key] = row

    def check(self, relation: Relation) -> None:
        seen: Dict[Tuple, XTuple] = {}
        for row in relation.tuples():
            key = self._key_of(row)
            if key in seen:
                raise KeyViolation(
                    f"{self.name}: duplicate key {key!r} in rows {seen[key]!r} and {row!r}"
                )
            seen[key] = row

    def __repr__(self) -> str:
        return f"KeyConstraint({list(self.attributes)})"
