"""Certain and possible answers via possible-worlds enumeration.

Section 5 defines the two bounds of interest for a query Q over an
incomplete database:

* the lower bound ``||Q||_*`` — objects that satisfy Q in *every* possible
  world (certain answers);
* the upper bound ``||Q||^*`` — objects that satisfy Q in *some* possible
  world (possible answers).

Zaniolo's evaluation strategy computes a sound approximation of the lower
bound directly on the incomplete relations (in time linear in the number
of bindings); Vassiliou's and Lipski's approaches compute the exact bounds
under the "unknown" interpretation at much higher (co-NP / exponential)
cost.  This module implements the exact bounds by brute-force world
enumeration so that

* the three-valued lower bound can be *validated*: every answer it returns
  must be a certain answer under the unknown interpretation (tests), and
* the cost gap can be *measured*: world enumeration blows up exponentially
  in the number of nulls while the three-valued evaluation does not
  (experiments E4 and E10).

The evaluation of a query in a single (total) world is ordinary two-valued
evaluation, reusing the same :class:`~repro.core.query.Query` AST.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..core.query import Query
from ..core.relation import Relation
from ..core.tuples import XTuple
from ..core.xrelation import XRelation
from .completions import CompletionSpace


def _evaluate_in_world(query: Query, world: Sequence[Relation], variables: Sequence[str]) -> Set[XTuple]:
    """Evaluate *query* classically in a total world; return the answer rows."""
    world_by_variable: Dict[str, Relation] = dict(zip(variables, world))
    answers: Set[XTuple] = set()
    # Rebuild the binding enumeration against the completed relations.
    from itertools import product as iter_product
    row_lists = [list(world_by_variable[v].tuples()) for v in variables]
    for combo in iter_product(*row_lists):
        binding = dict(zip(variables, combo))
        if query.where.evaluate(binding).is_true():
            answers.add(XTuple(
                (output_name, ref.value(binding)) for output_name, ref in query.target
            ))
    return answers


class WorldsResult:
    """The outcome of a possible-worlds evaluation."""

    def __init__(
        self,
        certain: Set[XTuple],
        possible: Set[XTuple],
        world_count: int,
        output_attributes: Tuple[str, ...],
    ):
        self.certain = certain
        self.possible = possible
        self.world_count = world_count
        self.output_attributes = output_attributes

    def certain_relation(self, name: str = "certain") -> XRelation:
        return XRelation(Relation(self.output_attributes, self.certain, name=name, validate=False))

    def possible_relation(self, name: str = "possible") -> XRelation:
        return XRelation(Relation(self.output_attributes, self.possible, name=name, validate=False))

    def __repr__(self) -> str:
        return (
            f"WorldsResult(certain={len(self.certain)}, possible={len(self.possible)}, "
            f"worlds={self.world_count})"
        )


def evaluate_bounds(
    query: Query,
    domains: Optional[Mapping[str, Sequence[Any]]] = None,
    cap: int = 50_000,
    fresh_values: int = 1,
) -> WorldsResult:
    """Compute the exact certain/possible answers by world enumeration.

    The nulls of all range relations are enumerated jointly; the returned
    certain set is the intersection, and the possible set the union, of
    the per-world answers.
    """
    variables = list(query.ranges)
    relations = [query.ranges[v] for v in variables]
    space = CompletionSpace(relations, domains=domains, fresh_values=fresh_values)
    certain: Optional[Set[XTuple]] = None
    possible: Set[XTuple] = set()
    count = 0
    for world in space.worlds(cap=cap):
        answers = _evaluate_in_world(query, world, variables)
        possible |= answers
        certain = answers if certain is None else (certain & answers)
        count += 1
        if certain is not None and not certain and len(possible) >= _possible_upper_bound(query):
            # Both bounds can no longer change; the remaining worlds are
            # enumerated only when the caller wants the exact world count.
            pass
    if certain is None:
        certain = set()
    return WorldsResult(certain, possible, count, query.output_attributes())


def _possible_upper_bound(query: Query) -> int:
    """A crude upper bound on the size of the possible-answer set."""
    size = 1
    for relation in query.ranges.values():
        size *= max(1, len(relation))
    return size


def certain_answers(
    query: Query,
    domains: Optional[Mapping[str, Sequence[Any]]] = None,
    cap: int = 50_000,
    fresh_values: int = 1,
) -> XRelation:
    """The exact lower bound ``||Q||_*`` under the unknown interpretation."""
    return evaluate_bounds(query, domains=domains, cap=cap, fresh_values=fresh_values).certain_relation()


def possible_answers(
    query: Query,
    domains: Optional[Mapping[str, Sequence[Any]]] = None,
    cap: int = 50_000,
    fresh_values: int = 1,
) -> XRelation:
    """The exact upper bound ``||Q||^*`` under the unknown interpretation."""
    return evaluate_bounds(query, domains=domains, cap=cap, fresh_values=fresh_values).possible_relation()


def lower_bound_is_sound(
    query: Query,
    domains: Optional[Mapping[str, Sequence[Any]]] = None,
    cap: int = 50_000,
    fresh_values: int = 1,
) -> bool:
    """Check that the three-valued lower bound only returns certain answers.

    Soundness here is the natural generalisation to answers that may
    themselves contain nulls: a row ``t`` returned by the three-valued
    evaluation is *certain* when in **every** possible world the (total)
    answer set contains a row more informative than ``t``.  The paper's
    argument is that a where clause evaluating to TRUE only looks at
    non-null values, which no completion can change, so the same binding
    qualifies in every world; this function verifies that argument
    experimentally and is asserted on randomised databases by the test
    suite.
    """
    from ..core.query import evaluate_lower_bound

    approx = list(evaluate_lower_bound(query).rows())
    if not approx:
        return True
    variables = list(query.ranges)
    relations = [query.ranges[v] for v in variables]
    space = CompletionSpace(relations, domains=domains, fresh_values=fresh_values)
    for world in space.worlds(cap=cap):
        answers = _evaluate_in_world(query, world, variables)
        for row in approx:
            if not any(answer.more_informative_than(row) for answer in answers):
                return False
    return True
