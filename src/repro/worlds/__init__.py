"""Possible-worlds (completion) semantics for incomplete relations.

This package is the library's correctness oracle and cost baseline for the
"unknown" interpretation: it enumerates the completions of incomplete
relations (:mod:`repro.worlds.completions`) and computes exact certain and
possible answers (:mod:`repro.worlds.answers`), at the exponential cost
the paper contrasts with its three-valued lower-bound evaluation.
"""

from .completions import CompletionSpace, WorldSpaceTooLarge, completions, world_count
from .answers import (
    WorldsResult,
    certain_answers,
    evaluate_bounds,
    lower_bound_is_sound,
    possible_answers,
)

__all__ = [
    "CompletionSpace", "WorldSpaceTooLarge", "completions", "world_count",
    "WorldsResult", "certain_answers", "evaluate_bounds", "lower_bound_is_sound",
    "possible_answers",
]
