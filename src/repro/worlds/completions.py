"""Possible worlds of an incomplete relation: completion enumeration.

Under the "unknown" interpretation, a relation with nulls stands for the
set of total relations obtained by substituting a legal value for every
null occurrence — its *possible worlds* (the representation-system view of
Lipski and Imielinski–Lipski that Section 5 cites when defining the lower
bound ``||Q||_*`` and upper bound ``||Q||^*``).

This module enumerates completions:

* each ``ni``/unknown null occurrence ranges over the attribute's
  substitution domain (an explicit finite domain, or the active domain of
  the column plus a fresh value);
* marked nulls with the same label are substituted consistently — all of
  their occurrences receive the same value;
* the world count is the product of the per-site domain sizes, so the
  enumerators take (and enforce) an explicit cap; exceeding the cap is the
  experimental signal for the exponential cost the paper contrasts with
  its linear lower-bound evaluation (experiments E4 and E10).

The answers module builds certain/possible answers on top of this.
"""

from __future__ import annotations

from itertools import product as iter_product
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..core.domains import Domain, EnumeratedDomain, active_domain
from ..core.errors import DomainError
from ..core.nulls import MarkedNull, is_ni
from ..core.relation import Relation
from ..core.tuples import XTuple


class WorldSpaceTooLarge(DomainError):
    """Raised when the number of possible worlds exceeds the requested cap."""

    def __init__(self, world_count: int, cap: int):
        self.world_count = world_count
        self.cap = cap
        super().__init__(f"{world_count} possible worlds exceed the cap of {cap}")


#: One substitution site: either an anonymous null occurrence (row, attribute)
#: or a marked-null label shared by several occurrences.
AnonymousSite = Tuple[int, XTuple, str]


class CompletionSpace:
    """The space of completions of one or more relations.

    Parameters
    ----------
    relations:
        The incomplete relations, enumerated jointly (their nulls vary
        independently, except for shared marked-null labels).
    domains:
        Optional mapping from attribute name to a sequence of candidate
        values; attributes not listed fall back to their active domain
        across all the relations plus one fresh value.
    fresh_values:
        How many fresh (not-currently-present) values to add to each
        defaulted domain.  One is enough to distinguish "equal to some
        existing value" from "different from all of them"; more gives the
        enumeration finer resolution at exponential cost.
    """

    def __init__(
        self,
        relations: Sequence[Relation],
        domains: Optional[Mapping[str, Sequence[Any]]] = None,
        fresh_values: int = 1,
    ):
        self.relations = list(relations)
        self._domains = dict(domains or {})
        self._fresh_values = max(0, fresh_values)
        self._anonymous_sites: List[AnonymousSite] = []
        self._marked_labels: Dict[str, List[AnonymousSite]] = {}
        self._site_choices: List[List[Any]] = []
        self._collect_sites()

    # -- site discovery -----------------------------------------------------
    def _column_values(self, attribute: str) -> List[Any]:
        if attribute in self._domains:
            return list(self._domains[attribute])
        values: List[Any] = []
        for relation in self.relations:
            if attribute in relation.schema:
                for row in relation.tuples():
                    value = row[attribute]
                    if not is_ni(value) and not isinstance(value, MarkedNull) and value not in values:
                        values.append(value)
        for i in range(self._fresh_values):
            values.append(f"⊥{attribute}.{i}")
        if not values:
            raise DomainError(
                f"no substitution values available for attribute {attribute!r}; "
                f"provide an explicit domain"
            )
        return values

    def _collect_sites(self) -> None:
        marked_sites: Dict[str, List[AnonymousSite]] = {}
        marked_attribute: Dict[str, str] = {}
        for index, relation in enumerate(self.relations):
            for row in relation.sorted_rows():
                for attribute in relation.schema.attributes:
                    value = row[attribute]
                    if is_ni(value):
                        self._anonymous_sites.append((index, row, attribute))
                        self._site_choices.append(self._column_values(attribute))
                    elif isinstance(value, MarkedNull):
                        marked_sites.setdefault(value.label, []).append((index, row, attribute))
                        marked_attribute.setdefault(value.label, attribute)
        self._marked_labels = marked_sites
        self._marked_choices: Dict[str, List[Any]] = {
            label: self._column_values(marked_attribute[label]) for label in marked_sites
        }

    # -- size accounting ------------------------------------------------------
    def world_count(self) -> int:
        count = 1
        for choices in self._site_choices:
            count *= len(choices)
        for choices in self._marked_choices.values():
            count *= len(choices)
        return count

    def null_site_count(self) -> int:
        return len(self._anonymous_sites) + len(self._marked_labels)

    # -- enumeration -------------------------------------------------------------
    def worlds(self, cap: int = 100_000) -> Iterator[List[Relation]]:
        """Yield total versions of the relations, one list per possible world."""
        count = self.world_count()
        if count > cap:
            raise WorldSpaceTooLarge(count, cap)
        anonymous_choices = self._site_choices
        marked_labels = list(self._marked_labels)
        marked_choice_lists = [self._marked_choices[label] for label in marked_labels]
        for anon_assignment in iter_product(*anonymous_choices) if anonymous_choices else [()]:
            for marked_assignment in iter_product(*marked_choice_lists) if marked_choice_lists else [()]:
                yield self._materialise(anon_assignment, dict(zip(marked_labels, marked_assignment)))

    def _materialise(
        self, anon_assignment: Sequence[Any], marked_assignment: Mapping[str, Any]
    ) -> List[Relation]:
        per_row: Dict[Tuple[int, XTuple], Dict[str, Any]] = {}
        for (index, row, attribute), value in zip(self._anonymous_sites, anon_assignment):
            per_row.setdefault((index, row), {})[attribute] = value
        for label, sites in self._marked_labels.items():
            for index, row, attribute in sites:
                per_row.setdefault((index, row), {})[attribute] = marked_assignment[label]
        result: List[Relation] = []
        for index, relation in enumerate(self.relations):
            out = Relation(relation.schema, validate=False)
            rows = set()
            for row in relation.tuples():
                replacements = per_row.get((index, row))
                if replacements:
                    data = row.as_dict()
                    data.update(replacements)
                    # Marked nulls in unrelated columns of the same row also
                    # need replacing; as_dict keeps them, the update above
                    # already covered every site of this row.
                    rows.add(XTuple(data))
                else:
                    rows.add(row)
            out._rows = rows
            result.append(out)
        return result


def completions(
    relation: Relation,
    domains: Optional[Mapping[str, Sequence[Any]]] = None,
    cap: int = 100_000,
    fresh_values: int = 1,
) -> Iterator[Relation]:
    """Enumerate the possible worlds of a single relation."""
    space = CompletionSpace([relation], domains=domains, fresh_values=fresh_values)
    for world in space.worlds(cap=cap):
        yield world[0]


def world_count(
    relation: Relation,
    domains: Optional[Mapping[str, Sequence[Any]]] = None,
    fresh_values: int = 1,
) -> int:
    """The number of possible worlds of a relation (without enumerating them)."""
    return CompletionSpace([relation], domains=domains, fresh_values=fresh_values).world_count()
