"""Probability-qualified query answering (the Wong-style baseline).

The paper's Section 6 notes that, under incomplete information, queries
with the words "all"/"every" must be qualified — "for sure", "maybe", or
"with more than 50% probability".  The first two qualifiers are the Codd
baseline; this module supplies the third:

* :func:`select_with_threshold` — probabilistic selection: keep the rows
  whose probability of satisfying ``A θ k`` is at least the threshold;
* :func:`divide_with_threshold` — probabilistic division: a supplier
  qualifies when, for every divisor part, the probability that it supplies
  the part meets the threshold (independence across rows is assumed, as in
  the simplest reading of the statistical model);
* :func:`answer_spectrum` — how the answer set grows as the threshold
  drops from 1.0 (the certain answer) towards 0.0 (the possible answer),
  which is the trade-off curve the paper alludes to.

Thresholds of 1.0 recover the TRUE/ni answers on known data; thresholds
just above 0.0 approach Codd's MAYBE answers.  Tests assert both ends.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..core.errors import DomainError
from ..core.nulls import is_ni
from ..core.relation import Relation, RelationSchema
from ..core.threevalued import comparison_function
from ..core.tuples import XTuple
from .model import Distribution, ProbabilisticValue, column_distribution, probabilistic_relation


def _cell_probability(
    row: XTuple,
    attribute: str,
    op: str,
    constant: Any,
    distribution: Distribution,
) -> float:
    """Probability that ``row[attribute] θ constant`` holds."""
    func = comparison_function(op)
    value = row[attribute]
    if not is_ni(value):
        try:
            return 1.0 if func(value, constant) else 0.0
        except TypeError:
            return 0.0
    def predicate(candidate):
        try:
            return bool(func(candidate, constant))
        except TypeError:
            return False
    return distribution.probability_that(predicate)


def select_with_threshold(
    relation: Relation,
    attribute: str,
    op: str,
    constant: Any,
    threshold: float = 0.5,
    distributions: Optional[Mapping[str, Distribution]] = None,
) -> Relation:
    """Keep the rows satisfying ``A θ k`` with probability ≥ *threshold*."""
    if not 0.0 <= threshold <= 1.0:
        raise DomainError(f"threshold must lie in [0, 1], got {threshold}")
    if attribute not in relation.schema:
        raise DomainError(f"attribute {attribute!r} not in relation {relation.name!r}")
    distributions = dict(distributions or {})
    if attribute not in distributions:
        distributions[attribute] = column_distribution(relation, attribute)
    out = Relation(
        RelationSchema(
            relation.schema.attributes, relation.schema.domains(),
            name=f"{relation.name}[{attribute}{op}{constant!r} @ {threshold:.2f}]",
        ),
        validate=False,
    )
    out._rows = {
        row for row in relation.tuples()
        if _cell_probability(row, attribute, op, constant, distributions[attribute]) >= threshold
    }
    return out


def divide_with_threshold(
    dividend: Relation,
    divisor_values: Sequence[Any],
    by: str,
    over: str,
    threshold: float = 0.5,
    distributions: Optional[Mapping[str, Distribution]] = None,
) -> Set[Any]:
    """Probability-qualified division on a binary relation.

    Parameters mirror the paper's PS example: *by* is the grouping
    attribute (``S#``), *over* the divided attribute (``P#``), and
    *divisor_values* the parts that must (probably) be supplied.  A
    candidate qualifies when, for every divisor value ``z``, the
    probability that the candidate supplies ``z`` — one minus the product
    of per-row miss probabilities — reaches the threshold.
    """
    if not 0.0 <= threshold <= 1.0:
        raise DomainError(f"threshold must lie in [0, 1], got {threshold}")
    distributions = dict(distributions or {})
    if over not in distributions:
        distributions[over] = column_distribution(dividend, over)
    distribution = distributions[over]

    groups: Dict[Any, List[XTuple]] = {}
    for row in dividend.tuples():
        key = row[by]
        if is_ni(key):
            continue
        groups.setdefault(key, []).append(row)

    qualifying: Set[Any] = set()
    for candidate, rows in groups.items():
        satisfied = True
        for target in divisor_values:
            miss_probability = 1.0
            for row in rows:
                value = row[over]
                if not is_ni(value):
                    hit = 1.0 if value == target else 0.0
                else:
                    hit = distribution.probability(target)
                miss_probability *= (1.0 - hit)
            if 1.0 - miss_probability < threshold:
                satisfied = False
                break
        if satisfied:
            qualifying.add(candidate)
    return qualifying


def answer_spectrum(
    relation: Relation,
    attribute: str,
    op: str,
    constant: Any,
    thresholds: Sequence[float] = (1.0, 0.75, 0.5, 0.25, 0.01),
    distributions: Optional[Mapping[str, Distribution]] = None,
) -> List[Tuple[float, int]]:
    """Answer-set size as the probability threshold is relaxed.

    At 1.0 this is (essentially) the certain answer; as the threshold drops
    the answer grows towards the possible answer, tracing the accuracy/
    recall trade-off the statistical interpretation buys at the price of
    maintaining distributions.
    """
    return [
        (threshold, len(select_with_threshold(relation, attribute, op, constant, threshold, distributions)))
        for threshold in thresholds
    ]
