"""A statistical treatment of incomplete information (Wong 1982), as a baseline.

Section 2 and Section 6 of Zaniolo's paper point at Wong's approach [24]
as the "more informative interpretation" end of the design space: instead
of a bare null, an unknown value carries a **probability distribution**
over its domain (either given, or derived from the current database), and
queries such as "find every supplier who supplies red parts" are answered
with a qualifier like "with more than 50% probability".

This package implements a compact version of that model so the trade-off
the paper describes — better approximation of the real world versus extra
complexity — can be exercised and measured:

* :class:`Distribution` — a finite probability distribution over a
  domain, with the usual normalisation and support accessors;
* :class:`ProbabilisticValue` — a cell value that is either known or
  distributed; plain ``ni`` corresponds to "distributed, but nothing known
  about the distribution", which this model refines;
* :func:`column_distribution` — the empirical distribution of a column,
  the "computable from the current database" default the paper mentions;
* :func:`probabilistic_relation` — lift a relation with nulls to a
  probabilistic relation by assigning a distribution to every null cell.

Query answering on top of these values lives in
:mod:`repro.wong.queries`.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Mapping, Optional, Sequence, Tuple

from ..core.errors import DomainError
from ..core.nulls import is_ni
from ..core.relation import Relation
from ..core.tuples import XTuple


class Distribution:
    """A finite probability distribution over nonnull domain values."""

    __slots__ = ("_probabilities",)

    def __init__(self, probabilities: Mapping[Any, float]):
        cleaned: Dict[Any, float] = {}
        total = 0.0
        for value, weight in probabilities.items():
            if is_ni(value) or value is None:
                raise DomainError("distributions range over nonnull domain values only")
            if weight < 0:
                raise DomainError(f"negative probability {weight} for value {value!r}")
            if weight > 0:
                cleaned[value] = cleaned.get(value, 0.0) + float(weight)
                total += float(weight)
        if not cleaned or total <= 0:
            raise DomainError("a distribution needs at least one value with positive weight")
        self._probabilities = {value: weight / total for value, weight in cleaned.items()}

    @classmethod
    def uniform(cls, values: Iterable[Any]) -> "Distribution":
        values = list(values)
        if not values:
            raise DomainError("cannot build a uniform distribution over no values")
        return cls({value: 1.0 for value in values})

    @classmethod
    def point(cls, value: Any) -> "Distribution":
        return cls({value: 1.0})

    # -- accessors ------------------------------------------------------------
    def probability(self, value: Any) -> float:
        return self._probabilities.get(value, 0.0)

    def probability_that(self, predicate) -> float:
        """Total probability of the values satisfying a Python predicate."""
        return sum(weight for value, weight in self._probabilities.items() if predicate(value))

    def support(self) -> Tuple[Any, ...]:
        return tuple(sorted(self._probabilities, key=repr))

    def items(self) -> Tuple[Tuple[Any, float], ...]:
        return tuple(sorted(self._probabilities.items(), key=lambda pair: repr(pair[0])))

    def most_likely(self) -> Any:
        return max(self._probabilities.items(), key=lambda pair: (pair[1], repr(pair[0])))[0]

    def expected_value(self) -> float:
        """Expected value for numeric supports; raises otherwise."""
        try:
            return sum(value * weight for value, weight in self._probabilities.items())
        except TypeError:
            raise DomainError("expected_value is only defined for numeric supports") from None

    def __len__(self) -> int:
        return len(self._probabilities)

    def __repr__(self) -> str:
        inner = ", ".join(f"{value!r}: {weight:.3f}" for value, weight in self.items())
        return f"Distribution({{{inner}}})"


class ProbabilisticValue:
    """A cell value that is either known exactly or known as a distribution."""

    __slots__ = ("value", "distribution")

    def __init__(self, value: Any = None, distribution: Optional[Distribution] = None):
        if (value is None or is_ni(value)) == (distribution is None):
            raise DomainError(
                "a ProbabilisticValue is either a known value or a distribution, not both/neither"
            )
        self.value = None if distribution is not None else value
        self.distribution = distribution

    @property
    def is_known(self) -> bool:
        return self.distribution is None

    def probability_that(self, predicate) -> float:
        """Probability that the (possibly unknown) value satisfies *predicate*."""
        if self.is_known:
            return 1.0 if predicate(self.value) else 0.0
        return self.distribution.probability_that(predicate)

    def __repr__(self) -> str:
        if self.is_known:
            return f"ProbabilisticValue({self.value!r})"
        return f"ProbabilisticValue({self.distribution!r})"


def column_distribution(relation: Relation, attribute: str) -> Distribution:
    """The empirical distribution of the nonnull values of a column.

    This is the "probability distribution ... computable from the current
    database" default that the paper attributes to Wong's approach.
    """
    if attribute not in relation.schema:
        raise DomainError(f"attribute {attribute!r} not in relation {relation.name!r}")
    counts: Dict[Any, float] = {}
    for row in relation.tuples():
        value = row[attribute]
        if not is_ni(value):
            counts[value] = counts.get(value, 0.0) + 1.0
    if not counts:
        raise DomainError(f"column {attribute!r} holds no nonnull values to estimate from")
    return Distribution(counts)


def probabilistic_relation(
    relation: Relation,
    distributions: Optional[Mapping[str, Distribution]] = None,
) -> Dict[XTuple, Dict[str, ProbabilisticValue]]:
    """Lift a relation with nulls to per-row probabilistic cell assignments.

    Each null cell receives the supplied distribution for its attribute, or
    the column's empirical distribution when none is supplied.  The result
    maps each original row to its probabilistic view, keeping the original
    relation untouched (the ni model remains the source of truth).
    """
    distributions = dict(distributions or {})
    lifted: Dict[XTuple, Dict[str, ProbabilisticValue]] = {}
    for row in relation.tuples():
        cells: Dict[str, ProbabilisticValue] = {}
        for attribute in relation.schema.attributes:
            value = row[attribute]
            if is_ni(value):
                if attribute not in distributions:
                    distributions[attribute] = column_distribution(relation, attribute)
                cells[attribute] = ProbabilisticValue(distribution=distributions[attribute])
            else:
                cells[attribute] = ProbabilisticValue(value=value)
        lifted[row] = cells
    return lifted
