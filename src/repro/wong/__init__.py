"""The Wong (1982) statistical baseline: probability-qualified answers.

Implements the "more informative interpretation" end of the design space
the paper discusses in Sections 2 and 6: unknown values carry probability
distributions (given, or estimated from the database), and queries are
answered "with probability ≥ p".
"""

from .model import (
    Distribution,
    ProbabilisticValue,
    column_distribution,
    probabilistic_relation,
)
from .queries import answer_spectrum, divide_with_threshold, select_with_threshold

__all__ = [
    "Distribution", "ProbabilisticValue", "column_distribution", "probabilistic_relation",
    "answer_spectrum", "divide_with_threshold", "select_with_threshold",
]
