"""Compiled statement executors: what a prepared statement caches.

:func:`compile_statement` turns a parsed QUEL statement into an object
with ``execute(params) -> ResultSet`` and ``describe(params) -> str``.
Compilation does all the per-statement work that does not depend on the
bound parameter values — lexing and parsing already happened in the
session, so this is name resolution, semantic analysis, strategy choice
(e.g. which persistent index a single-range retrieve will probe) — and
execution does only the per-call work: substitute the ``$name`` values
and run.

Mutations route through the storage layer's *atomic* bulk entry points
via the :mod:`repro.exec` DML sinks (:class:`AppendSink` ≡
``insert_many``, :class:`DeleteSink` ≡ ``delete_many``,
:class:`ReplaceSink` ≡ delete-then-insert with post-state FK re-check),
so the constraint atomicity of the bulk mutation subsystem carries over
to every QUEL DML statement — and ``explain(analyze=True)`` renders the
sink-rooted physical tree.  Retrieves compile to *streaming* pipelines:
the returned :class:`~repro.api.results.ResultSet` drains the operator
tree on demand.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.errors import QuelSemanticError, StorageError
from ..core.nulls import is_ni
from ..core.query import (
    And,
    AttributeRef,
    Comparison,
    Parameter as CoreParameter,
    TruthConstant,
    bind_parameter,
)
from ..core.algebra import constant_predicate
from ..core.relation import RelationSchema
from ..core.tuples import XTuple
from ..core.xrelation import XRelation
from ..exec.operators import Filter, IndexProbe, Project, TableScan
from ..exec.pipeline import Pipeline, TraceStep
from ..exec.sinks import AppendSink, DeleteSink, ReplaceSink
from ..quel.analyzer import AnalyzedQuery, analyze
from ..quel.ast_nodes import (
    AppendStatement,
    Assignment,
    ColumnRef,
    DeleteStatement,
    Literal,
    Parameter,
    RangeDeclaration,
    ReplaceStatement,
    RetrieveStatement,
    TargetItem,
)
from ..quel.planner import Plan
from .results import ResultSet


def compile_statement(database, statement) -> "CompiledStatement":
    """Compile a parsed statement against *database* (name resolution,
    analysis, physical strategy choice)."""
    if isinstance(statement, RetrieveStatement):
        analyzed = analyze(statement, database)
        fast = _FastRetrieve.try_compile(database, analyzed)
        if fast is not None:
            return fast
        return _PlanRetrieve(database, analyzed)
    if isinstance(statement, AppendStatement):
        return _CompiledAppend(database, statement)
    if isinstance(statement, DeleteStatement):
        return _CompiledDelete(database, statement)
    if isinstance(statement, ReplaceStatement):
        return _CompiledReplace(database, statement)
    raise QuelSemanticError(f"cannot compile statement {statement!r}")


def _resolve_table(database, name: str):
    """The named table, resolved case-insensitively like the analyzer."""
    catalog = database.catalog
    if catalog.has_table(name):
        return catalog.table(name)
    for candidate in catalog.table_names():
        if candidate.lower() == name.lower():
            return catalog.table(candidate)
    raise QuelSemanticError(
        f"unknown relation {name!r}; available: "
        f"{', '.join(catalog.table_names())}"
    )


def _resolver(operand, schema=None, variable=None) -> Callable[[XTuple, Mapping[str, Any]], Any]:
    """A per-execution value resolver for an assignment operand.

    Literals close over their value, parameters read the bound params,
    column references (REPLACE only) read the current row.
    """
    if isinstance(operand, Literal):
        value = operand.value
        return lambda row, params, _v=value: _v
    if isinstance(operand, Parameter):
        name = operand.name
        return lambda row, params, _n=name: bind_parameter(params, _n)
    if isinstance(operand, ColumnRef):
        if variable is None or operand.variable != variable:
            raise QuelSemanticError(
                f"replacement value {operand} may reference only the "
                f"replaced range variable"
                if variable is not None else
                f"assignment value {operand} references a range variable, "
                f"but no ranges are declared"
            )
        if schema is not None and operand.attribute not in schema:
            raise QuelSemanticError(
                f"unknown attribute {operand} in assignment"
            )
        attribute = operand.attribute
        return lambda row, params, _a=attribute: row[_a]
    raise QuelSemanticError(f"unsupported assignment value {operand!r}")


def _check_assignments(table, assignments: Sequence[Assignment]) -> None:
    seen = set()
    for assignment in assignments:
        if assignment.attribute not in table.schema:
            raise QuelSemanticError(
                f"relation {table.name!r} has no attribute "
                f"{assignment.attribute!r} "
                f"(attributes: {', '.join(table.schema.attributes)})"
            )
        if assignment.attribute in seen:
            raise QuelSemanticError(
                f"attribute {assignment.attribute!r} assigned more than once"
            )
        seen.add(assignment.attribute)


class CompiledStatement:
    """Base class: an executable, parameterisable compiled statement.

    ``execute`` takes an optional *parallelism* knob (see
    :class:`repro.quel.planner.Plan`): the general retrieve path passes
    it through to plan compilation; the fast path and the DML statements
    accept and ignore it (an index probe or a mutation batch has nothing
    to partition).
    """

    #: Parameter names the statement template mentions.
    parameters: Tuple[str, ...] = ()

    def execute(
        self, params: Mapping[str, Any], parallelism=None
    ) -> ResultSet:
        raise NotImplementedError

    def describe(self, params: Optional[Mapping[str, Any]] = None) -> str:
        """A human-readable account of the chosen strategy."""
        raise NotImplementedError

    def referenced_tables(self) -> Optional[Tuple[Any, ...]]:
        """The stored tables this statement's answer is a pure function
        of, or ``None`` when the statement is not result-cacheable
        (mutations, RETRIEVE INTO, ranges over ad-hoc relations)."""
        return None


# ---------------------------------------------------------------------------
# RETRIEVE
# ---------------------------------------------------------------------------

class _PlanRetrieve(CompiledStatement):
    """The general retrieve path: cached analysis + cost-based plan,
    compiled to a streaming operator tree the result set drains lazily."""

    def __init__(self, database, analyzed: AnalyzedQuery):
        self.database = database
        self.analyzed = analyzed
        self.parameters = analyzed.parameters
        self.into = analyzed.into
        finder = getattr(database, "table_for_relation", None)
        tables = None
        if finder is not None and not self.into:
            tables = []
            for relation in analyzed.query.ranges.values():
                table = finder(relation)
                if table is None:
                    tables = None  # an ad-hoc range: not result-cacheable
                    break
                tables.append(table)
        self._tables = tuple(tables) if tables is not None else None

    def referenced_tables(self) -> Optional[Tuple[Any, ...]]:
        return self._tables

    def execute(
        self, params: Mapping[str, Any], parallelism=None
    ) -> ResultSet:
        started = time.perf_counter()
        query = self.analyzed.bind(params)
        plan = Plan(query, self.database, parallelism=parallelism)
        if self.into:
            # RETRIEVE INTO creates and loads a table: it must run now.
            answer = plan.execute()
            rows_affected = _materialize_into(self.database, self.into, answer)
            plan.steps.append(
                f"materialize {rows_affected} row(s) into new table {self.into}"
            )
            return ResultSet(answer, rows_affected=rows_affected, steps=plan.steps)
        pipeline = plan.compile()
        # Wall time of binding + planning + compilation, read by the
        # session's query trace to split the "plan" phase out of
        # "execute" (overwritten on every execution).
        self.last_plan_seconds = time.perf_counter() - started
        return ResultSet(pipeline=pipeline)

    def describe(self, params: Optional[Mapping[str, Any]] = None) -> str:
        # Unbound placeholders are described with null stand-ins (an
        # equality against null qualifies nothing, so the trace still
        # shows the chosen strategy) — explain() never requires params.
        bound = dict(params or {})
        for name in self.parameters:
            bound.setdefault(name, None)
        plan = Plan(self.analyzed.bind(bound), self.database)
        plan.execute()
        return "\n".join(plan.steps)


def _materialize_into(database, name: str, answer: XRelation) -> int:
    """RETRIEVE INTO: create the result table and bulk-load the answer."""
    if database.catalog.has_table(name):
        raise StorageError(
            f"retrieve into: table {name!r} already exists"
        )
    table = database.create_table(name, answer.schema.attributes)
    rows = list(answer.rows())
    table.insert_many(rows)
    return len(rows)


class _FastRetrieve(CompiledStatement):
    """The prepared-statement fast path: a fully compiled single-range
    conjunctive retrieve.

    Eligibility: one range bound to a stored table, a where clause that
    is a conjunction of ``column θ (literal | $param)`` comparisons (or
    absent), and no INTO.  Compilation picks the physical access path
    once — a persistent hash index covering the equality attributes, or
    a scan — and caches a **reusable operator-tree template with
    parameter slots**: each execution instantiates the template (a few
    node allocations — the probe values and filter constants resolve
    from the bound parameters) and hands the lazy pipeline to the result
    set, with none of the per-call analyze/plan machinery.
    """

    def __init__(
        self,
        database,
        table,
        variable: str,
        targets: Tuple[Tuple[str, str], ...],
        eq_probes: Tuple[Tuple[str, Callable], ...],
        residual: Tuple[Tuple[str, str, Callable], ...],
        index,
        parameters: Tuple[str, ...],
    ):
        self.database = database
        self.table = table
        self.variable = variable
        self.targets = targets
        self.eq_probes = eq_probes
        self.residual = residual
        self.index = index
        self.parameters = parameters
        self.output_attributes = tuple(output for output, _ in targets)

    # -- compilation ----------------------------------------------------------
    @classmethod
    def try_compile(cls, database, analyzed: AnalyzedQuery):
        query = analyzed.query
        if analyzed.into is not None or len(query.ranges) != 1:
            return None
        table_finder = getattr(database, "table_for_relation", None)
        if table_finder is None:
            return None
        (variable, relation), = query.ranges.items()
        table = table_finder(relation)
        if table is None:
            return None

        where = query.where
        if isinstance(where, TruthConstant):
            conjuncts: List[Comparison] = [] if where.truth.is_true() else None
            if conjuncts is None:
                return None
        elif isinstance(where, And):
            operands = where.operands
            if not all(isinstance(o, Comparison) for o in operands):
                return None
            conjuncts = list(operands)
        elif isinstance(where, Comparison):
            conjuncts = [where]
        else:
            return None

        # Each conjunct must compare one column of the range against a
        # literal or parameter; normalise so the column reads on the left.
        flat: List[Tuple[str, str, Any]] = []
        for conjunct in conjuncts:
            left, right = conjunct.left, conjunct.right
            op = conjunct.op
            if isinstance(left, AttributeRef) and not isinstance(right, AttributeRef):
                flat.append((left.attribute, op, right))
            elif isinstance(right, AttributeRef) and not isinstance(left, AttributeRef):
                flat.append((right.attribute, _FLIPPED[op], left))
            else:
                return None  # column-to-column or degenerate: generic path

        def value_resolver(term):
            if isinstance(term, CoreParameter):
                return lambda params, _n=term.name: bind_parameter(params, _n)
            value = term.literal
            return lambda params, _v=value: _v

        eq_attrs: Dict[str, Tuple[str, str, Any]] = {}
        for entry in flat:
            attribute, op, _term = entry
            if op in ("=", "==") and attribute not in eq_attrs:
                eq_attrs[attribute] = entry
        # The same physical choice the cost-based planner makes for its
        # pushed selections (one shared matcher — they cannot diverge).
        index, consumed_attrs = table.find_equality_index(list(eq_attrs))
        eq_attrs = {attribute: eq_attrs[attribute] for attribute in consumed_attrs}

        consumed = {id(entry) for entry in eq_attrs.values()}
        eq_probes = tuple(
            (attribute, value_resolver(eq_attrs[attribute][2]))
            for attribute in (index.attributes if index is not None else ())
        )
        residual = tuple(
            (entry[0], entry[1], value_resolver(entry[2]))
            for entry in flat
            if id(entry) not in consumed
        )
        targets = tuple(
            (output, ref.attribute) for output, ref in query.target
        )
        return cls(
            database, table, variable, targets, eq_probes, residual,
            index, analyzed.parameters,
        )

    # -- execution ------------------------------------------------------------
    def _step_texts(self) -> List[str]:
        """The template's step lines — the one source both the executed
        pipeline trace and :meth:`describe` render from, so the two can
        never drift apart."""
        if self.index is not None:
            described = " and ".join(
                f"{self.variable}.{a} = ?" for a, _ in self.eq_probes
            )
            steps = [
                f"index select {described} using index {self.index.name} "
                f"[prepared fast path]"
            ]
        else:
            steps = [f"scan {self.table.name} [prepared fast path]"]
        for attribute, op, _resolve in self.residual:
            steps.append(f"filter {self.variable}.{attribute} {op} ?")
        steps.append(f"project onto {list(self.output_attributes)}")
        return steps

    def make_pipeline(self, params: Mapping[str, Any]) -> Pipeline:
        """Instantiate the compiled template: bind the parameter slots
        and build the single-use operator tree (probe/scan → filters →
        project)."""
        nodes: List[Any] = []
        if self.index is not None:
            probe = [resolve(params) for _, resolve in self.eq_probes]
            node: Any = IndexProbe(
                self.index.lookup, probe,
                label=f"IndexProbe {self.index.name} ({self.variable})",
            )
        else:
            node = TableScan(
                self.table.relation.tuples(),
                label=f"TableScan {self.table.name} ({self.variable})",
            )
        nodes.append(node)
        for attribute, op, resolve in self.residual:
            # The shared constant-selection kernel — the same predicate
            # the planner's pushed selections stream through, so the fast
            # path cannot drift on null discipline.
            node = Filter(
                node, constant_predicate(attribute, op, resolve(params)),
                label=f"Filter {self.variable}.{attribute} {op} ?",
            )
            nodes.append(node)
        node = Project(
            node, self.targets, label=f"Project {list(self.output_attributes)}"
        )
        nodes.append(node)
        trace = [
            TraceStep(text, node=step_node, show_est=False)
            for text, step_node in zip(self._step_texts(), nodes)
        ]
        schema = RelationSchema(self.output_attributes, name="Q")
        return Pipeline(node, schema, trace)

    def execute(
        self, params: Mapping[str, Any], parallelism=None
    ) -> ResultSet:
        # A single probe/scan template: nothing worth partitioning.
        return ResultSet(pipeline=self.make_pipeline(params))

    def describe(self, params: Optional[Mapping[str, Any]] = None) -> str:
        return "\n".join(self._step_texts())

    def referenced_tables(self) -> Optional[Tuple[Any, ...]]:
        return (self.table,)


_FLIPPED = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "==": "==", "!=": "!="}


# ---------------------------------------------------------------------------
# DML
# ---------------------------------------------------------------------------

def _matching_rows_query(
    database,
    ranges: Tuple[RangeDeclaration, ...],
    variable: str,
    where,
    attributes: Tuple[str, ...],
) -> AnalyzedQuery:
    """An analysed query whose answer is the *variable*-rows matching
    *where*: the target list projects every attribute of the variable's
    relation under its bare name, so each output row IS a stored row."""
    targets = tuple(
        TargetItem(ColumnRef(variable, attribute), label=attribute)
        for attribute in attributes
    )
    statement = RetrieveStatement(ranges, targets, where)
    return analyze(statement, database)


class _CompiledDelete(CompiledStatement):
    """``delete v [where …]`` → matching rows → atomic ``delete_many``.

    Per Section 7, deletion is generalised difference: each matching row
    also removes every stored row it subsumes ((4.8)), and the whole
    batch is applied through the bulk path with referential checks."""

    def __init__(self, database, statement: DeleteStatement):
        self.database = database
        self.statement = statement
        declared = {d.variable: d for d in statement.ranges}
        if statement.variable not in declared:
            raise QuelSemanticError(
                f"delete target {statement.variable!r} is not a declared "
                f"range variable (declared: {', '.join(declared) or 'none'})"
            )
        self.table = _resolve_table(database, declared[statement.variable].relation)
        self.analyzed = _matching_rows_query(
            database, statement.ranges, statement.variable,
            statement.where, self.table.schema.attributes,
        )
        self.parameters = self.analyzed.parameters

    def execute(
        self, params: Mapping[str, Any], parallelism=None
    ) -> ResultSet:
        query = self.analyzed.bind(params)
        source = Plan(query, self.database).compile()
        sink = DeleteSink(self.database, self.table, source)
        count = sink.run()
        return ResultSet(
            rows_affected=count, steps=[self.describe(params)], tree=sink
        )

    def describe(self, params: Optional[Mapping[str, Any]] = None) -> str:
        where = f" where {self.statement.where}" if self.statement.where else ""
        return (
            f"delete from {self.table.name}{where} "
            f"via atomic delete_many (4.8 subsumption, FK-checked)"
        )


class _CompiledAppend(CompiledStatement):
    """``append to R (…)`` → one atomic ``insert_many`` batch."""

    def __init__(self, database, statement: AppendStatement):
        self.database = database
        self.statement = statement
        self.table = _resolve_table(database, statement.relation)
        _check_assignments(self.table, statement.assignments)
        self.analyzed: Optional[AnalyzedQuery] = None
        #: (attribute, column-label or None, resolver or None) per assignment.
        self.columns: List[Tuple[str, Optional[str], Optional[Callable]]] = []
        parameters: List[str] = []

        if statement.ranges:
            # The binding-enumeration sub-query projects EVERY attribute
            # of every declared range.  The answer is an x-relation
            # (minimal form): a qualifying binding always carries at
            # least one non-null attribute per range (null-tuple rows
            # never bind), so its full projection is never the null
            # tuple and cannot be minimized away — whereas projecting
            # only the assignment columns could collapse a qualifying
            # binding whose assigned columns are all null into the null
            # tuple and silently drop the append.  A full-projection row
            # dominated by another yields a dominated (redundant) append
            # row, so minimization stays harmless.
            targets: List[TargetItem] = []
            for declaration in statement.ranges:
                for attribute in _resolve_table(database, declaration.relation).schema.attributes:
                    targets.append(TargetItem(
                        ColumnRef(declaration.variable, attribute),
                        label=f"{declaration.variable}__{attribute}",
                    ))
            declared = {
                d.variable: _resolve_table(database, d.relation)
                for d in statement.ranges
            }
            for assignment in statement.assignments:
                if isinstance(assignment.value, ColumnRef):
                    reference = assignment.value
                    if reference.variable not in declared:
                        raise QuelSemanticError(
                            f"assignment value {reference} references an "
                            f"undeclared range variable "
                            f"(declared: {', '.join(declared)})"
                        )
                    if reference.attribute not in declared[reference.variable].schema:
                        raise QuelSemanticError(
                            f"assignment value {reference} names an unknown "
                            f"attribute"
                        )
                    self.columns.append((
                        assignment.attribute,
                        f"{reference.variable}__{reference.attribute}",
                        None,
                    ))
                else:
                    resolver = _resolver(assignment.value)
                    self.columns.append((assignment.attribute, None, resolver))
                    if isinstance(assignment.value, Parameter):
                        parameters.append(assignment.value.name)
            self.analyzed = analyze(
                RetrieveStatement(statement.ranges, tuple(targets), statement.where),
                database,
            )
            parameters.extend(
                n for n in self.analyzed.parameters if n not in parameters
            )
        else:
            if statement.where is not None:
                raise QuelSemanticError(
                    "append without range variables cannot have a where clause"
                )
            for assignment in statement.assignments:
                if isinstance(assignment.value, ColumnRef):
                    raise QuelSemanticError(
                        f"assignment value {assignment.value} references a "
                        f"range variable, but no ranges are declared"
                    )
                resolver = _resolver(assignment.value)
                self.columns.append((assignment.attribute, None, resolver))
                if isinstance(assignment.value, Parameter):
                    parameters.append(assignment.value.name)
        self.parameters = tuple(dict.fromkeys(parameters))

    def _row_builder(self, params: Mapping[str, Any]) -> Callable[[XTuple], XTuple]:
        """Map one source binding row to the row to append."""
        columns = self.columns

        def build(source: Optional[XTuple]) -> XTuple:
            values = {}
            for attribute, label, resolver in columns:
                value = source[label] if label is not None else resolver(source, params)
                if not is_ni(value):
                    values[attribute] = value
            return XTuple(values)

        return build

    def execute(
        self, params: Mapping[str, Any], parallelism=None
    ) -> ResultSet:
        if self.analyzed is None:
            sink = AppendSink(
                self.database, self.table,
                literal_rows=[self._row_builder(params)(None)],
            )
        else:
            query = self.analyzed.bind(params)
            source = Plan(query, self.database).compile()
            sink = AppendSink(
                self.database, self.table, source,
                row_builder=self._row_builder(params),
            )
        count = sink.run()
        return ResultSet(
            rows_affected=count, steps=[self.describe(params)], tree=sink
        )

    def describe(self, params: Optional[Mapping[str, Any]] = None) -> str:
        source = "from query ranges" if self.statement.ranges else "one literal row"
        return (
            f"append to {self.table.name} ({source}) "
            f"via atomic insert_many (constraints checked up front)"
        )


class _CompiledReplace(CompiledStatement):
    """``replace v (…) [where …]`` → delete-then-insert, wholesale rollback.

    Section 7: "a modification can be viewed as a deletion followed by an
    addition".  The matching rows are removed through the (4.8) bulk
    difference, the replacements inserted through the atomic bulk union,
    and foreign keys are re-checked against the *post* state — on any
    failure the table is restored to its pre-statement rows.
    """

    def __init__(self, database, statement: ReplaceStatement):
        self.database = database
        self.statement = statement
        declared = {d.variable: d for d in statement.ranges}
        if statement.variable not in declared:
            raise QuelSemanticError(
                f"replace target {statement.variable!r} is not a declared "
                f"range variable (declared: {', '.join(declared) or 'none'})"
            )
        self.table = _resolve_table(database, declared[statement.variable].relation)
        _check_assignments(self.table, statement.assignments)
        self.assignments: List[Tuple[str, Callable]] = []
        parameters: List[str] = []
        for assignment in statement.assignments:
            resolver = _resolver(
                assignment.value,
                schema=self.table.schema,
                variable=statement.variable,
            )
            self.assignments.append((assignment.attribute, resolver))
            if isinstance(assignment.value, Parameter):
                parameters.append(assignment.value.name)
        self.analyzed = _matching_rows_query(
            database, statement.ranges, statement.variable,
            statement.where, self.table.schema.attributes,
        )
        parameters.extend(n for n in self.analyzed.parameters if n not in parameters)
        self.parameters = tuple(dict.fromkeys(parameters))

    def execute(
        self, params: Mapping[str, Any], parallelism=None
    ) -> ResultSet:
        query = self.analyzed.bind(params)
        source = Plan(query, self.database).compile()
        assignments = self.assignments

        def build(old: XTuple) -> XTuple:
            values = dict(old.items())
            for attribute, resolver in assignments:
                value = resolver(old, params)
                if is_ni(value):
                    values.pop(attribute, None)
                else:
                    values[attribute] = value
            return XTuple(values)

        sink = ReplaceSink(self.database, self.table, source, build)
        count = sink.run()
        return ResultSet(
            rows_affected=count, steps=[self.describe(params)], tree=sink
        )

    def describe(self, params: Optional[Mapping[str, Any]] = None) -> str:
        where = f" where {self.statement.where}" if self.statement.where else ""
        return (
            f"replace in {self.table.name}{where} via delete_many + "
            f"insert_many (deletion followed by addition, post-state FK check)"
        )
