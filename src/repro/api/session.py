"""Sessions: the single client surface of the reproduction.

``repro.connect(database)`` returns a :class:`Session` that speaks the
full QUEL statement set — RETRIEVE (with INTO materialisation), APPEND
TO, DELETE, REPLACE, all with ``$name`` parameters — through one method::

    session = repro.connect(db)
    session.execute('append to EMP (E# = $e, NAME = $n)', {"e": 1, "n": "SMITH"})
    rows = session.execute('range of e is EMP retrieve (e.NAME)')

Every statement runs lexer → parser → analyzer → cost-based plan →
execution; retrieves compile to a streaming :mod:`repro.exec` operator
tree the returned result set drains lazily (iterate for first rows
without materialising; ``.rows`` for the canonical sorted answer;
``explain(analyze=True)`` for the per-operator est/actual/time audit),
and mutations route through the storage layer's atomic bulk paths via
the DML sinks.  :meth:`Session.prepare` returns a :class:`PreparedStatement`
whose compiled plan lives in a session LRU keyed by the statement's
*normalized AST* and stamped with the database's catalog/index/stats
epoch — re-executing skips lexing, parsing, analysis and planning
entirely, and any DDL, index change or ANALYZE transparently re-plans on
the next execution.  :meth:`Session.transaction` gives all-or-nothing
multi-statement groups (snapshot-based undo); outside a transaction each
statement autocommits.
"""

from __future__ import annotations

import time
import weakref
from collections import OrderedDict, deque
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from ..core.errors import SessionClosedError, StaleResultError, StorageError
from ..obs import ERROR_RATIO_BUCKETS, QueryTrace, registry_for, slow_query_logger
from ..quel.ast_nodes import (
    AppendStatement,
    DeleteStatement,
    ReplaceStatement,
    RetrieveStatement,
    Statement,
    normalize_statement,
)
from ..quel.parser import parse_statement
from .compiled import CompiledStatement, compile_statement
from .result_cache import CACHED_STEP, DEFAULT_RESULT_CACHE_SIZE, ResultCache
from .results import ResultSet


def _statement_kind(statement: Statement) -> str:
    """The metric label for a parsed statement ("retrieve", "append", …)."""
    if isinstance(statement, RetrieveStatement):
        return "retrieve"
    if isinstance(statement, AppendStatement):
        return "append"
    if isinstance(statement, DeleteStatement):
        return "delete"
    if isinstance(statement, ReplaceStatement):
        return "replace"
    return type(statement).__name__.replace("Statement", "").lower() or "unknown"


def _collect_operators(root) -> List[Dict[str, Any]]:
    """Flatten a physical tree into per-operator actuals (depth-first,
    root first) — what a trace's ``operators`` list holds."""
    out: List[Dict[str, Any]] = []

    def visit(node, depth: int) -> None:
        out.append({
            "operator": type(node).__name__,
            "label": node.label,
            "depth": depth,
            "est": node.est,
            "rows": node.actual_rows,
            "blocks": node.actual_blocks,
            "seconds": node.seconds,
        })
        for child in node.children:
            visit(child, depth + 1)

    visit(root, 0)
    return out


class PreparedStatement:
    """A statement compiled once, executable many times.

    The compiled form (analysis + physical strategy) is stamped with the
    database epoch at compile time; :meth:`execute` re-compiles
    transparently when the epoch moved (any DDL, index or ANALYZE change
    since), so a cached plan can never silently use a dropped index or
    miss a new one.
    """

    def __init__(
        self,
        session: "Session",
        text: str,
        statement: Statement,
        statement_key: Any = None,
    ):
        self.session = session
        self.text = text
        self.statement = statement
        #: The normalized-AST cache key (shared with the plan cache and
        #: the semantic result cache, so equivalent texts share entries).
        self.statement_key = (
            statement_key if statement_key is not None
            else normalize_statement(statement)
        )
        self._compiled: Optional[CompiledStatement] = None
        self._epoch: Optional[int] = None
        #: How many times this statement was (re)compiled — observable
        #: evidence of plan-cache hits and epoch invalidations.
        self.compile_count = 0

    def _ensure_compiled(self) -> CompiledStatement:
        self.session._check_open()
        database = self.session.database
        epoch = getattr(database, "epoch", None)
        if self._compiled is None or epoch != self._epoch:
            if self._compiled is not None:
                # A cached plan invalidated by DDL / index / ANALYZE.
                self.session._plan_cache_metric.labels(event="stale_epoch").inc()
            self._compiled = compile_statement(database, self.statement)
            self._epoch = epoch
            self.compile_count += 1
        return self._compiled

    @property
    def parameters(self) -> Tuple[str, ...]:
        """The ``$name`` placeholders the statement expects."""
        return self._ensure_compiled().parameters

    def execute(
        self,
        params: Optional[Mapping[str, Any]] = None,
        parallelism: Optional[Any] = None,
    ) -> ResultSet:
        """Run the statement.  *parallelism* (``None``/``1``/``N``/
        ``"auto"``) selects partitioned parallel execution for retrieves
        — see :class:`repro.quel.planner.Plan`; DML and the fast path
        ignore it."""
        self.session._check_open()
        result = self._ensure_compiled().execute(params or {}, parallelism=parallelism)
        self.session._track_result(result)
        return result

    def explain(self, params: Optional[Mapping[str, Any]] = None) -> str:
        """The currently chosen strategy (re-planned if the epoch moved)."""
        return self._ensure_compiled().describe(params)

    def __repr__(self) -> str:
        return f"PreparedStatement({self.text.strip()!r})"


class Transaction:
    """An all-or-nothing group of statements (a context manager).

    Entering takes a snapshot of every table's rows, index definitions
    and the foreign-key list; leaving normally commits (discards the
    snapshot), leaving through an exception — or calling
    :meth:`rollback` — restores the snapshot wholesale through the bulk
    rebuild path, drops any table created inside the group and removes
    any foreign key added inside it.  Tables *dropped* inside the group
    cannot be recreated from the row snapshot and make the rollback fail
    loudly rather than silently diverge.
    """

    def __init__(self, session: "Session"):
        self.session = session
        self._snapshot: Optional[Mapping[str, Any]] = None
        self._tables: Tuple[str, ...] = ()
        self._foreign_keys: Optional[list] = None
        self._active = False

    @property
    def active(self) -> bool:
        return self._active

    def begin(self) -> "Transaction":
        """Start the group explicitly (what ``__enter__`` does) — for
        callers whose begin and commit/rollback live in different scopes,
        like the server mapping them onto separate HTTP requests."""
        if self._active:
            raise StorageError("transaction already entered")
        self.session._check_open()
        database = self.session.database
        self._snapshot = database.snapshot()
        self._tables = tuple(database.catalog.table_names())
        self._foreign_keys = database.catalog.foreign_key_entries()
        self._active = True
        self.session._transactions.append(self)
        self._mark("begin")
        return self

    def __enter__(self) -> "Transaction":
        return self.begin()

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._active:
            try:
                if exc_type is not None:
                    self._rollback()
                else:
                    self._mark("commit")
            finally:
                self._close()
        return False  # never swallow the exception

    def commit(self) -> None:
        """Keep the group's effects and end the transaction."""
        if not self._active:
            raise StorageError("transaction is not active")
        try:
            self._mark("commit")
        finally:
            self._close()

    def rollback(self) -> None:
        """Undo the group's effects and end the transaction."""
        if not self._active:
            raise StorageError("transaction is not active")
        try:
            self._rollback()
        finally:
            self._close()

    def _rollback(self) -> None:
        """Restore the snapshot, then *always* log the abort marker.

        The marker must land even when the rollback itself raises (a
        table dropped inside the group, a created table wedged by a
        surviving foreign key): it follows whatever compensating records
        :meth:`_restore` did manage to log, closing the group so the
        log's transaction depth returns to zero — otherwise every later
        autocommitted statement would be buffered inside the permanently
        open group (and discarded at recovery) and every checkpoint would
        silently skip, a total durability loss after one failed rollback.
        """
        try:
            self._restore()
        finally:
            self._mark("abort")

    def _close(self) -> None:
        self._active = False
        if self in self.session._transactions:
            self.session._transactions.remove(self)

    def _mark(self, op: str) -> None:
        """Write a transaction marker to the write-ahead log, if one is
        attached.  Replay discards a group whose close marker never made
        it to disk; an ``abort`` marker lands *after* the rollback's
        compensating restore records, so an aborted group replays to the
        same (pre-group) state it left in memory.  Under ``sync="commit"``
        the close markers are the fsync points — the group's records ride
        one flush."""
        self.session._txn_metric.labels(
            op="rollback" if op == "abort" else op
        ).inc()
        wal = getattr(self.session.database, "wal", None)
        if wal is not None:
            wal.append({"op": op})

    def _restore(self) -> None:
        database = self.session.database
        missing = [
            name for name in self._tables if not database.catalog.has_table(name)
        ]
        if missing:
            raise StorageError(
                f"cannot roll back: table(s) {missing} were dropped inside "
                f"the transaction (schema undo beyond creation is not supported)"
            )
        # Foreign keys revert to the entry snapshot first — additions made
        # inside the group go away with it, which also unblocks
        # Database.restore's drop of any table created inside the group
        # (a group-added key referencing a created table would otherwise
        # wedge the drop).  Renames re-enter under the new owner name,
        # which the restore filter tolerates.
        database.catalog.restore_foreign_keys(self._foreign_keys)
        database.restore(self._snapshot)


class Session:
    """A connection-like object over a :class:`repro.storage.Database`.

    Parameters
    ----------
    database:
        The database to speak to (``repro.storage.Database``).
    cache_size:
        Capacity of the prepared-statement LRU (0 disables caching).
    trace_capacity:
        How many recent :class:`~repro.obs.QueryTrace` spans the session
        retains (see :meth:`recent_traces`).
    result_cache_size:
        Capacity of the semantic result cache (materialized answers keyed
        by normalized statement + bound parameters + table versions; see
        :mod:`repro.api.result_cache`).  ``0`` disables result caching —
        every retrieve then re-executes.
    adaptive_feedback:
        When True (default), every drained plan folds its per-step
        actual/estimated row ratios back into the scanned tables'
        statistics as bounded correction factors the optimizer consults
        on the next plan (see
        :meth:`repro.stats.TableStatistics.observe_estimate`).

    Every :meth:`execute` call opens a query trace — phase wall times
    (parse → analyze → plan → execute), statement kind, plan shape and
    rows in/out — and reports into the database's metrics registry
    (``repro.obs``): statements by kind and outcome, latency histograms,
    plan-cache hit/miss/stale-epoch counters, transaction markers, and —
    once a lazy pipeline drains — the per-operator actuals, exchange
    shard statistics and the planner's estimate-vs-actual error.
    Setting :attr:`slow_query_threshold` (seconds) additionally routes
    statements slower than the threshold to the slow-query log
    (``repro.obs.slow_query_logger``) and the
    ``repro_slow_queries_total`` counter.
    """

    def __init__(
        self,
        database,
        cache_size: int = 128,
        trace_capacity: int = 64,
        result_cache_size: int = DEFAULT_RESULT_CACHE_SIZE,
        adaptive_feedback: bool = True,
    ):
        if not hasattr(database, "catalog"):
            raise TypeError(
                f"connect() needs a repro.storage.Database, got {database!r}"
            )
        self.database = database
        self.cache_size = cache_size
        #: The semantic result cache (None when disabled).
        self.result_cache: Optional[ResultCache] = (
            ResultCache(database, result_cache_size)
            if result_cache_size > 0 else None
        )
        #: Whether drained plans feed estimate errors back into table
        #: statistics (the optimizer's adaptive correction loop).
        self.adaptive_feedback = adaptive_feedback
        self._statements: "OrderedDict[Any, PreparedStatement]" = OrderedDict()
        self._transactions: List[Transaction] = []
        self._closed = False
        #: Undrained lazy pipelines this session handed out — close()
        #: invalidates them so a released connection cannot keep
        #: streaming.  Weak: a garbage-collected result set needs no
        #: invalidation.
        self._pipelines: "weakref.WeakSet" = weakref.WeakSet()
        #: Context stamped onto every new trace's ``tags`` (the server
        #: sets client/request ids here before dispatching a statement).
        self.trace_tags: Dict[str, Any] = {}
        #: Statements slower than this many wall seconds go to the
        #: slow-query log (None disables it).
        self.slow_query_threshold: Optional[float] = None
        self._traces: "deque[QueryTrace]" = deque(maxlen=max(1, trace_capacity))
        registry = registry_for(database)
        #: The metrics registry this session reports into (resolved once:
        #: the database's own registry, or the process-global default).
        self.metrics = registry
        self._statements_metric = registry.counter(
            "repro_statements_total",
            "Statements executed through Session.execute, by kind and outcome.",
            ("kind", "outcome"),
        )
        self._latency_metric = registry.histogram(
            "repro_statement_seconds",
            "Wall time of successful statements (result-set construction; "
            "a lazy retrieve's drain time lands in the exec series).",
            ("kind",),
        )
        self._plan_cache_metric = registry.counter(
            "repro_plan_cache_total",
            "Prepared-statement cache events: hit, miss, stale_epoch "
            "(cached plan invalidated by DDL / index / ANALYZE).",
            ("event",),
        )
        self._txn_metric = registry.counter(
            "repro_transactions_total",
            "Transaction markers: begin, commit, rollback.",
            ("op",),
        )
        self._slow_metric = registry.counter(
            "repro_slow_queries_total",
            "Statements that crossed Session.slow_query_threshold.",
        )
        self._exec_rows_metric = registry.counter(
            "repro_exec_rows_total",
            "Rows emitted by completed operator trees (root output).",
        )
        self._exec_blocks_metric = registry.counter(
            "repro_exec_blocks_total",
            "Blocks pulled across all operators of completed trees.",
        )
        self._operator_rows_metric = registry.counter(
            "repro_exec_operator_rows_total",
            "Rows produced per physical operator type.",
            ("operator",),
        )
        self._operator_seconds_metric = registry.counter(
            "repro_exec_operator_seconds_total",
            "Wall seconds spent per physical operator type (children included).",
            ("operator",),
        )
        self._stale_metric = registry.counter(
            "repro_exec_stale_results_total",
            "Drains aborted by StaleResultError (undrained result set "
            "whose live-probed table mutated).",
        )
        self._est_error_metric = registry.histogram(
            "repro_plan_estimate_error_ratio",
            "Actual/estimated row ratio per estimated plan step "
            "(1.0 = perfect estimate), recorded when the plan drains.",
            buckets=ERROR_RATIO_BUCKETS,
        )
        self._shard_rows_metric = registry.counter(
            "repro_exchange_shard_rows_total",
            "Rows reduced per parallel worker shard.",
            ("partition",),
        )
        self._shard_seconds_metric = registry.counter(
            "repro_exchange_shard_seconds_total",
            "Wall seconds per parallel worker shard.",
            ("partition",),
        )
        self._skew_metric = registry.gauge(
            "repro_exchange_skew",
            "Shard skew (max/mean rows) of the most recent parallel drain.",
        )

    # -- lifecycle ------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise SessionClosedError(
                "this session is closed; its prepared statements and "
                "undrained result sets were invalidated by Session.close()"
            )

    def _track_result(self, result: ResultSet) -> None:
        """Remember *result*'s lazy pipeline so close() can invalidate it."""
        pipeline = result.pipeline
        if pipeline is not None:
            self._pipelines.add(pipeline)

    def close(self) -> None:
        """Release the session: roll back any open transaction, invalidate
        every prepared handle and undrained lazy result set, and make all
        later statement entry points raise :class:`SessionClosedError`.

        Idempotent — a second close is a no-op.  The underlying database
        is shared (other sessions may still speak to it) and is *not*
        closed here.
        """
        if self._closed:
            return
        self._closed = True
        # Open groups roll back: a connection that vanished mid-group
        # must not leave its half-applied statements behind.
        for transaction in list(self._transactions):
            if transaction.active:
                try:
                    transaction.rollback()
                except Exception:
                    pass  # close() must always complete
        error = SessionClosedError(
            "the session owning this result set was closed before the "
            "result was drained; re-execute the statement on a live session"
        )
        for pipeline in list(self._pipelines):
            pipeline.invalidate(error)
        self._pipelines.clear()
        self._statements.clear()

    def __enter__(self) -> "Session":
        self._check_open()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # -- statements -----------------------------------------------------------
    def _new_trace(self, text: str) -> QueryTrace:
        trace = QueryTrace(text)
        if self.trace_tags:
            trace.tags.update(self.trace_tags)
        return trace

    def prepare(self, text: str) -> PreparedStatement:
        """Parse *text* once and return its (cached) prepared statement.

        The cache key is the statement's normalized AST, so texts
        differing only in whitespace, comments or source positions share
        one compiled plan; ``$name`` placeholders normalize by name, so
        one template serves every binding.
        """
        self._check_open()
        statement = parse_statement(text)
        key = normalize_statement(statement)
        cached = self._statements.get(key)
        if cached is not None:
            self._plan_cache_metric.labels(event="hit").inc()
            self._statements.move_to_end(key)
            return cached
        self._plan_cache_metric.labels(event="miss").inc()
        prepared = PreparedStatement(self, text, statement, statement_key=key)
        if self.cache_size > 0:
            self._statements[key] = prepared
            while len(self._statements) > self.cache_size:
                self._statements.popitem(last=False)
        return prepared

    def execute(
        self,
        text: str,
        params: Optional[Mapping[str, Any]] = None,
        parallelism: Optional[Any] = None,
    ) -> ResultSet:
        """Run any QUEL statement; see the module docstring for the surface.

        *parallelism* opts a retrieve into partitioned parallel
        execution: ``N >= 2`` runs that many plan fragments in worker
        processes, ``"auto"`` lets the optimizer's row estimates decide,
        ``None``/``1`` (default) runs the plain serial pipeline.  DML
        statements accept and ignore it.
        """
        self._check_open()
        trace = self._new_trace(text)
        started = time.perf_counter()
        try:
            prepared = self.prepare(text)
        except Exception as error:
            trace.phase("parse", time.perf_counter() - started)
            self._fail_trace(trace, error, started)
            raise
        trace.phase("parse", time.perf_counter() - started)
        return self._traced_execute(prepared, trace, started, params, parallelism)

    def execute_prepared(
        self,
        prepared: PreparedStatement,
        params: Optional[Mapping[str, Any]] = None,
        parallelism: Optional[Any] = None,
    ) -> ResultSet:
        """Run an already-prepared statement with full session tracing —
        the same trace/metric surface as :meth:`execute`, minus the parse
        phase the handle already paid.  (What the server's
        ``/prepared/{id}/execute`` endpoint dispatches through, so a
        prepared round-trip still lands in ``recent_traces`` with its
        request tags.)"""
        self._check_open()
        if prepared.session is not self:
            raise StorageError(
                "prepared statement belongs to a different session"
            )
        trace = self._new_trace(prepared.text)
        started = time.perf_counter()
        return self._traced_execute(prepared, trace, started, params, parallelism)

    def executemany(
        self,
        text: str,
        param_sequence: Iterable[Mapping[str, Any]],
        parallelism: Optional[Any] = None,
    ) -> int:
        """Execute one prepared statement per parameter set; the total
        ``rows_affected``.  The statement compiles once (each execution
        still traces and counts individually)."""
        prepared = self.prepare(text)
        total = 0
        for params in param_sequence:
            trace = self._new_trace(text)
            started = time.perf_counter()
            result = self._traced_execute(
                prepared, trace, started, params, parallelism
            )
            total += result.rows_affected
        return total

    # -- tracing / metrics -----------------------------------------------------
    def _traced_execute(
        self,
        prepared: PreparedStatement,
        trace: QueryTrace,
        started: float,
        params: Optional[Mapping[str, Any]],
        parallelism: Optional[Any],
    ) -> ResultSet:
        """Run *prepared* inside *trace*: time the analyze/plan/execute
        phases, count the statement, and — for a lazy retrieve — arm the
        pipeline-completion hook that folds the drain-side actuals in."""
        kind = _statement_kind(prepared.statement)
        trace.kind = kind
        cache_key = None
        try:
            t_analyze = time.perf_counter()
            compiled = prepared._ensure_compiled()
            t_execute = time.perf_counter()
            trace.phase("analyze", t_execute - t_analyze)
            cache = self.result_cache
            if cache is not None and parallelism is None:
                # The key is computed *before* execution: versions are
                # monotone, so a hit under this key is provably an answer
                # for the tables' current states (see result_cache docs).
                tables = compiled.referenced_tables()
                if tables is not None:
                    cache_key = cache.key_for(
                        prepared.statement_key,
                        params or {},
                        compiled.parameters,
                        tables,
                    )
                if cache_key is not None:
                    hit = cache.lookup(cache_key)
                    if hit is not None:
                        relation, steps, sorted_rows = hit
                        result = ResultSet(
                            relation, steps=(CACHED_STEP,) + steps
                        )
                        if sorted_rows is None:
                            # First hit sorts once; the entry memoizes it.
                            sorted_rows = relation.representation.sorted_rows()
                            hit[2] = sorted_rows
                        result._sorted_rows = list(sorted_rows)
                        t_done = time.perf_counter()
                        trace.phase("execute", t_done - t_execute)
                        trace.seconds = t_done - started
                        trace.rows_out = len(relation)
                        trace.plan = list(result.steps)
                        trace.tags["result_cache"] = "hit"
                        trace.finished = True
                        self._statements_metric.labels(
                            kind=kind, outcome="ok"
                        ).inc()
                        self._latency_metric.labels(kind=kind).observe(
                            trace.seconds
                        )
                        self._traces.append(trace)
                        self._check_slow(trace)
                        return result
            result = compiled.execute(params or {}, parallelism=parallelism)
            t_done = time.perf_counter()
        except Exception as error:
            self._fail_trace(trace, error, started, kind)
            raise
        execute_seconds = t_done - t_execute
        plan_seconds = float(getattr(compiled, "last_plan_seconds", 0.0) or 0.0)
        if 0.0 < plan_seconds <= execute_seconds:
            trace.phase("plan", plan_seconds)
            execute_seconds -= plan_seconds
        trace.phase("execute", execute_seconds)
        trace.seconds = t_done - started
        trace.rows_affected = result.rows_affected
        self._statements_metric.labels(kind=kind, outcome="ok").inc()
        self._latency_metric.labels(kind=kind).observe(trace.seconds)
        self._track_result(result)
        pipeline = result.pipeline
        if pipeline is not None:
            # Lazy retrieve: the trace finishes when the tree drains (and
            # the drained answer, if cacheable, lands in the result cache).
            pipeline.on_complete = (
                lambda p, error, _trace=trace, _key=cache_key: (
                    self._pipeline_completed(_trace, p, error, _key)
                )
            )
        else:
            trace.plan = list(result.steps)
            tree = getattr(result, "_tree", None)
            if tree is not None:
                trace.operators = _collect_operators(tree)
                self._record_tree_metrics(tree)
            relation = getattr(result, "_relation", None)
            if relation is not None:
                trace.rows_out = len(relation)
                if cache_key is not None and self.result_cache is not None:
                    # Fast-path retrieve: already materialized, cache now.
                    self.result_cache.store(
                        cache_key, relation, result.steps
                    )
            trace.finished = True
        self._traces.append(trace)
        self._check_slow(trace)
        return result

    def _fail_trace(
        self,
        trace: QueryTrace,
        error: BaseException,
        started: float,
        kind: str = "unknown",
    ) -> None:
        trace.kind = kind
        trace.outcome = "error"
        trace.error = f"{type(error).__name__}: {error}"
        trace.seconds = time.perf_counter() - started
        trace.finished = True
        self._statements_metric.labels(kind=kind, outcome="error").inc()
        self._traces.append(trace)
        self._check_slow(trace)

    def _check_slow(self, trace: QueryTrace) -> None:
        threshold = self.slow_query_threshold
        if threshold is None or trace.slow or trace.seconds < threshold:
            return
        trace.slow = True
        self._slow_metric.inc()
        slow_query_logger.warning(
            "slow query (%.3fs >= %.3fs threshold, kind=%s): %s",
            trace.seconds,
            threshold,
            trace.kind,
            trace.text.strip(),
        )

    def _record_tree_metrics(self, root) -> None:
        """Fold one completed physical tree into the exec counters."""
        total_blocks = 0
        stack = [root]
        while stack:
            node = stack.pop()
            operator = type(node).__name__
            self._operator_rows_metric.labels(operator=operator).inc(
                node.actual_rows
            )
            self._operator_seconds_metric.labels(operator=operator).inc(
                node.seconds
            )
            total_blocks += node.actual_blocks
            partition_stats = getattr(node, "partition_stats", None)
            if partition_stats:
                for index, stats in enumerate(partition_stats):
                    self._shard_rows_metric.labels(partition=str(index)).inc(
                        stats.get("rows_out", 0)
                    )
                    self._shard_seconds_metric.labels(partition=str(index)).inc(
                        stats.get("seconds", 0.0)
                    )
                skew = getattr(node, "skew", None)
                if skew is not None:
                    self._skew_metric.set(skew)
            stack.extend(node.children)
        self._exec_rows_metric.inc(root.actual_rows)
        self._exec_blocks_metric.inc(total_blocks)

    def _pipeline_completed(
        self, trace: QueryTrace, pipeline, error, cache_key=None
    ) -> None:
        """The drain-side half of a lazy retrieve's trace (called once by
        the pipeline when it exhausts or latches a failure).  On a clean
        drain this is also where the answer enters the result cache and
        where per-step actual/estimated ratios feed the adaptive
        correction loop."""
        if error is not None:
            trace.outcome = "error"
            trace.error = f"{type(error).__name__}: {error}"
            if isinstance(error, StaleResultError):
                self._stale_metric.inc()
        root = pipeline.root
        if root is not None and root.started:
            # The root's wall time covers the whole drain (children
            # included) — fold it into the execute phase and the total.
            trace.phase("execute", root.seconds)
            trace.seconds += root.seconds
            trace.rows_out = root.actual_rows
            trace.operators = _collect_operators(root)
            self._record_tree_metrics(root)
            for step in pipeline.trace:
                node = step.node
                if step.est is not None and node is not None and node.started:
                    self._est_error_metric.observe(
                        (node.actual_rows + 1.0) / (step.est + 1.0)
                    )
                    if self.adaptive_feedback and step.table is not None:
                        step.table.statistics.observe_estimate(
                            node.actual_rows, step.est
                        )
        trace.plan = pipeline.step_lines()
        if (
            error is None
            and cache_key is not None
            and self.result_cache is not None
        ):
            relation = pipeline.completed_relation()
            if relation is not None:
                self.result_cache.store(
                    cache_key, relation, pipeline.step_lines()
                )
        trace.finished = True
        self._check_slow(trace)

    def recent_traces(self, limit: Optional[int] = None) -> List[QueryTrace]:
        """The most recent query traces, oldest first (bounded by the
        session's ``trace_capacity``).  Traces of undrained lazy
        retrieves have ``finished=False`` until their pipeline completes;
        the objects update in place when it does."""
        traces = list(self._traces)
        if limit is not None:
            traces = traces[-int(limit):]
        return traces

    def explain(
        self, text: str, params: Optional[Mapping[str, Any]] = None
    ) -> str:
        """The strategy the session would use for *text*, without running it
        (retrieves are evaluated to annotate the trace; mutations are not
        applied)."""
        return self.prepare(text).explain(params)

    # -- transactions ---------------------------------------------------------
    def transaction(self) -> Transaction:
        """A new all-or-nothing statement group (use as a context manager,
        or drive :meth:`Transaction.begin` / ``commit`` / ``rollback``
        explicitly)."""
        self._check_open()
        return Transaction(self)

    @property
    def in_transaction(self) -> bool:
        return any(t.active for t in self._transactions)

    # -- introspection --------------------------------------------------------
    @property
    def cached_statements(self) -> int:
        """How many prepared statements the LRU currently holds."""
        return len(self._statements)

    def clear_statement_cache(self) -> None:
        self._statements.clear()

    def __repr__(self) -> str:
        return (
            f"Session({self.database!r}, cached_statements="
            f"{self.cached_statements}, in_transaction={self.in_transaction})"
        )


def connect(
    database=None,
    name: str = "db",
    cache_size: int = 128,
    result_cache_size: int = DEFAULT_RESULT_CACHE_SIZE,
) -> Session:
    """Open a :class:`Session` — the single client entry point.

    ``repro.connect(db)`` wraps an existing
    :class:`~repro.storage.database.Database`; ``repro.connect()``
    creates a fresh in-memory one (reachable as ``session.database``).
    ``result_cache_size=0`` disables the semantic result cache.
    """
    if database is None:
        from ..storage.database import Database
        database = Database(name)
    return Session(
        database,
        cache_size=cache_size,
        result_cache_size=result_cache_size,
    )
