"""Sessions: the single client surface of the reproduction.

``repro.connect(database)`` returns a :class:`Session` that speaks the
full QUEL statement set — RETRIEVE (with INTO materialisation), APPEND
TO, DELETE, REPLACE, all with ``$name`` parameters — through one method::

    session = repro.connect(db)
    session.execute('append to EMP (E# = $e, NAME = $n)', {"e": 1, "n": "SMITH"})
    rows = session.execute('range of e is EMP retrieve (e.NAME)')

Every statement runs lexer → parser → analyzer → cost-based plan →
execution; retrieves compile to a streaming :mod:`repro.exec` operator
tree the returned result set drains lazily (iterate for first rows
without materialising; ``.rows`` for the canonical sorted answer;
``explain(analyze=True)`` for the per-operator est/actual/time audit),
and mutations route through the storage layer's atomic bulk paths via
the DML sinks.  :meth:`Session.prepare` returns a :class:`PreparedStatement`
whose compiled plan lives in a session LRU keyed by the statement's
*normalized AST* and stamped with the database's catalog/index/stats
epoch — re-executing skips lexing, parsing, analysis and planning
entirely, and any DDL, index change or ANALYZE transparently re-plans on
the next execution.  :meth:`Session.transaction` gives all-or-nothing
multi-statement groups (snapshot-based undo); outside a transaction each
statement autocommits.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Iterable, List, Mapping, Optional, Tuple

from ..core.errors import StorageError
from ..quel.ast_nodes import Statement, normalize_statement
from ..quel.parser import parse_statement
from .compiled import CompiledStatement, compile_statement
from .results import ResultSet


class PreparedStatement:
    """A statement compiled once, executable many times.

    The compiled form (analysis + physical strategy) is stamped with the
    database epoch at compile time; :meth:`execute` re-compiles
    transparently when the epoch moved (any DDL, index or ANALYZE change
    since), so a cached plan can never silently use a dropped index or
    miss a new one.
    """

    def __init__(self, session: "Session", text: str, statement: Statement):
        self.session = session
        self.text = text
        self.statement = statement
        self._compiled: Optional[CompiledStatement] = None
        self._epoch: Optional[int] = None
        #: How many times this statement was (re)compiled — observable
        #: evidence of plan-cache hits and epoch invalidations.
        self.compile_count = 0

    def _ensure_compiled(self) -> CompiledStatement:
        database = self.session.database
        epoch = getattr(database, "epoch", None)
        if self._compiled is None or epoch != self._epoch:
            self._compiled = compile_statement(database, self.statement)
            self._epoch = epoch
            self.compile_count += 1
        return self._compiled

    @property
    def parameters(self) -> Tuple[str, ...]:
        """The ``$name`` placeholders the statement expects."""
        return self._ensure_compiled().parameters

    def execute(
        self,
        params: Optional[Mapping[str, Any]] = None,
        parallelism: Optional[Any] = None,
    ) -> ResultSet:
        """Run the statement.  *parallelism* (``None``/``1``/``N``/
        ``"auto"``) selects partitioned parallel execution for retrieves
        — see :class:`repro.quel.planner.Plan`; DML and the fast path
        ignore it."""
        return self._ensure_compiled().execute(params or {}, parallelism=parallelism)

    def explain(self, params: Optional[Mapping[str, Any]] = None) -> str:
        """The currently chosen strategy (re-planned if the epoch moved)."""
        return self._ensure_compiled().describe(params)

    def __repr__(self) -> str:
        return f"PreparedStatement({self.text.strip()!r})"


class Transaction:
    """An all-or-nothing group of statements (a context manager).

    Entering takes a snapshot of every table's rows, index definitions
    and the foreign-key list; leaving normally commits (discards the
    snapshot), leaving through an exception — or calling
    :meth:`rollback` — restores the snapshot wholesale through the bulk
    rebuild path, drops any table created inside the group and removes
    any foreign key added inside it.  Tables *dropped* inside the group
    cannot be recreated from the row snapshot and make the rollback fail
    loudly rather than silently diverge.
    """

    def __init__(self, session: "Session"):
        self.session = session
        self._snapshot: Optional[Mapping[str, Any]] = None
        self._tables: Tuple[str, ...] = ()
        self._foreign_keys: Optional[list] = None
        self._active = False

    @property
    def active(self) -> bool:
        return self._active

    def __enter__(self) -> "Transaction":
        if self._active:
            raise StorageError("transaction already entered")
        database = self.session.database
        self._snapshot = database.snapshot()
        self._tables = tuple(database.catalog.table_names())
        self._foreign_keys = database.catalog.foreign_key_entries()
        self._active = True
        self.session._transactions.append(self)
        self._mark("begin")
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._active:
            try:
                if exc_type is not None:
                    self._rollback()
                else:
                    self._mark("commit")
            finally:
                self._close()
        return False  # never swallow the exception

    def commit(self) -> None:
        """Keep the group's effects and end the transaction."""
        if not self._active:
            raise StorageError("transaction is not active")
        try:
            self._mark("commit")
        finally:
            self._close()

    def rollback(self) -> None:
        """Undo the group's effects and end the transaction."""
        if not self._active:
            raise StorageError("transaction is not active")
        try:
            self._rollback()
        finally:
            self._close()

    def _rollback(self) -> None:
        """Restore the snapshot, then *always* log the abort marker.

        The marker must land even when the rollback itself raises (a
        table dropped inside the group, a created table wedged by a
        surviving foreign key): it follows whatever compensating records
        :meth:`_restore` did manage to log, closing the group so the
        log's transaction depth returns to zero — otherwise every later
        autocommitted statement would be buffered inside the permanently
        open group (and discarded at recovery) and every checkpoint would
        silently skip, a total durability loss after one failed rollback.
        """
        try:
            self._restore()
        finally:
            self._mark("abort")

    def _close(self) -> None:
        self._active = False
        if self in self.session._transactions:
            self.session._transactions.remove(self)

    def _mark(self, op: str) -> None:
        """Write a transaction marker to the write-ahead log, if one is
        attached.  Replay discards a group whose close marker never made
        it to disk; an ``abort`` marker lands *after* the rollback's
        compensating restore records, so an aborted group replays to the
        same (pre-group) state it left in memory.  Under ``sync="commit"``
        the close markers are the fsync points — the group's records ride
        one flush."""
        wal = getattr(self.session.database, "wal", None)
        if wal is not None:
            wal.append({"op": op})

    def _restore(self) -> None:
        database = self.session.database
        missing = [
            name for name in self._tables if not database.catalog.has_table(name)
        ]
        if missing:
            raise StorageError(
                f"cannot roll back: table(s) {missing} were dropped inside "
                f"the transaction (schema undo beyond creation is not supported)"
            )
        # Foreign keys revert to the entry snapshot first — additions made
        # inside the group go away with it, which also unblocks
        # Database.restore's drop of any table created inside the group
        # (a group-added key referencing a created table would otherwise
        # wedge the drop).  Renames re-enter under the new owner name,
        # which the restore filter tolerates.
        database.catalog.restore_foreign_keys(self._foreign_keys)
        database.restore(self._snapshot)


class Session:
    """A connection-like object over a :class:`repro.storage.Database`.

    Parameters
    ----------
    database:
        The database to speak to (``repro.storage.Database``).
    cache_size:
        Capacity of the prepared-statement LRU (0 disables caching).
    """

    def __init__(self, database, cache_size: int = 128):
        if not hasattr(database, "catalog"):
            raise TypeError(
                f"connect() needs a repro.storage.Database, got {database!r}"
            )
        self.database = database
        self.cache_size = cache_size
        self._statements: "OrderedDict[Any, PreparedStatement]" = OrderedDict()
        self._transactions: List[Transaction] = []

    # -- statements -----------------------------------------------------------
    def prepare(self, text: str) -> PreparedStatement:
        """Parse *text* once and return its (cached) prepared statement.

        The cache key is the statement's normalized AST, so texts
        differing only in whitespace, comments or source positions share
        one compiled plan; ``$name`` placeholders normalize by name, so
        one template serves every binding.
        """
        statement = parse_statement(text)
        key = normalize_statement(statement)
        cached = self._statements.get(key)
        if cached is not None:
            self._statements.move_to_end(key)
            return cached
        prepared = PreparedStatement(self, text, statement)
        if self.cache_size > 0:
            self._statements[key] = prepared
            while len(self._statements) > self.cache_size:
                self._statements.popitem(last=False)
        return prepared

    def execute(
        self,
        text: str,
        params: Optional[Mapping[str, Any]] = None,
        parallelism: Optional[Any] = None,
    ) -> ResultSet:
        """Run any QUEL statement; see the module docstring for the surface.

        *parallelism* opts a retrieve into partitioned parallel
        execution: ``N >= 2`` runs that many plan fragments in worker
        processes, ``"auto"`` lets the optimizer's row estimates decide,
        ``None``/``1`` (default) runs the plain serial pipeline.  DML
        statements accept and ignore it.
        """
        return self.prepare(text).execute(params, parallelism=parallelism)

    def executemany(
        self,
        text: str,
        param_sequence: Iterable[Mapping[str, Any]],
        parallelism: Optional[Any] = None,
    ) -> int:
        """Execute one prepared statement per parameter set; the total
        ``rows_affected``.  The statement compiles once."""
        prepared = self.prepare(text)
        total = 0
        for params in param_sequence:
            total += prepared.execute(params, parallelism=parallelism).rows_affected
        return total

    def explain(
        self, text: str, params: Optional[Mapping[str, Any]] = None
    ) -> str:
        """The strategy the session would use for *text*, without running it
        (retrieves are evaluated to annotate the trace; mutations are not
        applied)."""
        return self.prepare(text).explain(params)

    # -- transactions ---------------------------------------------------------
    def transaction(self) -> Transaction:
        """A new all-or-nothing statement group (use as a context manager)."""
        return Transaction(self)

    @property
    def in_transaction(self) -> bool:
        return any(t.active for t in self._transactions)

    # -- introspection --------------------------------------------------------
    @property
    def cached_statements(self) -> int:
        """How many prepared statements the LRU currently holds."""
        return len(self._statements)

    def clear_statement_cache(self) -> None:
        self._statements.clear()

    def __repr__(self) -> str:
        return (
            f"Session({self.database!r}, cached_statements="
            f"{self.cached_statements}, in_transaction={self.in_transaction})"
        )


def connect(database=None, name: str = "db", cache_size: int = 128) -> Session:
    """Open a :class:`Session` — the single client entry point.

    ``repro.connect(db)`` wraps an existing
    :class:`~repro.storage.database.Database`; ``repro.connect()``
    creates a fresh in-memory one (reachable as ``session.database``).
    """
    if database is None:
        from ..storage.database import Database
        database = Database(name)
    return Session(database, cache_size=cache_size)
