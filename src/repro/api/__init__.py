"""The Session API: one coherent client surface over the reproduction.

:func:`connect` opens a :class:`Session` against a
:class:`~repro.storage.database.Database`; the session speaks the full
QUEL statement set (RETRIEVE / RETRIEVE INTO / APPEND TO / DELETE /
REPLACE with ``$name`` parameters), caches prepared plans keyed by
normalized AST + catalog epoch, and groups statements atomically through
:meth:`Session.transaction`.  See :mod:`repro.api.session`.
"""

from .result_cache import CACHED_STEP, DEFAULT_RESULT_CACHE_SIZE, ResultCache
from .results import ResultSet
from .session import PreparedStatement, Session, Transaction, connect

__all__ = [
    "CACHED_STEP",
    "DEFAULT_RESULT_CACHE_SIZE",
    "PreparedStatement",
    "ResultCache",
    "ResultSet",
    "Session",
    "Transaction",
    "connect",
]
