"""Result sets: the uniform answer shape of the Session API.

Every :meth:`repro.api.Session.execute` call — RETRIEVE, RETRIEVE INTO,
APPEND, DELETE, REPLACE — returns a :class:`ResultSet`.  Query statements
carry rows (iterable, with ``.columns`` and ``.to_relation()``); mutation
statements carry ``.rows_affected``; both carry the executed plan trace
through :meth:`ResultSet.explain`.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from ..core.tuples import XTuple
from ..core.xrelation import XRelation


class ResultSet:
    """The answer to one executed statement.

    Parameters
    ----------
    relation:
        The answer x-relation for row-producing statements, ``None`` for
        pure mutations.
    rows_affected:
        Rows inserted / deleted / replaced (0 for a plain RETRIEVE).
    steps:
        The executed plan's step trace (what :meth:`explain` renders).
    """

    def __init__(
        self,
        relation: Optional[XRelation] = None,
        *,
        rows_affected: int = 0,
        steps: Tuple[str, ...] = (),
    ):
        self._relation = relation
        self.rows_affected = rows_affected
        self._steps: Tuple[str, ...] = tuple(steps)

    # -- rows -----------------------------------------------------------------
    @property
    def columns(self) -> Tuple[str, ...]:
        """The output column names (empty for a pure mutation)."""
        if self._relation is None:
            return ()
        return self._relation.attributes

    @property
    def rows(self) -> List[XTuple]:
        """The answer rows in a stable (sorted) order."""
        if self._relation is None:
            return []
        return self._relation.representation.sorted_rows()

    def __iter__(self) -> Iterator[XTuple]:
        return iter(self.rows)

    def __len__(self) -> int:
        return 0 if self._relation is None else len(self._relation)

    def first(self) -> Optional[XTuple]:
        """The first row in sorted order, or ``None`` on an empty answer."""
        rows = self.rows
        return rows[0] if rows else None

    def scalar(self):
        """The single value of a one-row, one-column answer (else an error)."""
        rows = self.rows
        if len(rows) != 1 or len(self.columns) != 1:
            raise ValueError(
                f"scalar() needs exactly one row and one column, "
                f"got {len(rows)} row(s) × {len(self.columns)} column(s)"
            )
        return rows[0][self.columns[0]]

    # -- conversions ----------------------------------------------------------
    def to_relation(self) -> Optional[XRelation]:
        """The answer as an :class:`XRelation` (``None`` for a mutation)."""
        return self._relation

    @property
    def answer(self) -> Optional[XRelation]:
        """Compatibility alias of :meth:`to_relation` (mirrors
        :class:`repro.quel.QueryResult`)."""
        return self._relation

    def to_table(self) -> str:
        if self._relation is None:
            return f"({self.rows_affected} row(s) affected)"
        return self._relation.representation.to_table()

    # -- provenance -----------------------------------------------------------
    @property
    def steps(self) -> Tuple[str, ...]:
        return self._steps

    def explain(self) -> str:
        """The executed plan, one numbered step per line."""
        return "\n".join(f"{i + 1}. {step}" for i, step in enumerate(self._steps))

    def __repr__(self) -> str:
        if self._relation is None:
            return f"ResultSet(rows_affected={self.rows_affected})"
        return (
            f"ResultSet(rows={len(self)}, columns={list(self.columns)}, "
            f"rows_affected={self.rows_affected})"
        )
