"""Result sets: the uniform answer shape of the Session API.

Every :meth:`repro.api.Session.execute` call — RETRIEVE, RETRIEVE INTO,
APPEND, DELETE, REPLACE — returns a :class:`ResultSet`.  Since the
streaming-executor PR a retrieve's result set is *lazy*: it holds the
compiled :class:`~repro.exec.Pipeline` and drains it on demand —

* iterating the result set streams rows as the operator tree produces
  them, without materialising any intermediate
  :class:`~repro.core.xrelation.XRelation`.  Streamed rows are distinct
  but pre-minimisation: with nulls in play they may include rows the
  canonical answer's minimal form drops (each dominated by another
  streamed row), so their union is always information-wise the answer.
  Table scans and index-selection buckets are snapshotted when the
  statement executes; an index-nested-loop join probes the *live* index,
  so the pipeline stamps every such inner table with its mutation
  counter and DDL epoch at execute time
  (:class:`~repro.exec.StalenessGuard`) and a result set left undrained
  across a later mutation of a probed table raises
  :class:`~repro.core.errors.StaleResultError` instead of silently
  streaming post-statement rows.  Drain promptly (``.rows`` does) when
  statement-time answers must survive subsequent writes; serving the
  statement-time answer *after* such writes (versioned indexes / MVCC)
  is ROADMAP item 3;
* ``.rows`` / ``len()`` / ``.first()`` / ``.scalar()`` /
  ``.to_relation()`` drain the pipeline fully and return the canonical
  minimal answer — ``.rows`` stays the stable sorted list it always was,
  computed once and cached (result sets are immutable);
* :meth:`explain` renders the executed logical step trace, and
  :meth:`explain` with ``analyze=True`` drains the pipeline and renders
  the physical operator tree with per-node estimated rows, actual rows
  and wall time.

Mutation statements carry ``.rows_affected`` (they apply eagerly — DML
is never deferred) plus, when available, the sink-rooted tree for
``explain(analyze=True)``.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

from ..core.tuples import XTuple
from ..core.xrelation import XRelation
from ..exec.operators import PhysicalOperator
from ..exec.pipeline import Pipeline, render_tree


class ResultSet:
    """The answer to one executed statement.

    Parameters
    ----------
    relation:
        The answer x-relation, for statements executed eagerly (``None``
        otherwise).
    pipeline:
        The compiled streaming pipeline, for lazily-executed retrieves.
        Exactly one of *relation* / *pipeline* is set for row-producing
        statements; pure mutations set neither.
    rows_affected:
        Rows inserted / deleted / replaced (0 for a plain RETRIEVE).
    steps:
        The executed plan's step trace.  May be a static sequence of
        strings or, when a pipeline is attached and *steps* is empty, the
        trace is rendered live from the pipeline (so actual row counts
        appear once it drains).
    tree:
        Optional physical tree root for ``explain(analyze=True)`` when
        there is no pipeline (DML sinks).
    """

    def __init__(
        self,
        relation: Optional[XRelation] = None,
        *,
        pipeline: Optional[Pipeline] = None,
        rows_affected: int = 0,
        steps: Sequence[str] = (),
        tree: Optional[PhysicalOperator] = None,
    ):
        self._relation = relation
        self._pipeline = pipeline
        self.rows_affected = rows_affected
        self._static_steps: Tuple[str, ...] = tuple(steps)
        self._tree = tree
        self._sorted_rows: Optional[List[XTuple]] = None

    # -- materialisation -------------------------------------------------------
    def _materialize(self) -> Optional[XRelation]:
        if self._relation is None and self._pipeline is not None:
            self._relation = self._pipeline.run()
        return self._relation

    # -- rows -----------------------------------------------------------------
    @property
    def columns(self) -> Tuple[str, ...]:
        """The output column names (empty for a pure mutation)."""
        if self._pipeline is not None:
            return self._pipeline.columns
        if self._relation is None:
            return ()
        return self._relation.attributes

    @property
    def rows(self) -> List[XTuple]:
        """The answer rows in a stable (sorted) order, computed once.

        Result sets are immutable, so the sorted list is cached on first
        access instead of re-sorting the relation every time.
        """
        if self._sorted_rows is None:
            relation = self._materialize()
            if relation is None:
                self._sorted_rows = []
            else:
                self._sorted_rows = relation.representation.sorted_rows()
        return self._sorted_rows

    def __iter__(self) -> Iterator[XTuple]:
        """Iterate the answer, streaming the pipeline when one is attached.

        Before the result set materialises, rows are yielded as the
        operator tree produces them (lazy, block at a time); afterwards
        the canonical rows replay.  See the module docstring for the
        pre-minimisation caveat on streamed rows.
        """
        if self._relation is None and self._pipeline is not None:
            return self._pipeline.iter_rows()
        return iter(self.rows)

    def __len__(self) -> int:
        relation = self._materialize()
        return 0 if relation is None else len(relation)

    def first(self) -> Optional[XTuple]:
        """The first row in sorted order, or ``None`` on an empty answer."""
        rows = self.rows
        return rows[0] if rows else None

    def scalar(self):
        """The single value of a one-row, one-column answer (else an error)."""
        rows = self.rows
        if len(rows) != 1 or len(self.columns) != 1:
            raise ValueError(
                f"scalar() needs exactly one row and one column, "
                f"got {len(rows)} row(s) × {len(self.columns)} column(s)"
            )
        return rows[0][self.columns[0]]

    # -- conversions ----------------------------------------------------------
    def to_relation(self) -> Optional[XRelation]:
        """The answer as an :class:`XRelation` (``None`` for a mutation)."""
        return self._materialize()

    @property
    def answer(self) -> Optional[XRelation]:
        """Compatibility alias of :meth:`to_relation` (mirrors
        :class:`repro.quel.QueryResult`)."""
        return self._materialize()

    def to_table(self) -> str:
        relation = self._materialize()
        if relation is None:
            return f"({self.rows_affected} row(s) affected)"
        return relation.representation.to_table()

    # -- provenance -----------------------------------------------------------
    @property
    def steps(self) -> Tuple[str, ...]:
        if self._static_steps or self._pipeline is None:
            return self._static_steps
        return tuple(self._pipeline.step_lines())

    def explain(self, analyze: bool = False) -> str:
        """The executed plan.

        Without *analyze*: the logical step trace, one numbered step per
        line (actual row counts appear once the pipeline has drained).
        With ``analyze=True``: drains the pipeline *first* (EXPLAIN
        ANALYZE runs the query — a partially-streamed result set is
        drained to completion, never reported with partial actuals) and
        renders the physical operator tree — one indented line per node
        with ``est=… rows=… actual=… time=…``.  Falls back to the step
        trace for statements executed without a tree.
        """
        if analyze:
            if self._pipeline is not None:
                # Materialise through the result-set layer so the drain
                # also caches the canonical answer (and the trace hook
                # fires), then render the fully-finished tree.
                self._materialize()
                return self._pipeline.explain(analyze=True)
            if self._tree is not None:
                return render_tree(self._tree, analyze=True)
        return "\n".join(f"{i + 1}. {step}" for i, step in enumerate(self.steps))

    @property
    def pipeline(self) -> Optional[Pipeline]:
        """The underlying compiled pipeline, when the statement streamed."""
        return self._pipeline

    def __repr__(self) -> str:
        if self._relation is None and self._pipeline is not None:
            state = "drained" if self._pipeline.drained else "streaming"
            return (
                f"ResultSet({state}, columns={list(self.columns)}, "
                f"rows_affected={self.rows_affected})"
            )
        if self._relation is None:
            return f"ResultSet(rows_affected={self.rows_affected})"
        return (
            f"ResultSet(rows={len(self)}, columns={list(self.columns)}, "
            f"rows_affected={self.rows_affected})"
        )
