"""The semantic query result cache: hot reads answered without executing.

Under the Section 5 lower-bound discipline a retrieve's answer is a pure
function of the current states of the tables it ranges over — there is
no hidden execution state to invalidate by hand.  The cache therefore
keys each materialized answer by everything that function depends on:

* the statement's **normalized AST** (the prepared-statement cache key,
  so texts differing in whitespace/comments/positions share entries);
* the **bound parameter values** the statement actually uses;
* the database's catalog/index/stats **epoch** (DDL, index changes and
  ANALYZE all move it — also what covers a dropped-and-recreated table
  whose fresh ``Relation`` restarts its version counter);
* each referenced table's mutation counter (``Relation._version``) and
  ``ddl_epoch`` stamp.

Because every component is re-read at lookup time and versions only ever
grow (every mutation path — including snapshot restore and transaction
rollback, which go through ``Table.reset_rows`` — bumps the counter), a
stale entry's key can never equal the current key: **invalidation is
structural**, not evented.  Superseded entries simply age out of the LRU.

Observability: every lookup lands in the ``repro_result_cache_total``
counter (``event`` = ``hit`` / ``miss`` / ``eviction``) and the
``repro_result_cache_entries`` gauge tracks occupancy — both on the
database's registry, so they surface through ``GET /metrics``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable, List, Mapping, Optional, Sequence

from ..obs import registry_for

#: Default number of materialized answers a session retains.
DEFAULT_RESULT_CACHE_SIZE = 128

#: The marker line prepended to a cached answer's step trace — explain()
#: on a hit reports the plan that produced the answer under this banner.
CACHED_STEP = "cached result (semantic result cache hit; plan not re-executed)"


class ResultCache:
    """An LRU of materialized retrieve answers, keyed stale-proof.

    One per :class:`~repro.api.session.Session` (sessions are the client
    surface; entries are small — they alias the already-minimal answer
    ``XRelation``, never copy rows).
    """

    def __init__(self, database, capacity: int = DEFAULT_RESULT_CACHE_SIZE):
        self.database = database
        self.capacity = int(capacity)
        #: key -> [answer XRelation, step-trace tuple, sorted-rows memo].
        #: The third slot starts ``None`` and is filled by the first hit
        #: that sorts the answer, so later hits skip the O(n log n) sort.
        self._entries: "OrderedDict[Hashable, List[Any]]" = OrderedDict()
        registry = registry_for(database)
        self._events = registry.counter(
            "repro_result_cache_total",
            "Semantic result-cache lookups and maintenance, by event "
            "(hit, miss, eviction).",
            ("event",),
        )
        self._occupancy = registry.gauge(
            "repro_result_cache_entries",
            "Materialized answers currently held by result caches.",
        )

    # -- keys -----------------------------------------------------------------
    def key_for(
        self,
        statement_key: Hashable,
        params: Mapping[str, Any],
        names: Sequence[str],
        tables: Sequence[Any],
    ) -> Optional[Hashable]:
        """The lookup/store key for one execution, or ``None`` when the
        execution is not cacheable (an unhashable parameter value).

        *names* restricts the parameter binding to the placeholders the
        statement mentions, so extraneous entries in *params* do not
        split otherwise-identical executions.  The epoch and per-table
        stamps are read *now* — computing the key immediately before
        execution is what makes a later hit provably fresh.
        """
        wanted = set(names)
        try:
            bound = tuple(sorted(
                (name, value) for name, value in params.items() if name in wanted
            ))
            hash(bound)
        except TypeError:
            return None
        stamps = tuple(
            (table.name, table.relation._version, table.ddl_epoch)
            for table in tables
        )
        return (statement_key, bound, getattr(self.database, "epoch", None), stamps)

    # -- lookup / store -------------------------------------------------------
    def lookup(self, key: Hashable) -> Optional[List[Any]]:
        """The cached ``[answer, step trace, sorted-rows memo]`` for
        *key*, or ``None``.  The returned list is the live entry: a
        caller that sorts the answer may write the result into slot 2
        so later hits share it (copy before exposing it to users)."""
        entry = self._entries.get(key)
        if entry is None:
            self._events.labels(event="miss").inc()
            return None
        self._entries.move_to_end(key)
        self._events.labels(event="hit").inc()
        return entry

    def store(self, key: Hashable, relation, steps: Sequence[str]) -> None:
        entries = self._entries
        fresh = key not in entries
        if not fresh:
            entries.move_to_end(key)
        entries[key] = [relation, tuple(steps), None]
        if fresh:
            self._occupancy.inc(1)
        while len(entries) > self.capacity:
            entries.popitem(last=False)
            self._events.labels(event="eviction").inc()
            self._occupancy.dec(1)

    def clear(self) -> None:
        if self._entries:
            self._occupancy.dec(len(self._entries))
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return (
            f"ResultCache(entries={len(self._entries)}, "
            f"capacity={self.capacity})"
        )
