"""The auto-parallelism heuristic behind ``Plan.compile(parallelism="auto")``.

Exchange-operator parallelism (Graefe's Volcano design) only pays once
the per-query fixed costs — forking a worker pool, pickling the
partitioned leaf rows, shipping the shard results back — are amortised
over enough per-row work.  The heuristic is deliberately blunt, in the
System-R tradition of robust-over-clever:

* below :data:`PARALLEL_ROW_THRESHOLD` estimated input rows the answer
  is always ``1`` (serial) — at small sizes the pool startup alone
  exceeds the whole serial runtime;
* the suggested degree is capped by the machine's CPU count and by
  :data:`DEFAULT_MAX_WORKERS` (shipping costs grow with the worker
  count while the win is bounded by the core count);
* when :mod:`multiprocessing` is unusable (restricted platforms) the
  answer is ``1`` — the planner then simply compiles its serial tree.

The row estimate comes from the planner's
:class:`~repro.stats.statistics.TableStatistics`-backed range estimates,
so the decision costs no row touches.
"""

from __future__ import annotations

from typing import Optional

#: Estimated input rows below which a query is never parallelised — the
#: worker-pool fixed costs dominate anything smaller.
PARALLEL_ROW_THRESHOLD = 50_000

#: Cap on the suggested worker count, independent of the core count.
DEFAULT_MAX_WORKERS = 4


def multiprocessing_available() -> bool:
    """True when a process pool can actually be created on this platform."""
    try:
        import multiprocessing

        multiprocessing.cpu_count()
    except (ImportError, NotImplementedError, OSError):
        return False
    return True


def suggest_parallelism(
    estimated_rows: float,
    *,
    cpu_count: Optional[int] = None,
    threshold: float = PARALLEL_ROW_THRESHOLD,
    max_workers: int = DEFAULT_MAX_WORKERS,
    available: Optional[bool] = None,
) -> int:
    """The worker count ``parallelism="auto"`` resolves to (``1`` = serial).

    *estimated_rows* is the optimizer's estimate of the input rows the
    query will push through its pipeline (the sum of the per-range
    statistics row counts).  *cpu_count* / *available* default to the
    live machine introspection and exist as keywords so the decision
    logic is testable on any machine.
    """
    if available is None:
        available = multiprocessing_available()
    if not available:
        return 1
    if cpu_count is None:
        import os

        cpu_count = os.cpu_count() or 1
    if estimated_rows < threshold:
        return 1
    return max(1, min(int(cpu_count), int(max_workers)))
