"""Table statistics and the cost model behind the QUEL optimizer.

Section 8 of the paper argues that preserving the calculus/algebra
correspondence "is what makes query evaluation efficient"; an efficient
algebraic strategy, however, needs to *choose* between equivalent plans.
This package supplies the choosing machinery, System-R style:

``repro.stats.statistics``
    :class:`TableStatistics` — per-table row counts, per-attribute
    distinct-value and null counts, and a signature (null-pattern)
    histogram, maintained incrementally through every
    :class:`~repro.storage.table.Table` mutation path with an
    :meth:`~TableStatistics.analyze` full-refresh fallback.
``repro.stats.cost``
    :class:`CostModel` — selectivity and cardinality estimation over
    those statistics, null-aware: under the Section 5 lower-bound
    discipline a comparison touching ``ni`` is never TRUE, so null
    partitions are discounted from every estimate.

``repro.stats.histogram``
    :class:`EquiDepthHistogram` — ANALYZE-built per-attribute equi-depth
    histograms over the non-null partition; the cost model reads range
    and ``!=`` selectivities off them instead of the 1/3 constant while
    the owning statistics stay fresh.

``repro.stats.parallel``
    :func:`suggest_parallelism` — the auto heuristic behind
    ``Plan.compile(parallelism="auto")``: parallelise only above a
    ~50k-estimated-row threshold, cap by CPU count, fall back to serial
    when :mod:`multiprocessing` is unusable.

The QUEL planner (:mod:`repro.quel.planner`) consumes both to order
joins by estimated cardinality and to decide when probing a persistent
:class:`~repro.storage.index.HashIndex` beats rebuilding hash buckets.
"""

from .statistics import CORRECTION_BOUND, TableStatistics
from .cost import CostModel, DEFAULT_COST_MODEL
from .histogram import DEFAULT_BUCKETS, EquiDepthHistogram
from .parallel import (
    DEFAULT_MAX_WORKERS,
    PARALLEL_ROW_THRESHOLD,
    multiprocessing_available,
    suggest_parallelism,
)

__all__ = [
    "TableStatistics",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "EquiDepthHistogram",
    "DEFAULT_BUCKETS",
    "CORRECTION_BOUND",
    "DEFAULT_MAX_WORKERS",
    "PARALLEL_ROW_THRESHOLD",
    "multiprocessing_available",
    "suggest_parallelism",
]
