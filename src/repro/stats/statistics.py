"""Incrementally-maintained statistics over relations with null values.

:class:`TableStatistics` tracks, for one table (or any bag of
:class:`~repro.core.tuples.XTuple` rows):

* the **row count**;
* per attribute, the **non-null count** (and hence the null count — in
  the canonical tuple form a row is null on an attribute exactly when it
  does not bind it) and the **distinct-value count**, backed by an exact
  value→multiplicity counter;
* the **signature histogram**: how many rows carry each null pattern
  (the same partitioning the dominance engine uses), which is what lets
  a cost model reason about how much of a table is invisible to an
  equality probe on a given attribute set.

Maintenance is *exact and incremental*: the storage layer feeds every
mutation path (insert / bulk insert / delete / bulk delete / update /
truncate / load / restore) through :meth:`add_row` / :meth:`add_rows` /
:meth:`remove_row` / :meth:`remove_rows`, always with the rows that were
*actually* added to or removed from the stored set, so the counters never
drift (pinned by the property tests against :meth:`analyze`).

:meth:`analyze` is the full-refresh fallback: recount everything from the
live rows.  Because the incremental path is exact, a refresh never
changes the counters when maintenance was routed correctly; what it does
reset is the **staleness tracker** — ``mutations_since_analyze`` counts
incremental deltas applied since the last full scan, and :attr:`stale`
trips once that churn exceeds a threshold, signalling that a verifying
``ANALYZE`` is overdue (cheap insurance against out-of-band mutation of
the underlying relation).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Mapping, Tuple

from ..core.tuples import XTuple
from .histogram import EquiDepthHistogram

#: A signature: the sorted attribute tuple a row binds (``XTuple.attributes``).
Signature = Tuple[str, ...]

#: Bounds on the adaptive correction factor — one observed execution can
#: never swing the estimate by more than this factor in either direction.
CORRECTION_BOUND = 16.0

#: Incremental deltas tolerated before :attr:`TableStatistics.stale` trips.
DEFAULT_STALENESS_THRESHOLD = 256


class TableStatistics:
    """Exact, incrementally-maintained statistics for one table.

    The public read surface — :attr:`row_count`, :meth:`distinct_count`,
    :meth:`null_count`, :meth:`non_null_count`, :meth:`null_fraction`,
    :meth:`signature_histogram` — is what the cost model consumes; the
    mutation surface mirrors the storage layer's bulk entry points.
    """

    __slots__ = (
        "row_count",
        "_values",
        "_non_null",
        "_signatures",
        "staleness_threshold",
        "mutations_since_analyze",
        "_histograms",
        "correction",
    )

    def __init__(
        self,
        rows: Iterable[XTuple] = (),
        staleness_threshold: int = DEFAULT_STALENESS_THRESHOLD,
    ):
        self.row_count = 0
        # attribute -> value -> multiplicity (non-null values only)
        self._values: Dict[str, Dict[Any, int]] = {}
        # attribute -> number of rows binding it
        self._non_null: Dict[str, int] = {}
        # signature -> number of rows carrying it
        self._signatures: Dict[Signature, int] = {}
        self.staleness_threshold = staleness_threshold
        self.mutations_since_analyze = 0
        # attribute -> equi-depth histogram of its non-null values, built
        # by analyze() and trusted only while the staleness counter holds.
        self._histograms: Dict[str, EquiDepthHistogram] = {}
        #: Adaptive correction factor: actual/estimated row ratios observed
        #: by drained executions fold in here (bounded, see
        #: :meth:`observe_estimate`) and scale the next plan's selection
        #: estimates for this table.  1.0 = no observed bias.
        self.correction = 1.0
        if rows:
            self.analyze(rows)

    # -- incremental maintenance -------------------------------------------
    def add_row(self, row: XTuple) -> None:
        """Count one row that was actually added to the stored set."""
        self._count(row)
        self.mutations_since_analyze += 1

    def add_rows(self, rows: Iterable[XTuple]) -> None:
        """Count a batch of actually-added rows (one staleness tick)."""
        touched = False
        for row in rows:
            self._count(row)
            touched = True
        if touched:
            self.mutations_since_analyze += 1

    def remove_row(self, row: XTuple) -> None:
        """Discount one row that was actually removed from the stored set."""
        self._discount(row)
        self.mutations_since_analyze += 1

    def remove_rows(self, rows: Iterable[XTuple]) -> None:
        """Discount a batch of actually-removed rows (one staleness tick)."""
        touched = False
        for row in rows:
            self._discount(row)
            touched = True
        if touched:
            self.mutations_since_analyze += 1

    def clear(self) -> None:
        """Reset to the statistics of an empty table (exact, so not stale)."""
        self.row_count = 0
        self._values.clear()
        self._non_null.clear()
        self._signatures.clear()
        self._histograms.clear()
        self.correction = 1.0
        self.mutations_since_analyze = 0

    def analyze(self, rows: Iterable[XTuple]) -> "TableStatistics":
        """Full refresh: recount everything from *rows*, resetting staleness.

        A full scan also (re)builds the per-attribute equi-depth
        histograms and forgets any adaptive correction — fresh exact
        statistics supersede feedback accumulated against stale ones.
        """
        self.clear()
        for row in rows:
            self._count(row)
        self.mutations_since_analyze = 0
        for attribute, counter in self._values.items():
            histogram = EquiDepthHistogram.build(counter)
            if histogram is not None:
                self._histograms[attribute] = histogram
        return self

    # -- counting plumbing ---------------------------------------------------
    def _count(self, row: XTuple) -> None:
        self.row_count += 1
        items = row.items()
        signature = tuple(attribute for attribute, _ in items)
        self._signatures[signature] = self._signatures.get(signature, 0) + 1
        values = self._values
        non_null = self._non_null
        for attribute, value in items:
            counter = values.get(attribute)
            if counter is None:
                counter = values[attribute] = {}
            counter[value] = counter.get(value, 0) + 1
            non_null[attribute] = non_null.get(attribute, 0) + 1

    def _discount(self, row: XTuple) -> None:
        self.row_count -= 1
        items = row.items()
        signature = tuple(attribute for attribute, _ in items)
        remaining = self._signatures.get(signature, 0) - 1
        if remaining > 0:
            self._signatures[signature] = remaining
        else:
            self._signatures.pop(signature, None)
        values = self._values
        non_null = self._non_null
        for attribute, value in items:
            counter = values.get(attribute)
            if counter is not None:
                left = counter.get(value, 0) - 1
                if left > 0:
                    counter[value] = left
                else:
                    counter.pop(value, None)
                    if not counter:
                        del values[attribute]
            count = non_null.get(attribute, 0) - 1
            if count > 0:
                non_null[attribute] = count
            else:
                non_null.pop(attribute, None)

    # -- snapshots -------------------------------------------------------------
    def copy(self) -> "TableStatistics":
        """An independent copy of every counter *and* the staleness
        bookkeeping — what :meth:`Database.snapshot` carries so a restored
        database plans on the estimates it had at snapshot time instead of
        re-deriving (or, worse, keeping post-snapshot drift)."""
        dup = TableStatistics(staleness_threshold=self.staleness_threshold)
        dup.row_count = self.row_count
        dup._values = {a: dict(counter) for a, counter in self._values.items()}
        dup._non_null = dict(self._non_null)
        dup._signatures = dict(self._signatures)
        dup.mutations_since_analyze = self.mutations_since_analyze
        # Histograms are immutable once built; sharing them is safe.
        dup._histograms = dict(self._histograms)
        dup.correction = self.correction
        return dup

    def restore_from(self, other: "TableStatistics") -> None:
        """In-place wholesale restore from a saved copy.

        Counters are copied (never aliased), so one snapshot can be
        restored any number of times; object identity is preserved, so
        anything holding a reference to a table's statistics keeps seeing
        the live object.
        """
        self.row_count = other.row_count
        self._values = {a: dict(counter) for a, counter in other._values.items()}
        self._non_null = dict(other._non_null)
        self._signatures = dict(other._signatures)
        self.staleness_threshold = other.staleness_threshold
        self.mutations_since_analyze = other.mutations_since_analyze
        self._histograms = dict(other._histograms)
        self.correction = other.correction

    # -- read surface ---------------------------------------------------------
    def distinct_count(self, attribute: str) -> int:
        """Distinct non-null values stored on *attribute*."""
        counter = self._values.get(attribute)
        return len(counter) if counter else 0

    def non_null_count(self, attribute: str) -> int:
        """Rows binding *attribute* (visible to an equality probe on it)."""
        return self._non_null.get(attribute, 0)

    def null_count(self, attribute: str) -> int:
        """Rows null on *attribute* — never TRUE under any comparison on it."""
        return self.row_count - self._non_null.get(attribute, 0)

    def null_fraction(self, attribute: str) -> float:
        """``null_count / row_count`` (0.0 for an empty table)."""
        if self.row_count == 0:
            return 0.0
        return self.null_count(attribute) / self.row_count

    def signature_histogram(self) -> Dict[Signature, int]:
        """Null-pattern histogram: signature → number of rows carrying it."""
        return dict(self._signatures)

    def histogram(self, attribute: str) -> "EquiDepthHistogram | None":
        """The attribute's ANALYZE-built equi-depth histogram, or ``None``.

        ``None`` both when no ANALYZE has run since the attribute gained
        values and once incremental churn trips :attr:`stale` — the
        histogram is *approximately* maintained (the exact counters drift
        around it), so past the staleness threshold the cost model falls
        back to its constants rather than trust a shape the data may
        have left behind.
        """
        if self.stale:
            return None
        return self._histograms.get(attribute)

    def observe_estimate(self, actual: float, estimated: float) -> float:
        """Fold one observed actual/estimated row ratio into the bounded
        adaptive correction factor, returning the new factor.

        The half-power step (``correction *= ratio**0.5``) converges
        geometrically onto a persistent bias without oscillating on
        one-off outliers; the factor is clamped to
        ``[1/CORRECTION_BOUND, CORRECTION_BOUND]``.  The ratio is
        computed with +1 smoothing so empty actuals/estimates stay
        finite.  Because recorded estimates already *include* the current
        correction, a corrected-to-truth model observes ratio ≈ 1 and the
        factor stops moving.
        """
        ratio = (float(actual) + 1.0) / (float(estimated) + 1.0)
        corrected = self.correction * (ratio ** 0.5)
        self.correction = min(CORRECTION_BOUND, max(1.0 / CORRECTION_BOUND, corrected))
        return self.correction

    @property
    def stale(self) -> bool:
        """True once incremental churn since the last full scan exceeds the
        threshold — a prompt to :meth:`analyze`, not a correctness signal
        (the incremental counters are exact as long as every mutation was
        routed through this object)."""
        return self.mutations_since_analyze > self.staleness_threshold

    # -- equality (for the differential property tests) -----------------------
    def same_counts_as(self, other: "TableStatistics") -> bool:
        """Counter-for-counter equality, ignoring staleness bookkeeping."""
        return (
            self.row_count == other.row_count
            and self._values == other._values
            and self._non_null == other._non_null
            and self._signatures == other._signatures
        )

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, TableStatistics):
            return NotImplemented
        return self.same_counts_as(other)

    __hash__ = None  # mutable; unhashable like other mutable containers

    def __repr__(self) -> str:
        return (
            f"TableStatistics(rows={self.row_count}, "
            f"attributes={sorted(self._non_null)}, "
            f"signatures={len(self._signatures)}, "
            f"stale={self.stale})"
        )
