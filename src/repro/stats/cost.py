"""A System-R-flavoured cost model over :class:`TableStatistics`.

Estimation follows the classic selectivity formulas, adjusted for the
paper's three-valued semantics: under the Section 5 lower-bound
discipline a comparison touching ``ni`` evaluates to ``ni`` and is never
TRUE, so every estimate first discounts the null partition of the
compared attribute(s).  Concretely:

* selection ``A = k`` keeps ``non_null(A) / distinct(A)`` rows — the
  null partition contributes nothing, and each distinct value is assumed
  equally likely (the uniformity assumption);
* selection ``A != k`` keeps the complement *within the non-null
  partition* — null rows fail ``!=`` too (``ni`` is not TRUE);
* range selections keep a fixed fraction of the non-null partition
  (:data:`THETA_SELECTIVITY`, the textbook 1/3);
* an equi-join on ``(A₁=B₁, …, A_m=B_m)`` produces
  ``|L|·|R| / Π max(V(L,Aᵢ), V(R,Bᵢ))`` rows, each factor additionally
  scaled by the probability that both sides are non-null on the compared
  pair (the containment-of-value-sets assumption, null-discounted).

All estimates return floats ≥ 0; the planner only compares them, so
systematic bias cancels.  Exactness is never assumed — ``Plan.explain``
prints ``est=`` next to the measured ``rows=`` precisely so the two can
be compared.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

from .statistics import TableStatistics

#: Fraction of the non-null partition assumed to satisfy a range predicate.
THETA_SELECTIVITY = 1.0 / 3.0

#: Fallback equality selectivity when no distinct count is available.
DEFAULT_EQ_SELECTIVITY = 0.1

#: Sentinel for "no constant supplied" — ``None`` is a real constant (the
#: null literal), so absence needs its own marker.
_NO_VALUE = object()


class CostModel:
    """Selectivity and cardinality estimation for the QUEL optimizer."""

    def __init__(
        self,
        theta_selectivity: float = THETA_SELECTIVITY,
        default_eq_selectivity: float = DEFAULT_EQ_SELECTIVITY,
    ):
        self.theta_selectivity = theta_selectivity
        self.default_eq_selectivity = default_eq_selectivity

    # -- selections -----------------------------------------------------------
    def selection_selectivity(
        self,
        stats: TableStatistics,
        attribute: str,
        op: str,
        value=_NO_VALUE,
    ) -> float:
        """Estimated fraction of rows a ``A op constant`` selection keeps.

        The null partition of *attribute* is discounted first: a null is
        never TRUE under any comparison, equality and inequality alike.
        When the actual *value* of the constant is supplied and an
        ANALYZE-built equi-depth histogram covers the attribute, range and
        ``!=`` fractions come from the histogram instead of the constant
        fallbacks (:data:`THETA_SELECTIVITY` / uniformity); without a
        value — or without a fresh histogram — behaviour is unchanged.
        Every path clamps to [0, 1].
        """
        if stats.row_count == 0:
            return 0.0
        visible = stats.non_null_count(attribute) / stats.row_count
        visible = min(1.0, max(0.0, visible))
        if visible == 0.0:
            return 0.0
        if value is not _NO_VALUE and op in ("!=", "<", "<=", ">", ">="):
            histogram = stats.histogram(attribute)
            if histogram is not None:
                fraction = histogram.selectivity(op, value)
                if fraction is not None:
                    return min(1.0, visible * fraction)
        distinct = stats.distinct_count(attribute)
        if op in ("=", "=="):
            eq = (1.0 / distinct) if distinct else self.default_eq_selectivity
            return min(1.0, visible * min(1.0, eq))
        if op == "!=":
            eq = (1.0 / distinct) if distinct else self.default_eq_selectivity
            return min(1.0, visible * max(0.0, 1.0 - eq))
        return min(1.0, visible * self.theta_selectivity)

    def estimate_selection(
        self,
        stats: TableStatistics,
        attribute: str,
        op: str,
        cardinality: float = None,
        value=_NO_VALUE,
    ) -> float:
        """Estimated output rows of a constant selection over *cardinality*
        rows (default: the table's own row count)."""
        base = stats.row_count if cardinality is None else cardinality
        return base * self.selection_selectivity(stats, attribute, op, value)

    # -- joins ----------------------------------------------------------------
    def join_cardinality(
        self,
        left_cardinality: float,
        right_cardinality: float,
        key_distincts: Iterable[Tuple[float, float]],
        null_fractions: Iterable[Tuple[float, float]] = (),
    ) -> float:
        """Estimated output rows of a (composite-key) equi-join.

        *key_distincts* pairs up the distinct-value counts of the compared
        attributes, one ``(V(L,Aᵢ), V(R,Bᵢ))`` entry per fused equality;
        *null_fractions* optionally pairs up the null fractions of the same
        attributes, discounting the rows invisible to the probe.
        """
        estimate = float(left_cardinality) * float(right_cardinality)
        if estimate == 0.0:
            return 0.0
        for left_distinct, right_distinct in key_distincts:
            estimate /= max(left_distinct, right_distinct, 1.0)
        for left_null, right_null in null_fractions:
            estimate *= max(0.0, 1.0 - left_null) * max(0.0, 1.0 - right_null)
        return estimate

    def product_cardinality(self, left_cardinality: float, right_cardinality: float) -> float:
        """A Cartesian product multiplies — which is why products go last."""
        return float(left_cardinality) * float(right_cardinality)

    # -- residual predicates ---------------------------------------------------
    def residual_selectivity(self, comparisons: Sequence[str]) -> float:
        """Crude selectivity of a residual predicate from its operator list:
        equality conjuncts count as the default equality selectivity, any
        other shape as the range fraction."""
        selectivity = 1.0
        for op in comparisons:
            if op in ("=", "=="):
                selectivity *= self.default_eq_selectivity
            else:
                selectivity *= self.theta_selectivity
        return selectivity

    def __repr__(self) -> str:
        return (
            f"CostModel(theta={self.theta_selectivity:.3f}, "
            f"eq_default={self.default_eq_selectivity:.3f})"
        )


#: The shared default instance the planner uses when none is supplied.
DEFAULT_COST_MODEL = CostModel()
