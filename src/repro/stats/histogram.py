"""Equi-depth histograms over the non-null partition of one attribute.

PR 3's cost model estimated every range predicate (``<``, ``<=``, ``>``,
``>=``) with the textbook constant 1/3 and ``!=`` with a uniformity
guess.  An :class:`EquiDepthHistogram` replaces both guesses with data:
``ANALYZE`` slices the attribute's sorted non-null multiset into ``B``
buckets of (near-)equal depth and records, per bucket, the upper
boundary, the row count, and the distinct-value count.  Selectivity of
``A op constant`` within the non-null partition is then a walk over the
buckets with linear interpolation inside the boundary bucket (half a
bucket when the values don't interpolate, e.g. strings).

Histograms describe the **non-null** partition only — the Section 5
lower-bound discipline makes a comparison touching ``ni`` never TRUE, so
the cost model multiplies every histogram fraction by the attribute's
visible (non-null) fraction, exactly as it does for the constant
fallbacks.

A histogram is immutable once built.  Freshness is delegated to the
owning :class:`~repro.stats.statistics.TableStatistics` staleness
counter: the statistics object stops handing out its histograms once
incremental churn since the last ``ANALYZE`` crosses the threshold, and
the cost model falls back to the constants.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional, Tuple

#: Default number of buckets an ``ANALYZE`` builds per attribute.
DEFAULT_BUCKETS = 32

_NUMERIC = (int, float)


def _is_numeric(value: Any) -> bool:
    return isinstance(value, _NUMERIC) and not isinstance(value, bool)


class EquiDepthHistogram:
    """An immutable equi-depth histogram of one attribute's non-null values.

    ``buckets`` is a tuple of ``(upper, count, distinct)`` triples with
    non-decreasing ``upper`` boundaries; bucket *i* spans
    ``(upper[i-1], upper[i]]`` (the first bucket starts at
    :attr:`minimum`, inclusively).  Depths are within one row of each
    other by construction: bucket edges are positions ``⌊i·n/B⌋`` in the
    sorted value sequence, so a heavily-duplicated value is *split*
    across buckets positionally rather than bloating one bucket.
    """

    __slots__ = ("minimum", "total", "buckets")

    def __init__(
        self,
        minimum: Any,
        total: int,
        buckets: Tuple[Tuple[Any, int, int], ...],
    ):
        self.minimum = minimum
        self.total = total
        self.buckets = buckets

    # -- construction ---------------------------------------------------------
    @classmethod
    def build(
        cls, counter: Mapping[Any, int], buckets: int = DEFAULT_BUCKETS
    ) -> Optional["EquiDepthHistogram"]:
        """Build from a ``value -> multiplicity`` counter of non-null values.

        Returns ``None`` when the attribute has no values or the values
        do not admit a total order (mixed incomparable types) — the cost
        model then keeps its constant fallbacks.
        """
        try:
            items = sorted(counter.items())
        except TypeError:
            return None
        total = sum(multiplicity for _, multiplicity in items)
        if total <= 0:
            return None
        depth_count = min(max(1, buckets), total)
        edges = [(i * total) // depth_count for i in range(1, depth_count + 1)]
        built = []
        position = 0
        edge_index = 0
        bucket_count = 0
        bucket_distinct = 0
        for value, multiplicity in items:
            remaining = multiplicity
            bucket_distinct += 1
            while remaining:
                room = edges[edge_index] - position
                take = remaining if remaining < room else room
                bucket_count += take
                position += take
                remaining -= take
                if position == edges[edge_index]:
                    built.append((value, bucket_count, bucket_distinct))
                    edge_index += 1
                    bucket_count = 0
                    # A value whose multiplicity spans the edge continues
                    # into the next bucket and stays distinct there too.
                    bucket_distinct = 1 if remaining else 0
        return cls(items[0][0], total, tuple(built))

    # -- invariants (exposed for the property tests) --------------------------
    def depths(self) -> Tuple[int, ...]:
        return tuple(count for _, count, _ in self.buckets)

    def upper_bounds(self) -> Tuple[Any, ...]:
        return tuple(upper for upper, _, _ in self.buckets)

    # -- estimation -----------------------------------------------------------
    def _fraction_le(self, value: Any) -> float:
        """Estimated fraction of values ``<= value`` (within non-nulls)."""
        if value < self.minimum:
            return 0.0
        cumulative = 0.0
        lower = self.minimum
        interpolate = _is_numeric(value)
        for upper, count, _ in self.buckets:
            if value >= upper:
                cumulative += count
                lower = upper
                continue
            # value falls strictly inside (lower, upper)
            if interpolate and _is_numeric(upper) and _is_numeric(lower) and upper > lower:
                fraction = (value - lower) / (upper - lower)
            else:
                fraction = 0.5
            cumulative += count * fraction
            return cumulative / self.total
        return 1.0

    def _fraction_eq(self, value: Any) -> float:
        """Estimated fraction of values ``== value`` (within non-nulls).

        A heavily-duplicated value is split positionally across several
        consecutive buckets, each closing exactly at the value — its
        frequency is the summed uniform share over that whole run, not
        one bucket's.  (The run's spilled tail in the following bucket
        is ignored: the resulting undercount is bounded by one bucket's
        depth.)  A value strictly inside a bucket gets that bucket's
        uniform ``count / distinct`` share as before.
        """
        if value < self.minimum or value > self.buckets[-1][0]:
            return 0.0
        exact = 0.0
        matched = False
        for upper, count, distinct in self.buckets:
            if upper == value:
                matched = True
                if distinct > 0:
                    exact += count / distinct
            elif matched:
                break
        if matched:
            return exact / self.total
        for upper, count, distinct in self.buckets:
            if value <= upper:
                if distinct <= 0:
                    return 0.0
                return (count / distinct) / self.total
        return 0.0

    def selectivity(self, op: str, value: Any) -> Optional[float]:
        """Fraction of the *non-null* partition satisfying ``A op value``.

        Returns ``None`` when the constant is null or not comparable with
        the stored values — the caller falls back to its constants.
        """
        if value is None:
            return None
        try:
            if op in ("=", "=="):
                estimate = self._fraction_eq(value)
            elif op == "!=":
                estimate = 1.0 - self._fraction_eq(value)
            elif op == "<=":
                estimate = self._fraction_le(value)
            elif op == "<":
                estimate = self._fraction_le(value) - self._fraction_eq(value)
            elif op == ">":
                estimate = 1.0 - self._fraction_le(value)
            elif op == ">=":
                estimate = 1.0 - self._fraction_le(value) + self._fraction_eq(value)
            else:
                return None
        except TypeError:
            return None
        return min(1.0, max(0.0, estimate))

    # -- identity --------------------------------------------------------------
    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, EquiDepthHistogram):
            return NotImplemented
        return (
            self.minimum == other.minimum
            and self.total == other.total
            and self.buckets == other.buckets
        )

    __hash__ = None  # compared structurally in round-trip tests

    def __repr__(self) -> str:
        return (
            f"EquiDepthHistogram(buckets={len(self.buckets)}, "
            f"rows={self.total}, min={self.minimum!r}, "
            f"max={self.buckets[-1][0]!r})"
        )
