"""A dependency-free metrics subsystem (Prometheus-style, pure stdlib).

The registry holds *families* — a metric name plus a label schema — and
each family holds one child per distinct label combination.  Three
primitives cover the engine's needs:

``Counter``
    Monotonically increasing totals (``statements_total``,
    ``wal_records_total``).
``Gauge``
    Point-in-time values that move both ways (``stats_stale``,
    ``checkpoint_worker_failing``).
``Histogram``
    Observations bucketed into **fixed log-scaled latency buckets**
    (:data:`LATENCY_BUCKETS`, 10 µs → 50 s in a 1-2-5 progression), with
    cumulative bucket counts, ``_sum`` and ``_count`` in the classic
    Prometheus exposition shape.

All increments are thread-safe (one lock per child) and cheap enough for
per-statement instrumentation; hot paths cache the child returned by
``family.labels(...)`` so steady-state cost is a lock + float add.

Two read surfaces:

``MetricsRegistry.collect()``
    Plain dicts/lists — for tests and JSON shipping.
``MetricsRegistry.render_prometheus()``
    The text exposition format a future HTTP server can mount verbatim
    as ``/metrics``.  :func:`parse_prometheus` is the matching reader
    used by the test-suite round-trip and the CI smoke step.

A registry built with ``enabled=False`` (see
:func:`repro.obs.disabled_registry`) hands out a shared no-op child, so
instrumented code needs no ``if`` guards and benchmarks can measure the
true zero-instrumentation baseline.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "LATENCY_BUCKETS",
    "ERROR_RATIO_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "parse_prometheus",
]

#: Fixed log-scaled latency buckets (seconds): a 1-2-5 progression from
#: 10 microseconds to 50 seconds.  Every latency histogram in the engine
#: shares these bounds so panels line up.
LATENCY_BUCKETS: Tuple[float, ...] = tuple(
    round(10.0 ** exponent * mantissa, 12)
    for exponent in range(-5, 2)
    for mantissa in (1.0, 2.0, 5.0)
)

#: Buckets for dimensionless ratios (planner estimate-vs-actual error):
#: log-scaled around 1.0 (a perfect estimate).
ERROR_RATIO_BUCKETS: Tuple[float, ...] = (
    0.01, 0.05, 0.1, 0.25, 0.5, 0.8, 1.0, 1.25, 2.0, 4.0, 10.0, 100.0,
)


class _NoopChild:
    """Shared child handed out by a disabled registry — every write is a
    no-op, so instrumentation sites need no enabled checks."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    @property
    def value(self) -> float:
        return 0.0


_NOOP_CHILD = _NoopChild()


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("_lock", "_value")

    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A value that can go up and down (or be set outright)."""

    __slots__ = ("_lock", "_value")

    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Observations in fixed buckets, plus a running sum and count."""

    __slots__ = ("_lock", "_bounds", "_counts", "_sum", "_count")

    def __init__(self, buckets: Sequence[float] = LATENCY_BUCKETS):
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("a histogram needs at least one bucket bound")
        self._lock = threading.Lock()
        self._bounds = bounds
        # one slot per finite bound plus the implicit +Inf overflow slot
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        index = bisect_left(self._bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def snapshot(self) -> Dict[str, Any]:
        """Cumulative ``(le, count)`` pairs ending in ``+Inf``, plus sum
        and count — the exposition shape."""
        with self._lock:
            counts = list(self._counts)
            total, summed = self._count, self._sum
        cumulative = []
        running = 0
        for bound, bucket_count in zip(self._bounds, counts):
            running += bucket_count
            cumulative.append((bound, running))
        cumulative.append((math.inf, running + counts[-1]))
        return {"buckets": cumulative, "sum": summed, "count": total}


_KIND_FACTORIES = {
    "counter": Counter,
    "gauge": Gauge,
    "histogram": Histogram,
}


class MetricFamily:
    """A named metric plus its label schema; children live per label set."""

    def __init__(
        self,
        registry: "MetricsRegistry",
        kind: str,
        name: str,
        help: str,
        labelnames: Sequence[str],
        buckets: Optional[Sequence[float]] = None,
    ):
        self.registry = registry
        self.kind = kind
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._buckets = tuple(buckets) if buckets is not None else None
        self._lock = threading.Lock()
        self._children: Dict[Tuple[str, ...], Any] = {}

    def _make_child(self):
        if self.kind == "histogram":
            return Histogram(self._buckets if self._buckets else LATENCY_BUCKETS)
        return _KIND_FACTORIES[self.kind]()

    def labels(self, **labels: Any):
        """The child for this label combination (created on first use)."""
        if not self.registry.enabled:
            return _NOOP_CHILD
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name} expects labels {self.labelnames}, got {tuple(labels)}"
            )
        key = tuple(str(labels[name]) for name in self.labelnames)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.setdefault(key, self._make_child())
        return child

    # -- convenience for label-less families ---------------------------------
    def inc(self, amount: float = 1.0) -> None:
        self.labels().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self.labels().dec(amount)

    def set(self, value: float) -> None:
        self.labels().set(value)

    def observe(self, value: float) -> None:
        self.labels().observe(value)

    def samples(self) -> List[Dict[str, Any]]:
        with self._lock:
            items = sorted(self._children.items())
        out = []
        for key, child in items:
            labels = dict(zip(self.labelnames, key))
            if self.kind == "histogram":
                sample = child.snapshot()
                sample["labels"] = labels
            else:
                sample = {"labels": labels, "value": child.value}
            out.append(sample)
        return out


class MetricsRegistry:
    """Holds metric families; the engine's single observability sink.

    ``enabled=False`` turns every child into a shared no-op — used by
    benchmarks to measure the uninstrumented baseline and available to
    callers who want the engine silent.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._lock = threading.Lock()
        self._families: "Dict[str, MetricFamily]" = {}
        self._callbacks: List[Callable[[], Any]] = []

    # -- family constructors (get-or-create, idempotent) ---------------------
    def _family(
        self,
        kind: str,
        name: str,
        help: str,
        labelnames: Sequence[str],
        buckets: Optional[Sequence[float]] = None,
    ) -> MetricFamily:
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.kind != kind or family.labelnames != tuple(labelnames):
                    raise ValueError(
                        f"metric {name!r} already registered as {family.kind} "
                        f"with labels {family.labelnames}"
                    )
                return family
            family = MetricFamily(self, kind, name, help, labelnames, buckets)
            self._families[name] = family
            return family

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> MetricFamily:
        return self._family("counter", name, help, labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> MetricFamily:
        return self._family("gauge", name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = LATENCY_BUCKETS,
    ) -> MetricFamily:
        return self._family("histogram", name, help, labelnames, buckets)

    # -- scrape-time callbacks ------------------------------------------------
    def add_callback(self, callback: Callable[[], Any]) -> None:
        """Register *callback* to run before every :meth:`collect` /
        :meth:`render_prometheus` — used for gauges derived from live
        state (stats staleness).  A callback returning ``False`` is
        pruned (the idiom for weakref-bound sources that died)."""
        with self._lock:
            self._callbacks.append(callback)

    def _run_callbacks(self) -> None:
        with self._lock:
            callbacks = list(self._callbacks)
        dead = [cb for cb in callbacks if cb() is False]
        if dead:
            with self._lock:
                for cb in dead:
                    if cb in self._callbacks:
                        self._callbacks.remove(cb)

    # -- read surfaces ---------------------------------------------------------
    def collect(self) -> List[Dict[str, Any]]:
        """A plain-data snapshot of every family (see module docstring)."""
        self._run_callbacks()
        with self._lock:
            families = list(self._families.values())
        return [
            {
                "name": family.name,
                "type": family.kind,
                "help": family.help,
                "samples": family.samples(),
            }
            for family in families
        ]

    def render_prometheus(self) -> str:
        """The Prometheus text exposition format (version 0.0.4)."""
        lines: List[str] = []
        for family in self.collect():
            name, kind = family["name"], family["type"]
            if family["help"]:
                lines.append(f"# HELP {name} {_escape_help(family['help'])}")
            lines.append(f"# TYPE {name} {kind}")
            for sample in family["samples"]:
                labels = sample["labels"]
                if kind == "histogram":
                    for bound, count in sample["buckets"]:
                        bucket_labels = dict(labels)
                        bucket_labels["le"] = _format_bound(bound)
                        lines.append(
                            f"{name}_bucket{_render_labels(bucket_labels)} {count}"
                        )
                    lines.append(
                        f"{name}_sum{_render_labels(labels)} "
                        f"{_format_value(sample['sum'])}"
                    )
                    lines.append(
                        f"{name}_count{_render_labels(labels)} {sample['count']}"
                    )
                else:
                    lines.append(
                        f"{name}{_render_labels(labels)} "
                        f"{_format_value(sample['value'])}"
                    )
        return "\n".join(lines) + "\n"


# -- exposition helpers ---------------------------------------------------------

def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _render_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label_value(str(value))}"'
        for key, value in labels.items()
    )
    return "{" + inner + "}"


def _format_bound(bound: float) -> str:
    if math.isinf(bound):
        return "+Inf"
    return _format_value(bound)


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def parse_prometheus(text: str) -> Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float]:
    """Parse text-exposition output back into ``{(name, labels): value}``.

    The inverse of :meth:`MetricsRegistry.render_prometheus` for the
    subset this module emits — used by the round-trip test and the CI
    metrics smoke.  Labels are a sorted tuple of ``(key, value)`` pairs.
    """
    series: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float] = {}
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        if "{" in line:
            name, rest = line.split("{", 1)
            label_blob, value_text = rest.rsplit("} ", 1)
            labels = []
            for part in _split_label_pairs(label_blob):
                key, raw_value = part.split("=", 1)
                unquoted = raw_value[1:-1]
                unescaped = (
                    unquoted.replace("\\n", "\n")
                    .replace('\\"', '"')
                    .replace("\\\\", "\\")
                )
                labels.append((key, unescaped))
            key_tuple = tuple(sorted(labels))
        else:
            name, value_text = line.rsplit(" ", 1)
            key_tuple = ()
        series[(name, key_tuple)] = float(value_text)
    return series


def _split_label_pairs(blob: str) -> List[str]:
    """Split ``a="x",b="y"`` on commas outside quotes."""
    parts: List[str] = []
    current: List[str] = []
    in_quotes = False
    escaped = False
    for char in blob:
        if escaped:
            current.append(char)
            escaped = False
            continue
        if char == "\\":
            current.append(char)
            escaped = True
            continue
        if char == '"':
            in_quotes = not in_quotes
            current.append(char)
            continue
        if char == "," and not in_quotes:
            parts.append("".join(current))
            current = []
            continue
        current.append(char)
    if current:
        parts.append("".join(current))
    return parts
