"""Structured query traces: one span per executed statement.

:class:`repro.api.session.Session` opens a :class:`QueryTrace` around
every ``execute()`` — phase wall times (parse → analyze/plan → execute),
the statement kind, the chosen plan shape, and rows in/out.  For lazy
retrieves the executor finalises the trace when the pipeline drains,
folding in the per-operator actuals (est/actual rows, per-node seconds)
the PR 5 pipeline already measures.  Traces land in the session's ring
buffer (``Session.recent_traces()``) and, past
``Session.slow_query_threshold`` seconds, in the slow-query log (the
``repro.obs`` logger plus the ``repro_slow_queries_total`` counter).
"""

from __future__ import annotations

import logging
from typing import Any, Dict, List, Optional

__all__ = ["QueryTrace", "slow_query_logger"]

#: The slow-query log destination; attach a handler or raise the level
#: to silence it.
slow_query_logger = logging.getLogger("repro.obs.slow_query")


class QueryTrace:
    """A single statement's span: phases, plan shape and actuals.

    Mutable on purpose — the session records the cheap parts at execute
    time and the pipeline-completion hook fills in drain-side facts
    (operator actuals, rows out, errors) when they exist.
    """

    __slots__ = (
        "text",
        "kind",
        "phases",
        "outcome",
        "error",
        "rows_out",
        "rows_affected",
        "plan",
        "operators",
        "seconds",
        "slow",
        "finished",
        "tags",
    )

    def __init__(self, text: str):
        self.text = text
        self.kind: str = "unknown"
        #: phase name -> wall seconds.  ``parse`` covers lexing/parsing
        #: and the plan-cache lookup; ``analyze`` covers semantic
        #: analysis + compilation (≈0 on a cache hit); ``plan`` the
        #: physical planning done per execution; ``execute`` the
        #: execution itself (drain time is folded in when a lazy
        #: pipeline completes).
        self.phases: Dict[str, float] = {}
        self.outcome: str = "ok"
        self.error: Optional[str] = None
        self.rows_out: Optional[int] = None
        self.rows_affected: int = 0
        #: the plan shape — one line per plan step.
        self.plan: List[str] = []
        #: per-operator actuals: label, est, actual rows, seconds.
        self.operators: List[Dict[str, Any]] = []
        self.seconds: float = 0.0
        self.slow: bool = False
        self.finished: bool = False
        #: caller-attached context (the server stamps client/request
        #: ids here, see ``Session.trace_tags``); empty for local use.
        self.tags: Dict[str, Any] = {}

    def phase(self, name: str, seconds: float) -> None:
        self.phases[name] = self.phases.get(name, 0.0) + seconds

    def as_dict(self) -> Dict[str, Any]:
        """A plain-dict snapshot (for JSON shipping and tests)."""
        return {
            "text": self.text,
            "kind": self.kind,
            "phases": dict(self.phases),
            "outcome": self.outcome,
            "error": self.error,
            "rows_out": self.rows_out,
            "rows_affected": self.rows_affected,
            "plan": list(self.plan),
            "operators": [dict(op) for op in self.operators],
            "seconds": self.seconds,
            "slow": self.slow,
            "finished": self.finished,
            "tags": dict(self.tags),
        }

    def __repr__(self) -> str:
        return (
            f"QueryTrace(kind={self.kind!r}, outcome={self.outcome!r}, "
            f"seconds={self.seconds:.6f}, text={self.text.strip()!r})"
        )
