"""``repro.obs`` — the engine's observability layer (pure stdlib).

* :class:`MetricsRegistry` with :class:`Counter`, :class:`Gauge` and
  :class:`Histogram` families, a Prometheus text renderer
  (:meth:`~MetricsRegistry.render_prometheus`) and a plain-dict snapshot
  (:meth:`~MetricsRegistry.collect`).
* :class:`QueryTrace` spans recorded by ``Session.execute`` (ring buffer
  via ``Session.recent_traces()``, slow-query log via
  ``Session.slow_query_threshold``).
* A process-global default registry (:func:`get_registry` /
  :func:`set_registry`).  A ``Database`` built with
  ``metrics=MetricsRegistry()`` keeps its series isolated from the
  global one (the idiom the test-suite uses); :func:`registry_for`
  resolves whichever applies.

Every metric the engine emits is prefixed ``repro_`` — see the README's
"Observability" section for the full catalog.
"""

from __future__ import annotations

from typing import Any, Optional

from .metrics import (
    ERROR_RATIO_BUCKETS,
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    parse_prometheus,
)
from .tracing import QueryTrace, slow_query_logger

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "QueryTrace",
    "LATENCY_BUCKETS",
    "ERROR_RATIO_BUCKETS",
    "get_registry",
    "set_registry",
    "registry_for",
    "disabled_registry",
    "parse_prometheus",
    "slow_query_logger",
]

_default_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global default registry (what a ``/metrics`` endpoint
    would serve when no per-database registry is in play)."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-global registry; returns the previous one (so
    tests can restore it)."""
    global _default_registry
    previous = _default_registry
    _default_registry = registry
    return previous


def registry_for(database: Optional[Any]) -> MetricsRegistry:
    """The registry a component acting on *database* should write to:
    the database's own (``Database(metrics=...)``) when set, else the
    process-global default."""
    registry = getattr(database, "metrics", None)
    if isinstance(registry, MetricsRegistry):
        return registry
    return _default_registry


def disabled_registry() -> MetricsRegistry:
    """A registry whose children are shared no-ops — instrumentation
    costs one attribute lookup and a no-op call.  Used as the baseline
    in benchmark E21 and by callers who want the engine silent."""
    return MetricsRegistry(enabled=False)
