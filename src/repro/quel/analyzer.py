"""Semantic analysis: QUEL parse trees → core :class:`~repro.core.query.Query`.

The analyzer resolves relation names against a *database* (any mapping
from name to :class:`~repro.core.relation.Relation` /
:class:`~repro.core.xrelation.XRelation`, including
:class:`repro.storage.Database`), checks that every range variable is
declared exactly once, that every column reference names a declared
variable and an existing attribute, and that comparisons do not relate
two literals.  The output is a ready-to-evaluate core query plus the
little bits of surface information (``unique``, ``into``) the evaluator
may care about.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple, Union

from ..core.errors import QuelSemanticError
from ..core.query import (
    And,
    AttributeRef,
    Comparison,
    Constant,
    Not,
    Or,
    Parameter as CoreParameter,
    Predicate,
    Query,
    collect_parameters,
    substitute_parameters,
)
from ..core.relation import Relation
from ..core.xrelation import XRelation
from .ast_nodes import (
    AndExpr,
    ColumnRef,
    ComparisonExpr,
    Expression,
    Literal,
    NotExpr,
    OrExpr,
    Parameter,
    RetrieveStatement,
)

DatabaseLike = Mapping[str, Union[Relation, XRelation]]


class AnalyzedQuery:
    """The result of analysing a QUEL statement."""

    def __init__(self, query: Query, statement: RetrieveStatement):
        self.query = query
        self.statement = statement
        self.unique = statement.unique
        self.into = statement.into
        #: Parameter names (``$name`` placeholders) the query template
        #: mentions; execution must bind all of them.
        self.parameters = collect_parameters(query.where)

    def bind(self, params: Optional[Mapping[str, object]] = None) -> Query:
        """The analysed query with every ``$name`` bound to a constant.

        Parameter-free templates are returned as-is (no copy); a missing
        value raises :class:`QuelSemanticError`.  This is the one
        substitution point shared by :func:`repro.quel.run_query` and the
        session's compiled statements.
        """
        if not self.parameters:
            return self.query
        query = self.query
        where = substitute_parameters(query.where, params or {})
        if where is query.where:
            return query
        return Query(query.ranges, query.target, where, name=query.name)

    def __repr__(self) -> str:
        return f"AnalyzedQuery({self.query!r})"


def _lookup_relation(database: DatabaseLike, name: str) -> Union[Relation, XRelation]:
    if name in database:
        return database[name]
    # Be forgiving about case: QUEL keywords are case-insensitive and the
    # paper capitalises relation names.
    for key in database:
        if key.lower() == name.lower():
            return database[key]
    raise QuelSemanticError(
        f"unknown relation {name!r}; available: {', '.join(sorted(database))}"
    )


def _relation_schema(relation: Union[Relation, XRelation]):
    return relation.schema


def analyze(statement: RetrieveStatement, database: DatabaseLike, name: str = "Q") -> AnalyzedQuery:
    """Resolve and validate a parsed QUEL statement against a database."""
    if not statement.ranges:
        raise QuelSemanticError("the query declares no range variables")
    ranges: Dict[str, Union[Relation, XRelation]] = {}
    for declaration in statement.ranges:
        if declaration.variable in ranges:
            raise QuelSemanticError(
                f"range variable {declaration.variable!r} is declared more than once"
            )
        ranges[declaration.variable] = _lookup_relation(database, declaration.relation)

    def resolve_column(reference: ColumnRef) -> AttributeRef:
        if reference.variable not in ranges:
            raise QuelSemanticError(
                f"undeclared range variable {reference.variable!r} "
                f"(declared: {', '.join(ranges)})"
            )
        schema = _relation_schema(ranges[reference.variable])
        if reference.attribute not in schema:
            raise QuelSemanticError(
                f"relation for {reference.variable!r} has no attribute "
                f"{reference.attribute!r} (attributes: {', '.join(schema.attributes)})"
            )
        return AttributeRef(reference.variable, reference.attribute)

    def lower_operand(operand):
        if isinstance(operand, ColumnRef):
            return resolve_column(operand)
        if isinstance(operand, Parameter):
            return CoreParameter(operand.name)
        return Constant(operand.value)

    def lower(expression: Expression) -> Predicate:
        if isinstance(expression, ComparisonExpr):
            if not isinstance(expression.left, ColumnRef) and not isinstance(
                expression.right, ColumnRef
            ):
                raise QuelSemanticError(
                    f"comparison {expression} relates no columns; "
                    f"at least one side must be a column reference"
                )
            return Comparison(
                lower_operand(expression.left),
                expression.op,
                lower_operand(expression.right),
            )
        if isinstance(expression, AndExpr):
            return And(*[lower(o) for o in expression.operands])
        if isinstance(expression, OrExpr):
            return Or(*[lower(o) for o in expression.operands])
        if isinstance(expression, NotExpr):
            return Not(lower(expression.operand))
        raise QuelSemanticError(f"unsupported expression node {expression!r}")

    target = []
    for item in statement.target:
        target.append((item.output_name(), resolve_column(item.expression)))

    where: Optional[Predicate] = lower(statement.where) if statement.where is not None else None
    query = Query(ranges, target, where, name=statement.into or name)
    return AnalyzedQuery(query, statement)
