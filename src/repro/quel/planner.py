"""A cost-based planner-compiler for QUEL queries.

Section 8 of the paper stresses that the generalised model keeps "the
well-known correspondence between the relational calculus and the
relational algebra", which is what makes query evaluation efficient.  The
planner makes that correspondence concrete — and, since the statistics
PR, *chooses between* the equivalent algebraic strategies with a
System-R-style cost model (:mod:`repro.stats`).  Since the streaming
executor PR, planning and execution are fully decoupled:

1. **Planning** (:meth:`Plan.logical_plan`) is a pure phase driven by
   estimates only — rename ranges (lazily), push single-variable
   selections (persistent-index equality probes first), enumerate joins
   in greedy cost order (estimated-smallest range first, then the linked
   range with the smallest estimated join output; all equality conjuncts
   linking the next range fused into one composite key; an
   index-nested-loop join when the next range is an unfiltered stored
   table carrying a :class:`~repro.storage.index.HashIndex` on exactly
   the fused key; Cartesian products, smallest first, last), push
   residual conjuncts through the joins (applied as soon as their ranges
   are combined), project onto the target list.  No rows are touched.
2. **Execution** interprets the same logical plan one of two ways:

   * :meth:`Plan.compile` — the default, *streaming* executor: the plan
     compiles into a tree of :mod:`repro.exec` physical operators pulling
     fixed-size tuple blocks; non-blocking operators stream rows through
     without constructing any intermediate
     :class:`~repro.core.xrelation.XRelation`, and every node records
     actual rows and wall time for ``explain(analyze=True)``.
   * ``Plan(query, …, streaming=False)`` — the *materializing* executor:
     every step builds a full intermediate ``XRelation`` (the pre-exec
     behaviour, step for step).  It is the differential baseline the
     streaming path is pinned against, and what benchmark E17 measures
     the streaming win over.

Every executed step is annotated with the optimizer's estimated and the
measured row count (``est=…, rows=…``), so ``Plan.explain()`` doubles as
a cost-model audit; both executors (and the pre-statistics syntactic
planner) render their traces through the shared
:class:`~repro.exec.pipeline.TraceStep`, so there is exactly one format
path.  ``Plan(query, cost_based=False)`` reproduces the PR 2 planner
(syntactic join order, residual evaluated last, no index reuse) — the
benchmarks use it as their baseline, the differential tests run every
mode against the Section 5 oracle.

The planner handles every query the front end accepts; the optimisation
changes strategy only, and the produced result is always information-wise
equal to the tuple-at-a-time evaluation of
:func:`repro.core.query.evaluate_lower_bound` (asserted by the
differential harness in ``tests/test_differential_planner.py``).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Set, Tuple, Union

from ..core import algebra
from ..core.engine.dominance import partition_rows_by_signature
from ..core.engine.joins import build_join_buckets, index_probe_join_rows
from ..core.nulls import is_ni
from ..core.query import And, AttributeRef, Comparison, Constant, Predicate, Query
from ..core.relation import Relation
from ..core.threevalued import compare
from ..core.tuples import XTuple
from ..core.xrelation import XRelation
from ..exec.exchange import Exchange, Merge, PlanFragment, partition_rows_by_key
from ..exec.operators import (
    BLOCK_SIZE,
    Filter,
    HashJoin,
    IndexNLJoin,
    IndexProbe,
    PhysicalOperator,
    Product,
    Project,
    Rename,
    TableScan,
)
from ..exec.pipeline import Pipeline, StalenessGuard, TraceStep
from ..obs import registry_for
from ..stats import (
    CostModel,
    DEFAULT_COST_MODEL,
    TableStatistics,
    suggest_parallelism,
)

#: Above this many ranges the Selinger-style DP join enumeration (2^n
#: subset states) yields to the PR 3 greedy order.
DP_JOIN_THRESHOLD = 10


class _RangeContext:
    """Per-range state: statistics and estimates for planning, lazily
    renamed/filtered rows for the materializing executor.

    Renaming a range costs one new tuple per row plus a reduction to
    minimal form, so the context defers it as long as possible: pushed
    selections filter the *unrenamed* base rows, hash joins can bucket
    the unrenamed rows and rename only the matched ones, and an
    index-nested-loop join never materialises the range at all.  The
    planning phase reads only ``est`` / ``stats()`` / ``table`` (no rows
    are touched); the row-state methods serve the materializing executor.
    """

    __slots__ = (
        "variable", "relation", "table", "filtered", "est",
        "_renamed", "_filtered_base", "_stats",
    )

    def __init__(self, variable: str, relation: Relation, table) -> None:
        self.variable = variable
        self.relation = relation
        self.table = table
        self.filtered = False
        #: The optimizer's running cardinality estimate for this range.
        self.est: float = float(len(relation))
        self._renamed: Optional[XRelation] = None
        #: Pushed-selection result over the *unrenamed* base rows.
        self._filtered_base: Optional[XRelation] = None
        self._stats: Optional[TableStatistics] = None

    @property
    def mapping(self) -> Dict[str, str]:
        return {a: f"{self.variable}.{a}" for a in self.relation.schema.attributes}

    def _base(self) -> Union[Relation, XRelation]:
        return self._filtered_base if self._filtered_base is not None else self.relation

    def materialized(self) -> XRelation:
        if self._renamed is None:
            self._renamed = algebra.rename(self._base(), self.mapping)
        return self._renamed

    def unrenamed_rows(self):
        """The current (possibly filtered) rows under their bare attributes."""
        base = self._base()
        return base.rows() if isinstance(base, XRelation) else base.tuples()

    def push_constant(self, conjunct: Comparison) -> None:
        """Apply a pushable constant comparison on the unrenamed base —
        selection commutes with renaming, and filtering first makes any
        later rename cheaper."""
        attribute, op, constant = _constant_parts(conjunct)
        if is_ni(constant):
            # A comparison against a null constant evaluates to ni for
            # every row — never TRUE — so the selection keeps nothing.
            # (The tuple-at-a-time oracle agrees; ``select_constant``
            # itself refuses null constants, so bypass it.)
            self.set_base_rows(())
            return
        self._filtered_base = algebra.select_constant(self._base(), attribute, op, constant)
        self._renamed = None
        self.filtered = True

    def set_base_rows(self, rows) -> None:
        """Replace the unrenamed base with an explicit row set — the
        index-backed selection path, where a persistent hash index
        already produced exactly the rows satisfying the pushed equality
        conjuncts (rows null on a probed attribute are rightly absent:
        an equality touching ``ni`` is never TRUE)."""
        base = Relation(self.relation.schema, validate=False)
        base._rows = set(rows)
        self._filtered_base = XRelation(base)
        self._renamed = None
        self.filtered = True

    def push_predicate(self, conjunct: Predicate) -> None:
        """Apply a single-variable residual conjunct, likewise pre-rename."""
        variable = self.variable

        def row_predicate(row: XTuple, _c=conjunct, _v=variable):
            return _c.evaluate({_v: row})

        self._filtered_base = algebra.select_predicate(self._base(), row_predicate)
        self._renamed = None
        self.filtered = True

    @property
    def cardinality(self) -> int:
        if self._renamed is not None:
            return len(self._renamed)
        if self._filtered_base is not None:
            return len(self._filtered_base)
        return len(self.relation)

    def stats(self) -> TableStatistics:
        """The base statistics: the table's live counters when this range
        is a stored table (no per-query scan), a one-off analyze of the
        base rows otherwise."""
        if self._stats is None:
            if self.table is not None:
                self._stats = self.table.statistics
            else:
                self._stats = TableStatistics(self.relation.tuples())
        return self._stats

    def distinct(self, attribute: str) -> float:
        """Distinct non-null values on a (bare) attribute, capped by the
        current cardinality estimate (planning never reads the rows)."""
        count = self.stats().distinct_count(attribute)
        return float(min(count, self.est)) if count else 0.0

    def null_fraction(self, attribute: str) -> float:
        return self.stats().null_fraction(attribute)

    def correction(self) -> float:
        """The table's adaptive estimate-correction factor (1.0 when the
        range is ad hoc, carries no feedback, or the factor is reset)."""
        return getattr(self.stats(), "correction", 1.0)


# ---------------------------------------------------------------------------
# Logical plan operations — what planning produces, what both executors run
# ---------------------------------------------------------------------------

class _LogicalOp:
    """One step of the logical plan (kind + everything both executors need)."""

    __slots__ = (
        "kind", "variable", "conjunct", "attribute", "op", "constant",
        "index", "probe", "described", "pairs", "targets", "est", "residual",
    )

    def __init__(self, kind: str, **fields: Any):
        self.kind = kind
        for slot in self.__slots__:
            if slot != "kind":
                setattr(self, slot, fields.pop(slot, None))
        if fields:
            raise TypeError(f"unknown logical-op fields {sorted(fields)}")

    def __repr__(self) -> str:
        return f"_LogicalOp({self.kind!r}, variable={self.variable!r})"


class Plan:
    """An executable query plan with a readable, cost-annotated trace.

    Parameters
    ----------
    query:
        The analysed core query.
    database:
        Optional database the ranges came from.  When it exposes
        ``table_for_relation`` (``repro.storage.Database`` does), the
        planner reaches each range's live :class:`TableStatistics` and
        persistent indexes through it; with ``None`` (or a plain mapping)
        per-range statistics are computed on the fly.
    cost_based:
        ``True`` (default) enables cost-ordered joins, selection
        push-through and index reuse; ``False`` reproduces the PR 2
        planner exactly (syntactic join order, residual last).
    use_indexes:
        Whether an unfiltered table range may be joined by probing a
        persistent index covering the fused join key.
    cost_model:
        The :class:`~repro.stats.CostModel` used for the estimates.
    streaming:
        ``True`` (default): :meth:`execute` compiles the logical plan to
        a :mod:`repro.exec` operator tree and drains it — no intermediate
        ``XRelation`` is ever built.  ``False``: every step materialises
        a full intermediate (the pre-exec behaviour), kept as the
        differential/benchmark baseline.  Both run the *same* logical
        plan, so their step traces are directly comparable.
    block_size:
        Tuples per exchanged block on the streaming path.
    parallelism:
        The default partition count for :meth:`compile`.  ``None``/``0``
        (the default) and ``1`` compile the plain serial tree; ``N >= 2``
        compiles an :class:`~repro.exec.Exchange`/:class:`~repro.exec.Merge`
        pair running ``N`` per-partition plan fragments in worker
        processes; ``"auto"`` asks
        :func:`repro.stats.suggest_parallelism` — serial below ~50k
        estimated input rows or when :mod:`multiprocessing` is unusable,
        CPU-count-capped otherwise.
    parallel_mode:
        ``"process"`` (default) runs the partitions in a
        :mod:`multiprocessing` pool; ``"inline"`` runs the identical
        fragment code sequentially in this process (the automatic
        fallback on platforms without multiprocessing, and the cheap
        mode for correctness testing).
    join_enumeration:
        ``"dp"`` (default) finds the cheapest left-deep combination
        order by Selinger-style dynamic programming over connected
        subgraphs — Cartesian products considered only for subsets with
        no linked extension — minimising the *total* estimated
        intermediate rows; above :data:`DP_JOIN_THRESHOLD` ranges it
        falls back automatically.  ``"greedy"`` keeps the PR 3
        per-step-minimal order unconditionally.
    """

    def __init__(
        self,
        query: Query,
        database=None,
        *,
        cost_based: bool = True,
        use_indexes: bool = True,
        cost_model: Optional[CostModel] = None,
        streaming: bool = True,
        block_size: int = BLOCK_SIZE,
        parallelism: Optional[Union[int, str]] = None,
        parallel_mode: str = "process",
        join_enumeration: str = "dp",
    ):
        self.query = query
        self.database = database
        self.cost_based = cost_based
        self.use_indexes = use_indexes
        self.cost_model = cost_model if cost_model is not None else DEFAULT_COST_MODEL
        self.streaming = streaming
        self.block_size = block_size
        self.parallelism = parallelism
        self.parallel_mode = parallel_mode
        if join_enumeration not in ("dp", "greedy"):
            raise ValueError(
                f"join_enumeration must be 'dp' or 'greedy', got {join_enumeration!r}"
            )
        self.join_enumeration = join_enumeration
        self.steps: List[str] = []
        #: The last compiled streaming pipeline (set by :meth:`execute`).
        self.pipeline: Optional[Pipeline] = None
        self._ops: Optional[List[_LogicalOp]] = None
        self._start: Optional[str] = None
        self._plan_contexts: Optional[Dict[str, _RangeContext]] = None
        self._metric_handles = None

    def explain(self) -> str:
        return "\n".join(f"{i + 1}. {step}" for i, step in enumerate(self.steps))

    # -- construction --------------------------------------------------------
    @staticmethod
    def _qualify(variable: str, attribute: str) -> str:
        return f"{variable}.{attribute}"

    def _table_of(self, relation: Relation):
        finder = getattr(self.database, "table_for_relation", None)
        if finder is None:
            return None
        return finder(relation)

    def _contexts(self) -> Dict[str, _RangeContext]:
        return {
            variable: _RangeContext(variable, relation, self._table_of(relation))
            for variable, relation in self.query.ranges.items()
        }

    # -- execution -----------------------------------------------------------
    def execute(self) -> XRelation:
        """Plan, execute and return the answer x-relation."""
        if not self.cost_based:
            return self._execute_syntactic()
        if not self.streaming:
            return self._execute_materializing()
        pipeline = self.compile()
        answer = pipeline.run()
        self.steps = pipeline.step_lines()
        return answer

    # -- the planning phase (estimate-driven, touches no rows) ---------------
    def logical_plan(self) -> List[_LogicalOp]:
        """The cost-ordered logical plan (cached; pure — no rows read)."""
        if self._ops is None:
            self._ops = self._build_logical_plan()
        return self._ops

    def _build_logical_plan(self) -> List[_LogicalOp]:
        query = self.query
        model = self.cost_model
        ops: List[_LogicalOp] = []

        pushable, residual = _split_conjuncts(query.where)

        # Classify the residual conjuncts: equality links between two
        # ranges feed the join enumeration; single-variable conjuncts are
        # pushed onto their range ahead of any join; the rest is deferred
        # and applied as soon as its variables have all been combined.
        equijoins: List[Comparison] = []
        single_variable: Dict[str, List[Predicate]] = {}
        deferred: List[Predicate] = []
        for conjunct in _flatten(residual):
            if _is_equijoin(conjunct):
                equijoins.append(conjunct)
                continue
            references = conjunct.references()
            if len(references) == 1:
                single_variable.setdefault(references[0], []).append(conjunct)
            else:
                deferred.append(conjunct)

        variables = list(query.ranges)
        declaration = {variable: i for i, variable in enumerate(variables)}
        contexts = self._contexts()
        self._plan_contexts = contexts

        # Step 1: rename each range with a variable prefix (lazy — the
        # step records the logical operation; rows move only at run time).
        for variable, relation in query.ranges.items():
            ops.append(_LogicalOp("rename", variable=variable,
                                  described=relation.name))

        # Step 2: push single-variable selections — constant comparisons
        # first (equality conjuncts served straight from a covering
        # persistent index when one exists), then any residual conjunct
        # confined to one range.
        for variable, conjuncts in pushable.items():
            context = contexts[variable]
            conjuncts = self._plan_index_selection(ops, context, conjuncts)
            for conjunct in conjuncts:
                attribute, op, constant = _constant_parts(conjunct)
                # The constant's value lets a fresh ANALYZE-built
                # histogram replace the 1/3 range guess; the table's
                # adaptive correction folds observed misestimates in.
                estimate = model.estimate_selection(
                    context.stats(), attribute, op, cardinality=context.est,
                    value=constant,
                ) * context.correction()
                context.est = estimate
                context.filtered = True
                ops.append(_LogicalOp(
                    "select", variable=variable, conjunct=conjunct,
                    attribute=attribute, op=op, constant=constant, est=estimate,
                ))
        for variable, conjuncts in single_variable.items():
            context = contexts[variable]
            for conjunct in conjuncts:
                estimate = (
                    context.est * self._residual_factor(conjunct)
                    * context.correction()
                )
                context.est = estimate
                context.filtered = True
                ops.append(_LogicalOp(
                    "select-var-residual", variable=variable,
                    conjunct=conjunct, est=estimate,
                ))

        # Step 3: cost-ordered combination.  The DP enumerator finds the
        # left-deep order minimising the *total* estimated intermediate
        # rows (Selinger-style over connected subgraphs, products
        # deferred); when it declines — greedy mode, a single range, or
        # more than DP_JOIN_THRESHOLD ranges — the PR 3 greedy order is
        # used: estimated-smallest start, then at each step the linked
        # range with the smallest estimated join output, products
        # (smallest first) only when nothing is linked.
        order = self._dp_join_order(variables, declaration, contexts,
                                    equijoins, deferred)
        if order is not None:
            start = order[0]
        else:
            start = min(variables, key=lambda v: (contexts[v].est, declaration[v]))
        self._start = start
        included: Set[str] = {start}
        remaining = [v for v in variables if v != start]
        current = contexts[start].est
        distincts: Dict[str, float] = {}

        current = self._plan_deferred(ops, current, deferred, included, variables)

        while remaining:
            best = None
            if order is not None:
                # Follow the DP-chosen order; whether the next range
                # joins or products falls out of its links as usual.
                candidate = order[len(included)]
                links = _pick_equijoins(equijoins, included, candidate)
                if links:
                    pairs = _orient_links(links, included)
                    estimate = self._join_estimate(
                        current, distincts, contexts, contexts[candidate], pairs
                    )
                    best = (None, candidate, links, pairs, estimate)
            else:
                for variable in remaining:
                    links = _pick_equijoins(equijoins, included, variable)
                    if not links:
                        continue
                    pairs = _orient_links(links, included)
                    estimate = self._join_estimate(
                        current, distincts, contexts, contexts[variable], pairs
                    )
                    key = (estimate, declaration[variable])
                    if best is None or key < best[0]:
                        best = (key, variable, links, pairs, estimate)
            if best is None:
                if order is not None:
                    variable = order[len(included)]
                else:
                    variable = min(
                        remaining, key=lambda v: (contexts[v].est, declaration[v])
                    )
                context = contexts[variable]
                estimate = model.product_cardinality(current, context.est)
                ops.append(_LogicalOp("product", variable=variable, est=estimate))
            else:
                _, variable, links, pairs, estimate = best
                for link in links:
                    equijoins.remove(link)
                context = contexts[variable]
                index = None
                if self.use_indexes and context.table is not None and not context.filtered:
                    index = context.table.find_index(
                        [new.attribute for _, new in pairs]
                    )
                ops.append(_LogicalOp(
                    "join", variable=variable, pairs=pairs, est=estimate,
                    index=index,
                ))
                _fold_join_distincts(distincts, contexts, pairs, estimate)
            included.add(variable)
            remaining.remove(variable)
            current = estimate
            current = self._plan_deferred(ops, current, deferred, included, variables)

        # Safety net: any equality conjunct the enumeration did not
        # consume (not reachable in practice) is applied as a selection.
        for conjunct in equijoins + deferred:
            estimate = current * self._residual_factor(conjunct)
            current = estimate
            ops.append(_LogicalOp("residual", conjunct=conjunct, est=estimate))

        ops.append(_LogicalOp("project", targets=self._qualified_targets()))
        return ops

    def _plan_index_selection(
        self, ops: List[_LogicalOp], context: _RangeContext,
        conjuncts: List[Comparison],
    ) -> List[Comparison]:
        """Plan serving pushed equality conjuncts from a covering
        persistent index (one bucket probe instead of a scan); returns
        the conjuncts the index did not consume."""
        if not self.use_indexes or context.table is None or context.filtered:
            return conjuncts
        by_attr: Dict[str, Tuple[Comparison, Any]] = {}
        for conjunct in conjuncts:
            attribute, op, constant = _constant_parts(conjunct)
            if op in ("=", "==") and attribute not in by_attr:
                by_attr[attribute] = (conjunct, constant)
        if not by_attr:
            return conjuncts
        index, consumed_attrs = context.table.find_equality_index(list(by_attr))
        if index is None:
            return conjuncts
        by_attr = {attribute: by_attr[attribute] for attribute in consumed_attrs}
        consumed = {id(c) for c, _ in by_attr.values()}
        estimate = context.est
        for conjunct, _ in by_attr.values():
            attribute, op, _constant = _constant_parts(conjunct)
            estimate = self.cost_model.estimate_selection(
                context.stats(), attribute, op, cardinality=estimate
            )
        estimate *= context.correction()
        probe = [by_attr[a][1] for a in index.attributes]
        described = " and ".join(
            f"{context.variable}.{a} = {by_attr[a][1]!r}" for a in index.attributes
        )
        context.est = estimate
        context.filtered = True
        ops.append(_LogicalOp(
            "index-select", variable=context.variable, index=index,
            probe=probe, described=described, est=estimate,
        ))
        return [c for c in conjuncts if id(c) not in consumed]

    def _plan_deferred(
        self,
        ops: List[_LogicalOp],
        current: float,
        deferred: List[Predicate],
        included: Set[str],
        variables: Sequence[str],
    ) -> float:
        """Push residual conjuncts through: schedule each as soon as every
        range it mentions has been combined.

        A conjunct that becomes applicable exactly at a join — it
        mentions the just-joined variable — and compiles to a fast
        (probe, build) pair predicate is **fused into the join** instead
        of appended as a separate selection: the probe loop rejects the
        pair before the joined tuple is ever constructed (two dict reads
        instead of a tuple build the very next operator would discard).
        Conjuncts with shapes the pair compiler rejects (Or / Not /
        exotic terms) keep the post-join Filter behaviour."""
        for conjunct in list(deferred):
            references = conjunct.references()
            if references and not set(references) <= included:
                continue
            deferred.remove(conjunct)
            estimate = current * self._residual_factor(conjunct)
            current = estimate
            if ops and ops[-1].kind == "join" and ops[-1].variable in references:
                join_op = ops[-1]
                fused = _conjoin(_flatten(join_op.residual) + [conjunct])
                if _pair_predicate(fused, join_op.variable) is not None:
                    join_op.residual = fused
                    join_op.est = estimate
                    continue
            ops.append(_LogicalOp("residual", conjunct=conjunct, est=estimate))
        return current

    def _residual_factor(self, conjunct: Predicate) -> float:
        if isinstance(conjunct, Comparison):
            return self.cost_model.residual_selectivity([conjunct.op])
        return self.cost_model.theta_selectivity

    def _join_estimate(
        self,
        current: float,
        distincts: Dict[str, float],
        contexts: Dict[str, _RangeContext],
        context: _RangeContext,
        pairs: Sequence[Tuple[AttributeRef, AttributeRef]],
    ) -> float:
        key_distincts = []
        null_fractions = []
        for old_ref, new_ref in pairs:
            old_key = self._qualify(old_ref.variable, old_ref.attribute)
            old_distinct = distincts.get(old_key)
            if old_distinct is None:
                old_distinct = contexts[old_ref.variable].distinct(old_ref.attribute)
                if old_distinct:
                    old_distinct = min(old_distinct, current)
            new_distinct = context.distinct(new_ref.attribute)
            key_distincts.append((old_distinct, new_distinct))
            null_fractions.append((0.0, context.null_fraction(new_ref.attribute)))
        return self.cost_model.join_cardinality(
            current, context.est, key_distincts, null_fractions
        )

    def _dp_join_order(
        self,
        variables: Sequence[str],
        declaration: Dict[str, int],
        contexts: Dict[str, _RangeContext],
        equijoins: List[Comparison],
        deferred: List[Predicate],
    ) -> Optional[List[str]]:
        """The cheapest left-deep combination order, by dynamic
        programming over subsets — or ``None`` for the greedy fallback.

        Selinger-style: one state per subset of ranges, extended only by
        ranges *connected* to it through an unused equality link;
        Cartesian products enter the enumeration only for subsets with no
        linked extension at all ("products deferred").  A state's cost is
        the sum of the estimated rows of every intermediate it built —
        the same per-step estimates the emission loop will recompute
        (``_join_estimate`` plus the deferred-conjunct selectivity folds
        of ``_plan_deferred``), so the order handed back replays to
        exactly the costs that selected it.  Ties break toward
        declaration order, keeping plans deterministic.
        """
        if self.join_enumeration != "dp":
            return None
        count = len(variables)
        if count < 2 or count > DP_JOIN_THRESHOLD:
            return None
        model = self.cost_model

        deferred_refs = [
            (conjunct, frozenset(conjunct.references())) for conjunct in deferred
        ]

        def fold_deferred(estimate, before, after):
            # Mirror _plan_deferred: a deferred conjunct's selectivity
            # applies the moment its variables are all combined.
            for conjunct, refs in deferred_refs:
                if refs and refs <= after and not refs <= before:
                    estimate *= self._residual_factor(conjunct)
            return estimate

        linked: Dict[str, Set[str]] = {v: set() for v in variables}
        for conjunct in equijoins:
            left, right = conjunct.left.variable, conjunct.right.variable
            linked[left].add(right)
            linked[right].add(left)

        def order_rank(order):
            return tuple(declaration[v] for v in order)

        # subset -> (cost, order, current estimate, shared-key distincts)
        states: Dict[frozenset, Tuple[float, Tuple[str, ...], float, Dict[str, float]]] = {}
        for variable in variables:
            subset = frozenset((variable,))
            estimate = fold_deferred(contexts[variable].est, frozenset(), subset)
            states[subset] = (estimate, (variable,), estimate, {})

        for size in range(1, count):
            for subset in [s for s in states if len(s) == size]:
                cost, order, current, distincts = states[subset]
                connected = [
                    v for v in variables if v not in subset and linked[v] & subset
                ]
                candidates = connected or [
                    v for v in variables if v not in subset
                ]
                for variable in candidates:
                    links = _pick_equijoins(equijoins, set(subset), variable)
                    branch_distincts = dict(distincts)
                    if links:
                        pairs = _orient_links(links, set(subset))
                        estimate = self._join_estimate(
                            current, branch_distincts, contexts,
                            contexts[variable], pairs,
                        )
                        _fold_join_distincts(
                            branch_distincts, contexts, pairs, estimate
                        )
                    else:
                        estimate = model.product_cardinality(
                            current, contexts[variable].est
                        )
                    extended = subset | frozenset((variable,))
                    estimate = fold_deferred(estimate, subset, extended)
                    branch = (
                        cost + estimate, order + (variable,),
                        estimate, branch_distincts,
                    )
                    existing = states.get(extended)
                    if existing is None or (
                        (branch[0], order_rank(branch[1]))
                        < (existing[0], order_rank(existing[1]))
                    ):
                        states[extended] = branch
        return list(states[frozenset(variables)][1])

    def _qualified_targets(self) -> List[Tuple[str, str]]:
        return [
            (output, self._qualify(ref.variable, ref.attribute))
            for output, ref in self.query.target
        ]

    # -- shared step texts ----------------------------------------------------
    @staticmethod
    def _join_on_text(pairs: Sequence[Tuple[AttributeRef, AttributeRef]]) -> str:
        described = [
            f"{old.variable}.{old.attribute} = {new.variable}.{new.attribute}"
            for old, new in pairs
        ]
        return described[0] if len(described) == 1 else "[" + ", ".join(described) + "]"

    def _step_text(self, op: _LogicalOp) -> str:
        """The logical step line (sans annotations) — one format path for
        the materializing and the streaming executor."""
        if op.kind == "rename":
            return f"rename {op.described} as {op.variable}(…)"
        if op.kind == "index-select":
            return f"index select {op.described} using index {op.index.name}"
        if op.kind == "select":
            return f"select {op.conjunct!r} on {op.variable}"
        if op.kind == "select-var-residual":
            return f"select residual {op.conjunct!r} on {op.variable}"
        if op.kind == "join":
            on = self._join_on_text(op.pairs)
            fused = (
                f" with fused residual {op.residual!r}"
                if op.residual is not None else ""
            )
            if op.index is not None:
                return (
                    f"index-nested-loop join with {op.variable} using index "
                    f"{op.index.name} on {on}{fused}"
                )
            return f"hash equi-join with {op.variable} on {on}{fused}"
        if op.kind == "product":
            return f"product with {op.variable}"
        if op.kind == "residual":
            return f"select residual {op.conjunct!r}"
        if op.kind == "project":
            return f"project onto {[o for o, _ in op.targets]}"
        raise ValueError(f"unknown logical op kind {op.kind!r}")

    # -- the streaming compiler (logical plan → physical operator tree) ------
    def compile(
        self,
        parallelism: Optional[Union[int, str]] = None,
        parallel_mode: Optional[str] = None,
    ) -> Pipeline:
        """Compile the logical plan into a fresh streaming pipeline.

        The tree pulls blocks leaf-to-root and builds **no** intermediate
        ``XRelation``: pushed selections are :class:`Filter` nodes over a
        :class:`TableScan` (or an :class:`IndexProbe` bucket), joins
        bucket only the (filtered, unrenamed) build side and rename only
        matched rows, residual conjuncts filter rows in flight, and the
        single materialisation happens when the
        :class:`~repro.exec.pipeline.Pipeline` is drained.  Each call
        returns a new single-use tree; the logical plan is computed once.

        *parallelism* / *parallel_mode* override the constructor
        defaults: with a resolved partition count of 2 or more the same
        logical plan compiles into an
        :class:`~repro.exec.Exchange`/:class:`~repro.exec.Merge` pair
        over per-partition plan fragments instead (``1`` — explicit or
        resolved from ``"auto"`` — returns the plain serial tree, so a
        ``parallelism=1`` run is the serial run, block for block).
        """
        if not self.cost_based:
            raise ValueError("streaming compilation requires the cost-based planner")
        resolved = self._resolve_parallelism(parallelism)
        if resolved <= 1:
            pipeline = self._compile_serial()
        else:
            mode = parallel_mode if parallel_mode is not None else self.parallel_mode
            pipeline = self._compile_parallel(resolved, mode)
        self._record_plan_metrics(resolved)
        return pipeline

    def _record_plan_metrics(self, partitions: int) -> None:
        """Count this compilation and its physical join choices in the
        database's metrics registry (one bump per compiled pipeline).

        A cached prepared statement recompiles its pipeline on every
        execution, so the label children are resolved once per Plan and
        cached — the per-compile cost is a handful of counter adds,
        keeping the prepared fast path inside E21's 5% overhead gate.
        """
        handles = self._metric_handles
        if handles is None:
            registry = registry_for(self.database)
            plans = registry.counter(
                "repro_plans_total",
                "Streaming pipelines compiled by the cost-based planner.",
                ("mode",),
            )
            choices = registry.counter(
                "repro_plan_join_choices_total",
                "Physical strategy chosen per combine step (index-NL vs "
                "hash join vs cartesian product).",
                ("strategy",),
            )
            handles = self._metric_handles = {
                "serial": plans.labels(mode="serial"),
                "parallel": plans.labels(mode="parallel"),
                "index_nl": choices.labels(strategy="index_nl"),
                "hash": choices.labels(strategy="hash"),
                "product": choices.labels(strategy="product"),
            }
        handles["parallel" if partitions > 1 else "serial"].inc()
        for op in self.logical_plan():
            if op.kind == "join":
                handles["index_nl" if op.index is not None else "hash"].inc()
            elif op.kind == "product":
                handles["product"].inc()

    def _resolve_parallelism(
        self, parallelism: Optional[Union[int, str]]
    ) -> int:
        """Turn a ``parallelism`` knob value into a partition count.

        ``None`` defers to the constructor's setting; ``None``/``0``
        there means serial.  ``"auto"`` consults
        :func:`repro.stats.suggest_parallelism` with the sum of the
        per-range statistics row counts — the rows the pipeline will pull
        through its leaves — so the decision touches no rows.
        """
        if parallelism is None:
            parallelism = self.parallelism
        if parallelism is None or parallelism == 0:
            return 1
        if parallelism == "auto":
            self.logical_plan()  # populates the per-range contexts
            contexts = self._plan_contexts or {}
            estimated = float(sum(
                context.stats().row_count for context in contexts.values()
            ))
            return suggest_parallelism(estimated)
        count = int(parallelism)
        if count < 1:
            raise ValueError(f"parallelism must be >= 1, got {count}")
        return count

    def _compile_serial(self) -> Pipeline:
        """The single-process compiler behind :meth:`compile`."""
        ops = self.logical_plan()
        contexts = self._plan_contexts
        variables = list(self.query.ranges)
        block_size = self.block_size
        trace: List[TraceStep] = []
        # One staleness stamp per table the tree will probe *live* (the
        # inner side of every index-nested-loop join); every other leaf
        # snapshots its rows at execute time and needs no guard.
        guards: List[StalenessGuard] = []
        chains: Dict[str, Optional[PhysicalOperator]] = {v: None for v in variables}

        def scan(variable: str) -> PhysicalOperator:
            node = chains[variable]
            if node is None:
                relation = contexts[variable].relation
                node = TableScan(
                    relation.tuples(),
                    label=f"TableScan {relation.name} ({variable})",
                    est=float(len(relation)),
                    block_size=block_size,
                )
                chains[variable] = node
            return node

        def transform_for(variable: str):
            mapping = contexts[variable].mapping
            return lambda row, _mapping=mapping: row.rename(_mapping)

        combined: Optional[PhysicalOperator] = None

        def combined_node() -> PhysicalOperator:
            nonlocal combined
            if combined is None:
                start = self._start
                combined = Rename(
                    scan(start), contexts[start].mapping,
                    label=f"Rename {start}.*",
                    est=contexts[start].est, block_size=block_size,
                )
            return combined

        for op in ops:
            text = self._step_text(op)
            if op.kind == "rename":
                trace.append(TraceStep(text))
            elif op.kind == "index-select":
                node = IndexProbe(
                    op.index.lookup, op.probe,
                    label=f"IndexProbe {op.index.name} ({op.variable})",
                    est=op.est, block_size=block_size,
                )
                chains[op.variable] = node
                trace.append(TraceStep(
                    text, est=op.est, node=node,
                    table=contexts[op.variable].table,
                ))
            elif op.kind == "select":
                node = Filter(
                    scan(op.variable),
                    algebra.constant_predicate(op.attribute, op.op, op.constant),
                    label=f"Filter {op.variable}.{op.attribute} {op.op} {op.constant!r}",
                    est=op.est, block_size=block_size,
                )
                chains[op.variable] = node
                trace.append(TraceStep(
                    text, est=op.est, node=node,
                    table=contexts[op.variable].table,
                ))
            elif op.kind == "select-var-residual":
                node = Filter(
                    scan(op.variable),
                    _single_variable_predicate(op.conjunct, op.variable),
                    label=f"Filter {op.conjunct!r} ({op.variable})",
                    est=op.est, block_size=block_size,
                )
                chains[op.variable] = node
                trace.append(TraceStep(
                    text, est=op.est, node=node,
                    table=contexts[op.variable].table,
                ))
            elif op.kind == "join":
                left = combined_node()
                on = self._join_on_text(op.pairs)
                residual = (
                    _pair_predicate(op.residual, op.variable)
                    if op.residual is not None else None
                )
                if op.index is not None:
                    bare_to_combined = {
                        new.attribute: self._qualify(old.variable, old.attribute)
                        for old, new in op.pairs
                    }
                    probe_attrs = [bare_to_combined[a] for a in op.index.attributes]
                    node = IndexNLJoin(
                        left, op.index.lookup, probe_attrs,
                        transform_for(op.variable),
                        residual=residual,
                        label=f"IndexNLJoin {op.index.name} on {on}",
                        est=op.est, block_size=block_size,
                    )
                    inner_table = contexts[op.variable].table
                    if inner_table is not None:
                        guards.append(StalenessGuard(inner_table))
                else:
                    build_attrs = [new.attribute for _, new in op.pairs]
                    probe_attrs = [
                        self._qualify(old.variable, old.attribute)
                        for old, _ in op.pairs
                    ]
                    node = HashJoin(
                        left, scan(op.variable), build_attrs, probe_attrs,
                        transform_for(op.variable),
                        residual=residual,
                        label=f"HashJoin on {on}",
                        est=op.est, block_size=block_size,
                    )
                combined = node
                trace.append(TraceStep(text, est=op.est, node=node))
            elif op.kind == "product":
                node = Product(
                    combined_node(), scan(op.variable),
                    transform_for(op.variable),
                    label=f"Product with {op.variable}",
                    est=op.est, block_size=block_size,
                )
                combined = node
                trace.append(TraceStep(text, est=op.est, node=node))
            elif op.kind == "residual":
                node = Filter(
                    combined_node(),
                    _residual_predicate(op.conjunct, variables),
                    label=f"Filter {op.conjunct!r}",
                    est=op.est, block_size=block_size,
                )
                combined = node
                trace.append(TraceStep(text, est=op.est, node=node))
            elif op.kind == "project":
                node = Project(
                    combined_node(), op.targets,
                    label=f"Project {[o for o, _ in op.targets]}",
                    block_size=block_size,
                )
                combined = node
                trace.append(TraceStep(text, node=node, show_est=False))
        pipeline = Pipeline(
            combined, self.query.output_schema(), trace,
            guards=guards,
            database_epoch=getattr(self.database, "epoch", None),
        )
        self.pipeline = pipeline
        return pipeline

    # -- the parallel compiler (logical plan → Exchange/Merge over fragments) -
    def _compile_parallel(self, partitions: int, mode: str) -> Pipeline:
        """Compile the logical plan into *partitions* parallel fragments.

        The coordinator resolves every range's rows up front (workers are
        shared-nothing — they never see a live ``Database`` or index, so
        an index-selected range ships its probed bucket and a join that
        would run index-nested-loop serially runs as a hash join over the
        shipped rows inside the fragments).  The partition scheme:

        * when the plan's first combining step is an equi-join, both its
          sides are **co-partitioned** on the fused key — start-range
          rows by their key values, the joined range's rows by theirs —
          so every matching pair meets inside one worker, and rows null
          on a key attribute (which the join would drop anyway) are
          never shipped;
        * otherwise (single-range or product-first plans) the start
          range is partitioned by null-pattern **signature**, which
          groups identical rows — maximal local reduction per worker;
        * every other range is broadcast whole.

        Correctness does not depend on the scheme: each serial output
        row derives from exactly one start-range row, so the shard
        outputs cover the serial output, and the final
        :class:`~repro.exec.Merge` reduction restores global minimal
        form for *any* partition function (reduction only removes
        dominated rows; dominance is transitive).
        """
        ops = self.logical_plan()
        contexts = self._plan_contexts
        variables = list(self.query.ranges)
        start = self._start

        resolved: Dict[str, List[XTuple]] = {}
        steps: List[Tuple] = []
        for op in ops:
            if op.kind == "rename":
                steps.append(("rename", op.variable))
            elif op.kind == "index-select":
                resolved[op.variable] = list(op.index.lookup(op.probe))
                steps.append(("source", op.variable))
            elif op.kind == "select":
                steps.append((
                    "select", op.variable, op.attribute, op.op, op.constant,
                ))
            elif op.kind == "select-var-residual":
                steps.append(("select-var", op.variable, op.conjunct))
            elif op.kind == "join":
                steps.append(("join", op.variable, tuple(op.pairs), op.residual))
            elif op.kind == "product":
                steps.append(("product", op.variable))
            elif op.kind == "residual":
                steps.append(("residual", op.conjunct))
            elif op.kind == "project":
                steps.append(("project", tuple(op.targets)))
            else:
                raise ValueError(f"unknown logical op kind {op.kind!r}")
        for variable in variables:
            if variable not in resolved:
                resolved[variable] = list(contexts[variable].relation.tuples())

        first_combine = next(
            (op for op in ops if op.kind in ("join", "product")), None
        )
        sharded: Dict[str, List[List[XTuple]]] = {}
        if first_combine is not None and first_combine.kind == "join":
            # At the plan's first join the combined side is exactly the
            # start range, so every pair's old ref names a bare start
            # attribute — both sides hash the same key values.
            pairs = first_combine.pairs
            start_key = [old.attribute for old, _ in pairs]
            build_key = [new.attribute for _, new in pairs]
            sharded[start] = partition_rows_by_key(
                resolved[start], start_key, partitions
            )
            sharded[first_combine.variable] = partition_rows_by_key(
                resolved[first_combine.variable], build_key, partitions
            )
            scheme = "co-partitioned on " + "+".join(
                f"{start}.{a}" for a in start_key
            )
        else:
            sharded[start] = partition_rows_by_signature(
                resolved[start], partitions
            )
            scheme = "signature-partitioned"

        partition_sources: List[Dict[str, List[XTuple]]] = []
        for i in range(partitions):
            partition_sources.append({
                variable: (
                    sharded[variable][i]
                    if variable in sharded else resolved[variable]
                )
                for variable in variables
            })
        partitioned_rows = [
            sum(len(shards[i]) for shards in sharded.values())
            for i in range(partitions)
        ]

        fragment = PlanFragment(
            steps,
            {variable: contexts[variable].mapping for variable in variables},
            start,
            variables,
        )
        trace: List[TraceStep] = []
        op_steps: List[TraceStep] = []
        for op in ops:
            text = self._step_text(op)
            if op.kind == "rename":
                step = TraceStep(text)
            elif op.kind == "project":
                step = TraceStep(text, show_est=False)
            else:
                step = TraceStep(text, est=op.est)
            op_steps.append(step)
            trace.append(step)
        exchange = Exchange(
            fragment, partition_sources,
            partitioned_rows=partitioned_rows, mode=mode,
            trace_steps=op_steps,
            label=f"Exchange [{partitions} partitions, {mode}, {scheme}]",
            block_size=self.block_size,
        )
        merge = Merge(exchange, block_size=self.block_size)
        trace.append(TraceStep(
            f"exchange over {partitions} partitions ({scheme}, {mode})",
            node=exchange, show_est=False,
        ))
        trace.append(TraceStep(
            "merge + reduce the shard frontier", node=merge, show_est=False,
        ))
        pipeline = Pipeline(merge, self.query.output_schema(), trace)
        self.pipeline = pipeline
        return pipeline

    # -- the materializing executor (the pre-exec behaviour, step for step) --
    def _execute_materializing(self) -> XRelation:
        """Interpret the logical plan eagerly: every step builds a full
        intermediate ``XRelation``.  The differential baseline for the
        streaming path — same logical plan, so the two step traces are
        directly comparable row count for row count."""
        ops = self.logical_plan()
        contexts = self._contexts()
        variables = list(self.query.ranges)
        trace: List[TraceStep] = []
        combined: Optional[XRelation] = None

        def combined_relation() -> XRelation:
            nonlocal combined
            if combined is None:
                combined = contexts[self._start].materialized()
            return combined

        for op in ops:
            text = self._step_text(op)
            if op.kind == "rename":
                trace.append(TraceStep(text))
            elif op.kind == "index-select":
                context = contexts[op.variable]
                context.set_base_rows(op.index.lookup(op.probe))
                context.est = op.est
                trace.append(TraceStep(text, est=op.est, fixed_rows=context.cardinality))
            elif op.kind == "select":
                context = contexts[op.variable]
                context.push_constant(op.conjunct)
                context.est = op.est
                trace.append(TraceStep(text, est=op.est, fixed_rows=context.cardinality))
            elif op.kind == "select-var-residual":
                context = contexts[op.variable]
                context.push_predicate(op.conjunct)
                context.est = op.est
                trace.append(TraceStep(text, est=op.est, fixed_rows=context.cardinality))
            elif op.kind == "join":
                combined = self._execute_join(
                    combined_relation(), contexts[op.variable], op
                )
                trace.append(TraceStep(text, est=op.est, fixed_rows=len(combined)))
            elif op.kind == "product":
                combined = algebra.product(
                    combined_relation(), contexts[op.variable].materialized()
                )
                trace.append(TraceStep(text, est=op.est, fixed_rows=len(combined)))
            elif op.kind == "residual":
                combined = algebra.select_predicate(
                    combined_relation(), _bind_residual(op.conjunct, variables)
                )
                trace.append(TraceStep(text, est=op.est, fixed_rows=len(combined)))
            elif op.kind == "project":
                result = self._project(combined_relation(), op.targets)
                trace.append(TraceStep(text, fixed_rows=len(result)))
        self.steps = [step.render() for step in trace]
        return result

    def _execute_join(
        self, combined: XRelation, context: _RangeContext, op: _LogicalOp
    ) -> XRelation:
        variable = context.variable
        pairs = op.pairs
        mapping = context.mapping

        def transform(row: XTuple, _mapping=mapping) -> XTuple:
            return row.rename(_mapping)

        def wrap(rows) -> XRelation:
            right_schema = context.relation.schema.rename(mapping, name=variable)
            schema = combined.schema.union(
                right_schema, name=f"({combined.name} ⋈ {variable})"
            )
            relation = Relation(schema, validate=False)
            relation._rows = set(rows)
            return XRelation(relation)

        residual = (
            _pair_predicate(op.residual, variable)
            if op.residual is not None else None
        )
        if op.index is not None:
            # Index-nested-loop join: probe the table's live index with the
            # combined side's key values; the range is never renamed or
            # bucketed wholesale — only matched rows are renamed, once each.
            bare_to_combined = {
                new.attribute: self._qualify(old.variable, old.attribute)
                for old, new in pairs
            }
            probe_attrs = [bare_to_combined[a] for a in op.index.attributes]
            return wrap(index_probe_join_rows(
                combined.rows(), probe_attrs, op.index.lookup, transform, residual
            ))

        # Late-rename hash join: bucket the (possibly filtered) unrenamed
        # rows on the bare key, probe with the combined side's qualified
        # values, and rename only the matched rows — the bulk of a big
        # range is never copied.
        buckets = build_join_buckets(
            context.unrenamed_rows(), [new.attribute for _, new in pairs]
        )
        probe_attrs = [self._qualify(old.variable, old.attribute) for old, _ in pairs]
        empty: Tuple[XTuple, ...] = ()
        return wrap(index_probe_join_rows(
            combined.rows(), probe_attrs,
            lambda key: buckets.get(key, empty), transform, residual,
        ))

    def _project(
        self, combined: XRelation, qualified_targets: Sequence[Tuple[str, str]]
    ) -> XRelation:
        """Projection onto the target list with output renaming (shared by
        the materializing and the syntactic executor)."""
        unique = list(dict.fromkeys(qualified for _, qualified in qualified_targets))
        if len(unique) == len(qualified_targets):
            projected = algebra.project(combined, unique)
            renaming = {qualified: output for output, qualified in qualified_targets}
            return algebra.rename(projected, renaming)
        # The same column appears under several (distinct) output names,
        # e.g. ``(a = e.NAME, b = e.NAME)``: project/rename cannot express
        # a column duplication, so build the output rows directly.
        out = Relation(self.query.output_schema(), validate=False)
        out._rows = {
            XTuple(
                (output, row[qualified])
                for output, qualified in qualified_targets
            )
            for row in combined.rows()
        }
        return XRelation(out)

    # -- the pre-statistics planner, kept as the differential baseline -------
    def _execute_syntactic(self) -> XRelation:
        """The PR 2 planner, verbatim: syntactic join order, constant
        pushdown only, residual qualification applied after all joins, no
        index reuse.  The benchmarks measure the optimizer against it and
        the differential tests run both against the oracle."""
        query = self.query
        trace: List[TraceStep] = []

        pushable, residual = _split_conjuncts(query.where)

        renamed: Dict[str, XRelation] = {}
        for variable, relation in query.ranges.items():
            mapping = {a: self._qualify(variable, a) for a in relation.schema.attributes}
            renamed[variable] = algebra.rename(relation, mapping)
            trace.append(TraceStep(f"rename {relation.name} as {variable}(…)"))

        for variable, conjuncts in pushable.items():
            for conjunct in conjuncts:
                renamed[variable] = _apply_selection(renamed[variable], variable, conjunct)
                trace.append(TraceStep(f"select {conjunct!r} on {variable}"))

        equijoins, residual = _extract_equijoins(residual)
        variables = list(query.ranges)
        combined = renamed[variables[0]]
        included = {variables[0]}
        for variable in variables[1:]:
            links = _pick_equijoins(equijoins, included, variable)
            if links:
                pairs = _orient_links(links, included)
                for link in links:
                    equijoins.remove(link)
                combined_attrs = [
                    self._qualify(old.variable, old.attribute) for old, _ in pairs
                ]
                range_attrs = [
                    self._qualify(new.variable, new.attribute) for _, new in pairs
                ]
                combined = _hash_join(
                    combined, renamed[variable], combined_attrs, range_attrs
                )
                trace.append(TraceStep(
                    f"hash equi-join with {variable} on {self._join_on_text(pairs)}"
                ))
            else:
                combined = algebra.product(combined, renamed[variable])
                trace.append(TraceStep(f"product with {variable}"))
            included.add(variable)

        # Equalities the join order could not use stay in the residual.
        residual = _conjoin(equijoins + ([residual] if residual is not None else []))

        if residual is not None:
            predicate = _bind_residual(residual, variables)
            combined = algebra.select_predicate(combined, predicate)
            trace.append(TraceStep(f"select residual {residual!r}"))

        qualified_targets = self._qualified_targets()
        result = self._project(combined, qualified_targets)
        trace.append(TraceStep(f"project onto {[o for o, _ in qualified_targets]}"))
        self.steps = [step.render() for step in trace]
        return result


# ---------------------------------------------------------------------------
# Predicate compilation for the streaming filters
# ---------------------------------------------------------------------------

def _term_getter(term, variable: Optional[str] = None):
    """A direct row-value getter for a comparison term, or ``None`` when
    the term shape needs the generic evaluation machinery.  With
    *variable* the rows carry bare attribute names (a pre-rename range
    filter); without it they carry ``variable.attribute`` names."""
    if isinstance(term, AttributeRef):
        if variable is not None and term.variable != variable:
            return None
        key = term.attribute if variable is not None else f"{term.variable}.{term.attribute}"
        return lambda row, _k=key: row[_k]
    if isinstance(term, Constant):
        value = term.literal
        return lambda row, _v=value: _v
    return None


def _compile_comparisons(predicate: Predicate, variable: Optional[str] = None):
    """Compile a conjunction of plain comparisons into one fast row
    predicate, or return ``None`` for shapes (Or / Not / exotic terms)
    that must go through the generic three-valued evaluator.  Keeping a
    row iff the conjunction is TRUE is exactly "every comparison TRUE"
    under the Table III AND semantics, so early exit is sound."""
    conjuncts = predicate.operands if isinstance(predicate, And) else (predicate,)
    compiled = []
    for conjunct in conjuncts:
        if not isinstance(conjunct, Comparison):
            return None
        left = _term_getter(conjunct.left, variable)
        right = _term_getter(conjunct.right, variable)
        if left is None or right is None:
            return None
        compiled.append((left, conjunct.op, right))

    def predicate_fn(row: XTuple, _compiled=tuple(compiled)) -> bool:
        for left, op, right in _compiled:
            if not compare(left(row), op, right(row)).is_true():
                return False
        return True

    return predicate_fn


def _single_variable_predicate(conjunct: Predicate, variable: str):
    """The streaming filter for a pushed single-variable residual —
    evaluated over the *unrenamed* base rows."""
    fast = _compile_comparisons(conjunct, variable)
    if fast is not None:
        return fast

    def predicate(row: XTuple, _c=conjunct, _v=variable):
        return _c.evaluate({_v: row})

    return predicate


def _residual_predicate(conjunct: Predicate, variables: Sequence[str]):
    """The streaming filter for a residual conjunct over combined rows
    (attributes carry their ``variable.`` prefixes)."""
    fast = _compile_comparisons(conjunct)
    if fast is not None:
        return fast
    return _bind_residual(conjunct, variables)


def _pair_term_getter(term, new_variable: str):
    """A value getter over a join's ``(probe row, build row)`` pair.

    References to *new_variable* read the **unrenamed build row** under
    the bare attribute name (the probe loop evaluates the residual
    before the build row is renamed or joined — see
    :func:`repro.core.engine.joins.probe_join_block`); references to any
    already-combined variable read the probe row under its qualified
    ``variable.attribute`` name.  Returns ``None`` for term shapes the
    fast path cannot serve.
    """
    if isinstance(term, AttributeRef):
        if term.variable == new_variable:
            key = term.attribute
            return lambda probe, build, _k=key: build[_k]
        key = f"{term.variable}.{term.attribute}"
        return lambda probe, build, _k=key: probe[_k]
    if isinstance(term, Constant):
        value = term.literal
        return lambda probe, build, _v=value: _v
    return None


def _pair_predicate(predicate: Predicate, new_variable: str):
    """Compile a residual conjunct into a fused join pair predicate.

    Returns a ``(probe row, raw build row) -> bool`` function keeping
    exactly the pairs on which the conjunction is TRUE (Table III AND
    semantics: every comparison TRUE, so early exit is sound), or
    ``None`` for shapes (Or / Not / exotic terms) that must stay a
    post-join :class:`~repro.exec.Filter`.  The planner fuses a conjunct
    only when this returns non-``None``.
    """
    conjuncts = predicate.operands if isinstance(predicate, And) else (predicate,)
    compiled = []
    for conjunct in conjuncts:
        if not isinstance(conjunct, Comparison):
            return None
        left = _pair_term_getter(conjunct.left, new_variable)
        right = _pair_term_getter(conjunct.right, new_variable)
        if left is None or right is None:
            return None
        compiled.append((left, conjunct.op, right))

    def pair_fn(probe: XTuple, build: XTuple, _compiled=tuple(compiled)) -> bool:
        for left, op, right in _compiled:
            if not compare(left(probe, build), op, right(probe, build)).is_true():
                return False
        return True

    return pair_fn


# ---------------------------------------------------------------------------
# Conjunct classification helpers (shared by every planning mode)
# ---------------------------------------------------------------------------

def _flatten(predicate: Optional[Predicate]) -> List[Predicate]:
    """Top-level conjuncts of a (possibly None) residual predicate."""
    if predicate is None:
        return []
    if isinstance(predicate, And):
        return list(predicate.operands)
    return [predicate]


def _is_equijoin(conjunct: Predicate) -> bool:
    """True for a top-level ``t.A = m.B`` equality between two ranges."""
    return (
        isinstance(conjunct, Comparison)
        and conjunct.op in ("=", "==")
        and isinstance(conjunct.left, AttributeRef)
        and isinstance(conjunct.right, AttributeRef)
        and conjunct.left.variable != conjunct.right.variable
    )


_FLIPPED_OPS = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "==": "==", "!=": "!="}


def _constant_parts(conjunct: Comparison) -> Tuple[str, str, Any]:
    """The (attribute, operator, constant) of a pushable constant
    comparison, normalised so the attribute reads as the left side."""
    if isinstance(conjunct.left, AttributeRef):
        return conjunct.left.attribute, conjunct.op, conjunct.right.literal  # type: ignore[union-attr]
    return (
        conjunct.right.attribute,  # type: ignore[union-attr]
        _FLIPPED_OPS[conjunct.op],
        conjunct.left.literal,  # type: ignore[union-attr]
    )


def _orient_links(
    links: Sequence[Comparison], included: Set[str]
) -> List[Tuple[AttributeRef, AttributeRef]]:
    """Orient each equality as (combined-side ref, new-range-side ref)."""
    pairs: List[Tuple[AttributeRef, AttributeRef]] = []
    for link in links:
        new_ref, old_ref = link.left, link.right
        if old_ref.variable not in included:
            new_ref, old_ref = old_ref, new_ref
        pairs.append((old_ref, new_ref))
    return pairs


def _split_conjuncts(predicate: Predicate) -> Tuple[Dict[str, List[Comparison]], Optional[Predicate]]:
    """Separate pushable single-variable conjuncts from the residual predicate."""
    from ..core.query import TruthConstant

    if isinstance(predicate, TruthConstant):
        return {}, None

    conjuncts: List[Predicate] = list(predicate.operands) if isinstance(predicate, And) else [predicate]
    pushable: Dict[str, List[Comparison]] = {}
    residual: List[Predicate] = []
    for conjunct in conjuncts:
        if isinstance(conjunct, Comparison):
            variables = conjunct.references()
            constant_side = isinstance(conjunct.left, Constant) or isinstance(conjunct.right, Constant)
            if len(variables) == 1 and constant_side:
                pushable.setdefault(variables[0], []).append(conjunct)
                continue
        residual.append(conjunct)
    if not residual:
        return pushable, None
    if len(residual) == 1:
        return pushable, residual[0]
    return pushable, And(*residual)


def _extract_equijoins(predicate: Optional[Predicate]) -> Tuple[List[Comparison], Optional[Predicate]]:
    """Split equality conjuncts between two distinct variables from the rest.

    Only top-level conjuncts of the shape ``t.A = m.B`` (both sides
    attribute references, different range variables) are join candidates;
    everything else stays in the residual.
    """
    if predicate is None:
        return [], None
    conjuncts: List[Predicate] = list(predicate.operands) if isinstance(predicate, And) else [predicate]
    joins: List[Comparison] = []
    rest: List[Predicate] = []
    for conjunct in conjuncts:
        if _is_equijoin(conjunct):
            joins.append(conjunct)
        else:
            rest.append(conjunct)
    return joins, _conjoin(rest)


def _conjoin(predicates: List[Predicate]) -> Optional[Predicate]:
    """Fold a list of conjuncts back into a predicate (None when empty)."""
    if not predicates:
        return None
    if len(predicates) == 1:
        return predicates[0]
    return And(*predicates)


def _fold_join_distincts(
    distincts: Dict[str, float],
    contexts: Dict[str, _RangeContext],
    pairs: Sequence[Tuple[AttributeRef, AttributeRef]],
    estimate: float,
) -> None:
    """After a join, both sides of each fused key share one distinct-value
    count (containment of value sets), capped by the join's output
    estimate — recorded under each qualified attribute for the next
    join's estimate.  Shared between the emission loop and the DP
    enumerator so simulated orders replay to identical costs."""
    for old_ref, new_ref in pairs:
        old_key = f"{old_ref.variable}.{old_ref.attribute}"
        new_key = f"{new_ref.variable}.{new_ref.attribute}"
        old_distinct = distincts.get(old_key) or contexts[
            old_ref.variable
        ].distinct(old_ref.attribute)
        new_distinct = contexts[new_ref.variable].distinct(new_ref.attribute)
        shared = max(
            1.0,
            min(old_distinct or estimate, new_distinct or estimate,
                max(estimate, 1.0)),
        )
        distincts[old_key] = distincts[new_key] = shared


def _pick_equijoins(joins: List[Comparison], included: Set[str], variable: str) -> List[Comparison]:
    """Every unused equality linking *variable* to the already-combined ranges.

    All of them are fused into one composite-key hash join; returning only
    the first would leave the rest as residual selections over a larger
    single-key join result.
    """
    picked: List[Comparison] = []
    for conjunct in joins:
        mentioned = {conjunct.left.variable, conjunct.right.variable}
        if variable in mentioned and (mentioned - {variable}) <= included:
            picked.append(conjunct)
    return picked


def _hash_join(
    left: XRelation,
    right: XRelation,
    left_attrs: Sequence[str],
    right_attrs: Sequence[str],
) -> XRelation:
    """Composite-key hash equi-join of two renamed (disjoint-schema) ranges.

    Delegates to the engine kernel
    :func:`repro.core.engine.joins.equi_join_rows`; rows null on any
    compared attribute contribute nothing, exactly as the TRUE-only
    discipline demands.
    """
    from ..core.engine.joins import equi_join_rows

    schema = left.schema.union(right.schema, name=f"({left.name} ⋈ {right.name})")
    rows = equi_join_rows(left.rows(), right.rows(), left_attrs, right_attrs)
    relation = Relation(schema, validate=False)
    relation._rows = set(rows)
    return XRelation(relation)


def _apply_selection(relation: XRelation, variable: str, conjunct: Comparison) -> XRelation:
    """Apply a pushable single-variable comparison to a renamed range."""
    if isinstance(conjunct.left, AttributeRef):
        attribute = f"{conjunct.left.variable}.{conjunct.left.attribute}"
        constant = conjunct.right.literal  # type: ignore[union-attr]
        return algebra.select_constant(relation, attribute, conjunct.op, constant)
    attribute = f"{conjunct.right.variable}.{conjunct.right.attribute}"  # type: ignore[union-attr]
    constant = conjunct.left.literal  # type: ignore[union-attr]
    return algebra.select_constant(relation, attribute, _FLIPPED_OPS[conjunct.op], constant)


def _bind_residual(predicate: Predicate, variables: Sequence[str]):
    """Turn the residual predicate into a row predicate over the product schema."""

    def row_predicate(row: XTuple):
        binding = {variable: _RowView(row, variable) for variable in variables}
        return predicate.evaluate(binding)

    return row_predicate


class _RowView:
    """Presents a product row as if it were a row of a single range variable.

    The planner renames every attribute to ``variable.attribute``; this
    adapter lets the original predicate (written against bare attribute
    names) read the prefixed columns.
    """

    __slots__ = ("_row", "_variable")

    def __init__(self, row: XTuple, variable: str):
        self._row = row
        self._variable = variable

    def __getitem__(self, attribute: str):
        return self._row[f"{self._variable}.{attribute}"]


def plan_query(query: Query, database=None, **options) -> Plan:
    """Build a :class:`Plan` for a core query."""
    return Plan(query, database, **options)
