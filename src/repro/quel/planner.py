"""A cost-based algebraic planner for QUEL queries.

Section 8 of the paper stresses that the generalised model keeps "the
well-known correspondence between the relational calculus and the
relational algebra", which is what makes query evaluation efficient.  The
planner makes that correspondence concrete — and, since the statistics
PR, *chooses between* the equivalent algebraic strategies with a
System-R-style cost model (:mod:`repro.stats`):

* rename every range relation with a ``variable.`` prefix (lazily — a
  range that ends up probed through a persistent index is never
  materialised),
* push single-variable conjunctive selections down onto their relation —
  *before* any join is chosen, so every join input is already filtered;
  this covers constant comparisons (as before) and any residual conjunct
  mentioning a single range variable.  Equality conjuncts over a stored
  table carrying a persistent :class:`~repro.storage.index.HashIndex`
  covering their attribute set are served straight from the index — one
  bucket probe instead of a table scan (``index select … using index``
  in the trace),
* combine the ranges with equi-joins in **greedy cost order**: start from
  the estimated-smallest range, then repeatedly join the linked range
  with the smallest estimated output cardinality (equality selectivities
  from per-table distinct-value counts, null partitions discounted —
  under the Section 5 lower-bound discipline a null never satisfies an
  equality), leaving Cartesian products (smallest first) for last.  All
  equality conjuncts linking the next range fuse into one composite-key
  join.  When the next range is an unfiltered stored table carrying a
  persistent :class:`~repro.storage.index.HashIndex` on exactly the fused
  key, the plan emits an **index-nested-loop join**
  (:func:`repro.core.engine.joins.index_probe_join_rows`) that probes the
  live index instead of rebuilding hash buckets per query,
* apply every remaining conjunct as soon as the ranges it mentions have
  been combined — residual selections are pushed *through* the joins
  rather than evaluated once over the final combination,
* project onto the target list (renaming to the output column names).

Every executed step is annotated with the optimizer's estimated and the
measured row count (``est=…, rows=…``), so ``Plan.explain()`` doubles as
a cost-model audit.  ``Plan(query, cost_based=False)`` reproduces the
previous planner (syntactic join order, residual evaluated last, no
index reuse) — the benchmarks use it as their baseline, the differential
tests run both modes against the Section 5 oracle.

The planner handles every query the front end accepts; the optimisation
changes strategy only, and the produced result is always information-wise
equal to the tuple-at-a-time evaluation of
:func:`repro.core.query.evaluate_lower_bound` (asserted by the
differential harness in ``tests/test_differential_planner.py``).
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Set, Tuple, Union

from ..core import algebra
from ..core.engine.joins import equi_join_rows, index_probe_join_rows
from ..core.nulls import is_ni
from ..core.query import And, AttributeRef, Comparison, Constant, Not, Or, Predicate, Query
from ..core.relation import Relation
from ..core.threevalued import compare
from ..core.tuples import XTuple
from ..core.xrelation import XRelation
from ..stats import CostModel, DEFAULT_COST_MODEL, TableStatistics


class _RangeContext:
    """Per-range planning state: lazy renamed relation, table, statistics.

    Renaming a range costs one new tuple per row plus a reduction to
    minimal form, so the context defers it as long as possible: pushed
    selections filter the *unrenamed* base rows, hash joins can bucket
    the unrenamed rows and rename only the matched ones, and an
    index-nested-loop join never materialises the range at all — most of
    the optimizer's win on large tables is never paying O(|range|)
    renames per query.
    """

    __slots__ = (
        "variable", "relation", "table", "filtered", "est",
        "_renamed", "_filtered_base", "_stats",
    )

    def __init__(self, variable: str, relation: Relation, table) -> None:
        self.variable = variable
        self.relation = relation
        self.table = table
        self.filtered = False
        #: The optimizer's running cardinality estimate for this range.
        self.est: float = float(len(relation))
        self._renamed: Optional[XRelation] = None
        #: Pushed-selection result over the *unrenamed* base rows.
        self._filtered_base: Optional[XRelation] = None
        self._stats: Optional[TableStatistics] = None

    @property
    def mapping(self) -> Dict[str, str]:
        return {a: f"{self.variable}.{a}" for a in self.relation.schema.attributes}

    def _base(self) -> Union[Relation, XRelation]:
        return self._filtered_base if self._filtered_base is not None else self.relation

    def materialized(self) -> XRelation:
        if self._renamed is None:
            self._renamed = algebra.rename(self._base(), self.mapping)
        return self._renamed

    def unrenamed_rows(self):
        """The current (possibly filtered) rows under their bare attributes."""
        base = self._base()
        return base.rows() if isinstance(base, XRelation) else base.tuples()

    def push_constant(self, conjunct: Comparison) -> None:
        """Apply a pushable constant comparison on the unrenamed base —
        selection commutes with renaming, and filtering first makes any
        later rename cheaper.  A previously materialised rename (none of
        the current call paths produce one before the pushes run) is
        invalidated and rebuilt lazily from the filtered base."""
        attribute, op, constant = _constant_parts(conjunct)
        if is_ni(constant):
            # A comparison against a null constant evaluates to ni for
            # every row — never TRUE — so the selection keeps nothing.
            # (The tuple-at-a-time oracle agrees; ``select_constant``
            # itself refuses null constants, so bypass it.)
            self.set_base_rows(())
            return
        self._filtered_base = algebra.select_constant(self._base(), attribute, op, constant)
        self._renamed = None
        self.filtered = True

    def set_base_rows(self, rows) -> None:
        """Replace the unrenamed base with an explicit row set — the
        index-backed selection path, where a persistent hash index
        already produced exactly the rows satisfying the pushed equality
        conjuncts (rows null on a probed attribute are rightly absent:
        an equality touching ``ni`` is never TRUE)."""
        base = Relation(self.relation.schema, validate=False)
        base._rows = set(rows)
        self._filtered_base = XRelation(base)
        self._renamed = None
        self.filtered = True

    def push_predicate(self, conjunct: Predicate) -> None:
        """Apply a single-variable residual conjunct, likewise pre-rename."""
        variable = self.variable

        def row_predicate(row: XTuple, _c=conjunct, _v=variable):
            return _c.evaluate({_v: row})

        self._filtered_base = algebra.select_predicate(self._base(), row_predicate)
        self._renamed = None
        self.filtered = True

    @property
    def cardinality(self) -> int:
        if self._renamed is not None:
            return len(self._renamed)
        if self._filtered_base is not None:
            return len(self._filtered_base)
        return len(self.relation)

    def stats(self) -> TableStatistics:
        """The base statistics: the table's live counters when this range
        is a stored table (no per-query scan), a one-off analyze of the
        base rows otherwise."""
        if self._stats is None:
            if self.table is not None:
                self._stats = self.table.statistics
            else:
                self._stats = TableStatistics(self.relation.tuples())
        return self._stats

    def distinct(self, attribute: str) -> float:
        """Distinct non-null values on a (bare) attribute, capped by the
        current (possibly filtered) cardinality."""
        count = self.stats().distinct_count(attribute)
        return float(min(count, self.cardinality)) if count else 0.0

    def null_fraction(self, attribute: str) -> float:
        return self.stats().null_fraction(attribute)


class Plan:
    """An executable query plan with a readable, cost-annotated trace.

    Parameters
    ----------
    query:
        The analysed core query.
    database:
        Optional database the ranges came from.  When it exposes
        ``table_for_relation`` (``repro.storage.Database`` does), the
        planner reaches each range's live :class:`TableStatistics` and
        persistent indexes through it; with ``None`` (or a plain mapping)
        per-range statistics are computed on the fly.
    cost_based:
        ``True`` (default) enables cost-ordered joins, selection
        push-through and index reuse; ``False`` reproduces the previous
        planner exactly (syntactic join order, residual last).
    use_indexes:
        Whether an unfiltered table range may be joined by probing a
        persistent index covering the fused join key.
    cost_model:
        The :class:`~repro.stats.CostModel` used for the estimates.
    """

    def __init__(
        self,
        query: Query,
        database=None,
        *,
        cost_based: bool = True,
        use_indexes: bool = True,
        cost_model: Optional[CostModel] = None,
    ):
        self.query = query
        self.database = database
        self.cost_based = cost_based
        self.use_indexes = use_indexes
        self.cost_model = cost_model if cost_model is not None else DEFAULT_COST_MODEL
        self.steps: List[str] = []

    def explain(self) -> str:
        return "\n".join(f"{i + 1}. {step}" for i, step in enumerate(self.steps))

    # -- construction --------------------------------------------------------
    @staticmethod
    def _qualify(variable: str, attribute: str) -> str:
        return f"{variable}.{attribute}"

    def _table_of(self, relation: Relation):
        finder = getattr(self.database, "table_for_relation", None)
        if finder is None:
            return None
        return finder(relation)

    # -- execution -----------------------------------------------------------
    def execute(self) -> XRelation:
        """Build and run the algebraic plan, returning the answer x-relation."""
        if not self.cost_based:
            return self._execute_syntactic()
        return self._execute_cost_based()

    # -- the cost-based optimizer -------------------------------------------
    def _execute_cost_based(self) -> XRelation:
        query = self.query
        model = self.cost_model
        self.steps = []

        pushable, residual = _split_conjuncts(query.where)

        # Classify the residual conjuncts: equality links between two
        # ranges feed the join enumeration; single-variable conjuncts are
        # pushed onto their range ahead of any join; the rest is deferred
        # and applied as soon as its variables have all been combined.
        equijoins: List[Comparison] = []
        single_variable: Dict[str, List[Predicate]] = {}
        deferred: List[Predicate] = []
        for conjunct in _flatten(residual):
            if _is_equijoin(conjunct):
                equijoins.append(conjunct)
                continue
            references = conjunct.references()
            if len(references) == 1:
                single_variable.setdefault(references[0], []).append(conjunct)
            else:
                deferred.append(conjunct)

        variables = list(query.ranges)
        declaration = {variable: i for i, variable in enumerate(variables)}
        contexts = {
            variable: _RangeContext(variable, relation, self._table_of(relation))
            for variable, relation in query.ranges.items()
        }

        # Step 1: rename each range with a variable prefix (lazily — the
        # step records the logical operation, the rows materialise only
        # when a later step needs them).
        for variable, relation in query.ranges.items():
            self.steps.append(f"rename {relation.name} as {variable}(…)")

        # Step 2: push single-variable selections — constant comparisons
        # first (equality conjuncts served straight from a covering
        # persistent index when one exists, the rest estimated from the
        # per-attribute statistics), then any residual conjunct confined
        # to one range.
        for variable, conjuncts in pushable.items():
            context = contexts[variable]
            conjuncts = self._push_index_selection(context, conjuncts)
            for conjunct in conjuncts:
                attribute, op, _ = _constant_parts(conjunct)
                estimate = model.estimate_selection(
                    context.stats(), attribute, op, cardinality=context.est
                )
                context.push_constant(conjunct)
                context.est = estimate
                self.steps.append(
                    f"select {conjunct!r} on {variable} "
                    f"[est={estimate:.0f}, rows={context.cardinality}]"
                )
        for variable, conjuncts in single_variable.items():
            context = contexts[variable]
            for conjunct in conjuncts:
                estimate = context.est * self._residual_factor(conjunct)
                context.push_predicate(conjunct)
                context.est = estimate
                self.steps.append(
                    f"select residual {conjunct!r} on {variable} "
                    f"[est={estimate:.0f}, rows={context.cardinality}]"
                )

        # Step 3: greedy cost-ordered combination.  Start from the
        # smallest range; at each step join the linked range with the
        # smallest estimated output, falling back to the smallest
        # remaining range as a product when nothing is linked.
        start = min(variables, key=lambda v: (contexts[v].cardinality, declaration[v]))
        combined = contexts[start].materialized()
        included: Set[str] = {start}
        remaining = [v for v in variables if v != start]
        current = float(len(combined))
        distincts: Dict[str, float] = {}

        combined, current = self._apply_deferred(
            combined, current, deferred, included, variables
        )

        while remaining:
            best = None
            for variable in remaining:
                links = _pick_equijoins(equijoins, included, variable)
                if not links:
                    continue
                pairs = _orient_links(links, included)
                estimate = self._join_estimate(
                    current, distincts, contexts, contexts[variable], pairs
                )
                key = (estimate, declaration[variable])
                if best is None or key < best[0]:
                    best = (key, variable, links, pairs, estimate)
            if best is None:
                variable = min(
                    remaining, key=lambda v: (contexts[v].cardinality, declaration[v])
                )
                context = contexts[variable]
                estimate = model.product_cardinality(current, context.cardinality)
                combined = algebra.product(combined, context.materialized())
                self.steps.append(
                    f"product with {variable} [est={estimate:.0f}, rows={len(combined)}]"
                )
            else:
                _, variable, links, pairs, estimate = best
                for link in links:
                    equijoins.remove(link)
                combined = self._execute_join(
                    combined, contexts[variable], pairs, estimate
                )
                actual = float(len(combined))
                for old_ref, new_ref in pairs:
                    old_key = self._qualify(old_ref.variable, old_ref.attribute)
                    new_key = self._qualify(new_ref.variable, new_ref.attribute)
                    old_distinct = distincts.get(old_key) or contexts[
                        old_ref.variable
                    ].distinct(old_ref.attribute)
                    new_distinct = contexts[new_ref.variable].distinct(new_ref.attribute)
                    shared = max(
                        1.0,
                        min(old_distinct or actual, new_distinct or actual, actual),
                    )
                    distincts[old_key] = distincts[new_key] = shared
            included.add(variable)
            remaining.remove(variable)
            current = float(len(combined))
            combined, current = self._apply_deferred(
                combined, current, deferred, included, variables
            )

        # Safety net: any equality conjunct the enumeration did not
        # consume (not reachable in practice) is applied as a selection.
        for conjunct in equijoins + deferred:
            estimate = current * self._residual_factor(conjunct)
            combined = algebra.select_predicate(
                combined, _bind_residual(conjunct, variables)
            )
            current = float(len(combined))
            self.steps.append(
                f"select residual {conjunct!r} [est={estimate:.0f}, rows={len(combined)}]"
            )

        return self._project(combined)

    def _push_index_selection(
        self, context: _RangeContext, conjuncts: List[Comparison]
    ) -> List[Comparison]:
        """Serve pushed equality conjuncts from a covering persistent index.

        When the range is a stored table carrying a :class:`HashIndex`
        whose attribute set matches the pushed equality conjuncts (or one
        of them, as a fallback), the selection becomes a single bucket
        probe — no scan of the table, no per-query filtering pass.  Rows
        null on a probed attribute are absent from the bucket, exactly
        matching the TRUE-only equality semantics.  Returns the conjuncts
        the index did not consume (they are applied as ordinary pushed
        selections afterwards).
        """
        if not self.use_indexes or context.table is None or context.filtered:
            return conjuncts
        by_attr: Dict[str, Tuple[Comparison, Any]] = {}
        for conjunct in conjuncts:
            attribute, op, constant = _constant_parts(conjunct)
            if op in ("=", "==") and attribute not in by_attr:
                by_attr[attribute] = (conjunct, constant)
        if not by_attr:
            return conjuncts
        index, consumed_attrs = context.table.find_equality_index(list(by_attr))
        if index is None:
            return conjuncts
        by_attr = {attribute: by_attr[attribute] for attribute in consumed_attrs}
        consumed = {id(c) for c, _ in by_attr.values()}
        estimate = context.est
        for conjunct, _ in by_attr.values():
            attribute, op, _constant = _constant_parts(conjunct)
            estimate = self.cost_model.estimate_selection(
                context.stats(), attribute, op, cardinality=estimate
            )
        probe = [by_attr[a][1] for a in index.attributes]
        context.set_base_rows(index.lookup(probe))
        context.est = estimate
        described = " and ".join(
            f"{context.variable}.{a} = {by_attr[a][1]!r}" for a in index.attributes
        )
        self.steps.append(
            f"index select {described} using index {index.name} "
            f"[est={estimate:.0f}, rows={context.cardinality}]"
        )
        return [c for c in conjuncts if id(c) not in consumed]

    def _apply_deferred(
        self,
        combined: XRelation,
        current: float,
        deferred: List[Predicate],
        included: Set[str],
        variables: Sequence[str],
    ) -> Tuple[XRelation, float]:
        """Push residual conjuncts through: apply each as soon as every
        range it mentions has been combined."""
        for conjunct in list(deferred):
            references = conjunct.references()
            if references and not set(references) <= included:
                continue
            deferred.remove(conjunct)
            estimate = current * self._residual_factor(conjunct)
            combined = algebra.select_predicate(
                combined, _bind_residual(conjunct, variables)
            )
            current = float(len(combined))
            self.steps.append(
                f"select residual {conjunct!r} [est={estimate:.0f}, rows={len(combined)}]"
            )
        return combined, current

    def _residual_factor(self, conjunct: Predicate) -> float:
        if isinstance(conjunct, Comparison):
            return self.cost_model.residual_selectivity([conjunct.op])
        return self.cost_model.theta_selectivity

    def _join_estimate(
        self,
        current: float,
        distincts: Dict[str, float],
        contexts: Dict[str, _RangeContext],
        context: _RangeContext,
        pairs: Sequence[Tuple[AttributeRef, AttributeRef]],
    ) -> float:
        key_distincts = []
        null_fractions = []
        for old_ref, new_ref in pairs:
            old_key = self._qualify(old_ref.variable, old_ref.attribute)
            old_distinct = distincts.get(old_key)
            if old_distinct is None:
                old_distinct = contexts[old_ref.variable].distinct(old_ref.attribute)
                if old_distinct:
                    old_distinct = min(old_distinct, current)
            new_distinct = context.distinct(new_ref.attribute)
            key_distincts.append((old_distinct, new_distinct))
            null_fractions.append((0.0, context.null_fraction(new_ref.attribute)))
        return self.cost_model.join_cardinality(
            current, context.cardinality, key_distincts, null_fractions
        )

    def _execute_join(
        self,
        combined: XRelation,
        context: _RangeContext,
        pairs: Sequence[Tuple[AttributeRef, AttributeRef]],
        estimate: float,
    ) -> XRelation:
        variable = context.variable
        described = [
            f"{old.variable}.{old.attribute} = {new.variable}.{new.attribute}"
            for old, new in pairs
        ]
        on = described[0] if len(described) == 1 else "[" + ", ".join(described) + "]"

        mapping = context.mapping

        def transform(row: XTuple, _mapping=mapping) -> XTuple:
            return XTuple((_mapping[a], value) for a, value in row.items())

        def wrap(rows) -> XRelation:
            right_schema = context.relation.schema.rename(mapping, name=variable)
            schema = combined.schema.union(
                right_schema, name=f"({combined.name} ⋈ {variable})"
            )
            relation = Relation(schema, validate=False)
            relation._rows = set(rows)
            return XRelation(relation)

        index = None
        if self.use_indexes and context.table is not None and not context.filtered:
            index = context.table.find_index([new.attribute for _, new in pairs])
        if index is not None:
            # Index-nested-loop join: probe the table's live index with the
            # combined side's key values; the range is never renamed or
            # bucketed wholesale — only matched rows are renamed, once each.
            bare_to_combined = {
                new.attribute: self._qualify(old.variable, old.attribute)
                for old, new in pairs
            }
            probe_attrs = [bare_to_combined[a] for a in index.attributes]
            result = wrap(index_probe_join_rows(
                combined.rows(), probe_attrs, index.lookup, transform
            ))
            self.steps.append(
                f"index-nested-loop join with {variable} using index "
                f"{index.name} on {on} [est={estimate:.0f}, rows={len(result)}]"
            )
            return result

        # Late-rename hash join: bucket the (possibly filtered) unrenamed
        # rows on the bare key, probe with the combined side's qualified
        # values, and rename only the matched rows — the bulk of a big
        # range is never copied.
        bare_attrs = [new.attribute for _, new in pairs]
        buckets: Dict[Tuple, List[XTuple]] = {}
        for row in context.unrenamed_rows():
            bindings = row._lookup
            key = tuple(bindings.get(a) for a in bare_attrs)
            if None in key:  # _lookup stores only non-null bindings
                continue
            buckets.setdefault(key, []).append(row)
        probe_attrs = [self._qualify(old.variable, old.attribute) for old, _ in pairs]
        empty: Tuple[XTuple, ...] = ()
        result = wrap(index_probe_join_rows(
            combined.rows(), probe_attrs,
            lambda key: buckets.get(key, empty), transform,
        ))
        self.steps.append(
            f"hash equi-join with {variable} on {on} "
            f"[est={estimate:.0f}, rows={len(result)}]"
        )
        return result

    def _project(self, combined: XRelation) -> XRelation:
        """Step 5: projection onto the target list with output renaming."""
        query = self.query
        qualified_targets = [
            (output, self._qualify(ref.variable, ref.attribute))
            for output, ref in query.target
        ]
        unique = list(dict.fromkeys(qualified for _, qualified in qualified_targets))
        if len(unique) == len(qualified_targets):
            projected = algebra.project(combined, unique)
            renaming = {qualified: output for output, qualified in qualified_targets}
            result = algebra.rename(projected, renaming)
        else:
            # The same column appears under several (distinct) output
            # names, e.g. ``(a = e.NAME, b = e.NAME)``: project/rename
            # cannot express a column duplication, so build the output
            # rows directly.
            out = Relation(query.output_schema(), validate=False)
            out._rows = {
                XTuple(
                    (output, row[qualified])
                    for output, qualified in qualified_targets
                )
                for row in combined.rows()
            }
            result = XRelation(out)
        self.steps.append(
            f"project onto {[o for o, _ in qualified_targets]} [rows={len(result)}]"
        )
        return result

    # -- the pre-statistics planner, kept as the differential baseline -------
    def _execute_syntactic(self) -> XRelation:
        """The previous planner, verbatim: syntactic join order, constant
        pushdown only, residual qualification applied after all joins, no
        index reuse.  The benchmarks measure the optimizer against it and
        the differential tests run both against the oracle."""
        query = self.query
        self.steps = []

        pushable, residual = _split_conjuncts(query.where)

        renamed: Dict[str, XRelation] = {}
        for variable, relation in query.ranges.items():
            mapping = {a: self._qualify(variable, a) for a in relation.schema.attributes}
            renamed[variable] = algebra.rename(relation, mapping)
            self.steps.append(f"rename {relation.name} as {variable}(…)")

        for variable, conjuncts in pushable.items():
            for conjunct in conjuncts:
                renamed[variable] = _apply_selection(renamed[variable], variable, conjunct)
                self.steps.append(f"select {conjunct!r} on {variable}")

        equijoins, residual = _extract_equijoins(residual)
        variables = list(query.ranges)
        combined = renamed[variables[0]]
        included = {variables[0]}
        for variable in variables[1:]:
            links = _pick_equijoins(equijoins, included, variable)
            if links:
                combined_attrs: List[str] = []
                range_attrs: List[str] = []
                described: List[str] = []
                for link in links:
                    equijoins.remove(link)
                    new_ref, old_ref = link.left, link.right
                    if old_ref.variable not in included:
                        new_ref, old_ref = old_ref, new_ref
                    # old_ref now refers to the already-combined side.
                    combined_attrs.append(self._qualify(old_ref.variable, old_ref.attribute))
                    range_attrs.append(self._qualify(new_ref.variable, new_ref.attribute))
                    described.append(
                        f"{old_ref.variable}.{old_ref.attribute} = "
                        f"{new_ref.variable}.{new_ref.attribute}"
                    )
                combined = _hash_join(
                    combined, renamed[variable], combined_attrs, range_attrs
                )
                if len(described) == 1:
                    self.steps.append(f"hash equi-join with {variable} on {described[0]}")
                else:
                    self.steps.append(
                        f"hash equi-join with {variable} on [{', '.join(described)}]"
                    )
            else:
                combined = algebra.product(combined, renamed[variable])
                self.steps.append(f"product with {variable}")
            included.add(variable)

        # Equalities the join order could not use stay in the residual.
        residual = _conjoin(equijoins + ([residual] if residual is not None else []))

        if residual is not None:
            predicate = _bind_residual(residual, variables)
            combined = algebra.select_predicate(combined, predicate)
            self.steps.append(f"select residual {residual!r}")

        qualified_targets = [
            (output, self._qualify(ref.variable, ref.attribute))
            for output, ref in query.target
        ]
        unique = list(dict.fromkeys(qualified for _, qualified in qualified_targets))
        if len(unique) == len(qualified_targets):
            projected = algebra.project(combined, unique)
            renaming = {qualified: output for output, qualified in qualified_targets}
            result = algebra.rename(projected, renaming)
        else:
            out = Relation(query.output_schema(), validate=False)
            out._rows = {
                XTuple(
                    (output, row[qualified])
                    for output, qualified in qualified_targets
                )
                for row in combined.rows()
            }
            result = XRelation(out)
        self.steps.append(f"project onto {[o for o, _ in qualified_targets]}")
        return result


def _flatten(predicate: Optional[Predicate]) -> List[Predicate]:
    """Top-level conjuncts of a (possibly None) residual predicate."""
    if predicate is None:
        return []
    if isinstance(predicate, And):
        return list(predicate.operands)
    return [predicate]


def _is_equijoin(conjunct: Predicate) -> bool:
    """True for a top-level ``t.A = m.B`` equality between two ranges."""
    return (
        isinstance(conjunct, Comparison)
        and conjunct.op in ("=", "==")
        and isinstance(conjunct.left, AttributeRef)
        and isinstance(conjunct.right, AttributeRef)
        and conjunct.left.variable != conjunct.right.variable
    )


_FLIPPED_OPS = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "==": "==", "!=": "!="}


def _constant_parts(conjunct: Comparison) -> Tuple[str, str, Any]:
    """The (attribute, operator, constant) of a pushable constant
    comparison, normalised so the attribute reads as the left side."""
    if isinstance(conjunct.left, AttributeRef):
        return conjunct.left.attribute, conjunct.op, conjunct.right.literal  # type: ignore[union-attr]
    return (
        conjunct.right.attribute,  # type: ignore[union-attr]
        _FLIPPED_OPS[conjunct.op],
        conjunct.left.literal,  # type: ignore[union-attr]
    )


def _orient_links(
    links: Sequence[Comparison], included: Set[str]
) -> List[Tuple[AttributeRef, AttributeRef]]:
    """Orient each equality as (combined-side ref, new-range-side ref)."""
    pairs: List[Tuple[AttributeRef, AttributeRef]] = []
    for link in links:
        new_ref, old_ref = link.left, link.right
        if old_ref.variable not in included:
            new_ref, old_ref = old_ref, new_ref
        pairs.append((old_ref, new_ref))
    return pairs


def _split_conjuncts(predicate: Predicate) -> Tuple[Dict[str, List[Comparison]], Optional[Predicate]]:
    """Separate pushable single-variable conjuncts from the residual predicate."""
    from ..core.query import TruthConstant

    if isinstance(predicate, TruthConstant):
        return {}, None

    conjuncts: List[Predicate] = list(predicate.operands) if isinstance(predicate, And) else [predicate]
    pushable: Dict[str, List[Comparison]] = {}
    residual: List[Predicate] = []
    for conjunct in conjuncts:
        if isinstance(conjunct, Comparison):
            variables = conjunct.references()
            constant_side = isinstance(conjunct.left, Constant) or isinstance(conjunct.right, Constant)
            if len(variables) == 1 and constant_side:
                pushable.setdefault(variables[0], []).append(conjunct)
                continue
        residual.append(conjunct)
    if not residual:
        return pushable, None
    if len(residual) == 1:
        return pushable, residual[0]
    return pushable, And(*residual)


def _extract_equijoins(predicate: Optional[Predicate]) -> Tuple[List[Comparison], Optional[Predicate]]:
    """Split equality conjuncts between two distinct variables from the rest.

    Only top-level conjuncts of the shape ``t.A = m.B`` (both sides
    attribute references, different range variables) are join candidates;
    everything else stays in the residual.
    """
    if predicate is None:
        return [], None
    conjuncts: List[Predicate] = list(predicate.operands) if isinstance(predicate, And) else [predicate]
    joins: List[Comparison] = []
    rest: List[Predicate] = []
    for conjunct in conjuncts:
        if _is_equijoin(conjunct):
            joins.append(conjunct)
        else:
            rest.append(conjunct)
    return joins, _conjoin(rest)


def _conjoin(predicates: List[Predicate]) -> Optional[Predicate]:
    """Fold a list of conjuncts back into a predicate (None when empty)."""
    if not predicates:
        return None
    if len(predicates) == 1:
        return predicates[0]
    return And(*predicates)


def _pick_equijoins(joins: List[Comparison], included: Set[str], variable: str) -> List[Comparison]:
    """Every unused equality linking *variable* to the already-combined ranges.

    All of them are fused into one composite-key hash join; returning only
    the first would leave the rest as residual selections over a larger
    single-key join result.
    """
    picked: List[Comparison] = []
    for conjunct in joins:
        mentioned = {conjunct.left.variable, conjunct.right.variable}
        if variable in mentioned and (mentioned - {variable}) <= included:
            picked.append(conjunct)
    return picked


def _hash_join(
    left: XRelation,
    right: XRelation,
    left_attrs: Sequence[str],
    right_attrs: Sequence[str],
) -> XRelation:
    """Composite-key hash equi-join of two renamed (disjoint-schema) ranges.

    Delegates to the engine kernel
    :func:`repro.core.engine.joins.equi_join_rows`; rows null on any
    compared attribute contribute nothing, exactly as the TRUE-only
    discipline demands.
    """
    schema = left.schema.union(right.schema, name=f"({left.name} ⋈ {right.name})")
    rows = equi_join_rows(left.rows(), right.rows(), left_attrs, right_attrs)
    relation = Relation(schema, validate=False)
    relation._rows = set(rows)
    return XRelation(relation)


def _apply_selection(relation: XRelation, variable: str, conjunct: Comparison) -> XRelation:
    """Apply a pushable single-variable comparison to a renamed range."""
    if isinstance(conjunct.left, AttributeRef):
        attribute = f"{conjunct.left.variable}.{conjunct.left.attribute}"
        constant = conjunct.right.literal  # type: ignore[union-attr]
        return algebra.select_constant(relation, attribute, conjunct.op, constant)
    attribute = f"{conjunct.right.variable}.{conjunct.right.attribute}"  # type: ignore[union-attr]
    constant = conjunct.left.literal  # type: ignore[union-attr]
    return algebra.select_constant(relation, attribute, _FLIPPED_OPS[conjunct.op], constant)


def _bind_residual(predicate: Predicate, variables: Sequence[str]):
    """Turn the residual predicate into a row predicate over the product schema."""

    def row_predicate(row: XTuple):
        binding = {variable: _RowView(row, variable) for variable in variables}
        return predicate.evaluate(binding)

    return row_predicate


class _RowView:
    """Presents a product row as if it were a row of a single range variable.

    The planner renames every attribute to ``variable.attribute``; this
    adapter lets the original predicate (written against bare attribute
    names) read the prefixed columns.
    """

    __slots__ = ("_row", "_variable")

    def __init__(self, row: XTuple, variable: str):
        self._row = row
        self._variable = variable

    def __getitem__(self, attribute: str):
        return self._row[f"{self._variable}.{attribute}"]


def plan_query(query: Query, database=None, **options) -> Plan:
    """Build a :class:`Plan` for a core query."""
    return Plan(query, database, **options)
