"""A small algebraic planner for QUEL queries.

Section 8 of the paper stresses that the generalised model keeps "the
well-known correspondence between the relational calculus and the
relational algebra", which is what makes query evaluation efficient.  The
planner makes that correspondence concrete: it translates an analysed
query into a plan over the extended algebra operators of
:mod:`repro.core.algebra` —

* rename every range relation with a ``variable.`` prefix,
* push single-variable conjunctive selections down onto their relation —
  *before* any join is chosen, so every join input is already filtered,
* combine the ranges with **hash equi-joins** whenever the qualification
  contains equalities between two range variables (the engine kernel
  :func:`repro.core.engine.equi_join_rows`): **all** equality conjuncts
  linking the next range to the ranges combined so far fuse into one
  composite-key join — one hash probe on the full attribute vector,
  enumerating exactly the TRUE combinations of the Section 5 lower-bound
  discipline, with no residual selection left behind — falling back to
  Cartesian products for unlinked ranges,
* apply the remaining (multi-variable or disjunctive) qualification as a
  generalised selection on the combination,
* project onto the target list (renaming to the output column names).

The planner handles every query the front end accepts; the selection
push-down is only an optimisation, and the produced result is always
information-wise equal to the tuple-at-a-time evaluation of
:func:`repro.core.query.evaluate_lower_bound` (asserted by the
integration tests).  :class:`Plan` retains a human-readable list of steps
so examples and tests can display the chosen strategy.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..core import algebra
from ..core.engine.joins import equi_join_rows
from ..core.query import And, AttributeRef, Comparison, Constant, Not, Or, Predicate, Query
from ..core.relation import Relation
from ..core.threevalued import compare
from ..core.tuples import XTuple
from ..core.xrelation import XRelation


class Plan:
    """An executable query plan with a readable trace of its steps."""

    def __init__(self, query: Query):
        self.query = query
        self.steps: List[str] = []

    def explain(self) -> str:
        return "\n".join(f"{i + 1}. {step}" for i, step in enumerate(self.steps))

    # -- construction --------------------------------------------------------
    @staticmethod
    def _qualify(variable: str, attribute: str) -> str:
        return f"{variable}.{attribute}"

    def execute(self) -> XRelation:
        """Build and run the algebraic plan, returning the answer x-relation."""
        query = self.query
        self.steps = []

        # Split the qualification into per-variable conjuncts (pushable) and
        # the rest (applied after the product).
        pushable, residual = _split_conjuncts(query.where)

        # Step 1: rename each range with a variable prefix so products are
        # always over disjoint attribute sets (needed for self-joins like
        # the paper's Figure 2 query).
        renamed: Dict[str, XRelation] = {}
        for variable, relation in query.ranges.items():
            mapping = {a: self._qualify(variable, a) for a in relation.schema.attributes}
            renamed[variable] = algebra.rename(relation, mapping)
            self.steps.append(f"rename {relation.name} as {variable}(…)")

        # Step 2: push single-variable selections.
        for variable, conjuncts in pushable.items():
            for conjunct in conjuncts:
                renamed[variable] = _apply_selection(renamed[variable], variable, conjunct)
                self.steps.append(f"select {conjunct!r} on {variable}")

        # Step 3: combine the ranges — the pushed-down selections above ran
        # *before* any join is chosen, so the join inputs are already as
        # small as the single-variable conjuncts can make them.  When one
        # or more equality conjuncts link the next range to the ranges
        # combined so far, ALL of them fuse into a single composite-key
        # hash equi-join (one probe per row on the full attribute vector);
        # unlinked ranges fall back to Cartesian products.
        equijoins, residual = _extract_equijoins(residual)
        variables = list(query.ranges)
        combined = renamed[variables[0]]
        included = {variables[0]}
        for variable in variables[1:]:
            links = _pick_equijoins(equijoins, included, variable)
            if links:
                combined_attrs: List[str] = []
                range_attrs: List[str] = []
                described: List[str] = []
                for link in links:
                    equijoins.remove(link)
                    new_ref, old_ref = link.left, link.right
                    if old_ref.variable not in included:
                        new_ref, old_ref = old_ref, new_ref
                    # old_ref now refers to the already-combined side.
                    combined_attrs.append(self._qualify(old_ref.variable, old_ref.attribute))
                    range_attrs.append(self._qualify(new_ref.variable, new_ref.attribute))
                    described.append(
                        f"{old_ref.variable}.{old_ref.attribute} = "
                        f"{new_ref.variable}.{new_ref.attribute}"
                    )
                combined = _hash_join(
                    combined, renamed[variable], combined_attrs, range_attrs
                )
                if len(described) == 1:
                    self.steps.append(f"hash equi-join with {variable} on {described[0]}")
                else:
                    self.steps.append(
                        f"hash equi-join with {variable} on [{', '.join(described)}]"
                    )
            else:
                combined = algebra.product(combined, renamed[variable])
                self.steps.append(f"product with {variable}")
            included.add(variable)

        # Equalities the join order could not use stay in the residual.
        residual = _conjoin(equijoins + ([residual] if residual is not None else []))

        # Step 4: residual qualification as a generalised selection.
        if residual is not None:
            predicate = _bind_residual(residual, variables)
            combined = algebra.select_predicate(combined, predicate)
            self.steps.append(f"select residual {residual!r}")

        # Step 5: projection onto the target list with output renaming.
        qualified_targets = [
            (output, self._qualify(ref.variable, ref.attribute))
            for output, ref in query.target
        ]
        unique = list(dict.fromkeys(qualified for _, qualified in qualified_targets))
        if len(unique) == len(qualified_targets):
            projected = algebra.project(combined, unique)
            renaming = {qualified: output for output, qualified in qualified_targets}
            result = algebra.rename(projected, renaming)
        else:
            # The same column appears under several (distinct) output
            # names, e.g. ``(a = e.NAME, b = e.NAME)``: project/rename
            # cannot express a column duplication, so build the output
            # rows directly.
            out = Relation(query.output_schema(), validate=False)
            out._rows = {
                XTuple(
                    (output, row[qualified])
                    for output, qualified in qualified_targets
                )
                for row in combined.rows()
            }
            result = XRelation(out)
        self.steps.append(f"project onto {[o for o, _ in qualified_targets]}")
        return result


def _split_conjuncts(predicate: Predicate) -> Tuple[Dict[str, List[Comparison]], Optional[Predicate]]:
    """Separate pushable single-variable conjuncts from the residual predicate."""
    from ..core.query import TruthConstant

    if isinstance(predicate, TruthConstant):
        return {}, None

    conjuncts: List[Predicate] = list(predicate.operands) if isinstance(predicate, And) else [predicate]
    pushable: Dict[str, List[Comparison]] = {}
    residual: List[Predicate] = []
    for conjunct in conjuncts:
        if isinstance(conjunct, Comparison):
            variables = conjunct.references()
            constant_side = isinstance(conjunct.left, Constant) or isinstance(conjunct.right, Constant)
            if len(variables) == 1 and constant_side:
                pushable.setdefault(variables[0], []).append(conjunct)
                continue
        residual.append(conjunct)
    if not residual:
        return pushable, None
    if len(residual) == 1:
        return pushable, residual[0]
    return pushable, And(*residual)


def _extract_equijoins(predicate: Optional[Predicate]) -> Tuple[List[Comparison], Optional[Predicate]]:
    """Split equality conjuncts between two distinct variables from the rest.

    Only top-level conjuncts of the shape ``t.A = m.B`` (both sides
    attribute references, different range variables) are join candidates;
    everything else stays in the residual.
    """
    if predicate is None:
        return [], None
    conjuncts: List[Predicate] = list(predicate.operands) if isinstance(predicate, And) else [predicate]
    joins: List[Comparison] = []
    rest: List[Predicate] = []
    for conjunct in conjuncts:
        if (
            isinstance(conjunct, Comparison)
            and conjunct.op in ("=", "==")
            and isinstance(conjunct.left, AttributeRef)
            and isinstance(conjunct.right, AttributeRef)
            and conjunct.left.variable != conjunct.right.variable
        ):
            joins.append(conjunct)
        else:
            rest.append(conjunct)
    return joins, _conjoin(rest)


def _conjoin(predicates: List[Predicate]) -> Optional[Predicate]:
    """Fold a list of conjuncts back into a predicate (None when empty)."""
    if not predicates:
        return None
    if len(predicates) == 1:
        return predicates[0]
    return And(*predicates)


def _pick_equijoins(joins: List[Comparison], included: set, variable: str) -> List[Comparison]:
    """Every unused equality linking *variable* to the already-combined ranges.

    All of them are fused into one composite-key hash join; returning only
    the first would leave the rest as residual selections over a larger
    single-key join result.
    """
    picked: List[Comparison] = []
    for conjunct in joins:
        mentioned = {conjunct.left.variable, conjunct.right.variable}
        if variable in mentioned and (mentioned - {variable}) <= included:
            picked.append(conjunct)
    return picked


def _hash_join(
    left: XRelation,
    right: XRelation,
    left_attrs: Sequence[str],
    right_attrs: Sequence[str],
) -> XRelation:
    """Composite-key hash equi-join of two renamed (disjoint-schema) ranges.

    Delegates to the engine kernel
    :func:`repro.core.engine.joins.equi_join_rows`; rows null on any
    compared attribute contribute nothing, exactly as the TRUE-only
    discipline demands.
    """
    schema = left.schema.union(right.schema, name=f"({left.name} ⋈ {right.name})")
    rows = equi_join_rows(left.rows(), right.rows(), left_attrs, right_attrs)
    relation = Relation(schema, validate=False)
    relation._rows = set(rows)
    return XRelation(relation)


def _apply_selection(relation: XRelation, variable: str, conjunct: Comparison) -> XRelation:
    """Apply a pushable single-variable comparison to a renamed range."""
    if isinstance(conjunct.left, AttributeRef):
        attribute = f"{conjunct.left.variable}.{conjunct.left.attribute}"
        constant = conjunct.right.literal  # type: ignore[union-attr]
        return algebra.select_constant(relation, attribute, conjunct.op, constant)
    attribute = f"{conjunct.right.variable}.{conjunct.right.attribute}"  # type: ignore[union-attr]
    constant = conjunct.left.literal  # type: ignore[union-attr]
    flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "!=": "!="}[conjunct.op]
    return algebra.select_constant(relation, attribute, flipped, constant)


def _bind_residual(predicate: Predicate, variables: Sequence[str]):
    """Turn the residual predicate into a row predicate over the product schema."""

    def row_predicate(row: XTuple):
        binding = {variable: _RowView(row, variable) for variable in variables}
        return predicate.evaluate(binding)

    return row_predicate


class _RowView:
    """Presents a product row as if it were a row of a single range variable.

    The planner renames every attribute to ``variable.attribute``; this
    adapter lets the original predicate (written against bare attribute
    names) read the prefixed columns.
    """

    __slots__ = ("_row", "_variable")

    def __init__(self, row: XTuple, variable: str):
        self._row = row
        self._variable = variable

    def __getitem__(self, attribute: str):
        return self._row[f"{self._variable}.{attribute}"]


def plan_query(query: Query) -> Plan:
    """Build a :class:`Plan` for a core query."""
    return Plan(query)
