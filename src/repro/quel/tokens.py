"""Token definitions for the QUEL front end.

The paper presents its example queries (Figures 1 and 2) in QUEL, the
query language of INGRES [Stonebraker et al. 1976].  The reproduction
implements enough of QUEL to run those queries verbatim — ``range of``
declarations, a ``retrieve`` clause with an optional parenthesised target
list (with optional result-column names), and a ``where`` clause built
from comparisons combined with ``and`` / ``or`` / ``not`` — plus the DML
statements of the INGRES lineage (``append to``, ``delete``,
``replace``) and ``$name`` parameter placeholders for prepared
statements.

Identifiers may contain ``#`` so the paper's attribute names (``E#``,
``TEL#``, ``MGR#``) lex as single tokens.
"""

from __future__ import annotations

from enum import Enum, auto
from typing import Any, NamedTuple


class TokenType(Enum):
    """The lexical categories recognised by the QUEL lexer."""

    # Keywords
    RANGE = auto()
    OF = auto()
    IS = auto()
    RETRIEVE = auto()
    UNIQUE = auto()
    INTO = auto()
    WHERE = auto()
    AND = auto()
    OR = auto()
    NOT = auto()
    APPEND = auto()
    TO = auto()
    DELETE = auto()
    REPLACE = auto()

    # Literals and names
    IDENTIFIER = auto()
    NUMBER = auto()
    STRING = auto()
    PARAMETER = auto()

    # Punctuation and operators
    LPAREN = auto()
    RPAREN = auto()
    COMMA = auto()
    DOT = auto()
    EQUALS = auto()
    NOT_EQUALS = auto()
    LESS = auto()
    LESS_EQUAL = auto()
    GREATER = auto()
    GREATER_EQUAL = auto()

    END = auto()


#: Keyword spellings (lower-cased) mapped to their token types.
KEYWORDS = {
    "range": TokenType.RANGE,
    "of": TokenType.OF,
    "is": TokenType.IS,
    "retrieve": TokenType.RETRIEVE,
    "unique": TokenType.UNIQUE,
    "into": TokenType.INTO,
    "where": TokenType.WHERE,
    "and": TokenType.AND,
    "or": TokenType.OR,
    "not": TokenType.NOT,
    "append": TokenType.APPEND,
    "to": TokenType.TO,
    "delete": TokenType.DELETE,
    "replace": TokenType.REPLACE,
}

#: Comparison token types mapped onto the operator spellings used by the
#: core three-valued comparison machinery.
COMPARISON_SPELLING = {
    TokenType.EQUALS: "=",
    TokenType.NOT_EQUALS: "!=",
    TokenType.LESS: "<",
    TokenType.LESS_EQUAL: "<=",
    TokenType.GREATER: ">",
    TokenType.GREATER_EQUAL: ">=",
}


class Token(NamedTuple):
    """A single lexical token with its source position (1-based)."""

    type: TokenType
    value: Any
    line: int
    column: int

    def describe(self) -> str:
        if self.type in (TokenType.IDENTIFIER, TokenType.NUMBER, TokenType.STRING):
            return f"{self.type.name}({self.value!r})"
        if self.type is TokenType.PARAMETER:
            return f"PARAMETER(${self.value})"
        return self.type.name
