"""Running QUEL queries end to end.

:func:`run_query` is the convenience entry point used by the examples and
benchmarks: parse → analyse against a database → evaluate.  Two execution
strategies are available, both computing the lower bound ``||Q||_*``:

* ``"tuple"`` — the direct tuple-at-a-time evaluation of Section 5
  (:func:`repro.core.query.evaluate_lower_bound`);
* ``"algebra"`` — the calculus-to-algebra translation of
  :mod:`repro.quel.planner`, demonstrating the correspondence the paper
  relies on for efficiency.

The two agree information-wise on every query; the integration tests
assert it and benchmark E10 measures their cost difference on selective
queries (where the algebraic plan wins by pushing selections down).
"""

from __future__ import annotations

from typing import Mapping, Optional, Union

from ..core.errors import QuelError
from ..core.query import evaluate_lower_bound
from ..core.relation import Relation
from ..core.xrelation import XRelation
from .analyzer import AnalyzedQuery, DatabaseLike, analyze
from .parser import parse
from .planner import Plan


class QueryResult:
    """The answer to a QUEL query plus provenance information."""

    def __init__(self, answer: XRelation, analyzed: AnalyzedQuery, strategy: str, plan: Optional[Plan] = None):
        self.answer = answer
        self.analyzed = analyzed
        self.strategy = strategy
        self.plan = plan

    @property
    def rows(self):
        return self.answer.rows()

    def to_table(self) -> str:
        return self.answer.to_table()

    def __len__(self) -> int:
        return len(self.answer)

    def __repr__(self) -> str:
        return f"QueryResult(rows={len(self.answer)}, strategy={self.strategy!r})"


def compile_query(text: str, database: DatabaseLike, name: str = "Q") -> AnalyzedQuery:
    """Parse and analyse QUEL text without executing it."""
    return analyze(parse(text), database, name=name)


def run_query(
    text: str,
    database: DatabaseLike,
    strategy: str = "tuple",
    name: str = "Q",
) -> QueryResult:
    """Parse, analyse and execute a QUEL query against *database*.

    Parameters
    ----------
    text:
        The QUEL source, e.g. the paper's Figure 1 query verbatim.
    database:
        A mapping from relation name to relation (``repro.storage.Database``
        satisfies this).
    strategy:
        ``"tuple"`` (default) or ``"algebra"``.
    """
    analyzed = compile_query(text, database, name=name)
    if strategy == "tuple":
        answer = evaluate_lower_bound(analyzed.query)
        return QueryResult(answer, analyzed, strategy)
    if strategy == "algebra":
        # Handing the plan the database (when it is a storage Database)
        # gives the optimizer each range's live statistics and persistent
        # indexes; a plain mapping degrades gracefully to ad-hoc stats.
        plan = Plan(analyzed.query, database)
        answer = plan.execute()
        return QueryResult(answer, analyzed, strategy, plan=plan)
    raise QuelError(f"unknown execution strategy {strategy!r}; use 'tuple' or 'algebra'")
