"""Running QUEL retrieve queries end to end.

:func:`run_query` is the convenience entry point used by the examples and
benchmarks: parse → analyse against a database → evaluate.  Since the
Session API redesign the **cost-based planner is the default strategy**
— the same path ``repro.connect()`` sessions use — and the strategies
remain selectable for the differential oracles:

* ``"plan"`` / ``"algebra"`` (default) — the calculus-to-algebra
  translation of :mod:`repro.quel.planner`, cost-ordered with index
  reuse, executed through the streaming :mod:`repro.exec` operator tree
  (``Plan(..., streaming=False)`` keeps the materializing baseline);
* ``"tuple"`` — the direct tuple-at-a-time evaluation of Section 5
  (:func:`repro.core.query.evaluate_lower_bound`), kept as the
  definitional oracle.

The two agree information-wise on every query; the differential harness
asserts it and benchmark E10 measures their cost difference.  DML text
(APPEND / DELETE / REPLACE) does not run here — open a session with
:func:`repro.connect` for the full statement surface.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional

from ..core.errors import QuelError
from ..core.query import evaluate_lower_bound
from ..core.xrelation import XRelation
from .analyzer import AnalyzedQuery, DatabaseLike, analyze
from .ast_nodes import RetrieveStatement
from .parser import parse
from .planner import Plan


class QueryResult:
    """The answer to a QUEL query plus provenance information."""

    def __init__(self, answer: XRelation, analyzed: AnalyzedQuery, strategy: str, plan: Optional[Plan] = None):
        self.answer = answer
        self.analyzed = analyzed
        self.strategy = strategy
        self.plan = plan

    @property
    def rows(self):
        return self.answer.rows()

    def to_table(self) -> str:
        return self.answer.to_table()

    def __len__(self) -> int:
        return len(self.answer)

    def __repr__(self) -> str:
        return f"QueryResult(rows={len(self.answer)}, strategy={self.strategy!r})"


def compile_query(text: str, database: DatabaseLike, name: str = "Q") -> AnalyzedQuery:
    """Parse and analyse QUEL retrieve text without executing it."""
    statement = parse(text)
    if not isinstance(statement, RetrieveStatement):
        raise QuelError(
            f"{type(statement).__name__.replace('Statement', '').lower()} "
            f"statements run through repro.connect() sessions, not run_query()"
        )
    return analyze(statement, database, name=name)


def run_query(
    text: str,
    database: DatabaseLike,
    strategy: Optional[str] = None,
    name: str = "Q",
    params: Optional[Mapping[str, Any]] = None,
) -> QueryResult:
    """Parse, analyse and execute a QUEL retrieve query against *database*.

    Parameters
    ----------
    text:
        The QUEL source, e.g. the paper's Figure 1 query verbatim.
    database:
        A mapping from relation name to relation (``repro.storage.Database``
        satisfies this).
    strategy:
        ``None`` (default) or ``"plan"``/``"algebra"`` for the cost-based
        planner; ``"tuple"`` for the Section 5 tuple-at-a-time oracle.
    params:
        Values for ``$name`` placeholders in the text.
    """
    analyzed = compile_query(text, database, name=name)
    query = analyzed.bind(params)
    if strategy in (None, "plan", "algebra"):
        # Handing the plan the database (when it is a storage Database)
        # gives the optimizer each range's live statistics and persistent
        # indexes; a plain mapping degrades gracefully to ad-hoc stats.
        plan = Plan(query, database)
        answer = plan.execute()
        return QueryResult(answer, analyzed, strategy or "plan", plan=plan)
    if strategy == "tuple":
        answer = evaluate_lower_bound(query)
        return QueryResult(answer, analyzed, strategy)
    raise QuelError(
        f"unknown execution strategy {strategy!r}; use 'plan'/'algebra' or 'tuple'"
    )
