"""A recursive-descent parser for the QUEL subset used by the paper.

Grammar (EBNF, case-insensitive keywords)::

    query        := range_decl* retrieve_clause [where_clause]
    range_decl   := "range" "of" IDENT "is" IDENT
    retrieve     := "retrieve" ["unique"] ["into" IDENT]
                    "(" target_item ("," target_item)* ")"
    target_item  := [IDENT "="] column_ref
    where_clause := "where" expression
    expression   := disjunction
    disjunction  := conjunction ("or" conjunction)*
    conjunction  := negation ("and" negation)*
    negation     := "not" negation | primary
    primary      := "(" expression ")" | comparison
    comparison   := operand comparator operand
    operand      := column_ref | NUMBER | STRING
    column_ref   := IDENT "." IDENT

A target item of the form ``IDENT = column_ref`` labels the output column;
a bare ``column_ref`` keeps the default ``variable_attribute`` name.  The
ambiguity with a comparison is resolved by context: target items can only
be labels or column references.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.errors import QuelParseError
from .ast_nodes import (
    AndExpr,
    ColumnRef,
    ComparisonExpr,
    Expression,
    Literal,
    NotExpr,
    Operand,
    OrExpr,
    RangeDeclaration,
    RetrieveStatement,
    TargetItem,
)
from .lexer import tokenize
from .tokens import COMPARISON_SPELLING, Token, TokenType


class Parser:
    """Recursive-descent parser over a token list."""

    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.position = 0

    # -- token utilities -------------------------------------------------------
    def _peek(self, offset: int = 0) -> Token:
        index = min(self.position + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _advance(self) -> Token:
        token = self.tokens[self.position]
        if token.type is not TokenType.END:
            self.position += 1
        return token

    def _check(self, token_type: TokenType) -> bool:
        return self._peek().type is token_type

    def _match(self, *token_types: TokenType) -> Optional[Token]:
        if self._peek().type in token_types:
            return self._advance()
        return None

    def _expect(self, token_type: TokenType, description: str) -> Token:
        token = self._peek()
        if token.type is not token_type:
            raise QuelParseError(
                f"expected {description}, found {token.describe()}",
                token.line, token.column,
            )
        return self._advance()

    # -- grammar ------------------------------------------------------------------
    def parse_query(self) -> RetrieveStatement:
        ranges: List[RangeDeclaration] = []
        while self._check(TokenType.RANGE):
            ranges.append(self._range_declaration())
        statement = self._retrieve(tuple(ranges))
        end = self._peek()
        if end.type is not TokenType.END:
            raise QuelParseError(
                f"unexpected trailing input starting with {end.describe()}",
                end.line, end.column,
            )
        return statement

    def _range_declaration(self) -> RangeDeclaration:
        keyword = self._expect(TokenType.RANGE, "'range'")
        self._expect(TokenType.OF, "'of'")
        variable = self._expect(TokenType.IDENTIFIER, "a range variable name")
        self._expect(TokenType.IS, "'is'")
        relation = self._expect(TokenType.IDENTIFIER, "a relation name")
        return RangeDeclaration(variable.value, relation.value, line=keyword.line)

    def _retrieve(self, ranges: Tuple[RangeDeclaration, ...]) -> RetrieveStatement:
        self._expect(TokenType.RETRIEVE, "'retrieve'")
        unique = self._match(TokenType.UNIQUE) is not None
        into: Optional[str] = None
        if self._match(TokenType.INTO):
            into = self._expect(TokenType.IDENTIFIER, "a result relation name").value
        self._expect(TokenType.LPAREN, "'(' opening the target list")
        target: List[TargetItem] = [self._target_item()]
        while self._match(TokenType.COMMA):
            target.append(self._target_item())
        self._expect(TokenType.RPAREN, "')' closing the target list")
        where: Optional[Expression] = None
        if self._match(TokenType.WHERE):
            where = self._expression()
        return RetrieveStatement(ranges, tuple(target), where, unique=unique, into=into)

    def _target_item(self) -> TargetItem:
        # Either "label = var.attr" or "var.attr".
        first = self._expect(TokenType.IDENTIFIER, "a target item")
        if self._check(TokenType.EQUALS):
            self._advance()
            reference = self._column_ref()
            return TargetItem(reference, label=first.value)
        self._expect(TokenType.DOT, "'.' in a column reference")
        attribute = self._expect(TokenType.IDENTIFIER, "an attribute name")
        return TargetItem(ColumnRef(first.value, attribute.value, first.line, first.column))

    def _column_ref(self) -> ColumnRef:
        variable = self._expect(TokenType.IDENTIFIER, "a range variable")
        self._expect(TokenType.DOT, "'.' in a column reference")
        attribute = self._expect(TokenType.IDENTIFIER, "an attribute name")
        return ColumnRef(variable.value, attribute.value, variable.line, variable.column)

    # -- expressions ---------------------------------------------------------------------
    def _expression(self) -> Expression:
        return self._disjunction()

    def _disjunction(self) -> Expression:
        operands = [self._conjunction()]
        while self._match(TokenType.OR):
            operands.append(self._conjunction())
        if len(operands) == 1:
            return operands[0]
        return OrExpr(tuple(operands))

    def _conjunction(self) -> Expression:
        operands = [self._negation()]
        while self._match(TokenType.AND):
            operands.append(self._negation())
        if len(operands) == 1:
            return operands[0]
        return AndExpr(tuple(operands))

    def _negation(self) -> Expression:
        if self._match(TokenType.NOT):
            return NotExpr(self._negation())
        return self._primary()

    def _primary(self) -> Expression:
        if self._match(TokenType.LPAREN):
            inner = self._expression()
            self._expect(TokenType.RPAREN, "')'")
            return inner
        return self._comparison()

    def _comparison(self) -> Expression:
        left = self._operand()
        operator_token = self._peek()
        if operator_token.type not in COMPARISON_SPELLING:
            raise QuelParseError(
                f"expected a comparison operator, found {operator_token.describe()}",
                operator_token.line, operator_token.column,
            )
        self._advance()
        right = self._operand()
        return ComparisonExpr(left, COMPARISON_SPELLING[operator_token.type], right)

    def _operand(self) -> Operand:
        token = self._peek()
        if token.type is TokenType.IDENTIFIER:
            return self._column_ref()
        if token.type is TokenType.NUMBER:
            self._advance()
            return Literal(token.value, token.line, token.column)
        if token.type is TokenType.STRING:
            self._advance()
            return Literal(token.value, token.line, token.column)
        raise QuelParseError(
            f"expected a column reference or literal, found {token.describe()}",
            token.line, token.column,
        )


def parse(text: str) -> RetrieveStatement:
    """Parse QUEL source text into a :class:`RetrieveStatement`."""
    return Parser(tokenize(text)).parse_query()
