"""A recursive-descent parser for the QUEL subset used by the paper.

Grammar (EBNF, case-insensitive keywords)::

    statement    := range_decl* (retrieve | append | delete | replace)
    range_decl   := "range" "of" IDENT "is" IDENT
    retrieve     := "retrieve" ["unique"] ["into" IDENT]
                    "(" target_item ("," target_item)* ")" [where_clause]
    append       := "append" "to" IDENT
                    "(" assignment ("," assignment)* ")" [where_clause]
    delete       := "delete" IDENT [where_clause]
    replace      := "replace" IDENT
                    "(" assignment ("," assignment)* ")" [where_clause]
    target_item  := [IDENT "="] column_ref
    assignment   := IDENT "=" operand
    where_clause := "where" expression
    expression   := disjunction
    disjunction  := conjunction ("or" conjunction)*
    conjunction  := negation ("and" negation)*
    negation     := "not" negation | primary
    primary      := "(" expression ")" | comparison
    comparison   := operand comparator operand
    operand      := column_ref | NUMBER | STRING | PARAMETER
    column_ref   := IDENT "." IDENT

A target item of the form ``IDENT = column_ref`` labels the output column;
a bare ``column_ref`` keeps the default ``variable_attribute`` name.  The
ambiguity with a comparison is resolved by context: target items can only
be labels or column references.  ``$name`` placeholders (PARAMETER
tokens) may stand wherever a literal may; they are bound with per-call
values by the session layer.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.errors import QuelParseError
from .ast_nodes import (
    AndExpr,
    AppendStatement,
    Assignment,
    ColumnRef,
    ComparisonExpr,
    DeleteStatement,
    Expression,
    Literal,
    NotExpr,
    Operand,
    OrExpr,
    Parameter,
    RangeDeclaration,
    ReplaceStatement,
    RetrieveStatement,
    Statement,
    TargetItem,
)
from .lexer import tokenize
from .tokens import COMPARISON_SPELLING, Token, TokenType


class Parser:
    """Recursive-descent parser over a token list."""

    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.position = 0

    # -- token utilities -------------------------------------------------------
    def _peek(self, offset: int = 0) -> Token:
        index = min(self.position + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _advance(self) -> Token:
        token = self.tokens[self.position]
        if token.type is not TokenType.END:
            self.position += 1
        return token

    def _check(self, token_type: TokenType) -> bool:
        return self._peek().type is token_type

    def _match(self, *token_types: TokenType) -> Optional[Token]:
        if self._peek().type in token_types:
            return self._advance()
        return None

    def _expect(self, token_type: TokenType, description: str) -> Token:
        token = self._peek()
        if token.type is not token_type:
            raise QuelParseError(
                f"expected {description}, found {token.describe()}",
                token.line, token.column,
            )
        return self._advance()

    # -- grammar ------------------------------------------------------------------
    def parse_statement(self) -> Statement:
        """Parse one statement: retrieve, append, delete or replace."""
        ranges: List[RangeDeclaration] = []
        while self._check(TokenType.RANGE):
            ranges.append(self._range_declaration())
        head = self._peek()
        if head.type is TokenType.RETRIEVE:
            statement: Statement = self._retrieve(tuple(ranges))
        elif head.type is TokenType.APPEND:
            statement = self._append(tuple(ranges))
        elif head.type is TokenType.DELETE:
            statement = self._delete(tuple(ranges))
        elif head.type is TokenType.REPLACE:
            statement = self._replace(tuple(ranges))
        else:
            raise QuelParseError(
                f"expected 'retrieve', 'append', 'delete' or 'replace', "
                f"found {head.describe()}",
                head.line, head.column,
            )
        end = self._peek()
        if end.type is not TokenType.END:
            raise QuelParseError(
                f"unexpected trailing input starting with {end.describe()}",
                end.line, end.column,
            )
        return statement

    def parse_query(self) -> RetrieveStatement:
        """Parse a statement and require it to be a RETRIEVE query."""
        statement = self.parse_statement()
        if not isinstance(statement, RetrieveStatement):
            raise QuelParseError(
                "expected a retrieve query, found a "
                f"{type(statement).__name__.replace('Statement', '').lower()} statement"
            )
        return statement

    def _range_declaration(self) -> RangeDeclaration:
        keyword = self._expect(TokenType.RANGE, "'range'")
        self._expect(TokenType.OF, "'of'")
        variable = self._expect(TokenType.IDENTIFIER, "a range variable name")
        self._expect(TokenType.IS, "'is'")
        relation = self._expect(TokenType.IDENTIFIER, "a relation name")
        return RangeDeclaration(variable.value, relation.value, line=keyword.line)

    def _retrieve(self, ranges: Tuple[RangeDeclaration, ...]) -> RetrieveStatement:
        self._expect(TokenType.RETRIEVE, "'retrieve'")
        unique = self._match(TokenType.UNIQUE) is not None
        into: Optional[str] = None
        if self._match(TokenType.INTO):
            into = self._expect(TokenType.IDENTIFIER, "a result relation name").value
        self._expect(TokenType.LPAREN, "'(' opening the target list")
        target: List[TargetItem] = [self._target_item()]
        while self._match(TokenType.COMMA):
            target.append(self._target_item())
        self._expect(TokenType.RPAREN, "')' closing the target list")
        where: Optional[Expression] = None
        if self._match(TokenType.WHERE):
            where = self._expression()
        return RetrieveStatement(ranges, tuple(target), where, unique=unique, into=into)

    def _append(self, ranges: Tuple[RangeDeclaration, ...]) -> AppendStatement:
        self._expect(TokenType.APPEND, "'append'")
        self._expect(TokenType.TO, "'to' after 'append'")
        relation = self._expect(TokenType.IDENTIFIER, "a relation name").value
        assignments = self._assignment_list()
        where: Optional[Expression] = None
        if self._match(TokenType.WHERE):
            where = self._expression()
        return AppendStatement(ranges, relation, assignments, where)

    def _delete(self, ranges: Tuple[RangeDeclaration, ...]) -> DeleteStatement:
        self._expect(TokenType.DELETE, "'delete'")
        variable = self._expect(TokenType.IDENTIFIER, "a range variable").value
        where: Optional[Expression] = None
        if self._match(TokenType.WHERE):
            where = self._expression()
        return DeleteStatement(ranges, variable, where)

    def _replace(self, ranges: Tuple[RangeDeclaration, ...]) -> ReplaceStatement:
        self._expect(TokenType.REPLACE, "'replace'")
        variable = self._expect(TokenType.IDENTIFIER, "a range variable").value
        assignments = self._assignment_list()
        where: Optional[Expression] = None
        if self._match(TokenType.WHERE):
            where = self._expression()
        return ReplaceStatement(ranges, variable, assignments, where)

    def _assignment_list(self) -> Tuple[Assignment, ...]:
        self._expect(TokenType.LPAREN, "'(' opening the assignment list")
        assignments: List[Assignment] = [self._assignment()]
        while self._match(TokenType.COMMA):
            assignments.append(self._assignment())
        self._expect(TokenType.RPAREN, "')' closing the assignment list")
        return tuple(assignments)

    def _assignment(self) -> Assignment:
        attribute = self._expect(TokenType.IDENTIFIER, "an attribute name")
        self._expect(TokenType.EQUALS, "'=' in an assignment")
        return Assignment(attribute.value, self._operand())

    def _target_item(self) -> TargetItem:
        # Either "label = var.attr" or "var.attr".
        first = self._expect(TokenType.IDENTIFIER, "a target item")
        if self._check(TokenType.EQUALS):
            self._advance()
            reference = self._column_ref()
            return TargetItem(reference, label=first.value)
        self._expect(TokenType.DOT, "'.' in a column reference")
        attribute = self._expect(TokenType.IDENTIFIER, "an attribute name")
        return TargetItem(ColumnRef(first.value, attribute.value, first.line, first.column))

    def _column_ref(self) -> ColumnRef:
        variable = self._expect(TokenType.IDENTIFIER, "a range variable")
        self._expect(TokenType.DOT, "'.' in a column reference")
        attribute = self._expect(TokenType.IDENTIFIER, "an attribute name")
        return ColumnRef(variable.value, attribute.value, variable.line, variable.column)

    # -- expressions ---------------------------------------------------------------------
    def _expression(self) -> Expression:
        return self._disjunction()

    def _disjunction(self) -> Expression:
        operands = [self._conjunction()]
        while self._match(TokenType.OR):
            operands.append(self._conjunction())
        if len(operands) == 1:
            return operands[0]
        return OrExpr(tuple(operands))

    def _conjunction(self) -> Expression:
        operands = [self._negation()]
        while self._match(TokenType.AND):
            operands.append(self._negation())
        if len(operands) == 1:
            return operands[0]
        return AndExpr(tuple(operands))

    def _negation(self) -> Expression:
        if self._match(TokenType.NOT):
            return NotExpr(self._negation())
        return self._primary()

    def _primary(self) -> Expression:
        if self._match(TokenType.LPAREN):
            inner = self._expression()
            self._expect(TokenType.RPAREN, "')'")
            return inner
        return self._comparison()

    def _comparison(self) -> Expression:
        left = self._operand()
        operator_token = self._peek()
        if operator_token.type not in COMPARISON_SPELLING:
            raise QuelParseError(
                f"expected a comparison operator, found {operator_token.describe()}",
                operator_token.line, operator_token.column,
            )
        self._advance()
        right = self._operand()
        return ComparisonExpr(left, COMPARISON_SPELLING[operator_token.type], right)

    def _operand(self) -> Operand:
        token = self._peek()
        if token.type is TokenType.IDENTIFIER:
            return self._column_ref()
        if token.type is TokenType.NUMBER:
            self._advance()
            return Literal(token.value, token.line, token.column)
        if token.type is TokenType.STRING:
            self._advance()
            return Literal(token.value, token.line, token.column)
        if token.type is TokenType.PARAMETER:
            self._advance()
            return Parameter(token.value, token.line, token.column)
        raise QuelParseError(
            f"expected a column reference, literal or $parameter, "
            f"found {token.describe()}",
            token.line, token.column,
        )


def parse(text: str) -> Statement:
    """Parse QUEL source text into a statement AST node.

    Retrieve text yields a :class:`RetrieveStatement` exactly as before;
    the DML statements yield :class:`AppendStatement` /
    :class:`DeleteStatement` / :class:`ReplaceStatement`.
    """
    return Parser(tokenize(text)).parse_statement()


def parse_statement(text: str) -> Statement:
    """Alias of :func:`parse`, named for symmetry with the grammar."""
    return Parser(tokenize(text)).parse_statement()
