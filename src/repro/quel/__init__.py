"""A QUEL front end able to run the paper's Figure 1 and Figure 2 queries.

The pipeline is lexer → parser → analyzer → (tuple evaluator | algebraic
planner).  :func:`run_query` is the one-call entry point for RETRIEVE
text; the full statement surface — APPEND TO / DELETE / REPLACE /
RETRIEVE INTO with ``$name`` parameters — runs through
:func:`repro.connect` sessions (:mod:`repro.api`).
"""

from .tokens import Token, TokenType
from .lexer import Lexer, tokenize
from .ast_nodes import (
    AndExpr,
    AppendStatement,
    Assignment,
    ColumnRef,
    ComparisonExpr,
    DeleteStatement,
    Literal,
    NotExpr,
    OrExpr,
    Parameter,
    RangeDeclaration,
    ReplaceStatement,
    RetrieveStatement,
    Statement,
    TargetItem,
    normalize_statement,
)
from .parser import Parser, parse, parse_statement
from .analyzer import AnalyzedQuery, analyze
from .planner import Plan, plan_query
from .evaluator import QueryResult, compile_query, run_query

__all__ = [
    "Token", "TokenType", "Lexer", "tokenize",
    "AndExpr", "ColumnRef", "ComparisonExpr", "Literal", "NotExpr", "OrExpr",
    "Parameter", "Assignment",
    "RangeDeclaration", "RetrieveStatement", "TargetItem",
    "AppendStatement", "DeleteStatement", "ReplaceStatement", "Statement",
    "normalize_statement",
    "Parser", "parse", "parse_statement", "AnalyzedQuery", "analyze",
    "Plan", "plan_query", "QueryResult", "compile_query", "run_query",
]
