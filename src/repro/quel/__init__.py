"""A QUEL front end able to run the paper's Figure 1 and Figure 2 queries.

The pipeline is lexer → parser → analyzer → (tuple evaluator | algebraic
planner).  :func:`run_query` is the one-call entry point.
"""

from .tokens import Token, TokenType
from .lexer import Lexer, tokenize
from .ast_nodes import (
    AndExpr,
    ColumnRef,
    ComparisonExpr,
    Literal,
    NotExpr,
    OrExpr,
    RangeDeclaration,
    RetrieveStatement,
    TargetItem,
)
from .parser import Parser, parse
from .analyzer import AnalyzedQuery, analyze
from .planner import Plan, plan_query
from .evaluator import QueryResult, compile_query, run_query

__all__ = [
    "Token", "TokenType", "Lexer", "tokenize",
    "AndExpr", "ColumnRef", "ComparisonExpr", "Literal", "NotExpr", "OrExpr",
    "RangeDeclaration", "RetrieveStatement", "TargetItem",
    "Parser", "parse", "AnalyzedQuery", "analyze",
    "Plan", "plan_query", "QueryResult", "compile_query", "run_query",
]
