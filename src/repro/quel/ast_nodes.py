"""Abstract syntax trees produced by the QUEL parser.

The parser output is deliberately separate from the core query AST
(:mod:`repro.core.query`): the parse tree records what the user wrote
(names, positions, optional result-column labels), while the analyzer
(:mod:`repro.quel.analyzer`) resolves names against a database and lowers
the tree to a :class:`repro.core.query.Query` ready for evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple, Union


# ---------------------------------------------------------------------------
# Expressions (the where clause)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ColumnRef:
    """``variable.attribute`` as written in the query text."""

    variable: str
    attribute: str
    line: int = 0
    column: int = 0

    def __str__(self) -> str:
        return f"{self.variable}.{self.attribute}"


@dataclass(frozen=True)
class Literal:
    """A string or numeric literal."""

    value: Any
    line: int = 0
    column: int = 0

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class Parameter:
    """A ``$name`` placeholder, bound at execution time.

    Parameters are what make a statement *preparable*: the session parses
    and plans the template once and substitutes values per execution.
    """

    name: str
    line: int = 0
    column: int = 0

    def __str__(self) -> str:
        return f"${self.name}"


Operand = Union[ColumnRef, Literal, Parameter]


@dataclass(frozen=True)
class ComparisonExpr:
    """``left θ right``."""

    left: Operand
    op: str
    right: Operand

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class AndExpr:
    operands: Tuple["Expression", ...]

    def __str__(self) -> str:
        return "(" + " and ".join(str(o) for o in self.operands) + ")"


@dataclass(frozen=True)
class OrExpr:
    operands: Tuple["Expression", ...]

    def __str__(self) -> str:
        return "(" + " or ".join(str(o) for o in self.operands) + ")"


@dataclass(frozen=True)
class NotExpr:
    operand: "Expression"

    def __str__(self) -> str:
        return f"not {self.operand}"


Expression = Union[ComparisonExpr, AndExpr, OrExpr, NotExpr]


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class RangeDeclaration:
    """``range of <variable> is <relation>``."""

    variable: str
    relation: str
    line: int = 0

    def __str__(self) -> str:
        return f"range of {self.variable} is {self.relation}"


@dataclass(frozen=True)
class TargetItem:
    """One element of the retrieve target list, optionally labelled.

    QUEL writes ``retrieve (name = e.NAME, e.E#)``: the first item names
    its output column explicitly, the second defaults.
    """

    expression: ColumnRef
    label: Optional[str] = None

    def output_name(self) -> str:
        if self.label:
            return self.label
        return f"{self.expression.variable}_{self.expression.attribute}"

    def __str__(self) -> str:
        if self.label:
            return f"{self.label} = {self.expression}"
        return str(self.expression)


@dataclass(frozen=True)
class RetrieveStatement:
    """A complete QUEL query: ranges, target list, optional where clause."""

    ranges: Tuple[RangeDeclaration, ...]
    target: Tuple[TargetItem, ...]
    where: Optional[Expression] = None
    unique: bool = False
    into: Optional[str] = None

    def range_for(self, variable: str) -> Optional[RangeDeclaration]:
        for declaration in self.ranges:
            if declaration.variable == variable:
                return declaration
        return None

    def __str__(self) -> str:
        lines = [str(declaration) for declaration in self.ranges]
        head = "retrieve"
        if self.unique:
            head += " unique"
        if self.into:
            head += f" into {self.into}"
        lines.append(f"{head} (" + ", ".join(str(t) for t in self.target) + ")")
        if self.where is not None:
            lines.append(f"where {self.where}")
        return "\n".join(lines)


@dataclass(frozen=True)
class Assignment:
    """``attribute = operand`` inside an APPEND or REPLACE target list."""

    attribute: str
    value: Operand

    def __str__(self) -> str:
        return f"{self.attribute} = {self.value}"


@dataclass(frozen=True)
class AppendStatement:
    """``append to <relation> (attr = expr, ...) [where ...]``.

    Without range declarations the assignments must be literals or
    parameters and exactly one row is appended.  With ranges, column
    references drive an append-from-query: one row per qualifying
    binding, all inserted through the atomic bulk path.
    """

    ranges: Tuple[RangeDeclaration, ...]
    relation: str
    assignments: Tuple[Assignment, ...]
    where: Optional[Expression] = None

    def __str__(self) -> str:
        lines = [str(declaration) for declaration in self.ranges]
        lines.append(
            f"append to {self.relation} ("
            + ", ".join(str(a) for a in self.assignments) + ")"
        )
        if self.where is not None:
            lines.append(f"where {self.where}")
        return "\n".join(lines)


@dataclass(frozen=True)
class DeleteStatement:
    """``delete <range-variable> [where ...]``."""

    ranges: Tuple[RangeDeclaration, ...]
    variable: str
    where: Optional[Expression] = None

    def __str__(self) -> str:
        lines = [str(declaration) for declaration in self.ranges]
        lines.append(f"delete {self.variable}")
        if self.where is not None:
            lines.append(f"where {self.where}")
        return "\n".join(lines)


@dataclass(frozen=True)
class ReplaceStatement:
    """``replace <range-variable> (attr = expr, ...) [where ...]``."""

    ranges: Tuple[RangeDeclaration, ...]
    variable: str
    assignments: Tuple[Assignment, ...]
    where: Optional[Expression] = None

    def __str__(self) -> str:
        lines = [str(declaration) for declaration in self.ranges]
        lines.append(
            f"replace {self.variable} ("
            + ", ".join(str(a) for a in self.assignments) + ")"
        )
        if self.where is not None:
            lines.append(f"where {self.where}")
        return "\n".join(lines)


Statement = Union[RetrieveStatement, AppendStatement, DeleteStatement, ReplaceStatement]


# ---------------------------------------------------------------------------
# Normalization (plan-cache keys)
# ---------------------------------------------------------------------------

def normalize_statement(node: Any) -> Any:
    """A hashable, position-free canonical form of a parse tree.

    Two statements that differ only in whitespace, comments, or source
    positions normalize identically — this is the key the session's
    prepared-plan LRU is indexed by.  Literal values participate (they
    may change the chosen plan); parameters normalize by name, so the
    same template with different bound values shares one cache entry.
    """
    if isinstance(node, ColumnRef):
        return ("col", node.variable, node.attribute)
    if isinstance(node, Literal):
        return ("lit", type(node.value).__name__, node.value)
    if isinstance(node, Parameter):
        return ("param", node.name)
    if isinstance(node, ComparisonExpr):
        return ("cmp", normalize_statement(node.left), node.op,
                normalize_statement(node.right))
    if isinstance(node, AndExpr):
        return ("and",) + tuple(normalize_statement(o) for o in node.operands)
    if isinstance(node, OrExpr):
        return ("or",) + tuple(normalize_statement(o) for o in node.operands)
    if isinstance(node, NotExpr):
        return ("not", normalize_statement(node.operand))
    if isinstance(node, RangeDeclaration):
        return ("range", node.variable, node.relation)
    if isinstance(node, TargetItem):
        return ("target", node.label, normalize_statement(node.expression))
    if isinstance(node, Assignment):
        return ("set", node.attribute, normalize_statement(node.value))
    if isinstance(node, RetrieveStatement):
        return (
            "retrieve", node.unique, node.into,
            tuple(normalize_statement(r) for r in node.ranges),
            tuple(normalize_statement(t) for t in node.target),
            normalize_statement(node.where) if node.where is not None else None,
        )
    if isinstance(node, AppendStatement):
        return (
            "append", node.relation,
            tuple(normalize_statement(r) for r in node.ranges),
            tuple(normalize_statement(a) for a in node.assignments),
            normalize_statement(node.where) if node.where is not None else None,
        )
    if isinstance(node, DeleteStatement):
        return (
            "delete", node.variable,
            tuple(normalize_statement(r) for r in node.ranges),
            normalize_statement(node.where) if node.where is not None else None,
        )
    if isinstance(node, ReplaceStatement):
        return (
            "replace", node.variable,
            tuple(normalize_statement(r) for r in node.ranges),
            tuple(normalize_statement(a) for a in node.assignments),
            normalize_statement(node.where) if node.where is not None else None,
        )
    raise TypeError(f"cannot normalize {node!r}")
