"""Abstract syntax trees produced by the QUEL parser.

The parser output is deliberately separate from the core query AST
(:mod:`repro.core.query`): the parse tree records what the user wrote
(names, positions, optional result-column labels), while the analyzer
(:mod:`repro.quel.analyzer`) resolves names against a database and lowers
the tree to a :class:`repro.core.query.Query` ready for evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple, Union


# ---------------------------------------------------------------------------
# Expressions (the where clause)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ColumnRef:
    """``variable.attribute`` as written in the query text."""

    variable: str
    attribute: str
    line: int = 0
    column: int = 0

    def __str__(self) -> str:
        return f"{self.variable}.{self.attribute}"


@dataclass(frozen=True)
class Literal:
    """A string or numeric literal."""

    value: Any
    line: int = 0
    column: int = 0

    def __str__(self) -> str:
        return repr(self.value)


Operand = Union[ColumnRef, Literal]


@dataclass(frozen=True)
class ComparisonExpr:
    """``left θ right``."""

    left: Operand
    op: str
    right: Operand

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class AndExpr:
    operands: Tuple["Expression", ...]

    def __str__(self) -> str:
        return "(" + " and ".join(str(o) for o in self.operands) + ")"


@dataclass(frozen=True)
class OrExpr:
    operands: Tuple["Expression", ...]

    def __str__(self) -> str:
        return "(" + " or ".join(str(o) for o in self.operands) + ")"


@dataclass(frozen=True)
class NotExpr:
    operand: "Expression"

    def __str__(self) -> str:
        return f"not {self.operand}"


Expression = Union[ComparisonExpr, AndExpr, OrExpr, NotExpr]


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class RangeDeclaration:
    """``range of <variable> is <relation>``."""

    variable: str
    relation: str
    line: int = 0

    def __str__(self) -> str:
        return f"range of {self.variable} is {self.relation}"


@dataclass(frozen=True)
class TargetItem:
    """One element of the retrieve target list, optionally labelled.

    QUEL writes ``retrieve (name = e.NAME, e.E#)``: the first item names
    its output column explicitly, the second defaults.
    """

    expression: ColumnRef
    label: Optional[str] = None

    def output_name(self) -> str:
        if self.label:
            return self.label
        return f"{self.expression.variable}_{self.expression.attribute}"

    def __str__(self) -> str:
        if self.label:
            return f"{self.label} = {self.expression}"
        return str(self.expression)


@dataclass(frozen=True)
class RetrieveStatement:
    """A complete QUEL query: ranges, target list, optional where clause."""

    ranges: Tuple[RangeDeclaration, ...]
    target: Tuple[TargetItem, ...]
    where: Optional[Expression] = None
    unique: bool = False
    into: Optional[str] = None

    def range_for(self, variable: str) -> Optional[RangeDeclaration]:
        for declaration in self.ranges:
            if declaration.variable == variable:
                return declaration
        return None

    def __str__(self) -> str:
        lines = [str(declaration) for declaration in self.ranges]
        head = "retrieve"
        if self.unique:
            head += " unique"
        if self.into:
            head += f" into {self.into}"
        lines.append(f"{head} (" + ", ".join(str(t) for t in self.target) + ")")
        if self.where is not None:
            lines.append(f"where {self.where}")
        return "\n".join(lines)
