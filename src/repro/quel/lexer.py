"""The QUEL lexer: source text → token stream.

Handles the lexical oddities needed to accept the paper's queries as
written: identifiers containing ``#``, double- and single-quoted string
literals, the symbolic logical connectives ``∧``/``∨``/``¬`` (the journal
typesets Figure 1 with ``∧``/``∨``), integer and decimal numbers, and the
comparison operators ``=``, ``!=``, ``<>``, ``≠``, ``<``, ``<=``, ``>``,
``>=``.  Comments run from ``--`` or ``/*...*/``.  ``$name`` lexes as a
parameter placeholder (prepared-statement binding site).
"""

from __future__ import annotations

from typing import Iterator, List

from ..core.errors import QuelLexError
from .tokens import KEYWORDS, Token, TokenType


_SINGLE_CHARACTER_TOKENS = {
    "(": TokenType.LPAREN,
    ")": TokenType.RPAREN,
    ",": TokenType.COMMA,
    ".": TokenType.DOT,
}


def _is_identifier_start(ch: str) -> bool:
    return ch.isalpha() or ch == "_"


def _is_identifier_part(ch: str) -> bool:
    return ch.isalnum() or ch in ("_", "#")


class Lexer:
    """A hand-written scanner over QUEL source text."""

    def __init__(self, text: str):
        self.text = text
        self.position = 0
        self.line = 1
        self.column = 1

    # -- character-level helpers ----------------------------------------------
    def _peek(self, offset: int = 0) -> str:
        index = self.position + offset
        return self.text[index] if index < len(self.text) else ""

    def _advance(self) -> str:
        ch = self.text[self.position]
        self.position += 1
        if ch == "\n":
            self.line += 1
            self.column = 1
        else:
            self.column += 1
        return ch

    def _error(self, message: str) -> QuelLexError:
        return QuelLexError(message, self.position, self.line, self.column)

    # -- token production -----------------------------------------------------
    def tokens(self) -> List[Token]:
        """Scan the whole input and return the token list (ending with END)."""
        result: List[Token] = []
        while self.position < len(self.text):
            ch = self._peek()
            if ch.isspace():
                self._advance()
                continue
            if ch == "-" and self._peek(1) == "-":
                self._skip_line_comment()
                continue
            if ch == "/" and self._peek(1) == "*":
                self._skip_block_comment()
                continue
            result.append(self._next_token())
        result.append(Token(TokenType.END, None, self.line, self.column))
        return result

    def _skip_line_comment(self) -> None:
        while self.position < len(self.text) and self._peek() != "\n":
            self._advance()

    def _skip_block_comment(self) -> None:
        self._advance()  # '/'
        self._advance()  # '*'
        while self.position < len(self.text):
            if self._peek() == "*" and self._peek(1) == "/":
                self._advance()
                self._advance()
                return
            self._advance()
        raise self._error("unterminated block comment")

    def _next_token(self) -> Token:
        line, column = self.line, self.column
        ch = self._peek()

        if ch in _SINGLE_CHARACTER_TOKENS and not (ch == "." and self._peek(1).isdigit()):
            self._advance()
            return Token(_SINGLE_CHARACTER_TOKENS[ch], ch, line, column)

        if ch in ("∧",):
            self._advance()
            return Token(TokenType.AND, ch, line, column)
        if ch in ("∨",):
            self._advance()
            return Token(TokenType.OR, ch, line, column)
        if ch in ("¬",):
            self._advance()
            return Token(TokenType.NOT, ch, line, column)

        if ch == "=":
            self._advance()
            if self._peek() == "=":
                self._advance()
            return Token(TokenType.EQUALS, "=", line, column)
        if ch == "≠":
            self._advance()
            return Token(TokenType.NOT_EQUALS, "!=", line, column)
        if ch == "!":
            self._advance()
            if self._peek() == "=":
                self._advance()
                return Token(TokenType.NOT_EQUALS, "!=", line, column)
            raise self._error("unexpected character '!'")
        if ch == "<":
            self._advance()
            if self._peek() == "=":
                self._advance()
                return Token(TokenType.LESS_EQUAL, "<=", line, column)
            if self._peek() == ">":
                self._advance()
                return Token(TokenType.NOT_EQUALS, "!=", line, column)
            return Token(TokenType.LESS, "<", line, column)
        if ch == ">":
            self._advance()
            if self._peek() == "=":
                self._advance()
                return Token(TokenType.GREATER_EQUAL, ">=", line, column)
            return Token(TokenType.GREATER, ">", line, column)

        if ch == "$":
            self._advance()
            if not _is_identifier_start(self._peek()):
                raise self._error("expected a parameter name after '$'")
            name_token = self._identifier(line, column)
            return Token(TokenType.PARAMETER, str(name_token.value), line, column)

        if ch in ('"', "'"):
            return self._string(ch, line, column)

        if ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
            return self._number(line, column)

        if _is_identifier_start(ch):
            return self._identifier(line, column)

        raise self._error(f"unexpected character {ch!r}")

    def _string(self, quote: str, line: int, column: int) -> Token:
        self._advance()  # opening quote
        chars: List[str] = []
        while True:
            if self.position >= len(self.text):
                raise self._error("unterminated string literal")
            ch = self._advance()
            if ch == quote:
                break
            if ch == "\\" and self._peek() in (quote, "\\"):
                chars.append(self._advance())
                continue
            chars.append(ch)
        return Token(TokenType.STRING, "".join(chars), line, column)

    def _number(self, line: int, column: int) -> Token:
        chars: List[str] = []
        has_dot = False
        while self.position < len(self.text):
            ch = self._peek()
            if ch.isdigit():
                chars.append(self._advance())
            elif ch == "." and not has_dot and self._peek(1).isdigit():
                has_dot = True
                chars.append(self._advance())
            else:
                break
        literal = "".join(chars)
        value = float(literal) if has_dot else int(literal)
        return Token(TokenType.NUMBER, value, line, column)

    def _identifier(self, line: int, column: int) -> Token:
        chars: List[str] = []
        while self.position < len(self.text) and _is_identifier_part(self._peek()):
            chars.append(self._advance())
        word = "".join(chars)
        keyword = KEYWORDS.get(word.lower())
        if keyword is not None:
            return Token(keyword, word.lower(), line, column)
        return Token(TokenType.IDENTIFIER, word, line, column)


def tokenize(text: str) -> List[Token]:
    """Convenience wrapper: lex *text* into a token list."""
    return Lexer(text).tokens()
