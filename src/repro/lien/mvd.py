"""Multivalued dependencies, with and without nulls (Lien 1979).

Lien formalised multivalued dependencies over relations containing
nonexistent nulls and derived a complete set of inference rules for them;
the paper cites this as the main prior work on the "nonexistent"
interpretation.  This module implements:

* classical MVD satisfaction ``X →→ Y`` on total relations (the exchange
  property: if two rows agree on X then the row taking its Y-values from
  the first and its remaining values from the second is also present);
* **null MVD satisfaction** in Lien's style: the exchange property is
  required only among rows that are X-total, and the exchanged row must be
  present *up to subsumption* (the relation x-contains it), so nulls never
  manufacture spurious requirements;
* the **dependency basis** of an attribute set (Beeri's algorithm) and an
  implication test for sets of MVDs/FDs on a total schema, exercising the
  inference rules (reflexivity, augmentation, complementation,
  transitivity) that Lien's axiomatisation extends.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..core.errors import ConstraintViolation
from ..core.relation import Relation
from ..core.tuples import XTuple
from ..constraints.functional import FunctionalDependency


class MultivaluedDependency:
    """An MVD ``X →→ Y`` over a schema with attribute universe ``U``."""

    def __init__(self, determinant: Sequence[str], dependent: Sequence[str], name: Optional[str] = None):
        self.determinant: Tuple[str, ...] = tuple(determinant)
        self.dependent: Tuple[str, ...] = tuple(dependent)
        if not self.determinant:
            raise ConstraintViolation("an MVD needs a non-empty determinant")
        self.name = name or f"{','.join(self.determinant)} ->> {','.join(self.dependent)}"

    # -- satisfaction -----------------------------------------------------------
    def _partition(self, attributes: Sequence[str]) -> Tuple[Tuple[str, ...], Tuple[str, ...], Tuple[str, ...]]:
        x = tuple(self.determinant)
        y = tuple(a for a in self.dependent if a not in x)
        z = tuple(a for a in attributes if a not in x and a not in y)
        return x, y, z

    def _exchange(self, first: XTuple, second: XTuple, x: Sequence[str], y: Sequence[str], z: Sequence[str]) -> XTuple:
        data = {}
        for attribute in x:
            data[attribute] = first[attribute]
        for attribute in y:
            data[attribute] = first[attribute]
        for attribute in z:
            data[attribute] = second[attribute]
        return XTuple(data)

    def holds_total(self, relation: Relation) -> bool:
        """Classical MVD satisfaction on a total relation."""
        attributes = relation.schema.attributes
        x, y, z = self._partition(attributes)
        rows = list(relation.tuples())
        row_set = set(rows)
        for first in rows:
            for second in rows:
                if first is second:
                    continue
                if any(first[a] != second[a] for a in x):
                    continue
                if self._exchange(first, second, x, y, z) not in row_set:
                    return False
        return True

    def holds_with_nulls(self, relation: Relation) -> bool:
        """Lien-style satisfaction: exchange among X-total rows, up to subsumption."""
        attributes = relation.schema.attributes
        x, y, z = self._partition(attributes)
        rows = [r for r in relation.tuples() if r.is_total_on(x)]
        for first in rows:
            for second in rows:
                if first is second:
                    continue
                if any(first[a] != second[a] for a in x):
                    continue
                exchanged = self._exchange(first, second, x, y, z)
                if not relation.x_contains(exchanged):
                    return False
        return True

    def check(self, relation: Relation) -> None:
        if not self.holds_with_nulls(relation):
            raise ConstraintViolation(f"MVD {self.name} is violated")

    def __repr__(self) -> str:
        return f"MultivaluedDependency({list(self.determinant)} ->> {list(self.dependent)})"


# ---------------------------------------------------------------------------
# Dependency basis and implication (total schemas)
# ---------------------------------------------------------------------------

def dependency_basis(
    attributes: Iterable[str],
    universe: Sequence[str],
    mvds: Sequence[MultivaluedDependency],
    fds: Sequence[FunctionalDependency] = (),
) -> List[FrozenSet[str]]:
    """The dependency basis of ``attributes`` (Beeri's refinement algorithm).

    FDs are folded in as MVDs (an FD ``X → Y`` implies ``X →→ Y``), which is
    sound for the implication test below; the finer FD-specific reasoning
    is delegated to :mod:`repro.constraints.functional`.
    """
    x: Set[str] = set(attributes)
    universe_set = set(universe)
    dependencies: List[Tuple[Set[str], Set[str]]] = [
        (set(m.determinant), set(m.dependent) - set(m.determinant)) for m in mvds
    ]
    dependencies.extend(
        (set(f.determinant), set(f.dependent) - set(f.determinant)) for f in fds
    )

    # Start with the partition {U - X} plus singletons of X (which are fixed).
    basis: List[Set[str]] = [universe_set - x] if universe_set - x else []
    changed = True
    while changed:
        changed = False
        for w, y in dependencies:
            # Find a basis block V disjoint from W that intersects both Y and its complement.
            for block in list(basis):
                if block & w:
                    continue
                inside = block & _closure_under(w, y, x, universe_set)
                if inside and inside != block:
                    basis.remove(block)
                    basis.append(inside)
                    basis.append(block - inside)
                    changed = True
                    break
            if changed:
                break
    # The dependency basis conventionally also lists the singletons of X.
    result = [frozenset(block) for block in basis if block]
    result.extend(frozenset({a}) for a in sorted(x))
    return sorted(result, key=lambda s: (len(s), sorted(s)))


def _closure_under(w: Set[str], y: Set[str], x: Set[str], universe: Set[str]) -> Set[str]:
    """Split helper: the Y side usable for refining blocks against W ⊆ X ∪ ...."""
    if w <= x:
        return set(y)
    return set(y)


def mvd_implied(
    mvds: Sequence[MultivaluedDependency],
    fds: Sequence[FunctionalDependency],
    candidate: MultivaluedDependency,
    universe: Sequence[str],
) -> bool:
    """Is ``candidate`` implied by the given MVDs and FDs on a total schema?

    ``X →→ Y`` is implied iff ``Y - X`` is a union of blocks of the
    dependency basis of ``X``.
    """
    basis = dependency_basis(candidate.determinant, universe, mvds, fds)
    target = set(candidate.dependent) - set(candidate.determinant)
    remaining = set(target)
    for block in basis:
        if block <= remaining:
            remaining -= block
    if not remaining:
        return True
    # Also allowed: Y includes attributes of X (reflexivity), already removed.
    return False


def complementation(mvd: MultivaluedDependency, universe: Sequence[str]) -> MultivaluedDependency:
    """The complementation rule: ``X →→ Y`` implies ``X →→ U − X − Y``."""
    x = set(mvd.determinant)
    y = set(mvd.dependent)
    complement = tuple(a for a in universe if a not in x and a not in y)
    return MultivaluedDependency(mvd.determinant, complement, name=f"complement({mvd.name})")
