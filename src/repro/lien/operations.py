"""The Lien (1979) baseline: operations under the "nonexistent" interpretation.

Section 1 of the paper summarises Lien's treatment: a null means the value
*does not exist*, and the proposed select and join operations "basically
coincide with the TRUE version of Codd's operations" — a nonexistent value
satisfies no comparison (the same footnote-7 policy the ni interpretation
adopts for its lower bound).  The value of having the baseline explicit is
that the equivalence can be tested rather than asserted: for every
relation and predicate, Lien selection == Codd TRUE selection == Zaniolo
lower-bound selection on the same representation (integration test
``test_baseline_agreement``).

Lien's genuinely distinct contribution is the theory of multivalued
dependencies with nulls, implemented in :mod:`repro.lien.mvd`.
"""

from __future__ import annotations

from typing import Any, List, Sequence

from ..core.nulls import is_null
from ..core.relation import Relation, RelationSchema
from ..core.threevalued import comparison_function
from ..core.tuples import XTuple


def _satisfies(left: Any, op: str, right: Any) -> bool:
    """Two-valued comparison where any null operand fails the comparison."""
    if is_null(left) or is_null(right):
        return False
    func = comparison_function(op)
    try:
        return bool(func(left, right))
    except TypeError:
        return op in ("!=", "<>", "≠")


def lien_select(relation: Relation, attribute: str, op: str, constant: Any) -> Relation:
    """Selection under the nonexistent interpretation (coincides with TRUE selection)."""
    relation.schema.require((attribute,))
    out = Relation(
        RelationSchema(relation.schema.attributes, relation.schema.domains(),
                       name=f"{relation.name}[{attribute}{op}{constant!r}]L"),
        validate=False,
    )
    out._rows = {r for r in relation.tuples() if _satisfies(r[attribute], op, constant)}
    return out


def lien_join(r1: Relation, r2: Relation, on: Sequence[str]) -> Relation:
    """Natural (equi-)join on *on* under the nonexistent interpretation.

    Rows with a nonexistent join value cannot participate: a value that
    does not exist equals nothing, so only rows total on the join
    attributes and agreeing on them combine.
    """
    on = tuple(on)
    r1.schema.require(on)
    r2.schema.require(on)
    schema = r1.schema.union(r2.schema, name=f"({r1.name} ⋈L {r2.name})")
    out = Relation(schema, validate=False)
    buckets = {}
    for row in r2.tuples():
        if row.is_total_on(on):
            buckets.setdefault(row.project(on), []).append(row)
    rows: List[XTuple] = []
    for row in r1.tuples():
        if not row.is_total_on(on):
            continue
        for other in buckets.get(row.project(on), ()):  # agree on `on`
            if row.joinable_with(other):
                rows.append(row.join(other))
    out._rows = set(rows)
    return out


def lien_project(relation: Relation, attributes: Sequence[str]) -> Relation:
    """Projection; duplicate (and only duplicate) rows collapse."""
    relation.schema.require(attributes)
    out = Relation(relation.schema.project(tuple(attributes)), validate=False)
    out._rows = {r.project(attributes) for r in relation.tuples()}
    return out
