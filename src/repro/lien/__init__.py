"""The Lien (1979) baseline: nonexistent nulls and multivalued dependencies.

Selection/join/projection under the nonexistent interpretation
(:mod:`repro.lien.operations`) and MVDs with nulls, dependency bases and
implication (:mod:`repro.lien.mvd`).
"""

from .operations import lien_join, lien_project, lien_select
from .mvd import (
    MultivaluedDependency,
    complementation,
    dependency_basis,
    mvd_implied,
)

__all__ = [
    "lien_join", "lien_project", "lien_select",
    "MultivaluedDependency", "complementation", "dependency_basis", "mvd_implied",
]
