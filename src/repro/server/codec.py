"""JSON encoding/decoding between the wire and the engine's row model.

Rows cross the wire as plain JSON objects.  The engine's "no
information" null (``NI``) maps to JSON ``null`` in both directions —
an x-tuple never *stores* NI (absent attributes simply aren't bound),
so encoding asks the tuple for every output column and nulls the
unbound ones, and decoding turns ``null`` parameter values back into
``NI`` before they reach the executor.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

from ..core.nulls import NI, is_ni
from ..core.tuples import XTuple

__all__ = ["row_to_json", "rows_to_json", "decode_params"]


def _value_to_json(value: Any) -> Any:
    if is_ni(value):
        return None
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    return str(value)  # exotic domain values degrade to their repr


def row_to_json(row: XTuple, columns: Sequence[str]) -> Dict[str, Any]:
    """One row as a JSON object over *columns* (unbound → ``null``)."""
    return {column: _value_to_json(row[column]) for column in columns}


def rows_to_json(
    rows: Iterable[XTuple], columns: Sequence[str]
) -> List[Dict[str, Any]]:
    return [row_to_json(row, columns) for row in rows]


def decode_params(raw: Optional[Mapping[str, Any]]) -> Dict[str, Any]:
    """Wire parameters → engine parameters (``null`` → ``NI``)."""
    if not raw:
        return {}
    if not isinstance(raw, Mapping):
        raise ValueError(f"params must be a JSON object, got {type(raw).__name__}")
    return {
        str(name): (NI if value is None else value)
        for name, value in raw.items()
    }
