"""The asyncio HTTP front end: many clients, one database.

:class:`ReproServer` multiplexes per-connection :class:`repro.Session`\\ s
onto a single :class:`repro.storage.Database`.  Concurrency model:

* The event loop owns all connection and routing state; engine work
  (parse → plan → execute → drain) runs in a thread pool via
  ``run_in_executor`` so reading statements genuinely overlap.
* A :class:`~repro.server.gate.StatementGate` keeps the engine's
  single-writer discipline: retrieves hold the gate shared, mutations
  exclusive, and an open ``POST /transactions`` group pins the exclusive
  gate to its connection until commit/rollback/disconnect (the engine's
  snapshot transactions are not isolated from concurrent writers, so
  the gate provides the isolation).
* Every successful mutation is stamped with a global ``seq`` drawn
  while the exclusive gate is held — the serial order of writes, which
  the concurrency tests replay to prove linearizability.

Endpoints (all JSON unless noted):

=======  ========================  ==========================================
POST     /statements               execute one statement (``$name`` params);
                                   ``"cursor": true`` opens a paged cursor
POST     /prepared                 compile a server-side prepared handle
POST     /prepared/{id}/execute    execute a prepared handle
GET      /cursors/{id}?max_rows=N  next page of a cursor (lazy pipeline)
DELETE   /cursors/{id}             close a cursor early
POST     /transactions             {"action": begin | commit | rollback}
GET      /schema                   catalog introspection (resource style)
GET      /metrics                  Prometheus text format (the database's
                                   ``repro.obs`` registry + server families)
GET      /                         server and protocol info
=======  ========================  ==========================================

A connection's session, prepared handles, open cursors and open
transaction die with the connection: on EOF or a torn socket the server
rolls back, invalidates, unpins and closes — nothing leaks past the TCP
lifetime that created it.
"""

from __future__ import annotations

import asyncio
import itertools
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Tuple

from ..api.session import (
    DEFAULT_RESULT_CACHE_SIZE,
    PreparedStatement,
    Session,
    Transaction,
)
from ..core.errors import (
    ConstraintViolation,
    QuelError,
    ReproError,
    SchemaError,
    SessionClosedError,
    StaleResultError,
    StorageError,
    WalError,
)
from ..obs import registry_for
from ..quel.ast_nodes import RetrieveStatement
from .codec import decode_params, rows_to_json
from .gate import StatementGate
from .http import HttpRequest, ProtocolError, read_request, write_response

__all__ = ["ReproServer", "ServerHandle", "serve"]


def status_for(error: BaseException) -> Tuple[int, bool]:
    """Map an engine error onto ``(HTTP status, retriable)``.

    ``StaleResultError`` is the one *retriable* conflict: the statement
    was valid, the undrained result just raced a writer — re-execute and
    it succeeds.  A constraint violation is a conflict that will repeat.
    """
    if isinstance(error, StaleResultError):
        return 409, True
    if isinstance(error, ConstraintViolation):
        return 409, False
    if isinstance(error, SessionClosedError):
        return 410, False
    if isinstance(error, WalError):
        return 500, False
    if isinstance(error, (QuelError, SchemaError, StorageError, ReproError)):
        return 400, False
    if isinstance(error, (ValueError, KeyError, TypeError)):
        return 400, False
    return 500, False


def error_payload(error: BaseException) -> Dict[str, Any]:
    status, retriable = status_for(error)
    return {
        "error": str(error) or type(error).__name__,
        "type": type(error).__name__,
        "status": status,
        "retriable": retriable,
    }


# ---------------------------------------------------------------------------
# /schema: the catalog in the REST resource-handler style
# ---------------------------------------------------------------------------

#: Table fields exposed on the API (the resource-handler idiom: one
#: authoritative tuple, one derivation per computed field).
DISPLAYED_TABLE_FIELDS = (
    "name",
    "attributes",
    "row_count",
    "indexes",
    "constraints",
    "statistics",
)


class TableResource:
    """Render one :class:`~repro.storage.table.Table` for ``GET /schema``."""

    fields = DISPLAYED_TABLE_FIELDS

    @classmethod
    def render(cls, table) -> Dict[str, Any]:
        return {field: getattr(cls, field)(table) for field in cls.fields}

    @classmethod
    def name(cls, table) -> str:
        return table.name

    @classmethod
    def attributes(cls, table) -> List[str]:
        return list(table.schema.attributes)

    @classmethod
    def row_count(cls, table) -> int:
        return len(table.relation.tuples())

    @classmethod
    def indexes(cls, table) -> Dict[str, List[str]]:
        return {
            name: list(attributes)
            for name, attributes in table.index_specs().items()
        }

    @classmethod
    def constraints(cls, table) -> List[str]:
        return sorted(
            getattr(constraint, "name", None) or type(constraint).__name__
            for constraint in table.constraints
        )

    @classmethod
    def statistics(cls, table) -> Dict[str, Any]:
        stats = table.statistics
        return {
            "row_count": stats.row_count,
            "mutations_since_analyze": stats.mutations_since_analyze,
            "stale": stats.stale,
        }


# ---------------------------------------------------------------------------
# Per-connection state
# ---------------------------------------------------------------------------

class _Cursor:
    """A paged drain over one lazy result set (single-use iterator)."""

    def __init__(self, cursor_id: str, result, columns: Tuple[str, ...]):
        self.id = cursor_id
        self.columns = columns
        self._iterator = iter(result)
        #: Serialises pulls — pages run in executor threads, and a client
        #: retrying a timed-out page must not interleave two pulls.
        self._lock = threading.Lock()
        self.rows_served = 0
        self.done = False

    def fetch(self, max_rows: int) -> List[Any]:
        """Pull up to *max_rows* rows (blocking; call in an executor)."""
        page: List[Any] = []
        with self._lock:
            if self.done:
                return page
            for row in self._iterator:
                page.append(row)
                if len(page) >= max_rows:
                    break
            else:
                self.done = True
            self.rows_served += len(page)
        return page


class _Connection:
    """Everything one TCP connection owns on the server side."""

    def __init__(self, connection_id: str, session: Session):
        self.id = connection_id
        self.session = session
        self.prepared: Dict[str, PreparedStatement] = {}
        self.cursors: Dict[str, _Cursor] = {}
        self.transaction: Optional[Transaction] = None
        self._counter = itertools.count(1)

    def next_id(self, prefix: str) -> str:
        return f"{prefix}-{self.id}-{next(self._counter)}"


# ---------------------------------------------------------------------------
# The server
# ---------------------------------------------------------------------------

class ReproServer:
    """Serve one database to many HTTP clients (see the module docstring).

    Parameters
    ----------
    database:
        The :class:`repro.storage.Database` every session speaks to.
    host / port:
        Bind address; ``port=0`` picks a free port (read it back from
        :attr:`port` after :meth:`start`).
    max_in_flight:
        Admission cap: requests beyond this many concurrently in-flight
        are rejected with 503 + ``Retry-After`` instead of queueing
        without bound.  ``None`` disables the cap.
    executor_threads:
        Thread-pool width for engine work (readers overlap up to this).
    default_page_rows:
        Page size for cursor fetches that don't pass ``max_rows``.
    result_cache_size:
        Per-connection semantic result cache capacity (materialized
        answers keyed by statement + params + table versions; see
        :mod:`repro.api.result_cache`).  ``0`` disables result caching
        for every connection the server accepts.
    """

    def __init__(
        self,
        database,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_in_flight: Optional[int] = 64,
        executor_threads: int = 8,
        default_page_rows: int = 256,
        result_cache_size: int = DEFAULT_RESULT_CACHE_SIZE,
    ):
        self.database = database
        self.host = host
        self.port = port
        self.max_in_flight = max_in_flight
        self.default_page_rows = default_page_rows
        self.result_cache_size = result_cache_size
        self.gate = StatementGate()
        self.registry = registry_for(database)
        self._executor = ThreadPoolExecutor(
            max_workers=executor_threads, thread_name_prefix="repro-server"
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._connection_ids = itertools.count(1)
        self._request_ids = itertools.count(1)
        self._connections: set = set()
        self._conn_tasks: set = set()
        self._in_flight = 0
        #: Serial order of committed write statements (drawn while the
        #: exclusive gate is held, on the event loop — strictly monotone
        #: in the order writes actually applied).
        self.write_seq = 0

        self._requests_metric = self.registry.counter(
            "repro_server_requests_total",
            "HTTP requests served, by endpoint template and status.",
            ("endpoint", "status"),
        )
        self._latency_metric = self.registry.histogram(
            "repro_server_request_seconds",
            "Wall time per request, by endpoint template.",
            ("endpoint",),
        )
        self._in_flight_metric = self.registry.gauge(
            "repro_server_in_flight_requests",
            "Requests currently being handled.",
        ).labels()
        self._cursors_metric = self.registry.gauge(
            "repro_server_open_cursors",
            "Server-side cursors currently open.",
        ).labels()
        self._overload_metric = self.registry.counter(
            "repro_server_rejected_overload_total",
            "Requests rejected with 503 because max_in_flight was reached.",
        ).labels()
        self._connections_metric = self.registry.gauge(
            "repro_server_connections_open",
            "Client connections currently open.",
        ).labels()

    # -- lifecycle ------------------------------------------------------------
    async def start(self) -> "ReproServer":
        if self._server is not None:
            raise RuntimeError("server already started")
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Closing the transports makes every connection loop hit EOF and
        # run its own cleanup (rollback, unpin, session close); wait for
        # those tasks rather than destroying them mid-cleanup.
        for connection, writer in list(self._connections):
            try:
                writer.close()
            except Exception:
                pass
        if self._conn_tasks:
            await asyncio.wait(list(self._conn_tasks), timeout=5.0)
        self._executor.shutdown(wait=False)

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start_in_thread(self) -> "ServerHandle":
        """Run the server on a dedicated event-loop thread and return a
        handle with the bound address and a blocking ``stop()`` — what
        tests, benchmarks and the quickstart use."""
        loop = asyncio.new_event_loop()
        ready = threading.Event()
        failure: List[BaseException] = []

        def run() -> None:
            asyncio.set_event_loop(loop)
            try:
                loop.run_until_complete(self.start())
            except BaseException as error:
                failure.append(error)
                ready.set()
                return
            ready.set()
            try:
                loop.run_forever()
            finally:
                loop.run_until_complete(self.stop())
                loop.close()

        thread = threading.Thread(
            target=run, name="repro-server", daemon=True
        )
        thread.start()
        ready.wait()
        if failure:
            raise failure[0]
        return ServerHandle(self, loop, thread)

    # -- engine offloading -----------------------------------------------------
    async def _call(self, fn, *args):
        """Run blocking engine work on the server's thread pool."""
        return await asyncio.get_running_loop().run_in_executor(
            self._executor, fn, *args
        )

    # -- connection loop -------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        connection = _Connection(
            f"c{next(self._connection_ids)}",
            Session(self.database, result_cache_size=self.result_cache_size),
        )
        entry = (connection, writer)
        self._connections.add(entry)
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        self._connections_metric.inc()
        try:
            while True:
                try:
                    request = await read_request(reader)
                except ProtocolError as error:
                    await write_response(
                        writer, 400, error_payload(error), keep_alive=False
                    )
                    break
                if request is None:
                    break  # clean disconnect
                keep_alive = request.keep_alive
                await self._dispatch(connection, writer, request)
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError, BrokenPipeError):
            pass  # torn connection: fall through to cleanup
        finally:
            self._connections.discard(entry)
            self._connections_metric.dec()
            await self._cleanup_connection(connection)
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _cleanup_connection(self, connection: _Connection) -> None:
        """Release everything the connection owned (see module docstring)."""
        if connection.cursors:
            self._cursors_metric.dec(len(connection.cursors))
            connection.cursors.clear()
        connection.transaction = None
        # Session.close() rolls back an open group and invalidates the
        # prepared handles / undrained pipelines; it runs while the gate
        # is still pinned so the rollback cannot interleave with another
        # writer, and the pin is released after.
        try:
            await self._call(connection.session.close)
        finally:
            await self.gate.unpin(connection)

    # -- request dispatch ------------------------------------------------------
    async def _dispatch(self, connection, writer, request: HttpRequest) -> None:
        endpoint, handler, argument = self._route(request)
        if handler is None:
            await write_response(
                writer,
                404,
                {"error": f"no such endpoint: {request.method} {request.path}",
                 "type": "NotFound", "status": 404, "retriable": False},
            )
            self._requests_metric.labels(endpoint="unknown", status="404").inc()
            return
        if (
            self.max_in_flight is not None
            and self._in_flight >= self.max_in_flight
        ):
            self._overload_metric.inc()
            self._requests_metric.labels(endpoint=endpoint, status="503").inc()
            await write_response(
                writer,
                503,
                {"error": "server is at max_in_flight capacity; retry",
                 "type": "Overload", "status": 503, "retriable": True},
                extra_headers=(("Retry-After", "1"),),
            )
            return
        self._in_flight += 1
        self._in_flight_metric.inc()
        started = time.perf_counter()
        status = 500
        try:
            request_id = f"r{next(self._request_ids)}"
            connection.session.trace_tags = {
                "client": connection.id,
                "request": request_id,
            }
            try:
                status, payload, extra = await handler(
                    connection, request, argument
                )
            except ProtocolError as error:
                status, payload, extra = 400, error_payload(error), ()
            except Exception as error:  # engine errors → taxonomy mapping
                status, _retriable = status_for(error)
                payload, extra = error_payload(error), ()
            if isinstance(payload, bytes):
                await write_response(
                    writer,
                    status,
                    payload,
                    content_type="text/plain; version=0.0.4; charset=utf-8",
                    extra_headers=tuple(extra),
                )
            else:
                await write_response(
                    writer, status, payload, extra_headers=tuple(extra)
                )
        finally:
            self._in_flight -= 1
            self._in_flight_metric.dec()
            self._requests_metric.labels(
                endpoint=endpoint, status=str(status)
            ).inc()
            self._latency_metric.labels(endpoint=endpoint).observe(
                time.perf_counter() - started
            )

    def _route(self, request: HttpRequest):
        """Resolve ``(endpoint template, handler, path argument)``."""
        method, path = request.method, request.path.rstrip("/") or "/"
        parts = [part for part in path.split("/") if part]
        if method == "POST" and path == "/statements":
            return "/statements", self._handle_statement, None
        if method == "POST" and path == "/prepared":
            return "/prepared", self._handle_prepare, None
        if (
            method == "POST"
            and len(parts) == 3
            and parts[0] == "prepared"
            and parts[2] == "execute"
        ):
            return "/prepared/{id}/execute", self._handle_prepared_execute, parts[1]
        if len(parts) == 2 and parts[0] == "cursors":
            if method == "GET":
                return "/cursors/{id}", self._handle_cursor_fetch, parts[1]
            if method == "DELETE":
                return "/cursors/{id}", self._handle_cursor_close, parts[1]
        if method == "POST" and path == "/transactions":
            return "/transactions", self._handle_transaction, None
        if method == "GET" and path == "/schema":
            return "/schema", self._handle_schema, None
        if method == "GET" and path == "/metrics":
            return "/metrics", self._handle_metrics, None
        if method == "GET" and path == "/":
            return "/", self._handle_root, None
        return path, None, None

    # -- statement execution ---------------------------------------------------
    @staticmethod
    def _is_read(prepared: PreparedStatement) -> bool:
        statement = prepared.statement
        return (
            isinstance(statement, RetrieveStatement) and statement.into is None
        )

    async def _execute(
        self,
        connection: _Connection,
        prepared: PreparedStatement,
        params: Dict[str, Any],
        *,
        want_cursor: bool,
        page_rows: int,
    ) -> Tuple[int, Any, tuple]:
        """Gate-aware execution shared by /statements and /prepared."""
        session = connection.session
        if self._is_read(prepared):
            async with self.gate.shared(connection):
                result = await self._call(
                    session.execute_prepared, prepared, params
                )
                if want_cursor:
                    return await self._open_cursor(
                        connection, result, page_rows
                    )
                rows = await self._call(lambda: result.rows)
                columns = result.columns
                return (
                    200,
                    {
                        "columns": list(columns),
                        "rows": rows_to_json(rows, columns),
                        "row_count": len(rows),
                    },
                    (),
                )
        async with self.gate.exclusive(connection):
            result = await self._call(
                session.execute_prepared, prepared, params
            )
            self.write_seq += 1
            return (
                200,
                {"rows_affected": result.rows_affected, "seq": self.write_seq},
                (),
            )

    async def _open_cursor(
        self, connection: _Connection, result, page_rows: int
    ) -> Tuple[int, Any, tuple]:
        cursor = _Cursor(
            connection.next_id("cur"), result, result.columns
        )
        first_page = await self._call(cursor.fetch, page_rows)
        payload = {
            "columns": list(cursor.columns),
            "rows": rows_to_json(first_page, cursor.columns),
            "done": cursor.done,
            "cursor": None,
        }
        if not cursor.done:
            connection.cursors[cursor.id] = cursor
            self._cursors_metric.inc()
            payload["cursor"] = cursor.id
        return 200, payload, ()

    async def _handle_statement(self, connection, request, _argument):
        body = request.json()
        text = body.get("statement")
        if not isinstance(text, str) or not text.strip():
            raise ProtocolError('the request needs a "statement" string')
        params = decode_params(body.get("params"))
        prepared = connection.session.prepare(text)
        page_rows = int(body.get("max_rows") or self.default_page_rows)
        return await self._execute(
            connection,
            prepared,
            params,
            want_cursor=bool(body.get("cursor")),
            page_rows=max(1, page_rows),
        )

    # -- prepared statements ---------------------------------------------------
    async def _handle_prepare(self, connection, request, _argument):
        body = request.json()
        text = body.get("statement")
        if not isinstance(text, str) or not text.strip():
            raise ProtocolError('the request needs a "statement" string')
        prepared = connection.session.prepare(text)
        async with self.gate.shared(connection):
            # Compiling reads the catalog — hold the gate like any read.
            parameters = await self._call(lambda: prepared.parameters)
        handle_id = connection.next_id("ps")
        connection.prepared[handle_id] = prepared
        return (
            201,
            {
                "id": handle_id,
                "parameters": list(parameters),
                "kind": "retrieve" if self._is_read(prepared) else "write",
            },
            (),
        )

    async def _handle_prepared_execute(self, connection, request, handle_id):
        prepared = connection.prepared.get(handle_id)
        if prepared is None:
            return (
                404,
                {"error": f"no prepared statement {handle_id!r} on this "
                          f"connection",
                 "type": "NotFound", "status": 404, "retriable": False},
                (),
            )
        body = request.json()
        params = decode_params(body.get("params"))
        page_rows = int(body.get("max_rows") or self.default_page_rows)
        return await self._execute(
            connection,
            prepared,
            params,
            want_cursor=bool(body.get("cursor")),
            page_rows=max(1, page_rows),
        )

    # -- cursors ---------------------------------------------------------------
    async def _handle_cursor_fetch(self, connection, request, cursor_id):
        cursor = connection.cursors.get(cursor_id)
        if cursor is None:
            return (
                404,
                {"error": f"no open cursor {cursor_id!r} on this connection",
                 "type": "NotFound", "status": 404, "retriable": False},
                (),
            )
        try:
            max_rows = int(request.query.get("max_rows", self.default_page_rows))
        except ValueError:
            raise ProtocolError("max_rows must be an integer")
        async with self.gate.shared(connection):
            page = await self._call(cursor.fetch, max(1, max_rows))
        if cursor.done:
            connection.cursors.pop(cursor_id, None)
            self._cursors_metric.dec()
        return (
            200,
            {
                "columns": list(cursor.columns),
                "rows": rows_to_json(page, cursor.columns),
                "done": cursor.done,
                "cursor": None if cursor.done else cursor.id,
            },
            (),
        )

    async def _handle_cursor_close(self, connection, request, cursor_id):
        cursor = connection.cursors.pop(cursor_id, None)
        if cursor is None:
            return (
                404,
                {"error": f"no open cursor {cursor_id!r} on this connection",
                 "type": "NotFound", "status": 404, "retriable": False},
                (),
            )
        self._cursors_metric.dec()
        return 200, {"closed": cursor_id, "rows_served": cursor.rows_served}, ()

    # -- transactions ----------------------------------------------------------
    async def _handle_transaction(self, connection, request, _argument):
        body = request.json()
        action = body.get("action")
        session = connection.session
        if action == "begin":
            if connection.transaction is not None:
                return (
                    409,
                    {"error": "a transaction is already open on this "
                              "connection",
                     "type": "TransactionState", "status": 409,
                     "retriable": False},
                    (),
                )
            await self.gate.pin(connection)
            try:
                transaction = session.transaction()
                await self._call(transaction.begin)
            except BaseException:
                await self.gate.unpin(connection)
                raise
            connection.transaction = transaction
            return 200, {"active": True}, ()
        if action in ("commit", "rollback"):
            transaction = connection.transaction
            if transaction is None:
                return (
                    409,
                    {"error": "no transaction is open on this connection",
                     "type": "TransactionState", "status": 409,
                     "retriable": False},
                    (),
                )
            connection.transaction = None
            try:
                if action == "commit":
                    await self._call(transaction.commit)
                else:
                    await self._call(transaction.rollback)
            finally:
                await self.gate.unpin(connection)
            return 200, {"active": False, "action": action}, ()
        raise ProtocolError(
            f'action must be "begin", "commit" or "rollback", got {action!r}'
        )

    # -- introspection ---------------------------------------------------------
    async def _handle_schema(self, connection, request, _argument):
        async with self.gate.shared(connection):
            payload = await self._call(self._render_schema)
        return 200, payload, ()

    def _render_schema(self) -> Dict[str, Any]:
        catalog = self.database.catalog
        return {
            "database": self.database.name,
            "fields": list(DISPLAYED_TABLE_FIELDS),
            "tables": [
                TableResource.render(catalog.table(name))
                for name in catalog.table_names()
            ],
            "foreign_keys": [
                {"owner": owner, "constraint": str(constraint)}
                for owner, constraint in catalog.foreign_key_entries()
            ],
        }

    async def _handle_metrics(self, connection, request, _argument):
        text = await self._call(self.registry.render_prometheus)
        return 200, text.encode("utf-8"), ()

    async def _handle_root(self, connection, request, _argument):
        return (
            200,
            {
                "server": "repro",
                "database": self.database.name,
                "endpoints": [
                    "POST /statements",
                    "POST /prepared",
                    "POST /prepared/{id}/execute",
                    "GET /cursors/{id}?max_rows=N",
                    "DELETE /cursors/{id}",
                    "POST /transactions",
                    "GET /schema",
                    "GET /metrics",
                ],
            },
            (),
        )


class ServerHandle:
    """A running background-thread server: address + blocking stop()."""

    def __init__(self, server: ReproServer, loop, thread: threading.Thread):
        self.server = server
        self._loop = loop
        self._thread = thread

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def url(self) -> str:
        return self.server.url

    def stop(self, timeout: float = 10.0) -> None:
        """Stop the loop and join the server thread (idempotent)."""
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=timeout)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False


def serve(database, host: str = "127.0.0.1", port: int = 0, **options) -> ServerHandle:
    """Start a :class:`ReproServer` on a background thread and return its
    handle — ``serve(db)`` then ``handle.url`` is all a client needs."""
    return ReproServer(database, host, port, **options).start_in_thread()
