"""The concurrent network service: an asyncio HTTP front end that serves
per-connection :class:`repro.Session`\\ s over one shared
:class:`repro.storage.Database`.

Quick start::

    from repro.server import ServerClient, serve

    handle = serve(database)                     # background thread
    with ServerClient.for_handle(handle) as client:
        client.execute("append to EMP (E# = $e)", {"e": 1})
        page = client.open_cursor("range of e is EMP retrieve (e.E#)")
    handle.stop()

See :mod:`repro.server.app` for the endpoint table and the concurrency
model (single-writer / concurrent-reader statement gate, per-connection
ownership of sessions, prepared handles, cursors and transactions).
"""

from .app import ReproServer, ServerHandle, serve, status_for
from .client import CursorPage, PreparedHandle, ServerClient, ServerError
from .gate import StatementGate

__all__ = [
    "CursorPage",
    "PreparedHandle",
    "ReproServer",
    "ServerClient",
    "ServerError",
    "ServerHandle",
    "StatementGate",
    "serve",
    "status_for",
]
