"""A blocking HTTP client for :class:`~repro.server.app.ReproServer`.

Built on the stdlib's :class:`http.client.HTTPConnection` (one keep-alive
TCP connection per client — which is also the server's unit of session /
cursor / transaction ownership, so one :class:`ServerClient` behaves
exactly like one database connection).  Used by the tests, the E18 load
benchmark and the quickstart example; it is deliberately synchronous —
concurrency in those callers comes from threads, mirroring real client
processes.
"""

from __future__ import annotations

import json
from http.client import HTTPConnection
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple

__all__ = ["ServerClient", "ServerError", "PreparedHandle", "CursorPage"]


class ServerError(Exception):
    """A non-2xx response, carrying the server's error taxonomy fields."""

    def __init__(self, status: int, payload: Mapping[str, Any]):
        self.status = status
        self.payload = dict(payload)
        self.error_type = self.payload.get("type", "Unknown")
        self.retriable = bool(self.payload.get("retriable"))
        super().__init__(
            f"[{status} {self.error_type}] {self.payload.get('error', '')}"
        )


class PreparedHandle:
    """A server-side prepared statement (id + expected parameters)."""

    def __init__(self, client: "ServerClient", handle_id: str,
                 parameters: Tuple[str, ...], kind: str):
        self.client = client
        self.id = handle_id
        self.parameters = parameters
        self.kind = kind

    def execute(self, params: Optional[Mapping[str, Any]] = None,
                **options) -> Dict[str, Any]:
        return self.client.execute_prepared(self.id, params, **options)

    def __repr__(self) -> str:
        return f"PreparedHandle({self.id!r}, parameters={list(self.parameters)})"


class CursorPage:
    """One page of a cursor-paged result."""

    def __init__(self, payload: Mapping[str, Any]):
        self.columns: List[str] = list(payload.get("columns", ()))
        self.rows: List[Dict[str, Any]] = list(payload.get("rows", ()))
        self.cursor: Optional[str] = payload.get("cursor")
        self.done: bool = bool(payload.get("done"))

    def __repr__(self) -> str:
        return (
            f"CursorPage(rows={len(self.rows)}, done={self.done}, "
            f"cursor={self.cursor!r})"
        )


class ServerClient:
    """One blocking connection to a running server."""

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self.host = host
        self.port = port
        self._conn = HTTPConnection(host, port, timeout=timeout)

    @classmethod
    def for_handle(cls, handle, timeout: float = 30.0) -> "ServerClient":
        """A client for a :class:`~repro.server.app.ServerHandle`."""
        return cls(handle.host, handle.port, timeout=timeout)

    # -- transport -------------------------------------------------------------
    def request(
        self,
        method: str,
        path: str,
        body: Optional[Mapping[str, Any]] = None,
    ) -> Tuple[int, Any]:
        """One round-trip; returns ``(status, decoded payload)``.  The
        ``/metrics`` text body comes back as a ``str``."""
        encoded = json.dumps(body).encode("utf-8") if body is not None else b""
        headers = {"Content-Type": "application/json"} if encoded else {}
        self._conn.request(method, path, body=encoded or None, headers=headers)
        response = self._conn.getresponse()
        raw = response.read()
        content_type = response.getheader("Content-Type", "")
        if "application/json" in content_type:
            payload = json.loads(raw) if raw else {}
        else:
            payload = raw.decode("utf-8")
        return response.status, payload

    def _checked(self, method: str, path: str,
                 body: Optional[Mapping[str, Any]] = None) -> Any:
        status, payload = self.request(method, path, body)
        if status >= 400:
            raise ServerError(
                status,
                payload if isinstance(payload, Mapping) else {"error": payload},
            )
        return payload

    # -- statements ------------------------------------------------------------
    def execute(
        self,
        statement: str,
        params: Optional[Mapping[str, Any]] = None,
        *,
        cursor: bool = False,
        max_rows: Optional[int] = None,
    ) -> Dict[str, Any]:
        body: Dict[str, Any] = {"statement": statement}
        if params:
            body["params"] = dict(params)
        if cursor:
            body["cursor"] = True
        if max_rows is not None:
            body["max_rows"] = max_rows
        return self._checked("POST", "/statements", body)

    def rows(self, statement: str,
             params: Optional[Mapping[str, Any]] = None) -> List[Dict[str, Any]]:
        """Execute a retrieve and return its rows as plain dicts."""
        return self.execute(statement, params)["rows"]

    def open_cursor(
        self,
        statement: str,
        params: Optional[Mapping[str, Any]] = None,
        max_rows: int = 256,
    ) -> CursorPage:
        return CursorPage(
            self.execute(statement, params, cursor=True, max_rows=max_rows)
        )

    def fetch(self, cursor_id: str, max_rows: Optional[int] = None) -> CursorPage:
        path = f"/cursors/{cursor_id}"
        if max_rows is not None:
            path += f"?max_rows={int(max_rows)}"
        return CursorPage(self._checked("GET", path))

    def close_cursor(self, cursor_id: str) -> Dict[str, Any]:
        return self._checked("DELETE", f"/cursors/{cursor_id}")

    def iter_pages(
        self,
        statement: str,
        params: Optional[Mapping[str, Any]] = None,
        max_rows: int = 256,
    ) -> Iterator[CursorPage]:
        """Open a cursor and yield every page until the drain finishes."""
        page = self.open_cursor(statement, params, max_rows=max_rows)
        yield page
        while not page.done and page.cursor:
            page = self.fetch(page.cursor, max_rows=max_rows)
            yield page

    # -- prepared statements ---------------------------------------------------
    def prepare(self, statement: str) -> PreparedHandle:
        payload = self._checked("POST", "/prepared", {"statement": statement})
        return PreparedHandle(
            self,
            payload["id"],
            tuple(payload.get("parameters", ())),
            payload.get("kind", "unknown"),
        )

    def execute_prepared(
        self,
        handle_id: str,
        params: Optional[Mapping[str, Any]] = None,
        *,
        cursor: bool = False,
        max_rows: Optional[int] = None,
    ) -> Dict[str, Any]:
        body: Dict[str, Any] = {}
        if params:
            body["params"] = dict(params)
        if cursor:
            body["cursor"] = True
        if max_rows is not None:
            body["max_rows"] = max_rows
        return self._checked("POST", f"/prepared/{handle_id}/execute", body)

    # -- transactions ----------------------------------------------------------
    def begin(self) -> Dict[str, Any]:
        return self._checked("POST", "/transactions", {"action": "begin"})

    def commit(self) -> Dict[str, Any]:
        return self._checked("POST", "/transactions", {"action": "commit"})

    def rollback(self) -> Dict[str, Any]:
        return self._checked("POST", "/transactions", {"action": "rollback"})

    # -- introspection ---------------------------------------------------------
    def schema(self) -> Dict[str, Any]:
        return self._checked("GET", "/schema")

    def metrics(self) -> str:
        """The raw Prometheus text exposition."""
        return self._checked("GET", "/metrics")

    def info(self) -> Dict[str, Any]:
        return self._checked("GET", "/")

    # -- lifecycle -------------------------------------------------------------
    def close(self) -> None:
        """Drop the TCP connection (the server rolls back an open
        transaction, closes open cursors and invalidates prepared
        handles owned by it)."""
        self._conn.close()

    def __enter__(self) -> "ServerClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:
        return f"ServerClient({self.host}:{self.port})"
