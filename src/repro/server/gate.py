"""The single-writer / concurrent-reader statement gate.

One :class:`repro.storage.Database` serves every connection, and the
engine's snapshot/restore transactions are not isolated from concurrent
writers — so the server serialises mutators while letting retrieves
overlap: any number of connections may hold the gate *shared* (their
executor threads stream pipelines concurrently), one connection at a
time holds it *exclusive* for a write statement, and an open
``POST /transactions`` group **pins** the exclusive gate to its
connection across requests, queueing everyone else until the group
commits, rolls back, or the connection drops.

The gate is owner-aware rather than task-aware because a pinned
transaction spans many requests (many tasks) of one connection: the
owner token is the connection object, and a statement from the pinning
connection passes straight through instead of deadlocking behind its
own transaction.
"""

from __future__ import annotations

import asyncio
from contextlib import asynccontextmanager
from typing import Any, Optional

__all__ = ["StatementGate"]


class StatementGate:
    """An asyncio readers–writer lock with a pinnable writer."""

    def __init__(self):
        self._cond = asyncio.Condition()
        self._readers = 0
        #: The connection currently holding the gate exclusively (None
        #: when no writer is in).  While set by :meth:`pin` it survives
        #: across requests until :meth:`unpin`.
        self._owner: Optional[Any] = None
        self._pinned = False

    @property
    def pinned_owner(self) -> Optional[Any]:
        return self._owner if self._pinned else None

    @asynccontextmanager
    async def shared(self, owner: Any):
        """Hold the gate for a reading statement from *owner*."""
        async with self._cond:
            if self._owner is owner:
                acquired = False  # already exclusive via a pinned group
            else:
                await self._cond.wait_for(lambda: self._owner is None)
                self._readers += 1
                acquired = True
        try:
            yield
        finally:
            if acquired:
                async with self._cond:
                    self._readers -= 1
                    self._cond.notify_all()

    @asynccontextmanager
    async def exclusive(self, owner: Any):
        """Hold the gate for a writing statement from *owner*."""
        async with self._cond:
            if self._owner is owner:
                acquired = False
            else:
                await self._cond.wait_for(
                    lambda: self._owner is None and self._readers == 0
                )
                self._owner = owner
                acquired = True
        try:
            yield
        finally:
            if acquired:
                async with self._cond:
                    self._owner = None
                    self._cond.notify_all()

    async def pin(self, owner: Any) -> None:
        """Acquire the exclusive gate and keep it across requests (a
        transaction begin).  Waits behind current readers and writers."""
        async with self._cond:
            if self._owner is owner:
                return  # begin inside an already-pinned group: a no-op here
            await self._cond.wait_for(
                lambda: self._owner is None and self._readers == 0
            )
            self._owner = owner
            self._pinned = True

    async def unpin(self, owner: Any) -> None:
        """Release a pinned gate (commit / rollback / disconnect)."""
        async with self._cond:
            if self._owner is owner and self._pinned:
                self._owner = None
                self._pinned = False
                self._cond.notify_all()

    def __repr__(self) -> str:
        state = (
            f"exclusive owner={self._owner!r} pinned={self._pinned}"
            if self._owner is not None
            else f"readers={self._readers}"
        )
        return f"StatementGate({state})"
