"""A minimal HTTP/1.1 layer over asyncio streams.

The server's zero-dependency policy rules out aiohttp and friends, and
the protocol surface it actually needs is tiny: request line + headers +
an optional ``Content-Length`` body in, status line + headers + body
out, keep-alive by default.  This module implements exactly that —
chunked transfer, trailers, pipelining beyond read-one-write-one and
HTTP/2 are deliberately out of scope (the blocking test client and every
mainstream HTTP client speak this subset).

Hard limits (request-line length, header count, body size) bound what a
misbehaving or malicious peer can make the server buffer; crossing one
raises :class:`ProtocolError`, which the connection loop answers with a
400 and a close.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qsl, unquote, urlsplit

__all__ = [
    "HttpRequest",
    "ProtocolError",
    "read_request",
    "write_response",
    "STATUS_REASONS",
]

#: Reason phrases for the statuses the server emits.
STATUS_REASONS = {
    200: "OK",
    201: "Created",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    409: "Conflict",
    410: "Gone",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Bounds on what one request may make the server buffer.
MAX_REQUEST_LINE = 8 * 1024
MAX_HEADER_COUNT = 64
MAX_HEADER_LINE = 8 * 1024
MAX_BODY_BYTES = 16 * 1024 * 1024


class ProtocolError(Exception):
    """The peer sent something that is not the HTTP subset we speak."""


class HttpRequest:
    """One parsed request: method, path, query, headers, body."""

    __slots__ = ("method", "path", "query", "headers", "body")

    def __init__(
        self,
        method: str,
        path: str,
        query: Dict[str, str],
        headers: Dict[str, str],
        body: bytes,
    ):
        self.method = method
        self.path = path
        self.query = query
        self.headers = headers
        self.body = body

    def json(self) -> Any:
        """The body decoded as JSON (an empty body is an empty object)."""
        if not self.body:
            return {}
        try:
            return json.loads(self.body)
        except ValueError as error:
            raise ProtocolError(f"request body is not valid JSON: {error}")

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"

    def __repr__(self) -> str:
        return f"HttpRequest({self.method} {self.path!r}, {len(self.body)}B)"


async def read_request(reader: asyncio.StreamReader) -> Optional[HttpRequest]:
    """Read one request; ``None`` when the peer closed the connection
    cleanly between requests (the keep-alive loop's exit signal)."""
    try:
        line = await reader.readuntil(b"\n")
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None  # clean EOF between requests
        raise ProtocolError("connection closed mid-request-line")
    except asyncio.LimitOverrunError:
        raise ProtocolError("request line too long")
    if len(line) > MAX_REQUEST_LINE:
        raise ProtocolError("request line too long")
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1"):
        raise ProtocolError(f"malformed request line: {line!r}")
    method, target, _version = parts
    split = urlsplit(target)
    path = unquote(split.path)
    query = {key: value for key, value in parse_qsl(split.query)}

    headers: Dict[str, str] = {}
    while True:
        try:
            line = await reader.readuntil(b"\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            raise ProtocolError("connection closed inside headers")
        if line in (b"\r\n", b"\n"):
            break
        if len(line) > MAX_HEADER_LINE:
            raise ProtocolError("header line too long")
        if len(headers) >= MAX_HEADER_COUNT:
            raise ProtocolError("too many headers")
        name, separator, value = line.decode("latin-1").partition(":")
        if not separator:
            raise ProtocolError(f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()

    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise ProtocolError("chunked request bodies are not supported")
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise ProtocolError(f"bad Content-Length: {length_text!r}")
    if length < 0 or length > MAX_BODY_BYTES:
        raise ProtocolError(f"unacceptable Content-Length: {length}")
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise ProtocolError("connection closed inside the body")
    return HttpRequest(method.upper(), path, query, headers, body)


def encode_response(
    status: int,
    body: bytes,
    content_type: str = "application/json",
    extra_headers: Tuple[Tuple[str, str], ...] = (),
    keep_alive: bool = True,
) -> bytes:
    reason = STATUS_REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in extra_headers:
        lines.append(f"{name}: {value}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + body


async def write_response(
    writer: asyncio.StreamWriter,
    status: int,
    payload: Any,
    *,
    content_type: Optional[str] = None,
    extra_headers: Tuple[Tuple[str, str], ...] = (),
    keep_alive: bool = True,
) -> None:
    """Serialise and send one response.

    *payload* is JSON-encoded unless it is already ``bytes`` (then
    *content_type* should say what it is — the ``/metrics`` text path).
    """
    if isinstance(payload, bytes):
        body = payload
        content_type = content_type or "application/octet-stream"
    else:
        body = json.dumps(payload, default=str).encode("utf-8")
        content_type = content_type or "application/json"
    writer.write(
        encode_response(
            status,
            body,
            content_type=content_type,
            extra_headers=extra_headers,
            keep_alive=keep_alive,
        )
    )
    await writer.drain()
