"""Attribute domains and their extension by the no-information null.

Section 3 of the paper: "Underlying each attribute ``A`` there is a domain
``DOM(A)``.  We extend each domain to include the distinguished symbol
``ni``."  This module provides the domain abstraction used by schemas,
integrity checking, the possible-worlds completion enumerator (which must
know what the legal substitutions for a null are), and the data
generators.

Three concrete domain families cover everything the paper's examples use:

* :class:`EnumeratedDomain` — an explicit finite set of values (part
  numbers, supplier numbers, ``SEX`` codes).  Finite domains are what the
  Appendix's brute-force tautology checker and the possible-worlds
  enumerator iterate over.
* :class:`IntegerRangeDomain` — integers in an inclusive range (employee
  numbers, telephone numbers).  Still finite, but typically too large to
  enumerate, which is exactly the paper's point about the brute-force
  approach being infeasible.
* :class:`TypedDomain` — an "open" domain constrained only by a Python
  type (strings for ``NAME``).  Infinite for enumeration purposes.

Every domain answers membership questions about *nonnull* values; the
extended domain additionally admits :data:`~repro.core.nulls.NI`.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Optional, Sequence, Tuple

from .errors import DomainError
from .nulls import NI, is_ni


class Domain:
    """Abstract base class of attribute domains.

    Subclasses implement :meth:`contains`, and — when the domain is finite
    and small enough to iterate — :meth:`__iter__` and :meth:`__len__`.
    """

    #: Human-readable name used in error messages and catalogs.
    name: str = "domain"

    def contains(self, value: Any) -> bool:
        """Return ``True`` when *value* is a legal **nonnull** domain value."""
        raise NotImplementedError

    def contains_extended(self, value: Any) -> bool:
        """Return ``True`` when *value* is legal in the *extended* domain.

        The extended domain is ``DOM(A) ∪ {ni}`` (Section 3).
        """
        return is_ni(value) or self.contains(value)

    def validate(self, value: Any, attribute: str = "?") -> Any:
        """Normalise and check *value*, raising :class:`DomainError` if illegal.

        ``None`` is normalised to :data:`NI`.  Returns the value to store.
        """
        if value is None:
            return NI
        if not self.contains_extended(value):
            raise DomainError(
                f"value {value!r} is not in the extended domain {self.name} "
                f"of attribute {attribute}"
            )
        return value

    # -- finiteness -------------------------------------------------------
    def is_finite(self) -> bool:
        """Return ``True`` when the domain can be exhaustively enumerated."""
        return False

    def __iter__(self) -> Iterator[Any]:
        raise DomainError(f"domain {self.name} is not enumerable")

    def __len__(self) -> int:
        raise DomainError(f"domain {self.name} has no finite cardinality")

    def sample(self, n: int, rng) -> list:
        """Return *n* values drawn uniformly (with replacement) using *rng*.

        Used by ``repro.datagen``.  Subclasses with natural sampling
        strategies override this.
        """
        raise DomainError(f"domain {self.name} does not support sampling")

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class EnumeratedDomain(Domain):
    """A small, explicitly enumerated finite domain.

    Parameters
    ----------
    values:
        The nonnull values of the domain.  Order is preserved (first
        occurrence wins) so iteration and sampling are deterministic.
    name:
        Optional label for error messages.
    """

    def __init__(self, values: Iterable[Any], name: str = "enum"):
        seen = []
        seen_set = set()
        for v in values:
            if v is None or is_ni(v):
                raise DomainError("enumerated domains may not list the null value")
            if v not in seen_set:
                seen.append(v)
                seen_set.add(v)
        if not seen:
            raise DomainError("an enumerated domain needs at least one value")
        self._values: Tuple[Any, ...] = tuple(seen)
        self._value_set = frozenset(seen)
        self.name = name

    @property
    def values(self) -> Tuple[Any, ...]:
        """The nonnull values, in declaration order."""
        return self._values

    def contains(self, value: Any) -> bool:
        return value in self._value_set

    def is_finite(self) -> bool:
        return True

    def __iter__(self) -> Iterator[Any]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def sample(self, n: int, rng) -> list:
        return [self._values[rng.randrange(len(self._values))] for _ in range(n)]

    def __repr__(self) -> str:
        preview = ", ".join(repr(v) for v in self._values[:4])
        if len(self._values) > 4:
            preview += ", ..."
        return f"EnumeratedDomain([{preview}], name={self.name!r})"


class IntegerRangeDomain(Domain):
    """Integers in the inclusive range ``[low, high]``.

    Finite, but potentially huge — the paper's Appendix argues that
    enumerating such domains to detect tautologies is infeasible, and our
    benchmarks confirm the blow-up.
    """

    def __init__(self, low: int, high: int, name: str = "int-range"):
        if not isinstance(low, int) or not isinstance(high, int):
            raise DomainError("integer range bounds must be integers")
        if low > high:
            raise DomainError(f"empty integer range [{low}, {high}]")
        self.low = low
        self.high = high
        self.name = name

    def contains(self, value: Any) -> bool:
        return isinstance(value, int) and not isinstance(value, bool) and self.low <= value <= self.high

    def is_finite(self) -> bool:
        return True

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.low, self.high + 1))

    def __len__(self) -> int:
        return self.high - self.low + 1

    def sample(self, n: int, rng) -> list:
        return [rng.randint(self.low, self.high) for _ in range(n)]

    def __repr__(self) -> str:
        return f"IntegerRangeDomain({self.low}, {self.high}, name={self.name!r})"


class TypedDomain(Domain):
    """An open domain constrained only by a Python type (e.g. ``str``).

    Not enumerable; the possible-worlds evaluator refuses to enumerate
    completions over such a domain unless given an explicit
    *active domain* restriction.
    """

    def __init__(self, pytype: type, name: Optional[str] = None):
        if not isinstance(pytype, type):
            raise DomainError("TypedDomain requires a Python type object")
        self.pytype = pytype
        self.name = name or pytype.__name__

    def contains(self, value: Any) -> bool:
        if self.pytype is int and isinstance(value, bool):
            return False
        return isinstance(value, self.pytype)

    def __repr__(self) -> str:
        return f"TypedDomain({self.pytype.__name__}, name={self.name!r})"


class AnyDomain(Domain):
    """The unconstrained domain: every nonnull Python value is legal.

    This is the default when a schema does not declare domains; it keeps
    the core model usable without ceremony, exactly as the paper's
    definitions never require domain declarations except for ``TOP_U``.
    """

    name = "any"

    def contains(self, value: Any) -> bool:
        return True


#: Shared default instance of the unconstrained domain.
ANY = AnyDomain()


def active_domain(values: Iterable[Any], name: str = "active") -> EnumeratedDomain:
    """Build the *active domain* of a collection of values.

    The active domain — the set of nonnull values actually occurring in a
    database column — is the standard finite substitute for an open domain
    when enumerating completions (Reiter's closed-world flavour).  Nulls in
    *values* are skipped.
    """
    nonnull = [v for v in values if not is_ni(v) and v is not None]
    if not nonnull:
        raise DomainError(f"cannot build an active domain from only nulls for {name}")
    return EnumeratedDomain(nonnull, name=name)
