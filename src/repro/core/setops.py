"""Generalised set operations on relations with nulls (Section 4).

The paper defines union, x-intersection and difference of x-relations via
x-membership — definitions (4.1)–(4.3) — and then gives the efficient,
representation-level reformulations (4.6)–(4.8):

* ``R1 ∪ R2   = {r | r ∈ R1 or r ∈ R2}``                       (4.6)
* ``R1 ∩̂ R2  = {r1 ∧ r2 | r1 ∈ R1 and r2 ∈ R2}``              (4.7)
* ``R1 − R2   = {r | r ∈ R1 and ∀t ∈ R2 : ¬(t ≥ r)}``          (4.8)

This module implements both the definitional forms (used by tests as an
oracle) and the efficient forms (the production code path), always on
representations (:class:`~repro.core.relation.Relation`); the x-relation
wrapper in :mod:`repro.core.xrelation` delegates here.

The production paths route through the dominance engine
(:mod:`repro.core.engine`) — the "combinatorial hashing" the paper points
at after (4.8):

* :func:`difference` indexes the subtrahend once in a
  :class:`~repro.core.engine.DominanceIndex` and answers the universal
  quantification with one signature-superset probe per minuend row;
* :func:`x_intersection` (when minimising, the default) enumerates only
  the row pairs that agree on at least one bound item via
  :func:`~repro.core.engine.pair_candidates` — every other pair meets to
  the null tuple, which reduction drops anyway — instead of the full
  ``|R1| · |R2|`` meet product.

The pre-engine nested-loop forms survive as :func:`difference_naive` and
:func:`x_intersection_naive`; benchmarks (E13) measure the gap and the
property tests assert exact agreement.

The result schema follows the scope remarks after (4.8): a union's schema
is the union of the operand schemas; an x-intersection's and a
difference's schemas are, respectively, the schema intersection and the
minuend's schema (supersets of the true scopes, which is harmless because
x-relations do not carry a fixed attribute set).
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from .engine.dominance import DominanceIndex
from .engine.joins import meet_candidates
from .minimal import reduce_rows
from .relation import Relation, RelationSchema
from .tuples import XTuple


def _result_relation(schema: RelationSchema, rows: Iterable[XTuple], name: str, minimize: bool) -> Relation:
    out = Relation(schema, name=name, validate=False)
    out._rows = set(reduce_rows(rows)) if minimize else set(rows)
    return out


# ---------------------------------------------------------------------------
# Union
# ---------------------------------------------------------------------------

def union(r1: Relation, r2: Relation, minimize: bool = True, name: Optional[str] = None) -> Relation:
    """The generalised union (4.6): simply pool the representatives.

    Unlike the classical union, no union-compatibility precondition is
    needed — closure over arbitrary operands is the point of Section 7.
    When *minimize* is true (the default) the result is reduced to minimal
    form, since pooling two minimal relations can create subsumed rows.
    """
    schema = r1.schema.union(r2.schema, name=name or f"({r1.name} ∪ {r2.name})")
    return _result_relation(schema, list(r1.tuples()) + list(r2.tuples()), schema.name, minimize)


# ---------------------------------------------------------------------------
# x-intersection
# ---------------------------------------------------------------------------

def x_intersection(r1: Relation, r2: Relation, minimize: bool = True, name: Optional[str] = None) -> Relation:
    """The x-intersection (4.7): pairwise meets of the representatives.

    The x-intersection is the greatest lower bound in the lattice of
    x-relations; note it is *not* plain set intersection — the Section 7
    example with ``{(a,b1)}`` and ``{(a,b2)}`` yields the tuple ``(a, -)``.
    """
    shared = [a for a in r1.schema.attributes if a in r2.schema]
    if shared:
        schema = r1.schema.project(shared, name=name or f"({r1.name} ∩̂ {r2.name})")
    else:
        # Disjoint schemas: every meet is the null tuple, so the result is
        # (equivalent to) the empty x-relation; keep the minuend's first
        # attribute so the schema stays well formed.
        schema = RelationSchema(r1.schema.attributes[:1], name=name or f"({r1.name} ∩̂ {r2.name})")
    if minimize:
        # Engine path: only pairs agreeing on some bound item can meet to a
        # non-null tuple, and the null tuple never survives reduction.
        meets: Iterable[XTuple] = meet_candidates(r1.tuples(), r2.tuples())
        return _result_relation(schema, meets, schema.name, True)
    return _result_relation(schema, _meet_product(r1, r2), schema.name, False)


def _meet_product(r1: Relation, r2: Relation) -> set:
    """The full pairwise meet product of (4.7) — the definitional form.

    Accumulated as a set: the meets of a large product collapse heavily,
    and the result relation stores a set of rows anyway.
    """
    meets: set = set()
    for a in r1.tuples():
        for b in r2.tuples():
            meets.add(a.meet(b))
    return meets


def x_intersection_naive(r1: Relation, r2: Relation, minimize: bool = True, name: Optional[str] = None) -> Relation:
    """The pre-engine x-intersection: the full ``|R1| · |R2|`` meet product.

    Kept as the oracle/benchmark baseline for :func:`x_intersection`.
    """
    shared = [a for a in r1.schema.attributes if a in r2.schema]
    if shared:
        schema = r1.schema.project(shared, name=name or f"({r1.name} ∩̂ {r2.name})")
    else:
        schema = RelationSchema(r1.schema.attributes[:1], name=name or f"({r1.name} ∩̂ {r2.name})")
    return _result_relation(schema, _meet_product(r1, r2), schema.name, minimize)


# ---------------------------------------------------------------------------
# Difference
# ---------------------------------------------------------------------------

def difference(r1: Relation, r2: Relation, minimize: bool = True, name: Optional[str] = None) -> Relation:
    """The generalised difference (4.8).

    A row of the minuend survives iff **no** row of the subtrahend is more
    informative than it.  Note the universal quantification: the paper
    points out (Section 6, query Q4) that difference carries a "for sure"
    universal flavour under incomplete information.

    The subtrahend is indexed once in a
    :class:`~repro.core.engine.DominanceIndex`; each minuend row then costs
    one signature-superset probe instead of a scan of the subtrahend.
    """
    schema = RelationSchema(
        r1.schema.attributes, r1.schema.domains(), name=name or f"({r1.name} − {r2.name})"
    )
    subtrahend = DominanceIndex(r2.tuples())
    rows = [r for r in r1.tuples() if not subtrahend.has_dominator(r)]
    return _result_relation(schema, rows, schema.name, minimize)


def difference_naive(r1: Relation, r2: Relation, minimize: bool = True, name: Optional[str] = None) -> Relation:
    """The pre-engine difference: a nested ``|R1| · |R2|`` dominance scan.

    Kept as the oracle/benchmark baseline for :func:`difference`.
    """
    schema = RelationSchema(
        r1.schema.attributes, r1.schema.domains(), name=name or f"({r1.name} − {r2.name})"
    )
    subtrahend = list(r2.tuples())
    rows = [
        r for r in r1.tuples()
        if not any(t.more_informative_than(r) for t in subtrahend)
    ]
    return _result_relation(schema, rows, schema.name, minimize)


# ---------------------------------------------------------------------------
# Definitional (oracle) forms, used by the test suite
# ---------------------------------------------------------------------------

def x_membership_union(r1: Relation, r2: Relation, candidates: Iterable[XTuple]) -> List[XTuple]:
    """Definition (4.1) restricted to a finite candidate set.

    The definitional union is "every tuple x-belonging to either operand";
    that set is infinite downward-closed, so the oracle form takes an
    explicit candidate pool and returns the ones that satisfy the
    definition.  Tests compare against :func:`union` via x-membership.
    """
    return [t for t in candidates if r1.x_contains(t) or r2.x_contains(t)]


def x_membership_intersection(r1: Relation, r2: Relation, candidates: Iterable[XTuple]) -> List[XTuple]:
    """Definition (4.2) restricted to a finite candidate set."""
    return [t for t in candidates if r1.x_contains(t) and r2.x_contains(t)]


def x_membership_difference(r1: Relation, r2: Relation, candidates: Iterable[XTuple]) -> List[XTuple]:
    """Definition (4.3) restricted to a finite candidate set."""
    return [t for t in candidates if r1.x_contains(t) and not r2.x_contains(t)]


# ---------------------------------------------------------------------------
# Classical (Codd) counterparts on total relations, used to verify the
# Section 7 correspondence (experiment E9).
# ---------------------------------------------------------------------------

def classical_union(r1: Relation, r2: Relation) -> Relation:
    """Plain set union of two union-compatible total relations."""
    from ..codd.algebra import codd_union  # late import: baseline package
    return codd_union(r1, r2)


def classical_difference(r1: Relation, r2: Relation) -> Relation:
    """Plain set difference of two union-compatible total relations."""
    from ..codd.algebra import codd_difference
    return codd_difference(r1, r2)
